"""Structured metrics for the serving layer, Prometheus-style.

A tiny self-contained registry (no client library dependency) with the
three instrument kinds the service needs:

* :class:`Counter` — monotone totals (jobs submitted/completed, saved
  reconfiguration nanoseconds);
* :class:`Gauge` — point-in-time values (queue depth, per-fabric
  utilization);
* :class:`Histogram` — latency distributions with both fixed buckets
  (for the text exposition) and a bounded reservoir for percentile
  queries (p50/p90/p99 of queue wait and serve time).

:meth:`MetricsRegistry.render` emits the Prometheus text exposition
format, so ``curl``-style scraping of the demo output works with stock
tooling; :meth:`MetricsRegistry.snapshot` returns plain dicts for tests
and the JSON bench artifacts.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field

from repro.errors import ServeError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = key + extra
    if not items:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in items)
    return "{" + inner + "}"


@dataclass
class Counter:
    """Monotonically increasing total, optionally labelled."""

    name: str
    help: str
    _values: dict[LabelKey, float] = field(default_factory=dict)

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ServeError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    @property
    def total(self) -> float:
        """Sum over all label sets."""
        return sum(self._values.values())

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} counter"]
        for key in sorted(self._values):
            lines.append(
                f"{self.name}{_render_labels(key)} {self._values[key]:g}"
            )
        if not self._values:
            lines.append(f"{self.name} 0")
        return lines

    def snapshot(self) -> dict:
        return {
            "kind": "counter",
            "values": {str(dict(k)): v for k, v in self._values.items()},
            "total": self.total,
        }


@dataclass
class Gauge:
    """A value that can go up and down."""

    name: str
    help: str
    _values: dict[LabelKey, float] = field(default_factory=dict)

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} gauge"]
        for key in sorted(self._values):
            lines.append(
                f"{self.name}{_render_labels(key)} {self._values[key]:g}"
            )
        if not self._values:
            lines.append(f"{self.name} 0")
        return lines

    def snapshot(self) -> dict:
        return {
            "kind": "gauge",
            "values": {str(dict(k)): v for k, v in self._values.items()},
        }


class Histogram:
    """Latency distribution: cumulative buckets + percentile reservoir.

    Buckets follow Prometheus semantics (cumulative ``le`` counts with a
    ``+Inf`` catch-all).  Percentiles come from a bounded reservoir that
    degrades gracefully to uniform sampling past ``reservoir_size``
    observations, with a seeded RNG so runs are reproducible.
    """

    kind = "histogram"

    #: Default buckets tuned for job latencies in seconds.
    DEFAULT_BUCKETS = (
        0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
        2.5, 5.0, 10.0,
    )

    def __init__(
        self,
        name: str,
        help: str,
        buckets: tuple[float, ...] | None = None,
        reservoir_size: int = 2048,
        seed: int = 0,
    ) -> None:
        buckets = tuple(buckets if buckets is not None else self.DEFAULT_BUCKETS)
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ServeError(f"histogram {name}: buckets must be increasing")
        if not buckets:
            raise ServeError(f"histogram {name}: needs at least one bucket")
        self.name = name
        self.help = help
        self.buckets = buckets
        self._bucket_counts = [0] * (len(buckets) + 1)  # + the +Inf bucket
        self._count = 0
        self._sum = 0.0
        self._reservoir: list[float] = []
        self._reservoir_size = reservoir_size
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        value = float(value)
        self._count += 1
        self._sum += value
        self._bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
        if len(self._reservoir) < self._reservoir_size:
            self._reservoir.append(value)
        else:  # reservoir sampling keeps a uniform subset
            slot = self._rng.randrange(self._count)
            if slot < self._reservoir_size:
                self._reservoir[slot] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Reservoir percentile, ``q`` in [0, 1] (0.5 = median)."""
        if not 0.0 <= q <= 1.0:
            raise ServeError(f"percentile q must be in [0, 1], got {q}")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} histogram",
        ]
        cumulative = 0
        for bound, n in zip(self.buckets, self._bucket_counts):
            cumulative += n
            lines.append(f'{self.name}_bucket{{le="{bound:g}"}} {cumulative}')
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {self._count}')
        lines.append(f"{self.name}_sum {self._sum:g}")
        lines.append(f"{self.name}_count {self._count}")
        return lines

    def snapshot(self) -> dict:
        return {
            "kind": "histogram",
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Named instruments with single-creation semantics.

    ``registry.counter(name, help)`` returns the existing instrument on
    repeat calls (so call sites need no central wiring) but refuses to
    re-register a name as a different kind.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_make(self, cls, name: str, help: str, **kwargs):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ServeError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        instrument = cls(name, help, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_make(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_make(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        return self._get_or_make(Histogram, name, help, buckets=buckets)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __getitem__(self, name: str) -> Counter | Gauge | Histogram:
        return self._instruments[name]

    def render(self) -> str:
        """Prometheus text exposition of every instrument."""
        lines: list[str] = []
        for name in sorted(self._instruments):
            lines.extend(self._instruments[name].render())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict[str, dict]:
        """Plain-dict dump (tests, JSON artifacts, the demo summary)."""
        return {
            name: instrument.snapshot()
            for name, instrument in sorted(self._instruments.items())
        }
