"""The asyncio fabric job service.

Wiring: ``submit()`` performs admission control (bounded queue, drain
state) and parks the request in a single shared queue; one asyncio
worker loop per pool fabric pulls its next job through the scheduling
policy and executes it on a thread-pool (the fabric simulator is
synchronous CPU work), with per-attempt wall-clock timeouts, bounded
exponential retry backoff, and cooperative cancellation at epoch
boundaries.  ``drain()`` stops admission and waits for the backlog to
empty; ``shutdown()`` drains (optionally) and tears the loops down.

Every lifecycle edge feeds the metrics registry::

    serve_jobs_submitted_total{kind}        serve_queue_depth
    serve_jobs_completed_total{kind,status} serve_jobs_rejected_total{reason}
    serve_job_retries_total{kind}           serve_jobs_inflight
    serve_queue_wait_seconds   (histogram)  serve_job_serve_seconds (histogram)
    serve_job_sim_ns_total{kind}            serve_reconfig_ns_total{kind}
    serve_reconfig_saved_ns_total{kind}     serve_warm_jobs_total{kind}
    serve_cold_starts_total{kind}           serve_fabric_busy_ns_total{fabric}
    serve_fabric_jobs_total{fabric}         serve_fabric_utilization{fabric}
    serve_faults_detected_total{kind}       serve_faults_corrected_total{kind}
    serve_hard_faults_total{kind}           serve_scrub_ns_total{kind}
    serve_fault_mttr_ns        (histogram)  serve_worker_health{fabric}
    serve_worker_quarantined_total{fabric}  serve_worker_readmitted_total{fabric}
    serve_jobs_requeued_total{kind}

``serve_reconfig_saved_ns_total`` is the serving-level version of the
paper's amortization claim: reconfiguration time that Eq. 1 would have
charged cold but that residency-aware placement avoided.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.errors import JobCancelled, JobRejected, ServeError
from repro.serve.jobs import JobRequest, JobResult, JobStatus
from repro.serve.metrics import MetricsRegistry
from repro.serve.pool import FabricPool, WorkerRun
from repro.serve.scheduler import AffinityPolicy, SchedulingPolicy
from repro.serve.sessions import CancelToken, SessionFactory, default_session_factory

__all__ = ["FabricJobService", "ServiceStats"]


@dataclass
class _Pending:
    request: JobRequest
    future: asyncio.Future
    enqueued_at: float = field(default_factory=time.monotonic)


@dataclass
class ServiceStats:
    """Cheap point-in-time summary (the demo prints this)."""

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    queue_depth: int = 0
    inflight: int = 0


class FabricJobService:
    """Multi-tenant job service over a pool of simulated fabrics.

    Parameters
    ----------
    pool_size:
        Number of fabrics (and executor threads — one job per fabric).
    policy:
        Scheduling policy; defaults to reconfiguration-affinity.
    max_queue:
        Admission-control bound; a submit beyond it is rejected
        immediately (callers that prefer backpressure to rejection pass
        ``wait=True`` to :meth:`submit`).
    default_timeout_s / default_max_retries:
        Fallbacks for requests that leave the QoS fields at zero-ish.
    retry_backoff_s / retry_backoff_cap_s:
        First retry delay and its exponential cap.
    """

    def __init__(
        self,
        pool_size: int = 2,
        *,
        policy: SchedulingPolicy | None = None,
        max_queue: int = 64,
        session_factory: SessionFactory = default_session_factory,
        metrics: MetricsRegistry | None = None,
        retry_backoff_s: float = 0.05,
        retry_backoff_cap_s: float = 1.0,
    ) -> None:
        if max_queue < 1:
            raise ServeError(f"max_queue must be >= 1, got {max_queue}")
        self.pool = FabricPool(pool_size, session_factory)
        self.policy = policy if policy is not None else AffinityPolicy()
        self.max_queue = max_queue
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.retry_backoff_s = retry_backoff_s
        self.retry_backoff_cap_s = retry_backoff_cap_s
        self._queue: list[_Pending] = []
        self._queue_changed: asyncio.Condition | None = None
        self._loops: list[asyncio.Task] = []
        self._executor: ThreadPoolExecutor | None = None
        self._running = False
        self._draining = False
        self._inflight = 0
        self._active_cancels: set[CancelToken] = set()
        self._register_metrics()

    # ------------------------------------------------------------------
    # metrics plumbing
    # ------------------------------------------------------------------

    def _register_metrics(self) -> None:
        m = self.metrics
        self._m_submitted = m.counter(
            "serve_jobs_submitted_total", "Jobs accepted into the queue"
        )
        self._m_completed = m.counter(
            "serve_jobs_completed_total", "Jobs finished, by terminal status"
        )
        self._m_rejected = m.counter(
            "serve_jobs_rejected_total", "Jobs turned away by admission control"
        )
        self._m_retries = m.counter(
            "serve_job_retries_total", "Retry attempts scheduled"
        )
        self._m_queue_depth = m.gauge(
            "serve_queue_depth", "Jobs waiting for a fabric"
        )
        self._m_inflight = m.gauge(
            "serve_jobs_inflight", "Jobs currently executing"
        )
        self._m_wait = m.histogram(
            "serve_queue_wait_seconds", "Wall time from submit to dispatch"
        )
        self._m_serve = m.histogram(
            "serve_job_serve_seconds", "Wall time executing (final attempt)"
        )
        self._m_sim_ns = m.counter(
            "serve_job_sim_ns_total", "Simulated fabric time consumed"
        )
        self._m_reconfig_ns = m.counter(
            "serve_reconfig_ns_total", "Simulated reconfiguration time (Eq. 1 B)"
        )
        self._m_saved_ns = m.counter(
            "serve_reconfig_saved_ns_total",
            "Reconfiguration time avoided by warm placement vs cold baseline",
        )
        self._m_warm = m.counter(
            "serve_warm_jobs_total", "Jobs served on an already-warm fabric"
        )
        self._m_cold = m.counter(
            "serve_cold_starts_total", "Jobs that paid a cold configuration"
        )
        self._m_fabric_busy = m.counter(
            "serve_fabric_busy_ns_total", "Simulated busy time per fabric"
        )
        self._m_fabric_jobs = m.counter(
            "serve_fabric_jobs_total", "Jobs completed per fabric"
        )
        self._m_fabric_util = m.gauge(
            "serve_fabric_utilization",
            "Busy share of each fabric since service start (sim time)",
        )
        # -- fault tolerance -------------------------------------------
        self._m_faults_detected = m.counter(
            "serve_faults_detected_total", "SEUs detected by scrubbing"
        )
        self._m_faults_corrected = m.counter(
            "serve_faults_corrected_total", "Detected faults repaired"
        )
        self._m_hard_faults = m.counter(
            "serve_hard_faults_total", "Tiles declared hard-failed (remapped)"
        )
        self._m_scrub_ns = m.counter(
            "serve_scrub_ns_total", "Simulated ICAP time spent on scrubbing"
        )
        self._m_mttr = m.histogram(
            "serve_fault_mttr_ns",
            "Detection-to-repair time of corrected faults (sim ns)",
        )
        self._m_quarantined = m.counter(
            "serve_worker_quarantined_total", "Worker eject (quarantine) events"
        )
        self._m_readmitted = m.counter(
            "serve_worker_readmitted_total", "Workers returned to rotation"
        )
        self._m_requeued = m.counter(
            "serve_jobs_requeued_total",
            "Jobs pushed back to the queue after their fabric was quarantined",
        )
        self._m_health = m.gauge(
            "serve_worker_health",
            "Per-fabric health (0 healthy / 1 degraded / 2 quarantined)",
        )
        self._seen_quarantines: dict[str, int] = {}

    def _update_health_metrics(self) -> None:
        """Sync the health gauge and quarantine counter to the pool."""
        for member in self.pool:
            self._m_health.set(float(member.health.code), fabric=member.id)
            seen = self._seen_quarantines.get(member.id, 0)
            if member.quarantines > seen:
                self._m_quarantined.inc(
                    member.quarantines - seen, fabric=member.id
                )
                self._seen_quarantines[member.id] = member.quarantines

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    @property
    def draining(self) -> bool:
        return self._draining

    def stats(self) -> ServiceStats:
        return ServiceStats(
            submitted=int(self._m_submitted.total),
            completed=int(self._m_completed.total),
            rejected=int(self._m_rejected.total),
            queue_depth=len(self._queue),
            inflight=self._inflight,
        )

    async def start(self) -> None:
        """Spin up one worker loop per fabric."""
        if self._running:
            raise ServeError("service already started")
        self._queue_changed = asyncio.Condition()
        self._executor = ThreadPoolExecutor(
            max_workers=len(self.pool), thread_name_prefix="fabric"
        )
        self._running = True
        self._draining = False
        self._start_time = time.monotonic()
        self._loops = [
            asyncio.create_task(self._worker_loop(worker), name=worker.id)
            for worker in self.pool
        ]

    async def drain(self) -> None:
        """Stop admitting; wait until the queue and all fabrics are idle."""
        self._draining = True
        assert self._queue_changed is not None
        async with self._queue_changed:
            await self._queue_changed.wait_for(
                lambda: not self._queue and self._inflight == 0
            )

    async def shutdown(self, *, drain: bool = True) -> None:
        """Tear the service down (optionally draining first)."""
        if not self._running:
            return
        if drain:
            await self.drain()
        self._draining = True
        self._running = False
        for token in list(self._active_cancels):
            token.cancel()  # abort in-flight fabric work at the next epoch
        for task in self._loops:
            task.cancel()
        await asyncio.gather(*self._loops, return_exceptions=True)
        self._loops = []
        # fail whatever was still queued (non-drain shutdown)
        for pending in self._queue:
            if not pending.future.done():
                pending.future.set_result(
                    self._rejection(pending.request, "shutdown")
                )
        self._queue.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def __aenter__(self) -> "FabricJobService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.shutdown(drain=not any(exc_info))

    # ------------------------------------------------------------------
    # submission / admission control
    # ------------------------------------------------------------------

    def _rejection(self, request: JobRequest, reason: str) -> JobResult:
        self._m_rejected.inc(reason=reason)
        return JobResult(
            job_id=request.job_id,
            status=JobStatus.REJECTED,
            error=f"rejected: {reason}",
        )

    async def submit(
        self, request: JobRequest, *, wait: bool = False
    ) -> "asyncio.Future[JobResult]":
        """Queue a job; returns a future resolving to its JobResult.

        Admission control: a stopped or draining service rejects
        outright; a full queue rejects unless ``wait=True``, in which
        case the caller is backpressured until space frees up (or the
        service starts draining).
        """
        if not self._running or self._draining:
            reason = "draining" if self._draining else "stopped"
            self._m_rejected.inc(reason=reason)
            raise JobRejected(f"service is {reason}")
        assert self._queue_changed is not None
        async with self._queue_changed:
            if len(self._queue) >= self.max_queue:
                if not wait:
                    self._m_rejected.inc(reason="queue_full")
                    raise JobRejected(
                        f"queue full ({self.max_queue} jobs waiting)"
                    )
                await self._queue_changed.wait_for(
                    lambda: len(self._queue) < self.max_queue
                    or self._draining
                )
                if self._draining:
                    self._m_rejected.inc(reason="draining")
                    raise JobRejected("service is draining")
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            self._queue.append(_Pending(request, future))
            self._m_submitted.inc(kind=request.spec.kind.value)
            self._m_queue_depth.set(len(self._queue))
            self._queue_changed.notify_all()
        return future

    async def submit_and_wait(
        self, request: JobRequest, *, wait: bool = False
    ) -> JobResult:
        """Submit and await the terminal result.

        Admission rejections come back as ``REJECTED`` results rather
        than exceptions — convenient for fire-hose clients.
        """
        try:
            future = await self.submit(request, wait=wait)
        except JobRejected as exc:
            result = JobResult(
                job_id=request.job_id,
                status=JobStatus.REJECTED,
                error=str(exc),
            )
            return result
        return await future

    # ------------------------------------------------------------------
    # health operations
    # ------------------------------------------------------------------

    async def eject(self, worker_id: str, reason: str = "operator") -> None:
        """Take a fabric out of rotation (operator action).

        A job currently running on it finishes (or fails) normally; the
        worker loop then idles until :meth:`readmit`.
        """
        self.pool.worker(worker_id).eject(reason)
        self._update_health_metrics()

    async def readmit(self, worker_id: str) -> None:
        """Return a quarantined fabric to rotation (post-repair).

        The next job on it pays a cold start — its session was dropped
        at eject time, modelling the physical scrub/replacement.
        """
        self.pool.worker(worker_id).readmit()
        self._m_readmitted.inc(fabric=worker_id)
        self._update_health_metrics()
        if self._queue_changed is not None:
            async with self._queue_changed:
                self._queue_changed.notify_all()

    # ------------------------------------------------------------------
    # worker loops
    # ------------------------------------------------------------------

    async def _next_pending(self, worker) -> _Pending:
        assert self._queue_changed is not None
        async with self._queue_changed:
            # A quarantined worker idles here until readmit() notifies.
            await self._queue_changed.wait_for(
                lambda: bool(self._queue) and worker.available
            )
            index = self.policy.select(
                [p.request for p in self._queue], worker
            )
            pending = self._queue.pop(index)
            self._m_queue_depth.set(len(self._queue))
            self._inflight += 1
            self._m_inflight.set(self._inflight)
            self._queue_changed.notify_all()
        return pending

    async def _worker_loop(self, worker) -> None:
        try:
            while True:
                pending = await self._next_pending(worker)
                try:
                    result = await self._run_job(worker, pending)
                except asyncio.CancelledError:
                    if not pending.future.done():
                        pending.future.set_result(
                            self._rejection(pending.request, "shutdown")
                        )
                    raise
                except Exception as exc:  # defensive: never kill the loop
                    result = JobResult(
                        job_id=pending.request.job_id,
                        status=JobStatus.FAILED,
                        error=f"internal: {exc!r}",
                        worker_id=worker.id,
                    )
                # ``None`` means the job was requeued (this fabric was
                # quarantined mid-attempt); its future resolves when a
                # healthy fabric picks it up again.
                if result is not None and not pending.future.done():
                    pending.future.set_result(result)
                assert self._queue_changed is not None
                async with self._queue_changed:
                    self._inflight -= 1
                    self._m_inflight.set(self._inflight)
                    self._queue_changed.notify_all()
        except asyncio.CancelledError:
            pass

    async def _run_job(self, worker, pending: _Pending) -> JobResult | None:
        """Run one job on ``worker``; returns its terminal JobResult.

        Returns ``None`` when the worker was quarantined mid-job and the
        request was pushed back to the queue front for a healthy fabric
        (the caller must then *not* resolve the future).
        """
        request = pending.request
        kind = request.spec.kind.value
        dispatch_time = time.monotonic()
        queue_wait = dispatch_time - pending.enqueued_at
        self._m_wait.observe(queue_wait)

        loop = asyncio.get_running_loop()
        assert self._executor is not None
        attempts = 0
        backoff = self.retry_backoff_s
        last_error = ""
        timed_out = False
        while True:
            attempts += 1
            cancel = CancelToken()
            self._active_cancels.add(cancel)
            attempt_start = time.monotonic()
            run_future = loop.run_in_executor(
                self._executor, worker.execute, request, cancel
            )
            timed_out = False
            run: WorkerRun | None = None
            try:
                run = await asyncio.wait_for(
                    asyncio.shield(run_future), timeout=request.timeout_s
                )
            except asyncio.TimeoutError:
                timed_out = True
                cancel.cancel()
                try:
                    await run_future  # worker aborts at next epoch boundary
                except Exception:
                    pass
                last_error = (
                    f"attempt {attempts} exceeded {request.timeout_s}s"
                )
            except JobCancelled:
                timed_out = True
                last_error = f"attempt {attempts} cancelled"
            except Exception as exc:
                last_error = f"attempt {attempts}: {exc!r}"
            finally:
                self._active_cancels.discard(cancel)
            serve_wall = time.monotonic() - attempt_start

            if run is not None:
                self._m_serve.observe(serve_wall)
                self._account_success(worker, request, run)
                self._m_completed.inc(kind=kind, status=JobStatus.DONE.value)
                return JobResult(
                    job_id=request.job_id,
                    status=JobStatus.DONE,
                    output=run.stats.output,
                    worker_id=worker.id,
                    attempts=attempts,
                    warm=run.warm,
                    queue_wait_s=queue_wait,
                    serve_s=serve_wall,
                    sim_ns=run.stats.sim_ns,
                    reconfig_ns=run.stats.reconfig_ns,
                    reconfig_saved_ns=run.reconfig_saved_ns,
                )
            if not worker.available:
                # The fabric just quarantined itself (repeated failures
                # or an unrepairable fault).  Hand the job to a healthy
                # fabric if one exists; this attempt does not count
                # against the job's retry budget — the fabric failed,
                # not the job.
                self._update_health_metrics()
                if self.pool.available_workers():
                    assert self._queue_changed is not None
                    async with self._queue_changed:
                        self._queue.insert(0, pending)
                        self._m_requeued.inc(kind=kind)
                        self._m_queue_depth.set(len(self._queue))
                        self._queue_changed.notify_all()
                    return None
                # Every fabric is out of rotation: fail fast rather than
                # strand the job (and deadlock drain()).
                self._m_completed.inc(
                    kind=kind, status=JobStatus.FAILED.value
                )
                return JobResult(
                    job_id=request.job_id,
                    status=JobStatus.FAILED,
                    error=(
                        f"{last_error}; worker {worker.id} quarantined and "
                        "no healthy fabric remains"
                    ),
                    worker_id=worker.id,
                    attempts=attempts,
                    queue_wait_s=queue_wait,
                    serve_s=serve_wall,
                )
            if attempts > request.max_retries:
                status = JobStatus.TIMEOUT if timed_out else JobStatus.FAILED
                self._m_completed.inc(kind=kind, status=status.value)
                return JobResult(
                    job_id=request.job_id,
                    status=status,
                    error=last_error,
                    worker_id=worker.id,
                    attempts=attempts,
                    queue_wait_s=queue_wait,
                    serve_s=serve_wall,
                )
            self._m_retries.inc(kind=kind)
            await asyncio.sleep(min(backoff, self.retry_backoff_cap_s))
            backoff *= 2

    def _account_success(
        self, worker, request: JobRequest, run: WorkerRun
    ) -> None:
        kind = request.spec.kind.value
        self._m_sim_ns.inc(run.stats.sim_ns, kind=kind)
        self._m_reconfig_ns.inc(run.stats.reconfig_ns, kind=kind)
        self._m_saved_ns.inc(run.reconfig_saved_ns, kind=kind)
        if run.warm:
            self._m_warm.inc(kind=kind)
        else:
            self._m_cold.inc(kind=kind)
        self._m_fabric_busy.inc(run.stats.sim_ns, fabric=worker.id)
        self._m_fabric_jobs.inc(fabric=worker.id)
        if run.stats.faults_detected:
            self._m_faults_detected.inc(run.stats.faults_detected, kind=kind)
        if run.stats.faults_corrected:
            self._m_faults_corrected.inc(run.stats.faults_corrected, kind=kind)
            self._m_mttr.observe(run.stats.mttr_ns)
        if run.stats.hard_faults:
            self._m_hard_faults.inc(run.stats.hard_faults, kind=kind)
        if run.stats.scrub_ns:
            self._m_scrub_ns.inc(run.stats.scrub_ns, kind=kind)
        total_busy = self.pool.total_busy_ns
        for member in self.pool:
            self._m_fabric_util.set(
                member.busy_sim_ns / total_busy if total_busy else 0.0,
                fabric=member.id,
            )
        self._update_health_metrics()
