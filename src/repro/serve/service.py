"""The asyncio fabric job service.

Wiring: ``submit()`` performs admission control (bounded queue, drain
state) and parks the request in a single shared queue; one asyncio
worker loop per pool fabric pulls its next job through the scheduling
policy and executes it on a thread-pool (the fabric simulator is
synchronous CPU work), with per-attempt wall-clock timeouts, bounded
exponential retry backoff, and cooperative cancellation at epoch
boundaries.  ``drain()`` stops admission and waits for the backlog to
empty; ``shutdown()`` drains (optionally) and tears the loops down.

Every lifecycle edge feeds the metrics registry::

    serve_jobs_submitted_total{kind}        serve_queue_depth
    serve_jobs_completed_total{kind,status} serve_jobs_rejected_total{reason}
    serve_job_retries_total{kind}           serve_jobs_inflight
    serve_queue_wait_seconds   (histogram)  serve_job_serve_seconds (histogram)
    serve_job_sim_ns_total{kind}            serve_reconfig_ns_total{kind}
    serve_reconfig_saved_ns_total{kind}     serve_warm_jobs_total{kind}
    serve_cold_starts_total{kind}           serve_fabric_busy_ns_total{fabric}
    serve_fabric_jobs_total{fabric}         serve_fabric_utilization{fabric}
    serve_faults_detected_total{kind}       serve_faults_corrected_total{kind}
    serve_hard_faults_total{kind}           serve_scrub_ns_total{kind}
    serve_fault_mttr_ns        (histogram)  serve_worker_health{fabric}
    serve_worker_quarantined_total{fabric}  serve_worker_readmitted_total{fabric}
    serve_jobs_requeued_total{kind}         serve_journal_records_total{type}
    serve_journal_bytes_total               serve_journal_fsyncs_total
    serve_recovered_jobs_total{outcome}     serve_queue_delay_ewma_seconds
    serve_shed_probability                  serve_breaker_state{fabric}
    serve_breaker_transitions_total{fabric} serve_probe_jobs_total{fabric}

``serve_reconfig_saved_ns_total`` is the serving-level version of the
paper's amortization claim: reconfiguration time that Eq. 1 would have
charged cold but that residency-aware placement avoided.
"""

from __future__ import annotations

import asyncio
import random
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from typing import Callable

from repro.errors import JobCancelled, JobRejected, ServeError
from repro.serve.breaker import CircuitBreaker
from repro.serve.jobs import JobRequest, JobResult, JobStatus, RejectReason
from repro.serve.metrics import MetricsRegistry
from repro.serve.pool import FabricPool, WorkerRun
from repro.serve.scheduler import AffinityPolicy, SchedulingPolicy
from repro.serve.sessions import CancelToken, SessionFactory, default_session_factory
from repro.serve.shedding import LoadShedder, jittered_retry_after

__all__ = ["FabricJobService", "ServiceStats"]


@dataclass
class _Pending:
    request: JobRequest
    future: asyncio.Future
    enqueued_at: float = field(default_factory=time.monotonic)


@dataclass
class ServiceStats:
    """Cheap point-in-time summary (the demo prints this)."""

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    queue_depth: int = 0
    inflight: int = 0


class FabricJobService:
    """Multi-tenant job service over a pool of simulated fabrics.

    Parameters
    ----------
    pool_size:
        Number of fabrics (and executor threads — one job per fabric).
    policy:
        Scheduling policy; defaults to reconfiguration-affinity.
    max_queue:
        Admission-control bound; a submit beyond it is rejected
        immediately (callers that prefer backpressure to rejection pass
        ``wait=True`` to :meth:`submit`).
    default_timeout_s / default_max_retries:
        Fallbacks for requests that leave the QoS fields at zero-ish.
    retry_backoff_s / retry_backoff_cap_s:
        First retry delay and its exponential cap.
    journal:
        Optional write-ahead :class:`~repro.serve.durability.JobJournal`.
        When present, every lifecycle edge is journaled *before* it is
        acknowledged, and :meth:`start` replays the journal: finished
        jobs are served from their recorded results (never re-executed),
        unfinished jobs are requeued — FFT jobs with a verified epoch
        checkpoint resume mid-transform.
    shedder:
        Optional :class:`~repro.serve.shedding.LoadShedder`; when
        present, ``submit`` sheds probabilistically once the queue-delay
        EWMA exceeds its target (rejections carry ``retry_after_s``).
    breaker_factory:
        Optional per-fabric :class:`~repro.serve.breaker.CircuitBreaker`
        factory; tripped breakers sideline a fabric for a cooldown
        without the operator-level quarantine cycle.
    checkpoint_every_slices:
        With a journal: write an EPOCH_PROGRESS record (and a fabric
        checkpoint for resumable sessions) every this-many epoch slices
        (0 disables epoch journaling — only submit/dispatch/done edges
        are durable).
    handoff_retry_after_s:
        Back-off hint stamped on the ``REJECTED(handoff)`` results that
        :meth:`handoff` resolves surrendered futures with — a co-located
        waiter should wait this long before following the job to its
        new shard (which needs a moment to journal/adopt the backlog).
    """

    def __init__(
        self,
        pool_size: int = 2,
        *,
        policy: SchedulingPolicy | None = None,
        max_queue: int = 64,
        session_factory: SessionFactory = default_session_factory,
        metrics: MetricsRegistry | None = None,
        retry_backoff_s: float = 0.05,
        retry_backoff_cap_s: float = 1.0,
        journal=None,
        shedder: LoadShedder | None = None,
        breaker_factory: Callable[[], CircuitBreaker] | None = None,
        checkpoint_every_slices: int = 0,
        breaker_poll_s: float = 0.05,
        handoff_retry_after_s: float = 0.25,
        retry_jitter: float = 0.5,
    ) -> None:
        if max_queue < 1:
            raise ServeError(f"max_queue must be >= 1, got {max_queue}")
        if checkpoint_every_slices < 0:
            raise ServeError(
                f"checkpoint_every_slices must be >= 0, "
                f"got {checkpoint_every_slices}"
            )
        self.pool = FabricPool(
            pool_size, session_factory, breaker_factory=breaker_factory
        )
        self.policy = policy if policy is not None else AffinityPolicy()
        self.max_queue = max_queue
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.retry_backoff_s = retry_backoff_s
        self.retry_backoff_cap_s = retry_backoff_cap_s
        self.journal = journal
        self.shedder = shedder
        self.checkpoint_every_slices = checkpoint_every_slices
        self.breaker_poll_s = breaker_poll_s
        self.handoff_retry_after_s = handoff_retry_after_s
        if retry_jitter < 0:
            raise ServeError(f"retry_jitter must be >= 0, got {retry_jitter}")
        self.retry_jitter = retry_jitter
        # Separate RNG for back-off hints: clients rejected in the same
        # burst (handoff, breaker-open) must not herd back in lock-step.
        self._retry_rng = random.Random(0x5EED_1E77)
        #: DONE results replayed from the journal at start (result dedup:
        #: resubmitting a finished job id returns this, never re-executes).
        self.recovered_results: dict[str, JobResult] = {}
        #: Futures of jobs the journal requeued at start (job_id -> future).
        self.recovered_futures: dict[str, "asyncio.Future[JobResult]"] = {}
        self._queue: list[_Pending] = []
        self._queue_changed: asyncio.Condition | None = None
        self._loops: list[asyncio.Task] = []
        self._executor: ThreadPoolExecutor | None = None
        self._running = False
        self._draining = False
        self._handing_off = False
        self._inflight = 0
        self._active_cancels: set[CancelToken] = set()
        self._register_metrics()

    # ------------------------------------------------------------------
    # metrics plumbing
    # ------------------------------------------------------------------

    def _register_metrics(self) -> None:
        m = self.metrics
        self._m_submitted = m.counter(
            "serve_jobs_submitted_total", "Jobs accepted into the queue"
        )
        self._m_completed = m.counter(
            "serve_jobs_completed_total", "Jobs finished, by terminal status"
        )
        self._m_rejected = m.counter(
            "serve_jobs_rejected_total", "Jobs turned away by admission control"
        )
        self._m_retries = m.counter(
            "serve_job_retries_total", "Retry attempts scheduled"
        )
        self._m_expired = m.counter(
            "serve_jobs_expired_total",
            "Jobs failed because their end-to-end deadline lapsed",
        )
        self._m_queue_depth = m.gauge(
            "serve_queue_depth", "Jobs waiting for a fabric"
        )
        self._m_inflight = m.gauge(
            "serve_jobs_inflight", "Jobs currently executing"
        )
        self._m_wait = m.histogram(
            "serve_queue_wait_seconds", "Wall time from submit to dispatch"
        )
        self._m_serve = m.histogram(
            "serve_job_serve_seconds", "Wall time executing (final attempt)"
        )
        self._m_sim_ns = m.counter(
            "serve_job_sim_ns_total", "Simulated fabric time consumed"
        )
        self._m_reconfig_ns = m.counter(
            "serve_reconfig_ns_total", "Simulated reconfiguration time (Eq. 1 B)"
        )
        self._m_saved_ns = m.counter(
            "serve_reconfig_saved_ns_total",
            "Reconfiguration time avoided by warm placement vs cold baseline",
        )
        self._m_warm = m.counter(
            "serve_warm_jobs_total", "Jobs served on an already-warm fabric"
        )
        self._m_cold = m.counter(
            "serve_cold_starts_total", "Jobs that paid a cold configuration"
        )
        self._m_fabric_busy = m.counter(
            "serve_fabric_busy_ns_total", "Simulated busy time per fabric"
        )
        self._m_fabric_jobs = m.counter(
            "serve_fabric_jobs_total", "Jobs completed per fabric"
        )
        self._m_fabric_util = m.gauge(
            "serve_fabric_utilization",
            "Busy share of each fabric since service start (sim time)",
        )
        # -- fault tolerance -------------------------------------------
        self._m_faults_detected = m.counter(
            "serve_faults_detected_total", "SEUs detected by scrubbing"
        )
        self._m_faults_corrected = m.counter(
            "serve_faults_corrected_total", "Detected faults repaired"
        )
        self._m_hard_faults = m.counter(
            "serve_hard_faults_total", "Tiles declared hard-failed (remapped)"
        )
        self._m_scrub_ns = m.counter(
            "serve_scrub_ns_total", "Simulated ICAP time spent on scrubbing"
        )
        self._m_mttr = m.histogram(
            "serve_fault_mttr_ns",
            "Detection-to-repair time of corrected faults (sim ns)",
        )
        self._m_quarantined = m.counter(
            "serve_worker_quarantined_total", "Worker eject (quarantine) events"
        )
        self._m_readmitted = m.counter(
            "serve_worker_readmitted_total", "Workers returned to rotation"
        )
        self._m_requeued = m.counter(
            "serve_jobs_requeued_total",
            "Jobs pushed back to the queue after their fabric was quarantined",
        )
        self._m_health = m.gauge(
            "serve_worker_health",
            "Per-fabric health (0 healthy / 1 degraded / 2 quarantined)",
        )
        # -- durability & overload resilience --------------------------
        self._m_journal_records = m.counter(
            "serve_journal_records_total", "Journal records appended, by type"
        )
        self._m_journal_bytes = m.counter(
            "serve_journal_bytes_total", "Framed journal bytes written"
        )
        self._m_journal_fsyncs = m.counter(
            "serve_journal_fsyncs_total", "Journal fsync calls issued"
        )
        self._m_recovered = m.counter(
            "serve_recovered_jobs_total",
            "Jobs reconstructed from the journal at start, by outcome",
        )
        self._m_queue_delay_ewma = m.gauge(
            "serve_queue_delay_ewma_seconds",
            "Smoothed submit-to-dispatch delay the shedder tracks",
        )
        self._m_shed_probability = m.gauge(
            "serve_shed_probability",
            "Current probability an admission attempt is shed",
        )
        self._m_breaker_state = m.gauge(
            "serve_breaker_state",
            "Per-fabric breaker state (0 closed / 1 half-open / 2 open)",
        )
        self._m_breaker_transitions = m.counter(
            "serve_breaker_transitions_total",
            "Breaker open+close transitions per fabric",
        )
        self._m_probes = m.counter(
            "serve_probe_jobs_total", "Half-open probe jobs per fabric"
        )
        self._seen_quarantines: dict[str, int] = {}
        self._seen_breaker: dict[str, tuple[int, int]] = {}
        self._seen_journal = (0, 0)  # (bytes_written, fsyncs)

    def _update_health_metrics(self) -> None:
        """Sync the health gauge and quarantine counter to the pool."""
        for member in self.pool:
            self._m_health.set(float(member.health.code), fabric=member.id)
            seen = self._seen_quarantines.get(member.id, 0)
            if member.quarantines > seen:
                self._m_quarantined.inc(
                    member.quarantines - seen, fabric=member.id
                )
                self._seen_quarantines[member.id] = member.quarantines
            if member.breaker is not None:
                breaker = member.breaker
                self._m_breaker_state.set(
                    float(breaker.state.code), fabric=member.id
                )
                transitions = breaker.opens + breaker.closes
                probes = breaker.probes
                seen_t, seen_p = self._seen_breaker.get(member.id, (0, 0))
                if transitions > seen_t:
                    self._m_breaker_transitions.inc(
                        transitions - seen_t, fabric=member.id
                    )
                if probes > seen_p:
                    self._m_probes.inc(probes - seen_p, fabric=member.id)
                self._seen_breaker[member.id] = (transitions, probes)

    def _journal_append(self, record_type: str, append) -> None:
        """Append one journal record and mirror the journal's counters."""
        if self.journal is None:
            return
        append()
        self._m_journal_records.inc(type=record_type)
        seen_bytes, seen_fsyncs = self._seen_journal
        if self.journal.bytes_written > seen_bytes:
            self._m_journal_bytes.inc(self.journal.bytes_written - seen_bytes)
        if self.journal.fsyncs > seen_fsyncs:
            self._m_journal_fsyncs.inc(self.journal.fsyncs - seen_fsyncs)
        self._seen_journal = (self.journal.bytes_written, self.journal.fsyncs)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    @property
    def draining(self) -> bool:
        return self._draining

    def stats(self) -> ServiceStats:
        return ServiceStats(
            submitted=int(self._m_submitted.total),
            completed=int(self._m_completed.total),
            rejected=int(self._m_rejected.total),
            queue_depth=len(self._queue),
            inflight=self._inflight,
        )

    async def start(self) -> None:
        """Spin up one worker loop per fabric.

        With a journal: replays it first, so recovered jobs are already
        queued (oldest first) before any fresh submit lands.
        """
        if self._running:
            raise ServeError("service already started")
        self._queue_changed = asyncio.Condition()
        self._executor = ThreadPoolExecutor(
            max_workers=len(self.pool), thread_name_prefix="fabric"
        )
        self._running = True
        self._draining = False
        self._start_time = time.monotonic()
        if self.journal is not None:
            self._recover()
        self._loops = [
            asyncio.create_task(self._worker_loop(worker), name=worker.id)
            for worker in self.pool
        ]

    def _recover(self) -> None:
        """Replay the journal: dedup finished jobs, requeue the rest."""
        from repro.serve.durability.recovery import replay

        records, _report = self.journal.scan()
        state = replay(records)
        loop = asyncio.get_running_loop()
        for job in state.finished_jobs():
            done = job.done or {}
            try:
                status = JobStatus(done.get("status", "done"))
            except ValueError:
                status = JobStatus.FAILED
            self.recovered_results[job.job_id] = JobResult(
                job_id=job.job_id,
                status=status,
                error=str(done.get("error", "")),
                worker_id=str(done.get("worker", "")),
                attempts=int(done.get("attempts", 0)),
                warm=bool(done.get("warm", False)),
                sim_ns=float(done.get("sim_ns", 0.0)),
                reconfig_ns=float(done.get("reconfig_ns", 0.0)),
                recovered=True,
            )
            self._m_recovered.inc(outcome="finished")
        for request in state.recovered_requests():
            future: asyncio.Future = loop.create_future()
            self._queue.append(_Pending(request, future))
            self.recovered_futures[request.job_id] = future
            self._m_recovered.inc(
                outcome="resumed" if request.resume_slice else "requeued"
            )
            self._m_submitted.inc(kind=request.spec.kind.value)
        self._m_queue_depth.set(len(self._queue))

    async def drain(self) -> None:
        """Stop admitting; wait until the queue and all fabrics are idle."""
        self._draining = True
        assert self._queue_changed is not None
        async with self._queue_changed:
            await self._queue_changed.wait_for(
                lambda: not self._queue and self._inflight == 0
            )

    async def handoff(self) -> list[JobRequest]:
        """Drain-for-migration: surrender the queued backlog instead of
        executing it.

        Stops admission and job pickup, waits for in-flight work to
        finish (a running job is never interrupted — its fabric owns
        it), then returns every still-queued request for a successor
        service/shard to adopt.  For each surrendered job, a MOVED
        record is journaled first (so this journal's replay stops
        requeueing it — the successor's SUBMITTED record owns it now)
        and its local future resolves to a ``REJECTED(handoff)`` result
        carrying the :attr:`handoff_retry_after_s` back-off hint,
        telling a co-located waiter when to follow the job to its new
        home.

        After handoff the service is drained (empty queue, no inflight)
        and still running; call :meth:`shutdown` to tear it down.
        """
        if not self._running:
            raise ServeError("handoff on a stopped service")
        self._draining = True
        self._handing_off = True
        assert self._queue_changed is not None
        async with self._queue_changed:
            await self._queue_changed.wait_for(lambda: self._inflight == 0)
            surrendered: list[JobRequest] = []
            for pending in self._queue:
                self._journal_append(
                    "MOVED",
                    lambda: self.journal.moved(
                        pending.request.job_id, {"reason": "handoff"}
                    ),
                )
                if not pending.future.done():
                    pending.future.set_result(
                        self._rejection(
                            pending.request,
                            RejectReason.HANDOFF,
                            retry_after_s=jittered_retry_after(
                                self.handoff_retry_after_s,
                                self._retry_rng,
                                self.retry_jitter,
                            ),
                        )
                    )
                surrendered.append(pending.request)
            self._queue.clear()
            self._m_queue_depth.set(0)
            self._queue_changed.notify_all()
        return surrendered

    async def shutdown(self, *, drain: bool = True) -> None:
        """Tear the service down (optionally draining first)."""
        if not self._running:
            return
        if drain:
            await self.drain()
        self._draining = True
        self._running = False
        for token in list(self._active_cancels):
            token.cancel()  # abort in-flight fabric work at the next epoch
        for task in self._loops:
            task.cancel()
        await asyncio.gather(*self._loops, return_exceptions=True)
        self._loops = []
        # fail whatever was still queued (non-drain shutdown)
        for pending in self._queue:
            if not pending.future.done():
                pending.future.set_result(
                    self._rejection(pending.request, RejectReason.SHUTDOWN)
                )
        self._queue.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def __aenter__(self) -> "FabricJobService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.shutdown(drain=not any(exc_info))

    # ------------------------------------------------------------------
    # submission / admission control
    # ------------------------------------------------------------------

    def _rejection(
        self,
        request: JobRequest,
        reason: RejectReason,
        retry_after_s: float = 0.0,
    ) -> JobResult:
        self._m_rejected.inc(reason=reason.value)
        return JobResult(
            job_id=request.job_id,
            status=JobStatus.REJECTED,
            error=f"rejected: {reason.value}",
            retry_after_s=retry_after_s,
        )

    def _reject(
        self,
        reason: RejectReason,
        message: str,
        retry_after_s: float = 0.0,
    ) -> None:
        """Count and raise one admission rejection (reason is the closed
        :class:`RejectReason` vocabulary, never free-form)."""
        self._m_rejected.inc(reason=reason.value)
        raise JobRejected(
            message, reason=reason.value, retry_after_s=retry_after_s
        )

    async def submit(
        self, request: JobRequest, *, wait: bool = False
    ) -> "asyncio.Future[JobResult]":
        """Queue a job; returns a future resolving to its JobResult.

        Admission control, in order: a stopped or draining service
        rejects outright; the load shedder (when configured) rejects
        probabilistically once queue delay runs past its target (the
        raised :class:`~repro.errors.JobRejected` carries a
        ``retry_after_s`` back-off hint); a full queue rejects unless
        ``wait=True``, in which case the caller is backpressured until
        space frees up (or the service starts draining).

        With a journal, the SUBMITTED record is on disk *before* the
        future is returned — that is the write-ahead acknowledgment
        contract — and resubmitting the job id of an already-finished
        journaled job returns its recorded (deduplicated) result
        immediately, without re-execution.
        """
        if not self._running or self._draining:
            reason = (
                RejectReason.DRAINING if self._draining else RejectReason.STOPPED
            )
            self._reject(reason, f"service is {reason.value}")
        loop = asyncio.get_running_loop()
        if request.job_id in self.recovered_results:
            future: asyncio.Future = loop.create_future()
            future.set_result(self.recovered_results[request.job_id])
            return future
        if request.job_id in self.recovered_futures:
            return self.recovered_futures[request.job_id]
        if request.expired(time.monotonic()):
            # Dead on arrival: admitting it would only spend queue space
            # and journal bytes on an answer nobody is waiting for.
            self._reject(
                RejectReason.EXPIRED,
                f"deadline {request.deadline_s:.3f} already lapsed at submit",
            )
        if self.shedder is not None:
            decision = self.shedder.decide(len(self._queue))
            self._m_shed_probability.set(decision.shed_probability)
            if not decision.admit:
                reason = (
                    RejectReason.ADMISSION_CAP
                    if decision.reason == "admission_cap"
                    else RejectReason.SHED
                )
                self._reject(
                    reason,
                    f"overloaded (queue delay EWMA "
                    f"{self.shedder.ewma_s:.3f}s, shed p="
                    f"{decision.shed_probability:.2f})",
                    retry_after_s=decision.retry_after_s,
                )
        assert self._queue_changed is not None
        async with self._queue_changed:
            if len(self._queue) >= self.max_queue:
                if not wait:
                    self._reject(
                        RejectReason.QUEUE_FULL,
                        f"queue full ({self.max_queue} jobs waiting)",
                    )
                await self._queue_changed.wait_for(
                    lambda: len(self._queue) < self.max_queue
                    or self._draining
                )
                if self._draining:
                    self._reject(RejectReason.DRAINING, "service is draining")
            self._journal_append(
                "SUBMITTED", lambda: self._journal_submitted(request)
            )
            future = loop.create_future()
            self._queue.append(_Pending(request, future))
            self._m_submitted.inc(kind=request.spec.kind.value)
            self._m_queue_depth.set(len(self._queue))
            self._queue_changed.notify_all()
        return future

    def _journal_submitted(self, request: JobRequest) -> None:
        from repro.serve.durability.records import encode_request

        self.journal.submitted(request.job_id, encode_request(request))

    async def submit_and_wait(
        self, request: JobRequest, *, wait: bool = False
    ) -> JobResult:
        """Submit and await the terminal result.

        Admission rejections come back as structured ``REJECTED``
        results (``error="rejected: <reason>"`` with the shedder's
        ``retry_after_s`` hint) rather than exceptions — convenient for
        fire-hose clients.
        """
        try:
            future = await self.submit(request, wait=wait)
        except JobRejected as exc:
            return JobResult(
                job_id=request.job_id,
                status=JobStatus.REJECTED,
                error=(
                    f"rejected: {exc.reason}" if exc.reason else str(exc)
                ),
                retry_after_s=exc.retry_after_s,
            )
        return await future

    # ------------------------------------------------------------------
    # health operations
    # ------------------------------------------------------------------

    async def eject(self, worker_id: str, reason: str = "operator") -> None:
        """Take a fabric out of rotation (operator action).

        A job currently running on it finishes (or fails) normally; the
        worker loop then idles until :meth:`readmit`.
        """
        self.pool.worker(worker_id).eject(reason)
        self._update_health_metrics()

    async def readmit(self, worker_id: str) -> None:
        """Return a quarantined fabric to rotation (post-repair).

        The next job on it pays a cold start — its session was dropped
        at eject time, modelling the physical scrub/replacement.
        """
        self.pool.worker(worker_id).readmit()
        self._m_readmitted.inc(fabric=worker_id)
        self._update_health_metrics()
        if self._queue_changed is not None:
            async with self._queue_changed:
                self._queue_changed.notify_all()

    # ------------------------------------------------------------------
    # worker loops
    # ------------------------------------------------------------------

    async def _next_pending(self, worker) -> _Pending:
        assert self._queue_changed is not None
        async with self._queue_changed:
            # A quarantined worker idles here until readmit() notifies.
            # A worker with a breaker must *poll*: an open breaker
            # re-admits by time alone (cooldown elapse), which produces
            # no condition notification.
            # A handoff in progress freezes pickup entirely: the backlog
            # is about to be surrendered, not executed.
            if worker.breaker is None:
                await self._queue_changed.wait_for(
                    lambda: bool(self._queue)
                    and worker.available
                    and not self._handing_off
                )
            else:
                while self._handing_off or not (
                    self._queue and worker.available
                ):
                    try:
                        await asyncio.wait_for(
                            self._queue_changed.wait(),
                            timeout=self.breaker_poll_s,
                        )
                    except asyncio.TimeoutError:
                        pass
            index = self.policy.select(
                [p.request for p in self._queue], worker
            )
            pending = self._queue.pop(index)
            self._m_queue_depth.set(len(self._queue))
            self._inflight += 1
            self._m_inflight.set(self._inflight)
            self._queue_changed.notify_all()
        return pending

    async def _worker_loop(self, worker) -> None:
        try:
            while True:
                pending = await self._next_pending(worker)
                try:
                    result = await self._run_job(worker, pending)
                except asyncio.CancelledError:
                    if not pending.future.done():
                        pending.future.set_result(
                            self._rejection(
                                pending.request, RejectReason.SHUTDOWN
                            )
                        )
                    raise
                except Exception as exc:  # defensive: never kill the loop
                    result = JobResult(
                        job_id=pending.request.job_id,
                        status=JobStatus.FAILED,
                        error=f"internal: {exc!r}",
                        worker_id=worker.id,
                    )
                # ``None`` means the job was requeued (this fabric was
                # quarantined mid-attempt); its future resolves when a
                # healthy fabric picks it up again.
                if result is not None and not pending.future.done():
                    pending.future.set_result(result)
                assert self._queue_changed is not None
                async with self._queue_changed:
                    self._inflight -= 1
                    self._m_inflight.set(self._inflight)
                    self._queue_changed.notify_all()
        except asyncio.CancelledError:
            pass

    async def _run_job(self, worker, pending: _Pending) -> JobResult | None:
        """Run one job on ``worker``; returns its terminal JobResult.

        Returns ``None`` when the worker was quarantined mid-job and the
        request was pushed back to the queue front for a healthy fabric
        (the caller must then *not* resolve the future).
        """
        request = pending.request
        kind = request.spec.kind.value
        dispatch_time = time.monotonic()
        queue_wait = dispatch_time - pending.enqueued_at
        if request.expired(dispatch_time):
            # The deadline lapsed while the job sat in the queue —
            # dispatching now would burn a fabric on a thrown-away
            # answer.  Journaled terminally so replay never revives it.
            return self._finish_expired(
                request, "in queue", queue_wait=queue_wait
            )
        self._m_wait.observe(queue_wait)
        if self.shedder is not None:
            self.shedder.observe(queue_wait)
            self._m_queue_delay_ewma.set(self.shedder.ewma_s)
            self._m_shed_probability.set(self.shedder.shed_probability())

        progress = self._progress_hook(request)
        loop = asyncio.get_running_loop()
        assert self._executor is not None
        attempts = 0
        backoff = self.retry_backoff_s
        last_error = ""
        timed_out = False
        while True:
            attempts += 1
            self._journal_append(
                "DISPATCHED",
                lambda: self.journal.dispatched(
                    request.job_id,
                    {"worker": worker.id, "attempt": attempts},
                ),
            )
            cancel = CancelToken()
            self._active_cancels.add(cancel)
            attempt_start = time.monotonic()
            attempt_timeout = request.timeout_s
            if request.deadline_s > 0:
                # An attempt never gets more wall time than the deadline
                # has left — the job is cancelled at the next epoch edge
                # instead of overshooting by a full timeout_s.
                attempt_timeout = min(
                    attempt_timeout,
                    max(request.deadline_s - attempt_start, 0.001),
                )
            run_future = loop.run_in_executor(
                self._executor, worker.execute, request, cancel, progress
            )
            timed_out = False
            run: WorkerRun | None = None
            try:
                run = await asyncio.wait_for(
                    asyncio.shield(run_future), timeout=attempt_timeout
                )
            except asyncio.TimeoutError:
                timed_out = True
                cancel.cancel()
                try:
                    await run_future  # worker aborts at next epoch boundary
                except Exception:
                    pass
                last_error = (
                    f"attempt {attempts} exceeded {attempt_timeout:.3g}s"
                )
            except JobCancelled:
                timed_out = True
                last_error = f"attempt {attempts} cancelled"
            except Exception as exc:
                last_error = f"attempt {attempts}: {exc!r}"
            finally:
                self._active_cancels.discard(cancel)
            serve_wall = time.monotonic() - attempt_start

            if run is not None:
                self._m_serve.observe(serve_wall)
                self._account_success(worker, request, run)
                self._m_completed.inc(kind=kind, status=JobStatus.DONE.value)
                self._journal_append(
                    "DONE",
                    lambda: self.journal.done(
                        request.job_id,
                        {
                            "status": JobStatus.DONE.value,
                            "worker": worker.id,
                            "attempts": attempts,
                            "warm": run.warm,
                            "sim_ns": run.stats.sim_ns,
                            "reconfig_ns": run.stats.reconfig_ns,
                        },
                    ),
                )
                return JobResult(
                    job_id=request.job_id,
                    status=JobStatus.DONE,
                    output=run.stats.output,
                    worker_id=worker.id,
                    attempts=attempts,
                    warm=run.warm,
                    queue_wait_s=queue_wait,
                    serve_s=serve_wall,
                    sim_ns=run.stats.sim_ns,
                    reconfig_ns=run.stats.reconfig_ns,
                    reconfig_saved_ns=run.reconfig_saved_ns,
                    resumed_slices=run.resumed_slices,
                )
            if not worker.available:
                # The fabric just took itself out of rotation: either it
                # quarantined (repeated failures / unrepairable fault) or
                # its circuit breaker tripped open.  Hand the job to
                # another fabric when the pool can still recover.  A
                # quarantine-requeue is free (the fabric failed, not the
                # job); a breaker-requeue charges the attempts already
                # made against the retry budget, so a poison job cannot
                # ping-pong between fabrics forever.
                self._update_health_metrics()
                if request.expired(time.monotonic()):
                    # Requeueing an expired job just moves the waste to
                    # the next fabric; fail it terminally here.
                    return self._finish_expired(
                        request,
                        "at breaker requeue",
                        worker_id=worker.id,
                        attempts=attempts,
                        queue_wait=queue_wait,
                    )
                breaker_only = worker.breaker_open
                budget_left = request.max_retries - attempts
                if self.pool.recoverable() and (
                    not breaker_only or budget_left >= 0
                ):
                    if breaker_only:
                        request.max_retries = budget_left
                        self._journal_append(
                            "RETRY",
                            lambda: self.journal.retry(
                                request.job_id,
                                {
                                    "attempt": attempts,
                                    "error": last_error,
                                    "breaker": worker.id,
                                },
                            ),
                        )
                    assert self._queue_changed is not None
                    async with self._queue_changed:
                        self._queue.insert(0, pending)
                        self._m_requeued.inc(kind=kind)
                        self._m_queue_depth.set(len(self._queue))
                        self._queue_changed.notify_all()
                    return None
                # Every fabric is out of rotation for good (or the
                # breaker-requeue budget is spent): fail fast rather
                # than strand the job (and deadlock drain()).
                if breaker_only:
                    status = (
                        JobStatus.TIMEOUT if timed_out else JobStatus.FAILED
                    )
                    error = (
                        f"{last_error}; worker {worker.id} breaker open "
                        "and retry budget exhausted"
                    )
                else:
                    status = JobStatus.FAILED
                    error = (
                        f"{last_error}; worker {worker.id} quarantined and "
                        "no healthy fabric remains"
                    )
                self._m_completed.inc(kind=kind, status=status.value)
                self._journal_done_failure(
                    request, status, error, worker.id, attempts
                )
                # Breaker-open failures carry a jittered back-off hint
                # sized to the breaker's cooldown: every client burned by
                # the same open breaker would otherwise retry in unison
                # the moment it half-opens.
                retry_hint = 0.0
                if breaker_only and worker.breaker is not None:
                    retry_hint = jittered_retry_after(
                        worker.breaker.base_cooldown_s,
                        self._retry_rng,
                        self.retry_jitter,
                    )
                return JobResult(
                    job_id=request.job_id,
                    status=status,
                    error=error,
                    worker_id=worker.id,
                    attempts=attempts,
                    queue_wait_s=queue_wait,
                    serve_s=serve_wall,
                    retry_after_s=retry_hint,
                )
            if attempts > request.max_retries:
                status = JobStatus.TIMEOUT if timed_out else JobStatus.FAILED
                self._m_completed.inc(kind=kind, status=status.value)
                self._journal_done_failure(
                    request, status, last_error, worker.id, attempts
                )
                return JobResult(
                    job_id=request.job_id,
                    status=status,
                    error=last_error,
                    worker_id=worker.id,
                    attempts=attempts,
                    queue_wait_s=queue_wait,
                    serve_s=serve_wall,
                )
            if request.expired(time.monotonic()):
                # No point scheduling another attempt the caller will
                # never see; ``last_error`` keeps the real failure.
                return self._finish_expired(
                    request,
                    f"between retries ({last_error})",
                    worker_id=worker.id,
                    attempts=attempts,
                    queue_wait=queue_wait,
                )
            self._m_retries.inc(kind=kind)
            self._journal_append(
                "RETRY",
                lambda: self.journal.retry(
                    request.job_id,
                    {"attempt": attempts, "error": last_error},
                ),
            )
            await asyncio.sleep(min(backoff, self.retry_backoff_cap_s))
            backoff *= 2

    def _finish_expired(
        self,
        request: JobRequest,
        where: str,
        *,
        worker_id: str = "",
        attempts: int = 0,
        queue_wait: float = 0.0,
    ) -> JobResult:
        """Terminally fail a job whose end-to-end deadline lapsed.

        Journaled as ``DONE(timeout)`` so replay treats it exactly like
        any other finished job — an expired job is never requeued,
        re-dispatched or migrated.
        """
        error = f"deadline expired {where}"
        kind = request.spec.kind.value
        self._m_expired.inc(kind=kind)
        self._m_completed.inc(kind=kind, status=JobStatus.TIMEOUT.value)
        self._journal_done_failure(
            request, JobStatus.TIMEOUT, error, worker_id, attempts
        )
        return JobResult(
            job_id=request.job_id,
            status=JobStatus.TIMEOUT,
            error=error,
            worker_id=worker_id,
            attempts=attempts,
            queue_wait_s=queue_wait,
        )

    def _journal_done_failure(
        self,
        request: JobRequest,
        status: JobStatus,
        error: str,
        worker_id: str,
        attempts: int,
    ) -> None:
        self._journal_append(
            "DONE",
            lambda: self.journal.done(
                request.job_id,
                {
                    "status": status.value,
                    "error": error,
                    "worker": worker_id,
                    "attempts": attempts,
                },
            ),
        )

    def _progress_hook(self, request: JobRequest):
        """Build the per-slice checkpoint/journal hook for one job.

        Returns ``None`` (no hook, zero overhead) unless a journal is
        configured and epoch journaling is enabled.  The hook runs on
        the executor thread, between fabric epochs: every
        ``checkpoint_every_slices`` slices it writes a fabric checkpoint
        sidecar and journals an EPOCH_PROGRESS record pointing at it.
        """
        if self.journal is None or self.checkpoint_every_slices <= 0:
            return None
        from repro.serve.durability.resume import (
            checkpoint_dir,
            write_checkpoint,
        )

        every = self.checkpoint_every_slices
        directory = checkpoint_dir(self.journal.directory)
        job_id = request.job_id

        def hook(slice_index: int, rtms) -> None:
            if slice_index % every != 0:
                return
            path, crc = write_checkpoint(directory, job_id, slice_index, rtms)
            self._journal_append(
                "EPOCH_PROGRESS",
                lambda: self.journal.epoch_progress(
                    job_id,
                    {"slice": slice_index, "checkpoint": path, "crc": crc},
                ),
            )

        return hook

    def _account_success(
        self, worker, request: JobRequest, run: WorkerRun
    ) -> None:
        kind = request.spec.kind.value
        self._m_sim_ns.inc(run.stats.sim_ns, kind=kind)
        self._m_reconfig_ns.inc(run.stats.reconfig_ns, kind=kind)
        self._m_saved_ns.inc(run.reconfig_saved_ns, kind=kind)
        if run.warm:
            self._m_warm.inc(kind=kind)
        else:
            self._m_cold.inc(kind=kind)
        self._m_fabric_busy.inc(run.stats.sim_ns, fabric=worker.id)
        self._m_fabric_jobs.inc(fabric=worker.id)
        if run.stats.faults_detected:
            self._m_faults_detected.inc(run.stats.faults_detected, kind=kind)
        if run.stats.faults_corrected:
            self._m_faults_corrected.inc(run.stats.faults_corrected, kind=kind)
            self._m_mttr.observe(run.stats.mttr_ns)
        if run.stats.hard_faults:
            self._m_hard_faults.inc(run.stats.hard_faults, kind=kind)
        if run.stats.scrub_ns:
            self._m_scrub_ns.inc(run.stats.scrub_ns, kind=kind)
        total_busy = self.pool.total_busy_ns
        for member in self.pool:
            self._m_fabric_util.set(
                member.busy_sim_ns / total_busy if total_busy else 0.0,
                fabric=member.id,
            )
        self._update_health_metrics()
