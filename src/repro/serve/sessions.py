"""Kernel sessions: resident fabric state that outlives a single job.

The paper's amortization trick — keep configurations resident so only
the first epoch pays the ICAP (pinning, Table 4 label *(f)*; red/green
twiddle reuse, Sec. 3.1) — becomes, at the serving level, a *session*: a
mesh plus :class:`~repro.fabric.rtms.RuntimeManager` that stays alive
between jobs of the same :class:`~repro.serve.jobs.KernelSpec`.  The
first job on a session is *cold* (programs + static data stream through
the ICAP); subsequent same-spec jobs are *warm* and only pay the
per-job data movement (yellow twiddles, link replays).

Sessions also own cooperative cancellation: between fabric epochs (FFT)
or blocks (JPEG) they poll a :class:`CancelToken`, so a service timeout
aborts a job at the next boundary instead of blocking a worker thread
forever — the same slicing discipline
:meth:`repro.pn.executor.NetworkExecutor.run_bounded` gives process
networks.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Protocol

import numpy as np

from repro.errors import JobCancelled, ServeError
from repro.fabric.icap import IcapPort
from repro.fabric.mesh import Mesh
from repro.fabric.rtms import EpochSpec, RuntimeManager
from repro.serve.jobs import JobKind, KernelSpec

__all__ = [
    "CancelToken",
    "SessionStats",
    "KernelSession",
    "FFTSession",
    "JPEGSession",
    "ArtifactSession",
    "Conv2DSession",
    "GEMMSession",
    "DSPSession",
    "default_session_factory",
    "SessionFactory",
]


class CancelToken:
    """Thread-safe cancellation flag polled at epoch boundaries."""

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def check(self) -> None:
        """Raise :class:`JobCancelled` when the token has fired."""
        if self._event.is_set():
            raise JobCancelled("job cancelled at epoch boundary")


@dataclass
class SessionStats:
    """Fabric accounting of one job run on a session."""

    output: Any = None
    #: Simulated fabric time this job occupied the session.
    sim_ns: float = 0.0
    #: Configuration-port busy time this job caused (Eq. 1 term B).
    reconfig_ns: float = 0.0
    #: Epochs (or blocks) executed — the cancellation granularity.
    slices: int = 0
    # -- fault-tolerance accounting (sessions running under a fault
    # -- campaign fill these; plain sessions leave them zero) ----------
    #: SEUs scrubbing detected during the job.
    faults_detected: int = 0
    #: Detected faults repaired (rollback + rewrite) during the job.
    faults_corrected: int = 0
    #: ICAP busy time spent on scrub readback/repair traffic.
    scrub_ns: float = 0.0
    #: Mean detection-to-repair time of this job's corrected faults.
    mttr_ns: float = 0.0
    #: Tiles declared hard-failed (spare-remapped) during the job.
    hard_faults: int = 0


class KernelSession(Protocol):
    """What the pool needs from a session (real or injected for tests)."""

    config_key: str

    def run(self, payload: Any, cancel: CancelToken) -> SessionStats:
        """Execute one job; must poll ``cancel`` between slices."""
        ...  # pragma: no cover - protocol

    def pin_epochs(self) -> list[EpochSpec]:
        """Program-residency epochs (for warm switch-cost probes)."""
        ...  # pragma: no cover - protocol

    def cold_setup_epochs(self) -> list[EpochSpec]:
        """Programs plus static data — what a cold start streams through
        the ICAP before the first job's own data."""
        ...  # pragma: no cover - protocol

    @property
    def rtms(self) -> RuntimeManager:
        ...  # pragma: no cover - protocol


class _BaseSession:
    """Shared accounting: run a list of epochs slice-by-slice."""

    def __init__(self, spec: KernelSpec, link_cost_ns: float) -> None:
        self.spec = spec
        self.config_key = spec.config_key
        self.link_cost_ns = link_cost_ns
        self.jobs_run = 0
        #: Optional per-slice hook ``progress(completed_slices, rtms)``,
        #: set by the durability layer to journal epoch progress (and
        #: write fabric checkpoints) between slices.  Exceptions from
        #: the hook propagate — a journaling failure must not be
        #: silently swallowed mid-job.
        self.progress: Callable[[int, RuntimeManager], None] | None = None

    def _execute_sliced(
        self,
        rtms: RuntimeManager,
        epochs: list[EpochSpec],
        cancel: CancelToken,
        stats: SessionStats,
        *,
        start_slice: int = 0,
    ) -> None:
        for offset, epoch in enumerate(epochs):
            cancel.check()
            rtms.execute([epoch])
            stats.slices += 1
            if self.progress is not None:
                self.progress(start_slice + offset + 1, rtms)


class FFTSession(_BaseSession):
    """A persistent ``rows x cols`` mesh running ``n``-point transforms.

    Thin serving wrapper over the FFT's compiled artifact (the same
    :class:`~repro.compile.ir.CompiledArtifact` ``FabricFFT`` executes):
    every job binds one work item off the shared artifact and runs it
    slice-by-slice with cancellation polls, on a runtime manager whose
    residency (lru-cached stage programs) survives between jobs.
    """

    def __init__(self, spec: KernelSpec, link_cost_ns: float = 100.0) -> None:
        from repro.kernels.fft.decompose import FFTPlan
        from repro.kernels.fft.runner import FabricFFT

        super().__init__(spec, link_cost_ns)
        n, m, cols = spec.params
        self.fft = FabricFFT(FFTPlan(int(n), int(m), int(cols)), link_cost_ns)
        self.artifact = self.fft.artifact
        self.mesh = Mesh(self.fft.plan.rows, self.fft.plan.cols)
        self.rtms = RuntimeManager(
            self.mesh, IcapPort(), link_cost_ns=link_cost_ns
        )

    def run(self, payload: Any, cancel: CancelToken) -> SessionStats:
        x = np.asarray(payload, dtype=np.complex128)
        stats = SessionStats()
        start_ns = self.rtms.now_ns
        busy_before = self.rtms.icap.total_busy_ns
        epochs = self.artifact.bind(x, tag=f"j{self.jobs_run}_")
        self._execute_sliced(self.rtms, epochs, cancel, stats)
        stats.output = self.fft.read_output(self.mesh)
        stats.sim_ns = self.rtms.now_ns - start_ns
        stats.reconfig_ns = self.rtms.icap.total_busy_ns - busy_before
        self.jobs_run += 1
        return stats

    def run_batch(
        self, payloads: list, cancel: CancelToken
    ) -> list[SessionStats]:
        """Execute K same-plan transforms vector-batched across lanes.

        Bit-identical to K sequential :meth:`run` calls (the batched
        tier's contract) with sequential-equivalent timing.  A cold
        session runs its first job on the scalar path so the batch pilot
        is warm; cancellation is polled at every pilot epoch boundary.
        Per-slice ``progress`` journaling is scalar-path-only — batched
        lanes are journaled per lane by the durable engine instead.
        """
        xs = [np.asarray(p, dtype=np.complex128) for p in payloads]
        if not xs:
            raise ServeError("run_batch needs at least one payload")
        results: list[SessionStats] = []
        if self.jobs_run == 0:
            results.append(self.run(xs[0], cancel))
            xs = xs[1:]
        if not xs:
            return results
        if len(xs) == 1:
            results.append(self.run(xs[0], cancel))
            return results
        port = self.artifact.plan.input_port
        n_slices = len(self.artifact.plan.body) + (1 if port else 0)
        batch = self.rtms.execute_artifact_batch(
            self.artifact,
            xs,
            tag=f"j{self.jobs_run}_",
            on_slice=lambda index: cancel.check(),
        )
        for lane in batch.lanes:
            results.append(
                SessionStats(
                    output=self.fft.read_output_words(lane.words),
                    sim_ns=lane.sim_ns,
                    reconfig_ns=lane.reconfig_ns,
                    slices=n_slices,
                )
            )
        self.jobs_run += len(xs)
        return results

    def run_resumed(
        self,
        payload: Any,
        cancel: CancelToken,
        from_slice: int,
        checkpoint,
    ) -> SessionStats:
        """Resume a transform from a journaled epoch checkpoint.

        Restores ``checkpoint`` (a
        :class:`~repro.fabric.rtms.FabricCheckpoint`, typically
        unpickled from a restart's journal sidecar) into this fresh
        session's mesh, re-keys the restored residency tables onto this
        process's artifact programs (see
        :func:`repro.serve.durability.resume.rekey_residency`), then
        executes only epochs ``from_slice..end``.  The produced output
        and final data memories are bit-identical to an uninterrupted
        run of the same payload; ``stats.slices`` counts only the
        slices actually executed here.
        """
        from repro.serve.durability.resume import rekey_residency

        x = np.asarray(payload, dtype=np.complex128)
        stats = SessionStats()
        self.rtms.restore(checkpoint)
        rekey_residency(self.mesh, self.artifact.programs)
        start_ns = self.rtms.now_ns
        busy_before = self.rtms.icap.total_busy_ns
        epochs = self.artifact.bind(x, tag=f"j{self.jobs_run}_")
        if not 0 <= from_slice <= len(epochs):
            raise ServeError(
                f"resume slice {from_slice} outside 0..{len(epochs)}"
            )
        self._execute_sliced(
            self.rtms,
            epochs[from_slice:],
            cancel,
            stats,
            start_slice=from_slice,
        )
        stats.output = self.fft.read_output(self.mesh)
        stats.sim_ns = self.rtms.now_ns - start_ns
        stats.reconfig_ns = self.rtms.icap.total_busy_ns - busy_before
        self.jobs_run += 1
        return stats

    def pin_epochs(self) -> list[EpochSpec]:
        """The transform's program loads, stripped of data/links/run."""
        return self.artifact.pin_epochs()

    def cold_setup_epochs(self) -> list[EpochSpec]:
        """FFT static state is all instruction images (twiddles are
        per-job yellow data, charged warm and cold alike)."""
        return self.pin_epochs()


class JPEGSession(_BaseSession):
    """A persistent single-tile JPEG block pipeline.

    Wraps :class:`~repro.kernels.jpeg.fabric_runner.FabricBlockPipeline`
    (whose five stage programs are co-resident and whose DCT/quantizer
    tables load through the ICAP exactly once) and entropy-codes the
    fabric's zig-zag output into a decodable JFIF stream per job.
    """

    def __init__(self, spec: KernelSpec, link_cost_ns: float = 100.0) -> None:
        from repro.kernels.jpeg.fabric_runner import FabricBlockPipeline

        super().__init__(spec, link_cost_ns)
        quality, chroma = spec.params
        self.pipeline = FabricBlockPipeline(
            quality=int(quality), chroma=bool(chroma)
        )
        self.artifact = self.pipeline.artifact
        self.rtms = self.pipeline.rtms

    def run(self, payload: Any, cancel: CancelToken) -> SessionStats:
        from repro.kernels.jpeg.encoder import JPEGEncoder, blocks_of
        from repro.kernels.jpeg.huffman import (
            BitWriter,
            encode_block_coefficients,
        )

        img = np.asarray(payload)
        if img.dtype.kind == "f":
            img = np.clip(np.rint(img), 0, 255)
        img = img.astype(np.int64)
        if img.ndim != 2:
            raise ServeError(f"JPEG payload must be a 2-D frame, got {img.shape}")
        stats = SessionStats()
        start_ns = self.rtms.now_ns
        busy_before = self.rtms.icap.total_busy_ns
        height, width = img.shape
        blocks, rows, cols = blocks_of(img)
        writer = BitWriter()
        prev_dc = 0
        for r in range(rows):
            for c in range(cols):
                cancel.check()
                zz = self.pipeline.encode_block(blocks[r, c])
                prev_dc = encode_block_coefficients(zz, prev_dc, writer)
                stats.slices += 1
        host = JPEGEncoder(quality=self.pipeline.quality)
        stats.output = host.wrap_stream(writer.flush(), height, width)
        stats.sim_ns = self.rtms.now_ns - start_ns
        stats.reconfig_ns = self.rtms.icap.total_busy_ns - busy_before
        self.jobs_run += 1
        return stats

    def run_batch(
        self, payloads: list, cancel: CancelToken
    ) -> list[SessionStats]:
        """Encode K frames with all their blocks in one vector dispatch.

        JPEG's natural lane axis is the *block*: the blocks of every
        frame in the group are concatenated into one stack and run
        through the five stage programs at once (bit-identical to the
        per-block scalar loop), which is what lets a group of small
        frames amortise the dispatch the way one big frame would.  The
        host Huffman stage then consumes each frame's zig-zag rows
        sequentially, and each frame's stats sum exactly its own lanes'
        fabric time — per-job lifecycle records stay separate.  Frames
        of different shapes group fine (lanes are always 8x8 blocks).
        """
        from repro.kernels.jpeg.encoder import JPEGEncoder, blocks_of
        from repro.kernels.jpeg.huffman import (
            BitWriter,
            encode_block_coefficients,
        )

        if not payloads:
            raise ServeError("run_batch needs at least one payload")
        frames = []  # (height, width, block_count) per payload
        stacks = []
        for payload in payloads:
            img = np.asarray(payload)
            if img.dtype.kind == "f":
                img = np.clip(np.rint(img), 0, 255)
            img = img.astype(np.int64)
            if img.ndim != 2:
                raise ServeError(
                    f"JPEG payload must be a 2-D frame, got {img.shape}"
                )
            height, width = img.shape
            blocks, rows, cols = blocks_of(img)
            frames.append((height, width, rows * cols))
            stacks.append(blocks.reshape(-1, 8, 8))
        cancel.check()
        zz_all, sims, reconfigs = self.pipeline.encode_block_stack(
            np.concatenate(stacks),
            on_slice=lambda index: cancel.check(),
        )
        results: list[SessionStats] = []
        offset = 0
        for height, width, count in frames:
            stats = SessionStats(slices=count)
            writer = BitWriter()
            prev_dc = 0
            for zz in zz_all[offset:offset + count]:
                prev_dc = encode_block_coefficients(zz, prev_dc, writer)
            host = JPEGEncoder(quality=self.pipeline.quality)
            stats.output = host.wrap_stream(writer.flush(), height, width)
            stats.sim_ns = float(sims[offset:offset + count].sum())
            stats.reconfig_ns = float(
                reconfigs[offset:offset + count].sum()
            )
            offset += count
            self.jobs_run += 1
            results.append(stats)
        return results

    def pin_epochs(self) -> list[EpochSpec]:
        """The five co-resident stage programs."""
        return self.artifact.pin_epochs()

    def cold_setup_epochs(self) -> list[EpochSpec]:
        """Stage programs plus the charged ``data1`` preload image (the
        artifact's setup prologue)."""
        return [*self.artifact.setup_epochs(), *self.pin_epochs()]


class ArtifactSession(_BaseSession):
    """Generic session over any process-network kernel runner.

    The dataflow frontend makes kernels uniform enough that one serving
    wrapper covers them all: the runner supplies the compiled artifact,
    the mesh/runtime pair whose residency survives between jobs, and a
    ``read_output_words(words)`` reader; this class adds the serving
    concerns — setup-once preload, slice-by-slice execution with
    cancellation polls, per-job fabric accounting, and the vector-batched
    group path with the cold-pilot-first discipline.  The three
    process-network kernels (conv2d, gemm, dsp) serve through subclasses
    that only construct their runner.
    """

    def __init__(self, spec: KernelSpec, link_cost_ns: float, runner) -> None:
        super().__init__(spec, link_cost_ns)
        self.runner = runner
        self.artifact = runner.artifact
        self.mesh = runner.mesh
        self.rtms = runner.rtms
        self._preloaded = False

    def _ensure_setup(self) -> None:
        """Run the artifact's cold prologue once (billed to the first
        job, exactly like the scalar runners do it)."""
        if not self._preloaded:
            self.rtms.run_setup(self.artifact)
            self._preloaded = True

    def _read(self) -> Any:
        return self.runner.read_output_words(
            lambda coord, base, count: (
                self.mesh.tile(coord).dmem.dump_block(base, count)
            )
        )

    def run(self, payload: Any, cancel: CancelToken) -> SessionStats:
        stats = SessionStats()
        start_ns = self.rtms.now_ns
        busy_before = self.rtms.icap.total_busy_ns
        self._ensure_setup()
        epochs = self.artifact.bind(payload, tag=f"j{self.jobs_run}_")
        self._execute_sliced(self.rtms, epochs, cancel, stats)
        stats.output = self._read()
        stats.sim_ns = self.rtms.now_ns - start_ns
        stats.reconfig_ns = self.rtms.icap.total_busy_ns - busy_before
        self.jobs_run += 1
        return stats

    def run_batch(
        self, payloads: list, cancel: CancelToken
    ) -> list[SessionStats]:
        """Execute K same-spec jobs vector-batched across lanes.

        Bit-identical to K sequential :meth:`run` calls; a cold session
        runs its first job on the scalar path so the batch pilot is warm.
        """
        payloads = list(payloads)
        if not payloads:
            raise ServeError("run_batch needs at least one payload")
        results: list[SessionStats] = []
        if self.jobs_run == 0:
            results.append(self.run(payloads[0], cancel))
            payloads = payloads[1:]
        if not payloads:
            return results
        if len(payloads) == 1:
            results.append(self.run(payloads[0], cancel))
            return results
        port = self.artifact.plan.input_port
        n_slices = len(self.artifact.plan.body) + (1 if port else 0)
        batch = self.rtms.execute_artifact_batch(
            self.artifact,
            payloads,
            tag=f"j{self.jobs_run}_",
            on_slice=lambda index: cancel.check(),
        )
        for lane in batch.lanes:
            results.append(
                SessionStats(
                    output=self.runner.read_output_words(lane.words),
                    sim_ns=lane.sim_ns,
                    reconfig_ns=lane.reconfig_ns,
                    slices=n_slices,
                )
            )
        self.jobs_run += len(payloads)
        return results

    def pin_epochs(self) -> list[EpochSpec]:
        return self.artifact.pin_epochs()

    def cold_setup_epochs(self) -> list[EpochSpec]:
        """Programs plus any charged setup images (the artifact's cold
        prologue; empty prologues — e.g. gemm — contribute nothing)."""
        return [*self.artifact.setup_epochs(), *self.pin_epochs()]


class Conv2DSession(ArtifactSession):
    """A persistent single-tile 3x3 stencil."""

    def __init__(self, spec: KernelSpec, link_cost_ns: float = 100.0) -> None:
        from repro.kernels.conv2d.runner import FabricConv2D

        size, kernel = spec.params
        super().__init__(
            spec, link_cost_ns, FabricConv2D(size=int(size), kernel=str(kernel))
        )


class GEMMSession(ArtifactSession):
    """A persistent single-tile blocked integer GEMM."""

    def __init__(self, spec: KernelSpec, link_cost_ns: float = 100.0) -> None:
        from repro.kernels.gemm.runner import FabricGEMM

        n, block = spec.params
        super().__init__(
            spec, link_cost_ns, FabricGEMM(n=int(n), block=int(block))
        )


class DSPSession(ArtifactSession):
    """A persistent single-tile FIR → decimate → FFT chain."""

    def __init__(self, spec: KernelSpec, link_cost_ns: float = 100.0) -> None:
        from repro.kernels.dsp.runner import FabricDSP

        n, taps, decim = spec.params
        super().__init__(
            spec,
            link_cost_ns,
            FabricDSP(n=int(n), taps=int(taps), decim=int(decim)),
        )


_SESSION_TYPES: dict[JobKind, type] = {
    JobKind.FFT: FFTSession,
    JobKind.JPEG: JPEGSession,
    JobKind.CONV2D: Conv2DSession,
    JobKind.GEMM: GEMMSession,
    JobKind.DSP: DSPSession,
}

#: Callable building a fresh (cold) session for a spec.
SessionFactory = Callable[[KernelSpec], KernelSession]


def default_session_factory(
    spec: KernelSpec, link_cost_ns: float = 100.0
) -> KernelSession:
    """Build a cold session of the right kind for ``spec``."""
    try:
        session_type = _SESSION_TYPES[spec.kind]
    except KeyError:
        raise ServeError(f"no session type for kernel kind {spec.kind!r}")
    return session_type(spec, link_cost_ns=link_cost_ns)
