"""Job model of the fabric serving layer.

A *job* is one kernel invocation a client wants executed on some fabric
in the pool: an FFT transform or a JPEG frame encode, plus quality-of-
service knobs (timeout, retry budget).  The scheduler never looks inside
the payload — everything it needs for placement is the job's
:class:`KernelSpec`, whose :attr:`~KernelSpec.config_key` names the
fabric *configuration* (programs + links + static data) the job requires.
Two jobs with the same config key can share a warm fabric without paying
Eq. 1's reconfiguration term again; that equivalence class is the whole
basis of affinity scheduling.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ServeError

__all__ = [
    "JobKind",
    "JobStatus",
    "RejectReason",
    "KernelSpec",
    "JobRequest",
    "JobResult",
    "fft_spec",
    "jpeg_spec",
    "conv2d_spec",
    "gemm_spec",
    "dsp_spec",
    "spec_for",
]

_job_ids = itertools.count(1)


class JobKind(str, enum.Enum):
    """Kernel families the service knows how to run.

    Values match the kernel-frontend registry kinds
    (:func:`repro.compile.frontends.get_frontend`), which is what lets
    the serving and cluster layers dispatch on the registry instead of
    hardcoding per-kernel branches.
    """

    FFT = "fft"
    JPEG = "jpeg"
    CONV2D = "conv2d"
    GEMM = "gemm"
    DSP = "dsp"


class JobStatus(str, enum.Enum):
    """Terminal states of a job (the service reports exactly one)."""

    DONE = "done"
    FAILED = "failed"
    TIMEOUT = "timeout"
    REJECTED = "rejected"

    @property
    def ok(self) -> bool:
        return self is JobStatus.DONE


class RejectReason(str, enum.Enum):
    """Why admission control turned a job away.

    The closed vocabulary of the ``serve_jobs_rejected_total{reason}``
    metric label and of :attr:`JobResult.error` for rejected jobs
    (``"rejected: <reason>"``) — previously free-form strings scattered
    through the service, now auditable in one place.
    """

    STOPPED = "stopped"        #: service not started (or already torn down)
    DRAINING = "draining"      #: drain() in progress, no new admissions
    QUEUE_FULL = "queue_full"  #: bounded queue at capacity, wait=False
    SHED = "shed"              #: probabilistic overload shedding fired
    ADMISSION_CAP = "admission_cap"  #: hard shedding cap (queue delay)
    SHUTDOWN = "shutdown"      #: queued job failed by a non-drain shutdown
    HANDOFF = "handoff"        #: queued job handed off to another shard
    EXPIRED = "expired"        #: deadline already past at admission time


@dataclass(frozen=True)
class KernelSpec:
    """What fabric configuration a job needs.

    ``params`` must be hashable; together with ``kind`` it determines the
    resident state (tile programs, link plan, static data images), so it
    doubles as the residency-equivalence key.
    """

    kind: JobKind
    params: tuple[Any, ...]

    @property
    def config_key(self) -> str:
        """Identity of the resident configuration this spec requires."""
        inner = ",".join(str(p) for p in self.params)
        return f"{self.kind.value}({inner})"

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.config_key


def fft_spec(n: int = 64, m: int = 8, cols: int = 2) -> KernelSpec:
    """Spec for an ``n``-point fabric FFT with partition ``m`` on ``cols``
    columns (the mesh is ``n/m x cols``)."""
    return KernelSpec(JobKind.FFT, (n, m, cols))


def jpeg_spec(quality: int = 75, chroma: bool = False) -> KernelSpec:
    """Spec for the single-tile JPEG block pipeline at ``quality``."""
    return KernelSpec(JobKind.JPEG, (quality, chroma))


def conv2d_spec(size: int = 16, kernel: str = "sharpen") -> KernelSpec:
    """Spec for the single-tile 3x3 stencil over a ``size``-side frame."""
    return KernelSpec(JobKind.CONV2D, (size, kernel))


def gemm_spec(n: int = 8, block: int = 4) -> KernelSpec:
    """Spec for the single-tile blocked integer GEMM of side ``n``."""
    return KernelSpec(JobKind.GEMM, (n, block))


def dsp_spec(n: int = 16, taps: int = 8, decim: int = 2) -> KernelSpec:
    """Spec for the streaming DSP chain (FIR → decimate → n-point FFT)."""
    return KernelSpec(JobKind.DSP, (n, taps, decim))


def spec_for(kind: JobKind | str, params: dict | None = None) -> KernelSpec:
    """Build a spec for any registered kernel through the registry.

    ``params`` (canonical-parameter overrides) are filled, coerced and
    ordered by the kernel's registered frontend, so a spec built here and
    one built by the typed helpers above are interchangeable.
    """
    from repro.compile.frontends import get_frontend

    kind = JobKind(kind)
    frontend = get_frontend(kind.value)
    return KernelSpec(kind, frontend.spec_params(params))


@dataclass
class JobRequest:
    """One client request.

    Attributes
    ----------
    spec:
        The kernel configuration the job needs (placement key).
    payload:
        Kernel input: a length-``n`` complex vector for FFT, an 8-bit
        greyscale frame for JPEG.
    timeout_s:
        Wall-clock budget per *attempt*; exceeded attempts are cancelled
        at the next epoch boundary and retried.
    max_retries:
        Extra attempts after the first (0 = fail fast).
    deadline_s:
        Absolute deadline in the ``time.monotonic()`` domain (0 = none).
        Unlike ``timeout_s`` (a per-attempt budget), the deadline bounds
        the job's *whole* life: admission, queueing, retries, breaker
        requeues and drain migrations all check it, so a cluster never
        spends fabric time on an answer nobody is waiting for anymore.
    job_id:
        Auto-assigned when left empty.
    """

    spec: KernelSpec
    payload: Any
    timeout_s: float = 30.0
    max_retries: int = 1
    deadline_s: float = 0.0
    job_id: str = ""
    #: Free-form client tag (shows up in metrics labels and traces).
    tag: str = ""
    # -- crash recovery (filled by the durability layer, not clients) --
    #: First epoch slice still to execute (0 = run from scratch).  A
    #: recovered FFT job resumes from its last journaled checkpoint.
    resume_slice: int = 0
    #: Path of the pickled fabric checkpoint to restore before resuming.
    checkpoint_path: str = ""
    #: CRC32 of the checkpoint file (validated before restore; a
    #: mismatch silently falls back to running from scratch).
    checkpoint_crc: int = 0

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ServeError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.max_retries < 0:
            raise ServeError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.deadline_s < 0:
            raise ServeError(
                f"deadline_s must be non-negative, got {self.deadline_s}"
            )
        if not self.job_id:
            self.job_id = f"job-{next(_job_ids)}"

    def expired(self, now: float) -> bool:
        """Is the deadline past at monotonic instant ``now``?

        Always ``False`` for deadline-free jobs, so deterministic
        harnesses that never set ``deadline_s`` never consult a clock.
        """
        return self.deadline_s > 0 and now >= self.deadline_s


@dataclass
class JobResult:
    """Terminal outcome of one job.

    The simulated-time fields decompose the job's fabric occupancy the
    way Eq. 1 decomposes an application run: ``sim_ns`` is the fabric
    time the job held its worker, ``reconfig_ns`` the configuration-port
    busy time it caused, and ``reconfig_saved_ns`` how much of the cold
    configuration cost it avoided by landing on a warm fabric.
    """

    job_id: str
    status: JobStatus
    output: Any = None
    error: str = ""
    worker_id: str = ""
    attempts: int = 0
    #: True when the job's configuration was already resident.
    warm: bool = False
    # -- wall-clock accounting (service-side) --------------------------
    queue_wait_s: float = 0.0
    serve_s: float = 0.0
    # -- simulated fabric accounting -----------------------------------
    sim_ns: float = 0.0
    reconfig_ns: float = 0.0
    reconfig_saved_ns: float = 0.0
    # -- durability ----------------------------------------------------
    #: For shed rejections: how long the client should back off before
    #: resubmitting (the ``Retry-After`` hint).
    retry_after_s: float = 0.0
    #: True when this result was reconstructed from the job journal
    #: after a restart rather than executed in this incarnation.
    recovered: bool = False
    #: Epoch slices skipped by resuming from a journaled checkpoint.
    resumed_slices: int = 0

    @property
    def ok(self) -> bool:
        return self.status.ok
