"""Adaptive load shedding: queue-delay EWMA -> probabilistic rejection.

Under sustained overload a bounded queue alone fails ugly: every job
admitted near the cap waits the *whole* queue's worth of delay, p99
latency runs away, and by the time ``queue_full`` rejections start the
damage is done.  The shedder fails pretty instead: it tracks an EWMA of
observed queue delay and, once that exceeds a target, rejects a
*fraction* of new work proportional to the overshoot — so the queue
settles around the delay target rather than around the size cap, and
every rejected client gets a ``retry_after_s`` hint sized to the current
backlog instead of a blind error.

Two layers, in order:

1. **hard admission cap** — queue depth at ``hard_cap`` rejects
   outright (``admission_cap``), the backstop the EWMA cannot race;
2. **probabilistic shedding** — shed probability ramps linearly from 0
   at ``target_delay_s`` to ``max_shed`` at ``collapse_delay_s``
   (seeded RNG: a given trace sheds the same jobs every run).

The shedder is wall-clock-free: callers feed it delays they measured
(real seconds in the asyncio service, simulated seconds in the
deterministic engine), so it behaves identically in both.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ServeError

__all__ = ["ShedDecision", "LoadShedder", "jittered_retry_after"]


def jittered_retry_after(
    base_s: float,
    rng: random.Random,
    spread: float = 0.5,
) -> float:
    """Spread a ``retry_after_s`` hint over ``[base, base * (1 + spread))``.

    A fleet of clients rejected in the same overload burst all receive
    the same deterministic hint; if they obey it literally they resubmit
    in lock-step and thundering-herd the service (or a freshly rejoined
    shard) exactly when it is trying to recover.  Multiplicative jitter
    de-synchronises them while keeping the hint honest: never *earlier*
    than the un-jittered estimate, never more than ``spread`` later.
    """
    if base_s <= 0.0 or spread <= 0.0:
        return base_s
    return base_s * (1.0 + spread * rng.random())


@dataclass(frozen=True)
class ShedDecision:
    """The verdict on one admission attempt."""

    admit: bool
    reason: str = ""           #: "shed" | "admission_cap" | "" (admitted)
    shed_probability: float = 0.0
    retry_after_s: float = 0.0


class LoadShedder:
    """Queue-delay EWMA with probabilistic rejection.

    Parameters
    ----------
    target_delay_s:
        Queue delay the service wants to hold; below it nothing sheds.
    collapse_delay_s:
        Delay at which shedding saturates at ``max_shed`` (must exceed
        the target).
    ewma_alpha:
        Smoothing factor of the delay EWMA (1.0 = last sample only).
    max_shed:
        Ceiling on the shed probability (keep < 1.0 so some traffic
        always lands and the EWMA keeps getting samples).
    hard_cap:
        Queue depth rejected unconditionally (0 disables the cap).
    seed:
        Seed of the shedding RNG — deterministic replay is a feature.
    retry_jitter:
        Multiplicative spread of the ``retry_after_s`` hint (0 disables
        jitter).  Drawn from a *separate* seeded RNG so enabling jitter
        does not perturb the shed-decision stream.
    """

    def __init__(
        self,
        *,
        target_delay_s: float = 0.5,
        collapse_delay_s: float = 2.0,
        ewma_alpha: float = 0.2,
        max_shed: float = 0.95,
        hard_cap: int = 0,
        seed: int = 0,
        retry_jitter: float = 0.5,
    ) -> None:
        if target_delay_s <= 0:
            raise ServeError(
                f"target_delay_s must be positive, got {target_delay_s}"
            )
        if collapse_delay_s <= target_delay_s:
            raise ServeError(
                f"collapse_delay_s ({collapse_delay_s}) must exceed "
                f"target_delay_s ({target_delay_s})"
            )
        if not 0.0 < ewma_alpha <= 1.0:
            raise ServeError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        if not 0.0 < max_shed < 1.0:
            raise ServeError(f"max_shed must be in (0, 1), got {max_shed}")
        if hard_cap < 0:
            raise ServeError(f"hard_cap must be >= 0, got {hard_cap}")
        if retry_jitter < 0:
            raise ServeError(f"retry_jitter must be >= 0, got {retry_jitter}")
        self.retry_jitter = retry_jitter
        self._jitter_rng = random.Random(seed ^ 0x5EED_1E77)
        self.target_delay_s = target_delay_s
        self.collapse_delay_s = collapse_delay_s
        self.ewma_alpha = ewma_alpha
        self.max_shed = max_shed
        self.hard_cap = hard_cap
        self._rng = random.Random(seed)
        self.ewma_s = 0.0
        self.samples = 0
        self.shed_total = 0
        self.capped_total = 0
        self.admitted_total = 0

    # ------------------------------------------------------------------

    def observe(self, delay_s: float) -> None:
        """Feed one measured queue delay (submit -> dispatch)."""
        if delay_s < 0:
            delay_s = 0.0
        if self.samples == 0:
            self.ewma_s = delay_s
        else:
            self.ewma_s += self.ewma_alpha * (delay_s - self.ewma_s)
        self.samples += 1

    def shed_probability(self) -> float:
        """Current probability an admission attempt is shed."""
        over = self.ewma_s - self.target_delay_s
        if over <= 0:
            return 0.0
        span = self.collapse_delay_s - self.target_delay_s
        return min(self.max_shed, self.max_shed * over / span)

    def retry_after_s(self) -> float:
        """Back-off hint: roughly when the backlog should have drained
        to target (never less than the target itself), jittered upward
        by at most ``retry_jitter`` so synchronized rejects do not herd
        back in lock-step."""
        base = max(self.target_delay_s, 2.0 * self.ewma_s)
        return jittered_retry_after(base, self._jitter_rng, self.retry_jitter)

    def decide(self, queue_depth: int) -> ShedDecision:
        """Admission verdict for one submit at the given queue depth."""
        if self.hard_cap and queue_depth >= self.hard_cap:
            self.capped_total += 1
            return ShedDecision(
                admit=False,
                reason="admission_cap",
                shed_probability=1.0,
                retry_after_s=self.retry_after_s(),
            )
        p = self.shed_probability()
        if p > 0.0 and self._rng.random() < p:
            self.shed_total += 1
            return ShedDecision(
                admit=False,
                reason="shed",
                shed_probability=p,
                retry_after_s=self.retry_after_s(),
            )
        self.admitted_total += 1
        return ShedDecision(admit=True, shed_probability=p)
