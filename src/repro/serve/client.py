"""Demo client and ``python -m repro serve`` entry point.

Generates a reproducible mixed FFT+JPEG job trace, fires it at a
:class:`~repro.serve.service.FabricJobService`, and prints a summary:
per-status counts, warm/cold split, latency percentiles, simulated
reconfiguration totals, and (with ``--metrics``) the full
Prometheus-style exposition.  ``--policy cold_fifo`` runs the same trace
against the residency-blind baseline so the amortization win is visible
from the command line.  ``--kinds all`` (or a comma-separated kind list)
swaps the pinned trace for a registry-driven mix over every registered
kernel frontend.
"""

from __future__ import annotations

import argparse
import asyncio
from typing import Sequence

import numpy as np

from repro.serve.jobs import JobRequest, fft_spec, jpeg_spec, spec_for
from repro.serve.scheduler import make_policy
from repro.serve.service import FabricJobService

__all__ = ["generate_trace", "generate_registry_trace", "run_demo", "main"]


def generate_trace(
    n_jobs: int = 200,
    seed: int = 0,
    fft_fraction: float = 0.5,
    fft_n: int = 64,
    fft_m: int = 8,
    fft_cols: int = 2,
    jpeg_shape: tuple[int, int] = (16, 16),
    jpeg_quality: int = 75,
    timeout_s: float = 30.0,
    max_retries: int = 1,
) -> list[JobRequest]:
    """A reproducible interleaved FFT/JPEG job trace.

    The kind sequence is an exact-count shuffle (``n_jobs *
    fft_fraction`` FFTs), so traces with the same seed are identical
    across runs and machines — the benchmark depends on that.  (The RNG
    stream here is pinned: use :func:`generate_registry_trace` for
    traces over arbitrary registered kernels.)
    """
    rng = np.random.default_rng(seed)
    n_fft = int(round(n_jobs * fft_fraction))
    kinds = np.array(["fft"] * n_fft + ["jpeg"] * (n_jobs - n_fft))
    rng.shuffle(kinds)
    f_spec = fft_spec(fft_n, fft_m, fft_cols)
    j_spec = jpeg_spec(jpeg_quality)
    requests: list[JobRequest] = []
    for index, kind in enumerate(kinds):
        if kind == "fft":
            payload = (
                rng.standard_normal(fft_n) + 1j * rng.standard_normal(fft_n)
            ) * 0.01
            spec = f_spec
        else:
            payload = rng.integers(0, 256, jpeg_shape).astype(np.int64)
            spec = j_spec
        requests.append(
            JobRequest(
                spec=spec,
                payload=payload,
                timeout_s=timeout_s,
                max_retries=max_retries,
                job_id=f"{kind}-{index:04d}",
                tag=str(kind),
            )
        )
    return requests


def generate_registry_trace(
    kinds: Sequence[str] | None = None,
    n_jobs: int = 200,
    seed: int = 0,
    timeout_s: float = 30.0,
    max_retries: int = 1,
) -> list[JobRequest]:
    """A reproducible job trace over any registered kernel kinds.

    Specs come from :func:`repro.serve.jobs.spec_for` (frontend-default
    parameters) and payloads from each frontend's registered
    ``example_payload`` — no kernel names are hardcoded here, so a trace
    over a newly registered kernel needs no client changes.  The kind
    sequence is an exact-count shuffle, same discipline as
    :func:`generate_trace`.
    """
    from repro.compile.frontends import frontend_names, get_frontend

    names = tuple(kinds) if kinds else frontend_names()
    rng = np.random.default_rng(seed)
    base, extra = divmod(n_jobs, len(names))
    sequence = np.array(
        [
            name
            for i, name in enumerate(names)
            for _ in range(base + (1 if i < extra else 0))
        ]
    )
    rng.shuffle(sequence)
    specs = {name: spec_for(name) for name in names}
    frontends = {name: get_frontend(name) for name in names}
    requests: list[JobRequest] = []
    for index, kind in enumerate(sequence):
        frontend = frontends[str(kind)]
        if frontend.example_payload is None:
            raise ValueError(
                f"kernel {kind!r} registered no example_payload"
            )
        payload = frontend.example_payload(frontend.canonicalize(None), rng)
        requests.append(
            JobRequest(
                spec=specs[str(kind)],
                payload=payload,
                timeout_s=timeout_s,
                max_retries=max_retries,
                job_id=f"{kind}-{index:04d}",
                tag=str(kind),
            )
        )
    return requests


async def run_demo(
    n_jobs: int = 24,
    pool_size: int = 2,
    policy: str = "affinity",
    seed: int = 0,
    max_queue: int = 256,
    kinds: Sequence[str] | None = None,
) -> dict:
    """Submit a generated trace and return a summary dict.

    ``kinds=None`` replays the pinned FFT+JPEG benchmark trace;
    ``kinds=("all",)`` (or an explicit kind list) mixes every requested
    registered kernel via :func:`generate_registry_trace`.
    """
    service = FabricJobService(
        pool_size=pool_size,
        policy=make_policy(policy),
        max_queue=max_queue,
    )
    if kinds is None:
        trace = generate_trace(n_jobs=n_jobs, seed=seed)
    else:
        explicit = None if "all" in kinds else tuple(kinds)
        trace = generate_registry_trace(
            kinds=explicit, n_jobs=n_jobs, seed=seed
        )
    async with service:
        futures = [await service.submit(request) for request in trace]
        results = list(await asyncio.gather(*futures))
        await service.drain()
    statuses: dict[str, int] = {}
    for result in results:
        statuses[result.status.value] = statuses.get(result.status.value, 0) + 1
    done = [r for r in results if r.ok]
    summary = {
        "jobs": len(results),
        "pool_size": pool_size,
        "policy": policy,
        "statuses": statuses,
        "warm_jobs": sum(1 for r in done if r.warm),
        "cold_jobs": sum(1 for r in done if not r.warm),
        "sim_ns_total": sum(r.sim_ns for r in done),
        "reconfig_ns_total": sum(r.reconfig_ns for r in done),
        "reconfig_saved_ns_total": sum(r.reconfig_saved_ns for r in done),
        "metrics": service.metrics.snapshot(),
        "prometheus": service.metrics.render(),
    }
    return summary


def _format_summary(summary: dict, show_metrics: bool) -> str:
    wait = summary["metrics"].get("serve_queue_wait_seconds", {})
    serve = summary["metrics"].get("serve_job_serve_seconds", {})
    lines = [
        f"repro serve demo — policy={summary['policy']} "
        f"pool={summary['pool_size']} jobs={summary['jobs']}",
        f"  statuses            : {summary['statuses']}",
        f"  warm / cold         : {summary['warm_jobs']} / {summary['cold_jobs']}",
        f"  queue wait p50/p99  : {wait.get('p50', 0) * 1e3:.2f} / "
        f"{wait.get('p99', 0) * 1e3:.2f} ms",
        f"  serve p50/p99       : {serve.get('p50', 0) * 1e3:.2f} / "
        f"{serve.get('p99', 0) * 1e3:.2f} ms",
        f"  simulated fabric ns : {summary['sim_ns_total']:.0f}",
        f"  reconfig ns (term B): {summary['reconfig_ns_total']:.0f}",
        f"  reconfig ns saved   : {summary['reconfig_saved_ns_total']:.0f}"
        "  (vs all-cold placement)",
    ]
    if show_metrics:
        lines += ["", summary["prometheus"].rstrip()]
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the fabric job-service demo on a mixed FFT+JPEG trace.",
    )
    parser.add_argument("--jobs", type=int, default=24, help="trace length")
    parser.add_argument("--pool", type=int, default=2, help="number of fabrics")
    parser.add_argument(
        "--policy",
        choices=("affinity", "batch_affinity", "batch", "cold_fifo", "fifo"),
        default="affinity",
        help="placement policy (cold_fifo = residency-blind baseline; "
        "batch_affinity adds same-configuration coalescing in the "
        "trace replayer and durable engine — the async service places "
        "one job at a time, where it behaves like affinity)",
    )
    parser.add_argument("--seed", type=int, default=0, help="trace seed")
    parser.add_argument(
        "--kinds",
        default=None,
        help="comma-separated registered kernel kinds to mix into the "
        "trace (or 'all'); default replays the pinned FFT+JPEG trace",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="also print the Prometheus text exposition",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)
    kinds = None
    if args.kinds:
        kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
    summary = asyncio.run(
        run_demo(
            n_jobs=args.jobs,
            pool_size=args.pool,
            policy=args.policy,
            seed=args.seed,
            kinds=kinds,
        )
    )
    print(_format_summary(summary, args.metrics))
    failed = sum(
        count
        for status, count in summary["statuses"].items()
        if status != "done"
    )
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
