"""Per-fabric circuit breakers (closed -> open -> half-open -> closed).

The health states of PR 3 (healthy/degraded/quarantined) answer "is this
fabric *broken*?"; the breaker answers the softer, faster question "is
this fabric *currently hurting us*?".  A burst of consecutive failures
trips the breaker **open**: the scheduler stops placing jobs there for a
cooldown, which both protects latency (jobs stop queueing behind a
failing fabric) and gives a transiently-sick fabric (SEU shower, hot
spot) time to recover without the operator-level eject/readmit cycle.
After the cooldown the breaker goes **half-open** and admits a bounded
number of *probe* jobs; one success closes it (full trust restored), one
failure re-opens it with an exponentially grown cooldown, capped.

The clock is injectable so the deterministic serving engine can drive
breakers in simulated time and tests never sleep.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Callable

from repro.errors import ServeError

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(str, enum.Enum):
    """The classic three-state machine."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    @property
    def code(self) -> int:
        """Dense gauge value (0 closed / 1 half-open / 2 open)."""
        return {"closed": 0, "half_open": 1, "open": 2}[self.value]


class CircuitBreaker:
    """One fabric's breaker.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    cooldown_s:
        Open duration before the first half-open probe window.  Doubles
        on every re-open (a probe failed), capped at ``cooldown_cap_s``.
    half_open_probes:
        Jobs admitted concurrently while half-open.
    clock:
        Monotonic time source (injected as simulated time by the
        deterministic engine and by tests).
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 2,
        cooldown_s: float = 0.5,
        cooldown_cap_s: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ServeError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s <= 0 or cooldown_cap_s < cooldown_s:
            raise ServeError(
                f"need 0 < cooldown_s <= cooldown_cap_s, got "
                f"{cooldown_s}/{cooldown_cap_s}"
            )
        if half_open_probes < 1:
            raise ServeError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.failure_threshold = failure_threshold
        self.base_cooldown_s = cooldown_s
        self.cooldown_cap_s = cooldown_cap_s
        self.half_open_probes = half_open_probes
        self.clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._cooldown_s = cooldown_s
        self._probes_inflight = 0
        # -- lifetime accounting (metrics) -----------------------------
        self.opens = 0
        self.closes = 0
        self.probes = 0
        self.transitions: list[tuple[float, str]] = []

    # ------------------------------------------------------------------

    def _transition(self, state: BreakerState) -> None:
        self._state = state
        self.transitions.append((self.clock(), state.value))

    def _maybe_half_open_locked(self) -> None:
        if (
            self._state is BreakerState.OPEN
            and self.clock() - self._opened_at >= self._cooldown_s
        ):
            self._transition(BreakerState.HALF_OPEN)
            self._probes_inflight = 0

    @property
    def state(self) -> BreakerState:
        """Current state (advances open -> half-open on read when the
        cooldown has elapsed; reads are how time enters the machine)."""
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def admits(self) -> bool:
        """May the scheduler place a job on this fabric right now?"""
        with self._lock:
            self._maybe_half_open_locked()
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.HALF_OPEN:
                return self._probes_inflight < self.half_open_probes
            return False

    def on_dispatch(self) -> bool:
        """Account a job being placed; True when it is a half-open probe.

        Dispatching against a (still) open breaker raises — the
        scheduler must consult :meth:`admits` first.
        """
        with self._lock:
            self._maybe_half_open_locked()
            if self._state is BreakerState.OPEN:
                raise ServeError("dispatch against an open circuit breaker")
            if self._state is BreakerState.HALF_OPEN:
                if self._probes_inflight >= self.half_open_probes:
                    raise ServeError("half-open probe budget exhausted")
                self._probes_inflight += 1
                self.probes += 1
                return True
            return False

    def record_success(self) -> None:
        """A job finished cleanly; a half-open success closes fully."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state is BreakerState.HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._transition(BreakerState.CLOSED)
                self._cooldown_s = self.base_cooldown_s
                self.closes += 1

    def record_cancelled(self) -> None:
        """A dispatched job was cancelled by the *service* (timeout,
        shutdown): neither evidence of health nor of sickness.  Only
        releases a half-open probe slot so the next probe can run."""
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)

    def record_failure(self) -> None:
        """A job failed; trips (or re-trips, with a grown cooldown)."""
        with self._lock:
            self._maybe_half_open_locked()
            self._consecutive_failures += 1
            if self._state is BreakerState.HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._cooldown_s = min(
                    self._cooldown_s * 2.0, self.cooldown_cap_s
                )
                self._opened_at = self.clock()
                self._transition(BreakerState.OPEN)
                self.opens += 1
            elif (
                self._state is BreakerState.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._opened_at = self.clock()
                self._transition(BreakerState.OPEN)
                self.opens += 1

    def reset(self) -> None:
        """Force-close (operator readmit path)."""
        with self._lock:
            self._transition(BreakerState.CLOSED)
            self._consecutive_failures = 0
            self._probes_inflight = 0
            self._cooldown_s = self.base_cooldown_s
