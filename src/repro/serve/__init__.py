"""repro.serve — multi-tenant fabric job service.

The serving layer applies the paper's amortization insight (Eq. 1:
runtime = compute + reconfiguration + copies; pay term B once, reuse the
resident configuration) at the *job* level: a pool of simulated fabrics
keeps kernel configurations warm, and a reconfiguration-affinity
scheduler places incoming FFT/JPEG jobs where the modeled switch cost
(τ terms) is lowest — the CGRA analogue of warm-model serving.

Modules
-------
:mod:`repro.serve.jobs`
    Job/result dataclasses and kernel specs (the residency key).
:mod:`repro.serve.sessions`
    Persistent per-kernel fabric sessions with cooperative cancellation.
:mod:`repro.serve.pool`
    Workers, resident state, and the switch-cost oracle.
:mod:`repro.serve.scheduler`
    Affinity + cold-FIFO policies and the deterministic trace replayer.
:mod:`repro.serve.metrics`
    Prometheus-style counters/gauges/histograms.
:mod:`repro.serve.service`
    The asyncio service: admission control, timeouts, retries, drain.
:mod:`repro.serve.client`
    Trace generator and the ``python -m repro serve`` demo.
"""

from repro.serve.jobs import (
    JobKind,
    JobRequest,
    JobResult,
    JobStatus,
    KernelSpec,
    fft_spec,
    jpeg_spec,
)
from repro.serve.metrics import MetricsRegistry
from repro.serve.pool import FabricPool, FabricWorker
from repro.serve.scheduler import (
    AffinityPolicy,
    FIFOPolicy,
    make_policy,
    simulate_trace,
)
from repro.serve.service import FabricJobService
from repro.serve.sessions import (
    CancelToken,
    FFTSession,
    JPEGSession,
    SessionStats,
    default_session_factory,
)

__all__ = [
    "AffinityPolicy",
    "CancelToken",
    "FIFOPolicy",
    "FFTSession",
    "FabricJobService",
    "FabricPool",
    "FabricWorker",
    "JPEGSession",
    "JobKind",
    "JobRequest",
    "JobResult",
    "JobStatus",
    "KernelSpec",
    "MetricsRegistry",
    "SessionStats",
    "default_session_factory",
    "fft_spec",
    "jpeg_spec",
    "make_policy",
    "simulate_trace",
]
