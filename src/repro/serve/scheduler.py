"""Placement policies and a deterministic trace replayer.

The scheduling question, each time a fabric frees up, is *which queued
job should it take?*  The two answers implemented here bracket the
paper's economics:

* :class:`FIFOPolicy` ("cold FIFO") — strict arrival order, residency
  ignored.  On a mixed trace every other job lands on a fabric resident
  with the wrong kernel and pays the full configuration stream: the
  serving-level equivalent of reloading every program every epoch.
* :class:`AffinityPolicy` — scores the front window of the queue by
  :meth:`~repro.serve.pool.FabricWorker.switch_cost_ns` (the modeled τ
  terms of Eq. 1) and takes the cheapest job, so same-kernel jobs batch
  onto warm fabrics and the pool self-partitions by configuration.  A
  starvation guard bounds how often the queue head may be skipped, so a
  lone odd-kernel job still runs.

:func:`simulate_trace` replays a whole job trace against a pool under a
policy in *simulated fabric time* — single-threaded and bit-reproducible
— which is what the benchmark uses to compare total reconfiguration
time between the policies.  The asyncio service uses the same policy
objects live.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

from repro.errors import ServeError
from repro.serve.jobs import JobRequest
from repro.serve.pool import FabricPool, FabricWorker
from repro.serve.sessions import CancelToken

__all__ = [
    "SchedulingPolicy",
    "FIFOPolicy",
    "AffinityPolicy",
    "BatchCoalescingPolicy",
    "make_policy",
    "JobTrace",
    "TraceReplayResult",
    "simulate_trace",
]


class SchedulingPolicy(Protocol):
    """Picks which queued job a freed worker should take."""

    name: str

    def select(
        self, queue: Sequence[JobRequest], worker: FabricWorker
    ) -> int:
        """Index into ``queue`` of the job ``worker`` should run next.

        Called only with a non-empty queue; must return a valid index.
        """
        ...  # pragma: no cover - protocol


class FIFOPolicy:
    """Arrival order, residency-blind — the cold baseline."""

    name = "cold_fifo"

    def select(
        self, queue: Sequence[JobRequest], worker: FabricWorker
    ) -> int:
        return 0


class AffinityPolicy:
    """Reconfiguration-affinity scheduling with a starvation guard.

    Scans the first ``window`` queued jobs and picks the one whose
    modeled switch cost on this worker is lowest (ties fall to arrival
    order).  Every time the queue head is passed over its skip count
    rises; once it reaches ``patience`` the head is forced, bounding
    worst-case queueing delay at ``patience`` placements.
    """

    name = "affinity"

    def __init__(self, window: int = 16, patience: int = 8) -> None:
        if window < 1:
            raise ServeError(f"window must be >= 1, got {window}")
        if patience < 1:
            raise ServeError(f"patience must be >= 1, got {patience}")
        self.window = window
        self.patience = patience
        self._skips: dict[str, int] = {}

    def select(
        self, queue: Sequence[JobRequest], worker: FabricWorker
    ) -> int:
        head = queue[0]
        if self._skips.get(head.job_id, 0) >= self.patience:
            self._skips.pop(head.job_id, None)
            return 0
        best_index = 0
        best_cost = None
        for index, request in enumerate(queue[: self.window]):
            cost = worker.switch_cost_ns(request.spec)
            if best_cost is None or cost < best_cost:
                best_index, best_cost = index, cost
            if cost <= 0.0:
                break  # cannot beat a free (fully warm) placement
        if best_index != 0:
            self._skips[head.job_id] = self._skips.get(head.job_id, 0) + 1
        else:
            self._skips.pop(head.job_id, None)
        chosen = queue[best_index]
        self._skips.pop(chosen.job_id, None)
        return best_index


class BatchCoalescingPolicy(AffinityPolicy):
    """Affinity placement plus same-configuration batch coalescing.

    Picks the anchor job exactly like :class:`AffinityPolicy` (same
    window, same starvation guard), then sweeps the rest of the window
    for queued jobs with the *same* ``config_key`` as the anchor and
    groups up to ``max_batch`` of them into one dispatch.  The group
    runs through :meth:`FabricWorker.execute_batch` — one admission
    check, one breaker dispatch, K lanes with per-lane accounting — so
    the vector tier amortises phase orchestration over every coalesced
    job.  Jobs resuming from a checkpoint are never coalesced (their
    mid-stream state is lane-incompatible); they anchor a group of one.
    """

    name = "batch_affinity"

    def __init__(
        self, window: int = 16, patience: int = 8, max_batch: int = 16
    ) -> None:
        super().__init__(window, patience)
        if max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {max_batch}")
        self.max_batch = max_batch

    def select_group(
        self, queue: Sequence[JobRequest], worker: FabricWorker
    ) -> list[int]:
        """Queue indices of the group ``worker`` should run, in arrival
        order.  The anchor (affinity pick) is always included."""
        anchor = self.select(queue, worker)
        chosen = [anchor]
        if queue[anchor].resume_slice == 0:
            key = queue[anchor].spec.config_key
            for index, request in enumerate(queue[: self.window]):
                if len(chosen) >= self.max_batch:
                    break
                if index == anchor or request.resume_slice > 0:
                    continue
                if request.spec.config_key == key:
                    chosen.append(index)
        chosen.sort()
        for index in chosen:
            self._skips.pop(queue[index].job_id, None)
        return chosen


def make_policy(name: str) -> SchedulingPolicy:
    """Policy by CLI name (``affinity``, ``batch_affinity`` or
    ``cold_fifo``/``fifo``)."""
    if name == "affinity":
        return AffinityPolicy()
    if name in ("batch", "batch_affinity"):
        return BatchCoalescingPolicy()
    if name in ("fifo", "cold_fifo"):
        return FIFOPolicy()
    raise ServeError(f"unknown scheduling policy {name!r}")


# ---------------------------------------------------------------------------
# deterministic replay (closed-loop, simulated time)
# ---------------------------------------------------------------------------


@dataclass
class JobTrace:
    """Per-job outcome of a replayed trace."""

    job_id: str
    kind: str
    worker_id: str
    warm: bool
    start_ns: float
    end_ns: float
    wait_ns: float
    sim_ns: float
    reconfig_ns: float
    reconfig_saved_ns: float


@dataclass
class TraceReplayResult:
    """Aggregate of one policy's replay of a job trace."""

    policy: str
    jobs: list[JobTrace] = field(default_factory=list)

    @property
    def total_reconfig_ns(self) -> float:
        """Eq. 1 term-B total across the whole trace."""
        return sum(j.reconfig_ns for j in self.jobs)

    @property
    def total_sim_ns(self) -> float:
        return sum(j.sim_ns for j in self.jobs)

    @property
    def makespan_ns(self) -> float:
        return max((j.end_ns for j in self.jobs), default=0.0)

    @property
    def mean_wait_ns(self) -> float:
        return (
            sum(j.wait_ns for j in self.jobs) / len(self.jobs)
            if self.jobs
            else 0.0
        )

    @property
    def warm_jobs(self) -> int:
        return sum(1 for j in self.jobs if j.warm)

    @property
    def cold_jobs(self) -> int:
        return len(self.jobs) - self.warm_jobs

    @property
    def reconfig_saved_ns(self) -> float:
        return sum(j.reconfig_saved_ns for j in self.jobs)

    def utilization(self, n_workers: int) -> float:
        """Busy fabric-time share over the pool for the makespan."""
        span = self.makespan_ns
        if span <= 0 or n_workers <= 0:
            return 0.0
        return self.total_sim_ns / (n_workers * span)


def simulate_trace(
    requests: Sequence[JobRequest],
    pool: FabricPool,
    policy: SchedulingPolicy,
) -> TraceReplayResult:
    """Replay ``requests`` (all present at t=0) against ``pool``.

    Event-driven over simulated fabric time: repeatedly the earliest-free
    worker asks ``policy`` for its next job and runs it to completion.
    Jobs execute for real on the pool's sessions (actual programs,
    actual ICAP charges), so the reported reconfiguration totals are
    measurements, not model outputs.  Entirely deterministic: no
    threads, no wall clock.
    """
    queue: list[JobRequest] = list(requests)
    free_at = {worker.id: 0.0 for worker in pool.workers}
    result = TraceReplayResult(policy=policy.name)
    cancel = CancelToken()  # never fires in replay
    while queue:
        candidates = pool.available_workers()
        if not candidates:
            raise ServeError(
                "every worker is quarantined; cannot place "
                f"{len(queue)} remaining jobs"
            )
        worker = min(candidates, key=lambda w: (free_at[w.id], w.id))
        select_group = getattr(policy, "select_group", None)
        if select_group is not None:
            indices = select_group(queue, worker)
            if (
                not indices
                or len(set(indices)) != len(indices)
                or not all(0 <= i < len(queue) for i in indices)
            ):
                raise ServeError(
                    f"policy {policy.name!r} selected invalid group {indices}"
                )
            group = [queue[i] for i in sorted(indices)]
            for i in sorted(indices, reverse=True):
                queue.pop(i)
        else:
            index = policy.select(queue, worker)
            if not 0 <= index < len(queue):
                raise ServeError(
                    f"policy {policy.name!r} selected invalid index {index}"
                )
            group = [queue.pop(index)]
        start_ns = free_at[worker.id]
        if len(group) > 1:
            runs = worker.execute_batch(group, cancel)
        else:
            runs = [worker.execute(group[0], cancel)]
        # Lanes occupy the fabric back to back (sequential-equivalent
        # clock), so each lane's trace window follows the previous one.
        lane_start = start_ns
        for request, run in zip(group, runs):
            end_ns = lane_start + run.stats.sim_ns
            result.jobs.append(
                JobTrace(
                    job_id=request.job_id,
                    kind=request.spec.kind.value,
                    worker_id=worker.id,
                    warm=run.warm,
                    start_ns=lane_start,
                    end_ns=end_ns,
                    wait_ns=start_ns,
                    sim_ns=run.stats.sim_ns,
                    reconfig_ns=run.stats.reconfig_ns,
                    reconfig_saved_ns=run.reconfig_saved_ns,
                )
            )
            lane_start = end_ns
        free_at[worker.id] = lane_start
    return result
