"""The write-ahead job journal: CRC32'd JSONL segments.

Framing
-------
One record per line::

    crc32hex<space>canonical-json\\n

The CRC covers exactly the JSON bytes, so a scan can tell three failure
shapes apart and survive all of them:

* a **torn tail** (crash mid-append): the last line has no newline or a
  truncated body — CRC fails, the record is dropped, scanning stops for
  that segment (nothing after a tear is trusted);
* a **flipped byte** anywhere: CRC fails, the record is dropped and the
  rest of *that segment* is distrusted (a tear and a bit-rot look alike
  from below), but later segments still load;
* a **missing segment** (deleted by compaction): seq numbers jump, which
  replay tolerates by design.

Durability policy
-----------------
The write-ahead contract is: *a job is only acknowledged after its
SUBMITTED record is in the journal.*  How hard "in the journal" is, is
the fsync policy:

* ``ALWAYS``  — fsync after every append (safe against power loss);
* ``ROTATE``  — fsync at segment rotation and close (safe against
  process crash, may lose the OS page cache on power loss);
* ``NEVER``   — leave it to the OS (benchmarks, tests).

Segments rotate at ``segment_records`` appends.  :meth:`compact`
rewrites the journal keeping only what replay still needs — every
record of unfinished jobs, and the DONE record of finished ones (so
restarted clients still get deduplicated results) — into a fresh
segment, then atomically swaps the old segments out.

A ``flock``-held lock file (``journal.lock``) makes two services
sharing the directory fail fast instead of interleaving appends.
"""

from __future__ import annotations

import os
import threading
import zlib
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path

from repro.chaos.crashpoints import (
    crashpoint,
    guarded_write,
    register_crashpoint,
)
from repro.errors import JournalError
from repro.locks import FileLock
from repro.serve.durability.records import JournalRecord, RecordType

__all__ = ["FsyncPolicy", "ScanReport", "JobJournal", "verify_segment"]

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".log"

#: Crash points instrumented by the journal (chaos matrix enumerable).
CP_APPEND = register_crashpoint("journal.append")
CP_APPEND_AFTER = register_crashpoint("journal.append.after")
CP_FSYNC = register_crashpoint("journal.fsync")
CP_ROTATE = register_crashpoint("journal.rotate")
CP_COMPACT_WRITE = register_crashpoint("journal.compact.write")
CP_COMPACT_SWAP = register_crashpoint("journal.compact.swap")


class FsyncPolicy(str, Enum):
    """How hard an append is pushed to stable storage."""

    ALWAYS = "always"
    ROTATE = "rotate"
    NEVER = "never"


@dataclass
class ScanReport:
    """What a journal scan found (and what it had to drop)."""

    records: int = 0
    segments: int = 0
    bytes_scanned: int = 0
    #: Lines dropped for CRC mismatch / truncation, per segment name.
    corrupt_lines: dict[str, int] = field(default_factory=dict)

    @property
    def dropped(self) -> int:
        return sum(self.corrupt_lines.values())


def _frame(record: JournalRecord) -> bytes:
    body = record.to_json().encode("utf-8")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return b"%08x " % crc + body + b"\n"


def _unframe(line: bytes) -> JournalRecord | None:
    """Decode one framed line; None when torn/corrupt."""
    if len(line) < 10 or line[8:9] != b" " or not line.endswith(b"\n"):
        return None
    try:
        want = int(line[:8], 16)
    except ValueError:
        return None
    body = line[9:-1]
    if zlib.crc32(body) & 0xFFFFFFFF != want:
        return None
    try:
        return JournalRecord.from_json(body.decode("utf-8"))
    except (JournalError, UnicodeDecodeError):
        return None


def verify_segment(path: Path) -> tuple[int, int]:
    """CRC-verify one segment file: ``(valid_records, corrupt_lines)``.

    Read-only (safe on a *live* shard's journal — the anti-entropy
    scrubber's whole point) and consistent with :meth:`JobJournal.scan`
    semantics: the first torn/corrupt line poisons the rest of the
    segment, so everything after it counts as corrupt too.
    """
    valid = 0
    corrupt = 0
    lines = path.read_bytes().splitlines(keepends=True)
    for index, raw in enumerate(lines):
        if _unframe(raw) is None:
            corrupt = len(lines) - index
            break
        valid += 1
    return valid, corrupt


class JobJournal:
    """Append-only job journal over rotating CRC'd JSONL segments."""

    def __init__(
        self,
        directory: Path | str,
        *,
        segment_records: int = 1024,
        fsync: FsyncPolicy | str = FsyncPolicy.ROTATE,
        lock: bool = True,
        lock_timeout_s: float | None = None,
    ) -> None:
        if segment_records < 1:
            raise JournalError(
                f"segment_records must be >= 1, got {segment_records}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_records = segment_records
        self.fsync = FsyncPolicy(fsync)
        self._lock = threading.Lock()
        self._file_lock: FileLock | None = None
        if lock:
            self._file_lock = FileLock(self.directory / "journal.lock")
            if lock_timeout_s is not None:
                # The rejoin path: a respawned shard blocks (bounded) on
                # its predecessor's lock.  A SIGKILL'd predecessor's
                # flock died with it, so this acquires immediately; a
                # hung (SIGSTOP'd) one raises LockTimeout naming its pid.
                self._file_lock.acquire(timeout_s=lock_timeout_s)
            elif not self._file_lock.try_acquire():
                raise JournalError(
                    f"journal directory {self.directory} is locked by "
                    f"another process"
                    + (
                        f" (pid {self._file_lock.holder_pid()})"
                        if self._file_lock.holder_pid() is not None
                        else ""
                    )
                )
        self._fh = None
        self._segment_path: Path | None = None
        self._records_in_segment = 0
        self._closed = False
        # -- counters (the service mirrors these into metrics) ---------
        self.appended = 0
        self.bytes_written = 0
        self.fsyncs = 0
        self.rotations = 0
        self.compactions = 0
        # Resume seq numbering after what is already on disk.
        self._seq = 0
        for record in self.scan()[0]:
            self._seq = max(self._seq, record.seq)

    # ------------------------------------------------------------------
    # segment layout
    # ------------------------------------------------------------------

    def segments(self) -> list[Path]:
        """Existing segment files, in append order."""
        return sorted(
            p
            for p in self.directory.glob(f"{SEGMENT_PREFIX}*{SEGMENT_SUFFIX}")
            if p.is_file()
        )

    def _next_segment_path(self) -> Path:
        existing = self.segments()
        if existing:
            last = existing[-1].name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
            index = int(last) + 1
        else:
            index = 1
        return self.directory / f"{SEGMENT_PREFIX}{index:06d}{SEGMENT_SUFFIX}"

    def _open_segment(self) -> None:
        path = self._next_segment_path()
        self._fh = open(path, "ab")
        self._segment_path = path
        self._records_in_segment = 0
        self.rotations += 1

    def _sync(self) -> None:
        crashpoint(CP_FSYNC)
        assert self._fh is not None
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.fsyncs += 1

    # ------------------------------------------------------------------
    # append path
    # ------------------------------------------------------------------

    def append(self, record: JournalRecord) -> JournalRecord:
        """Frame, write and (policy-dependent) sync one record.

        Assigns the record's ``seq``; returns the record for chaining.
        Thread-safe: the asyncio service appends from worker threads.
        """
        with self._lock:
            if self._closed:
                raise JournalError("append on a closed journal")
            if self._fh is None or self._records_in_segment >= self.segment_records:
                self._rotate_locked()
            self._seq += 1
            record.seq = self._seq
            frame = _frame(record)
            assert self._fh is not None
            guarded_write(self._fh, frame, CP_APPEND)
            self._fh.flush()
            crashpoint(CP_APPEND_AFTER)
            if self.fsync is FsyncPolicy.ALWAYS:
                self._sync()
            self.appended += 1
            self.bytes_written += len(frame)
            self._records_in_segment += 1
            return record

    def _rotate_locked(self) -> None:
        crashpoint(CP_ROTATE)
        if self._fh is not None:
            if self.fsync in (FsyncPolicy.ALWAYS, FsyncPolicy.ROTATE):
                self._sync()
            self._fh.close()
        self._open_segment()

    def close(self) -> None:
        """Flush, sync (unless ``NEVER``) and release the lock."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._fh is not None:
                if self.fsync is not FsyncPolicy.NEVER:
                    try:
                        self._sync()
                    except OSError:
                        pass
                self._fh.close()
                self._fh = None
            if self._file_lock is not None:
                self._file_lock.release()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # scan
    # ------------------------------------------------------------------

    def scan(self) -> tuple[list[JournalRecord], ScanReport]:
        """All valid records across all segments, oldest first.

        Corrupt/torn lines are dropped and counted; everything after
        the first bad line *within a segment* is distrusted, but later
        segments still load (a tear only tears one file).
        """
        records: list[JournalRecord] = []
        report = ScanReport()
        for path in self.segments():
            report.segments += 1
            data = path.read_bytes()
            report.bytes_scanned += len(data)
            for raw in data.splitlines(keepends=True):
                record = _unframe(raw)
                if record is None:
                    report.corrupt_lines[path.name] = (
                        report.corrupt_lines.get(path.name, 0) + 1
                    )
                    break  # distrust the rest of this segment
                records.append(record)
                report.records += 1
        records.sort(key=lambda r: r.seq)
        return records, report

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------

    def compact(self) -> int:
        """Drop records replay no longer needs; returns records removed.

        Keeps every record of jobs without a terminal record (they will
        be requeued/resumed) and only the terminal record of finished
        (DONE — result dedup across restarts) or moved (MOVED — another
        shard owns them now) jobs.  Crash-safe: the survivor set is
        written to a fresh segment first, the old segments are removed
        only after it is fully on disk — a crash mid-compaction leaves
        either the old or the new layout, both replayable (at worst
        with duplicate records, which replay tolerates idempotently).
        """
        terminal = (RecordType.DONE, RecordType.MOVED)
        with self._lock:
            if self._closed:
                raise JournalError("compact on a closed journal")
            records, _ = self.scan()
            # A job is closed only when its newest terminal record is
            # newer than its newest SUBMITTED: a SUBMITTED after a MOVED
            # is a re-adoption (the job was stolen/drained away and came
            # back), and dropping its records would disown it.
            last_open: dict[str, int] = {}
            last_closed: dict[str, int] = {}
            for r in records:
                if r.type is RecordType.SUBMITTED:
                    if r.seq > last_open.get(r.job_id, -1):
                        last_open[r.job_id] = r.seq
                elif r.type in terminal:
                    if r.seq > last_closed.get(r.job_id, -1):
                        last_closed[r.job_id] = r.seq
            done_jobs = {
                job_id
                for job_id, seq in last_closed.items()
                if seq > last_open.get(job_id, -1)
            }
            keep = [
                r
                for r in records
                if r.job_id not in done_jobs or r.type in terminal
            ]
            removed = len(records) - len(keep)
            old_segments = self.segments()
            if self._fh is not None:
                if self.fsync is not FsyncPolicy.NEVER:
                    self._sync()
                self._fh.close()
                self._fh = None
            # Write survivors into the *next* segment index so ordering
            # by file name still matches append order.
            crashpoint(CP_COMPACT_WRITE)
            self._open_segment()
            assert self._fh is not None
            for record in keep:
                frame = _frame(record)
                guarded_write(self._fh, frame, CP_COMPACT_WRITE)
            self._fh.flush()
            if self.fsync is not FsyncPolicy.NEVER:
                self._sync()
            self._records_in_segment = len(keep)
            crashpoint(CP_COMPACT_SWAP)
            for path in old_segments:
                path.unlink(missing_ok=True)
            self.compactions += 1
            return removed

    # ------------------------------------------------------------------
    # record helpers (thin sugar the service/engine call)
    # ------------------------------------------------------------------

    def submitted(self, job_id: str, data: dict) -> JournalRecord:
        return self.append(JournalRecord(RecordType.SUBMITTED, job_id, data))

    def dispatched(self, job_id: str, data: dict) -> JournalRecord:
        return self.append(JournalRecord(RecordType.DISPATCHED, job_id, data))

    def epoch_progress(self, job_id: str, data: dict) -> JournalRecord:
        return self.append(
            JournalRecord(RecordType.EPOCH_PROGRESS, job_id, data)
        )

    def retry(self, job_id: str, data: dict) -> JournalRecord:
        return self.append(JournalRecord(RecordType.RETRY, job_id, data))

    def done(self, job_id: str, data: dict) -> JournalRecord:
        return self.append(JournalRecord(RecordType.DONE, job_id, data))

    def moved(self, job_id: str, data: dict) -> JournalRecord:
        return self.append(JournalRecord(RecordType.MOVED, job_id, data))
