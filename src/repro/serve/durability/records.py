"""Journal record model and the payload codec.

A journal record is one JSON object per line (canonical separators,
sorted keys — byte-stable for a given record) with a CRC32 prefix added
by the journal's framing.  Five record types cover a job's whole
lifecycle::

    SUBMITTED       job accepted (spec + encoded payload — everything a
                    restart needs to re-run it from scratch)
    DISPATCHED      job handed to a fabric (worker id, attempt number)
    EPOCH_PROGRESS  epoch slice finished; optionally names a checkpoint
                    file an FFT resume can restore
    RETRY           an attempt failed and a retry was scheduled
    DONE            terminal result (status + compact result fields)
    MOVED           the job left this journal's ownership (stolen by, or
                    handed off to, another shard — cluster routing)

Payloads are numpy arrays (complex FFT vectors, integer JPEG frames);
:func:`encode_payload`/:func:`decode_payload` round-trip them through
JSON exactly (complex values as ``[re, im]`` pairs with full float
repr precision, frames as nested int lists), so a replayed job computes
bit-identically to the lost original.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import JournalError
from repro.serve.jobs import JobKind, JobRequest, KernelSpec

__all__ = [
    "RecordType",
    "JournalRecord",
    "encode_payload",
    "decode_payload",
    "encode_request",
    "decode_request",
]


class RecordType(str, enum.Enum):
    """The journal's closed record vocabulary."""

    SUBMITTED = "SUBMITTED"
    DISPATCHED = "DISPATCHED"
    EPOCH_PROGRESS = "EPOCH_PROGRESS"
    RETRY = "RETRY"
    DONE = "DONE"
    #: Ownership of the job left this journal (work stealing or shard
    #: handoff); replay must neither requeue nor serve a result for it —
    #: the destination shard's journal owns the job now.
    MOVED = "MOVED"


@dataclass
class JournalRecord:
    """One journal entry: a type, the job it concerns, and a data dict.

    ``seq`` is assigned by the journal at append time (monotonic across
    segments) and is what makes replay order-independent of file-system
    listing quirks.
    """

    type: RecordType
    job_id: str
    data: dict[str, Any] = field(default_factory=dict)
    seq: int = 0

    def to_json(self) -> str:
        """Canonical single-line JSON (sorted keys, no spaces)."""
        body = {
            "t": self.type.value,
            "job": self.job_id,
            "seq": self.seq,
            "data": self.data,
        }
        return json.dumps(body, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "JournalRecord":
        try:
            body = json.loads(text)
            return cls(
                type=RecordType(body["t"]),
                job_id=str(body["job"]),
                data=dict(body["data"]),
                seq=int(body["seq"]),
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise JournalError(f"malformed journal record: {exc}") from None


# --------------------------------------------------------------------------
# payload codec
# --------------------------------------------------------------------------


def encode_payload(kind: JobKind, payload: Any) -> dict[str, Any]:
    """JSON-encode a kernel payload losslessly.

    FFT payloads are 1-D complex vectors -> ``[[re, im], ...]`` with
    Python float repr (shortest round-trip) precision; JPEG, conv2d and
    GEMM payloads are integer arrays -> shape + flat int list; DSP
    payloads are real float frames -> shape + flat float list (repr
    precision, so the Q30 encoding of a replayed frame is bit-identical).
    """
    if kind is JobKind.FFT:
        x = np.asarray(payload, dtype=np.complex128)
        return {
            "shape": list(x.shape),
            "values": [[float(v.real), float(v.imag)] for v in x.ravel()],
        }
    if kind is JobKind.JPEG:
        img = np.asarray(payload)
        if img.dtype.kind == "f":
            img = np.clip(np.rint(img), 0, 255)
        img = img.astype(np.int64)
        return {"shape": list(img.shape), "values": img.ravel().tolist()}
    if kind in (JobKind.CONV2D, JobKind.GEMM):
        arr = np.asarray(payload).astype(np.int64)
        return {"shape": list(arr.shape), "values": arr.ravel().tolist()}
    if kind is JobKind.DSP:
        x = np.asarray(payload, dtype=np.float64)
        return {"shape": list(x.shape), "values": [float(v) for v in x.ravel()]}
    raise JournalError(f"no payload codec for kernel kind {kind!r}")


def decode_payload(kind: JobKind, data: dict[str, Any]) -> Any:
    """Invert :func:`encode_payload` bit-exactly."""
    shape = tuple(int(s) for s in data["shape"])
    if kind is JobKind.FFT:
        flat = np.array(
            [complex(re, im) for re, im in data["values"]],
            dtype=np.complex128,
        )
        return flat.reshape(shape)
    if kind in (JobKind.JPEG, JobKind.CONV2D, JobKind.GEMM):
        return np.array(data["values"], dtype=np.int64).reshape(shape)
    if kind is JobKind.DSP:
        return np.array(data["values"], dtype=np.float64).reshape(shape)
    raise JournalError(f"no payload codec for kernel kind {kind!r}")


def encode_request(request: JobRequest) -> dict[str, Any]:
    """The SUBMITTED record body: everything a restart needs."""
    return {
        "kind": request.spec.kind.value,
        "params": list(request.spec.params),
        "payload": encode_payload(request.spec.kind, request.payload),
        "timeout_s": request.timeout_s,
        "max_retries": request.max_retries,
        "deadline_s": request.deadline_s,
        "tag": request.tag,
    }


def decode_request(job_id: str, data: dict[str, Any]) -> JobRequest:
    """Rebuild the :class:`JobRequest` a SUBMITTED record described."""
    kind = JobKind(data["kind"])
    spec = KernelSpec(kind, tuple(data["params"]))
    return JobRequest(
        spec=spec,
        payload=decode_payload(kind, data["payload"]),
        timeout_s=float(data.get("timeout_s", 30.0)),
        max_retries=int(data.get("max_retries", 1)),
        deadline_s=float(data.get("deadline_s", 0.0)),
        job_id=job_id,
        tag=str(data.get("tag", "")),
    )
