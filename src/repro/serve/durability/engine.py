"""A synchronous, deterministic durable serving engine.

The asyncio :class:`~repro.serve.service.FabricJobService` is the
production wiring, but wall clocks, thread pools and event-loop
scheduling make it a poor *subject* for crash testing: a kill lands at a
nondeterministic instruction.  The chaos harness therefore drives this
engine instead — same journal, same records, same recovery fold, same
:class:`~repro.serve.pool.FabricWorker` execution path, but strictly
sequential and entirely in simulated fabric time.  A
:class:`~repro.chaos.crashpoints.SimulatedCrash` raised at any armed
crash point unwinds straight out of :meth:`run`; the harness then builds
a **new** engine over the same journal directory, which replays the
journal exactly the way a restarted service process would.

One engine instance is one process incarnation:

* construction **is** recovery — the journal is scanned and folded,
  finished jobs become recorded results (served on resubmit, never
  re-executed), unfinished jobs are requeued oldest-first, and FFT jobs
  with a verified epoch checkpoint carry resume fields;
* :meth:`submit` acknowledges a job only after its SUBMITTED record is
  framed into the journal (the write-ahead contract; an injected
  ``OSError`` propagates to the caller, which therefore knows the job
  was *not* acknowledged);
* :meth:`run` drains the queue one job at a time with the same
  dispatch/retry/done journaling the service performs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.chaos.crashpoints import crashpoint, register_crashpoint
from repro.errors import JobCancelled, ServeError
from repro.serve.durability.journal import FsyncPolicy, JobJournal
from repro.serve.durability.records import encode_request
from repro.serve.durability.recovery import replay
from repro.serve.durability.resume import checkpoint_dir, write_checkpoint
from repro.serve.jobs import JobRequest, JobResult, JobStatus
from repro.serve.pool import FabricPool
from repro.serve.sessions import (
    CancelToken,
    SessionFactory,
    default_session_factory,
)

__all__ = ["DurableEngine", "EngineReport"]

#: Visited before each batched lane's DONE record is journaled.  A crash
#: here leaves earlier lanes finished-on-journal and later lanes
#: dispatched-but-unfinished — recovery must requeue exactly the
#: unfinished ones (the batch crash-matrix case).
BATCH_LANE_DONE = register_crashpoint("serve.batch.lane.done")


@dataclass
class EngineReport:
    """What one engine incarnation did (all counts deterministic)."""

    completed: int = 0
    failed: int = 0
    retries: int = 0
    #: Jobs whose deadline lapsed before (or between) dispatches; they
    #: terminate with a journaled TIMEOUT and never touch a fabric.
    expired: int = 0
    #: Finished jobs reconstructed from the journal at start.
    recovered_finished: int = 0
    #: Unfinished jobs requeued from the journal (from scratch).
    recovered_requeued: int = 0
    #: Requeued jobs that carried a verified resume checkpoint.
    recovered_resumed: int = 0
    #: Epoch slices skipped across all resumed jobs.
    resumed_slices: int = 0
    #: Simulated fabric time / reconfiguration time of completed jobs.
    sim_ns: float = 0.0
    reconfig_ns: float = 0.0
    #: Journal-scan corruption observed during recovery.
    corrupt_lines_dropped: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class DurableEngine:
    """One incarnation of a durable, sequential serving engine.

    Parameters
    ----------
    journal_dir:
        Journal directory (shared across incarnations; recovery reads
        whatever the previous incarnation managed to get to disk).
    pool_size / session_factory:
        The fabric pool under the engine (defaults to one fabric — the
        chaos matrix wants minimal nondeterminism surface).
    fsync:
        Journal fsync policy; chaos runs use ``NEVER`` (tmpfs speed) —
        the *torn-write* model, not the page-cache model, is what the
        harness exercises.
    checkpoint_every_slices:
        Epoch-progress journaling cadence (0 disables; FFT jobs then
        always restart from scratch after a crash).
    max_batch:
        When > 1, :meth:`step` coalesces up to this many queued jobs
        with the head's ``config_key`` into one vector-batched dispatch
        (:meth:`FabricWorker.execute_batch`).  Every lane keeps its own
        journal lifecycle — per-lane DISPATCHED before execution,
        per-lane DONE after — so a crash mid-finalize requeues exactly
        the lanes whose DONE record never hit the disk.  Jobs resuming
        from a checkpoint are never coalesced.
    lock:
        Whether the journal takes its ``flock``; chaos incarnations live
        in one process and "die" without cleanup, so they run unlocked.
    clock:
        Monotonic time source for deadline checks.  Only consulted for
        jobs that actually carry a ``deadline_s``, so deterministic
        chaos scenarios (which never set one) stay clock-free; tests
        inject a fake to fire expiry deterministically.
    """

    def __init__(
        self,
        journal_dir: Path | str,
        *,
        pool_size: int = 1,
        session_factory: SessionFactory = default_session_factory,
        fsync: FsyncPolicy | str = FsyncPolicy.NEVER,
        checkpoint_every_slices: int = 0,
        max_batch: int = 1,
        segment_records: int = 1024,
        lock: bool = False,
        lock_timeout_s: float | None = None,
        breaker_factory=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {max_batch}")
        self.journal = JobJournal(
            journal_dir,
            segment_records=segment_records,
            fsync=fsync,
            lock=lock,
            lock_timeout_s=lock_timeout_s,
        )
        self.pool = FabricPool(
            pool_size, session_factory, breaker_factory=breaker_factory
        )
        self.checkpoint_every_slices = checkpoint_every_slices
        self.max_batch = max_batch
        self.clock = clock
        #: Job ids a failed batch demoted to the scalar path for good.
        self._no_batch: set[str] = set()
        self.report = EngineReport()
        self.results: dict[str, JobResult] = {}
        self.queue: list[JobRequest] = []
        # -- recovery: construction replays the previous incarnation ---
        records, self.scan_report = self.journal.scan()
        self.report.corrupt_lines_dropped = self.scan_report.dropped
        state = replay(records)
        for job in state.finished_jobs():
            done = job.done or {}
            try:
                status = JobStatus(done.get("status", "done"))
            except ValueError:
                status = JobStatus.FAILED
            self.results[job.job_id] = JobResult(
                job_id=job.job_id,
                status=status,
                error=str(done.get("error", "")),
                worker_id=str(done.get("worker", "")),
                attempts=int(done.get("attempts", 0)),
                warm=bool(done.get("warm", False)),
                sim_ns=float(done.get("sim_ns", 0.0)),
                reconfig_ns=float(done.get("reconfig_ns", 0.0)),
                recovered=True,
            )
            self.report.recovered_finished += 1
        for request in state.recovered_requests():
            self.queue.append(request)
            if request.resume_slice:
                self.report.recovered_resumed += 1
            else:
                self.report.recovered_requeued += 1

    # ------------------------------------------------------------------
    # submission (the write-ahead acknowledgment edge)
    # ------------------------------------------------------------------

    def submit(self, request: JobRequest) -> JobResult | None:
        """Acknowledge one job; returns its recorded result when the
        journal already holds a terminal record for this job id (result
        dedup across restarts), else ``None`` (queued).

        The SUBMITTED record hits the journal *before* this returns —
        if an injected ``OSError`` (or a crash) interrupts the append,
        the caller never saw an acknowledgment and the no-lost-job
        invariant does not cover the request.
        """
        if request.job_id in self.results:
            return self.results[request.job_id]
        if any(q.job_id == request.job_id for q in self.queue):
            return None  # already requeued by recovery
        self.journal.submitted(request.job_id, encode_request(request))
        self.queue.append(request)
        return None

    def mark_moved(self, job_id: str, data: dict) -> JobRequest:
        """Transfer ownership of a *queued* job out of this engine.

        Journals the MOVED record (so this journal's replay stops
        covering the job) and removes the job from the queue, returning
        the request for the new owner to submit.  Only queued jobs can
        move — a dispatched job's fabric is already running it, and a
        finished job's result must stay servable here.
        """
        for i, request in enumerate(self.queue):
            if request.job_id == job_id:
                self.journal.moved(job_id, data)
                return self.queue.pop(i)
        raise ServeError(f"mark_moved: job {job_id!r} is not queued here")

    # ------------------------------------------------------------------
    # deadline expiry
    # ------------------------------------------------------------------

    def _finish_expired(
        self, request: JobRequest, *, where: str, attempts: int = 0
    ) -> JobResult:
        """Terminate ``request`` as TIMEOUT without (further) execution.

        The DONE record makes the expiry durable: a restart serves the
        timeout result instead of requeueing a job whose client stopped
        waiting long ago.
        """
        error = f"deadline expired {where}"
        self.journal.done(
            request.job_id,
            {
                "status": JobStatus.TIMEOUT.value,
                "error": error,
                "attempts": attempts,
            },
        )
        result = JobResult(
            job_id=request.job_id,
            status=JobStatus.TIMEOUT,
            error=error,
            attempts=attempts,
        )
        self.results[request.job_id] = result
        self.report.expired += 1
        self.report.failed += 1
        return result

    def expire(self, job_id: str, *, where: str = "in queue") -> JobResult:
        """Expire a *queued* job in place (the drain path's fast reject:
        a dead-on-arrival job is failed here, not migrated)."""
        for i, request in enumerate(self.queue):
            if request.job_id == job_id:
                self.queue.pop(i)
                return self._finish_expired(request, where=where)
        raise ServeError(f"expire: job {job_id!r} is not queued here")

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _select_worker(self, request: JobRequest):
        candidates = self.pool.available_workers()
        if not candidates:
            raise ServeError("every fabric is out of rotation")
        return min(
            candidates,
            key=lambda w: (w.switch_cost_ns(request.spec), w.id),
        )

    def _progress_hook(self, request: JobRequest):
        if self.checkpoint_every_slices <= 0:
            return None
        every = self.checkpoint_every_slices
        directory = checkpoint_dir(self.journal.directory)
        job_id = request.job_id
        journal = self.journal

        def hook(slice_index: int, rtms) -> None:
            if slice_index % every != 0:
                return
            path, crc = write_checkpoint(directory, job_id, slice_index, rtms)
            journal.epoch_progress(
                job_id,
                {"slice": slice_index, "checkpoint": path, "crc": crc},
            )

        return hook

    def _coalesce_partners(self, head: JobRequest) -> list[JobRequest]:
        """Pop queued jobs batchable with ``head`` (same ``config_key``,
        running from scratch), oldest first, up to ``max_batch`` lanes."""
        if (
            self.max_batch < 2
            or head.resume_slice
            or head.job_id in self._no_batch
        ):
            return []
        key = head.spec.config_key
        indices = [
            i
            for i, r in enumerate(self.queue)
            if r.spec.config_key == key
            and not r.resume_slice
            and r.job_id not in self._no_batch
        ][: self.max_batch - 1]
        partners = [self.queue[i] for i in indices]
        for i in reversed(indices):
            self.queue.pop(i)
        return partners

    def _step_batch(
        self, head: JobRequest, partners: list[JobRequest]
    ) -> JobResult | None:
        """One vector-batched dispatch of ``[head] + partners``.

        Returns the head's result on success.  On a batch execution
        failure every lane gets a RETRY record and is demoted to the
        scalar path: partners go back to the queue front (in order) and
        ``None`` is returned so :meth:`step` runs the head scalar — no
        attempt is burned, mirroring the fabric-failed free retry.
        """
        group = [head] + partners
        worker = self._select_worker(head)
        for lane, request in enumerate(group):
            self.journal.dispatched(
                request.job_id,
                {
                    "worker": worker.id,
                    "attempt": 1,
                    "batch": len(group),
                    "lane": lane,
                },
            )
        try:
            runs = worker.execute_batch(group, CancelToken())
        except JobCancelled:
            raise
        except Exception as exc:
            error = f"batched attempt: {exc!r}"
            for request in group:
                self._no_batch.add(request.job_id)
                self.journal.retry(
                    request.job_id, {"attempt": 1, "error": error}
                )
            self.report.retries += len(group)
            self.queue[:0] = partners
            return None
        head_result: JobResult | None = None
        for request, run in zip(group, runs):
            # A crash between lanes leaves this lane (and the rest)
            # dispatched-but-unfinished; recovery requeues exactly them.
            crashpoint(BATCH_LANE_DONE)
            result = JobResult(
                job_id=request.job_id,
                status=JobStatus.DONE,
                output=run.stats.output,
                worker_id=worker.id,
                attempts=1,
                warm=run.warm,
                sim_ns=run.stats.sim_ns,
                reconfig_ns=run.stats.reconfig_ns,
                reconfig_saved_ns=run.reconfig_saved_ns,
            )
            self.journal.done(
                request.job_id,
                {
                    "status": JobStatus.DONE.value,
                    "worker": worker.id,
                    "attempts": 1,
                    "warm": run.warm,
                    "sim_ns": run.stats.sim_ns,
                    "reconfig_ns": run.stats.reconfig_ns,
                },
            )
            self.results[request.job_id] = result
            self.report.completed += 1
            self.report.sim_ns += run.stats.sim_ns
            self.report.reconfig_ns += run.stats.reconfig_ns
            if head_result is None:
                head_result = result
        return head_result

    def step(self) -> JobResult:
        """Run the queue's oldest job to a terminal state.

        With ``max_batch > 1`` the head may pull same-configuration
        queue mates along as batch lanes; their results land in
        :attr:`results` in the same step."""
        if not self.queue:
            raise ServeError("step() on an empty queue")
        request = self.queue.pop(0)
        if request.expired(self.clock()):
            return self._finish_expired(request, where="before dispatch")
        partners = self._coalesce_partners(request)
        if partners:
            result = self._step_batch(request, partners)
            if result is not None:
                return result
            # fall through: batch degraded, head runs scalar below
        worker = self._select_worker(request)
        progress = self._progress_hook(request)
        attempts = 0
        last_error = ""
        while True:
            attempts += 1
            self.journal.dispatched(
                request.job_id, {"worker": worker.id, "attempt": attempts}
            )
            try:
                run = worker.execute(request, CancelToken(), progress)
            except JobCancelled:
                raise  # the engine never cancels; a test driving it may
            except Exception as exc:
                last_error = f"attempt {attempts}: {exc!r}"
                if not worker.available:
                    remaining = self.pool.available_workers()
                    if remaining:
                        worker = self._select_worker(request)
                        continue  # fabric failed, not the job: free retry
                if attempts > request.max_retries:
                    result = JobResult(
                        job_id=request.job_id,
                        status=JobStatus.FAILED,
                        error=last_error,
                        worker_id=worker.id,
                        attempts=attempts,
                    )
                    self.journal.done(
                        request.job_id,
                        {
                            "status": result.status.value,
                            "error": result.error,
                            "worker": worker.id,
                            "attempts": attempts,
                        },
                    )
                    self.results[request.job_id] = result
                    self.report.failed += 1
                    return result
                if request.expired(self.clock()):
                    return self._finish_expired(
                        request, where="between retries", attempts=attempts
                    )
                self.report.retries += 1
                self.journal.retry(
                    request.job_id,
                    {"attempt": attempts, "error": last_error},
                )
                continue
            result = JobResult(
                job_id=request.job_id,
                status=JobStatus.DONE,
                output=run.stats.output,
                worker_id=worker.id,
                attempts=attempts,
                warm=run.warm,
                sim_ns=run.stats.sim_ns,
                reconfig_ns=run.stats.reconfig_ns,
                reconfig_saved_ns=run.reconfig_saved_ns,
                resumed_slices=run.resumed_slices,
            )
            self.journal.done(
                request.job_id,
                {
                    "status": JobStatus.DONE.value,
                    "worker": worker.id,
                    "attempts": attempts,
                    "warm": run.warm,
                    "sim_ns": run.stats.sim_ns,
                    "reconfig_ns": run.stats.reconfig_ns,
                },
            )
            self.results[request.job_id] = result
            self.report.completed += 1
            self.report.resumed_slices += run.resumed_slices
            self.report.sim_ns += run.stats.sim_ns
            self.report.reconfig_ns += run.stats.reconfig_ns
            return result

    def run(self) -> EngineReport:
        """Drain the queue (recovered jobs first, submit order after)."""
        while self.queue:
            self.step()
        return self.report

    def close(self) -> None:
        """Clean shutdown of this incarnation (crashed ones never call
        this — that is the point)."""
        self.journal.close()
