"""repro.serve.durability — host-side crash durability for the service.

PR 3 made the *fabric* survive SEUs; this package makes the *host*
survive its own death.  Every accepted job is recorded in a write-ahead
journal before the client sees an acknowledgement, every lifecycle edge
(dispatch, retry, epoch progress, terminal result) is appended as it
happens, and a restarted service replays the journal to reconstruct
exactly the state the crash destroyed: finished jobs keep their recorded
results (no duplicate execution, no duplicate client answer), unfinished
jobs are requeued, and epoch-resumable FFT jobs continue from their last
journaled fabric checkpoint instead of from scratch.

Modules
-------
:mod:`repro.serve.durability.records`
    Journal record model + the numpy payload codec.
:mod:`repro.serve.durability.journal`
    Append-only CRC32'd JSONL segments: rotation, fsync policy,
    compaction, torn-tail-tolerant scanning.
:mod:`repro.serve.durability.recovery`
    Replay of a scanned journal into per-job recovery state.
:mod:`repro.serve.durability.resume`
    Fabric checkpoint files + residency re-keying for epoch resume.
:mod:`repro.serve.durability.engine`
    A synchronous, deterministic durable serving engine (the chaos
    harness's subject; shares all journal/recovery code with the
    asyncio service).
"""

from repro.serve.durability.engine import DurableEngine, EngineReport
from repro.serve.durability.journal import (
    FsyncPolicy,
    JobJournal,
    ScanReport,
)
from repro.serve.durability.records import (
    JournalRecord,
    RecordType,
    decode_payload,
    encode_payload,
)
from repro.serve.durability.recovery import JobReplay, RecoveryState, replay
from repro.serve.durability.resume import (
    load_checkpoint,
    rekey_residency,
    write_checkpoint,
)

__all__ = [
    "DurableEngine",
    "EngineReport",
    "FsyncPolicy",
    "JobJournal",
    "JobReplay",
    "JournalRecord",
    "RecordType",
    "RecoveryState",
    "ScanReport",
    "decode_payload",
    "encode_payload",
    "load_checkpoint",
    "rekey_residency",
    "replay",
    "write_checkpoint",
]
