"""Replay a scanned journal into per-job recovery state.

Replay is a fold over the record stream — **idempotent** (replaying the
same records twice, or a journal whose compaction crashed halfway and
left duplicates, produces the same state) and **monotone** (a DONE
record wins over anything; progress records only ever advance the
resume slice).

The resulting :class:`RecoveryState` answers the three restart
questions:

* which jobs already finished (serve their recorded result, never
  re-execute — the no-duplicate-result invariant);
* which jobs were acknowledged but not finished (requeue them — the
  no-lost-job invariant);
* where can a requeued FFT job resume from (the newest EPOCH_PROGRESS
  record whose checkpoint file still exists and passes its CRC;
  anything less trustworthy falls back to running from scratch, which
  is always safe).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.serve.durability.records import (
    JournalRecord,
    RecordType,
    decode_request,
)
from repro.serve.jobs import JobRequest

__all__ = ["JobReplay", "RecoveryState", "replay"]


@dataclass
class JobReplay:
    """Everything the journal knows about one job."""

    job_id: str
    submitted: dict[str, Any] | None = None
    dispatches: int = 0
    retries: int = 0
    last_worker: str = ""
    #: Newest journaled epoch progress (slices completed).
    progress_slice: int = 0
    checkpoint_path: str = ""
    checkpoint_crc: int = 0
    #: Terminal DONE body (None while unfinished).
    done: dict[str, Any] | None = None
    #: MOVED body (None while owned here).  A moved job belongs to the
    #: destination shard's journal: replay must not requeue it.
    moved: dict[str, Any] | None = None

    @property
    def finished(self) -> bool:
        return self.done is not None

    @property
    def resumable(self) -> bool:
        return bool(self.checkpoint_path) and self.progress_slice > 0

    def apply(self, record: JournalRecord) -> None:
        """Fold one record in (idempotent, order-tolerant via seq sort)."""
        if record.type is RecordType.SUBMITTED:
            if self.submitted is None:
                self.submitted = record.data
            elif self.moved is not None:
                # Re-adoption: a job stolen or drained away can bounce
                # *back* (steal here -> drain returns it).  The fresher
                # SUBMITTED supersedes the older MOVED — ownership came
                # home, and replay must requeue it or both journals
                # would disown the job.
                self.submitted = record.data
                self.moved = None
        elif record.type is RecordType.DISPATCHED:
            self.dispatches += 1
            self.last_worker = str(record.data.get("worker", ""))
        elif record.type is RecordType.RETRY:
            self.retries += 1
        elif record.type is RecordType.EPOCH_PROGRESS:
            slice_index = int(record.data.get("slice", 0))
            if slice_index >= self.progress_slice:
                self.progress_slice = slice_index
                self.checkpoint_path = str(record.data.get("checkpoint", ""))
                self.checkpoint_crc = int(record.data.get("crc", 0))
        elif record.type is RecordType.DONE:
            if self.done is None:
                self.done = record.data
        elif record.type is RecordType.MOVED:
            if self.moved is None:
                self.moved = record.data


@dataclass
class RecoveryState:
    """The fold result over a whole journal."""

    jobs: dict[str, JobReplay] = field(default_factory=dict)
    records_replayed: int = 0

    def finished_jobs(self) -> list[JobReplay]:
        return [j for j in self.jobs.values() if j.finished]

    def unfinished_jobs(self) -> list[JobReplay]:
        """Acknowledged-but-unfinished jobs, oldest first (stable).

        Jobs with a MOVED record are excluded: a steal or handoff
        transferred their ownership to another shard's journal, and
        requeueing them here would duplicate execution.
        """
        return [
            j
            for j in self.jobs.values()
            if not j.finished and j.submitted is not None and j.moved is None
        ]

    def recovered_requests(self) -> list[JobRequest]:
        """Requeue-ready :class:`JobRequest` s for every unfinished job.

        FFT jobs with a *verified* checkpoint (file present, CRC32 of
        its bytes matches the journaled value) carry resume fields; any
        doubt — missing file, corrupt bytes — silently downgrades to a
        from-scratch run, which is correct (just slower).
        """
        requests = []
        for job in self.unfinished_jobs():
            assert job.submitted is not None
            request = decode_request(job.job_id, job.submitted)
            if job.resumable:
                path = Path(job.checkpoint_path)
                if path.is_file():
                    blob = path.read_bytes()
                    if (zlib.crc32(blob) & 0xFFFFFFFF) == job.checkpoint_crc:
                        request.resume_slice = job.progress_slice
                        request.checkpoint_path = job.checkpoint_path
                        request.checkpoint_crc = job.checkpoint_crc
            requests.append(request)
        return requests


def replay(records: list[JournalRecord]) -> RecoveryState:
    """Fold ``records`` (as returned by :meth:`JobJournal.scan`).

    Records are deduplicated by ``seq`` before folding: a compaction
    that crashed between writing the survivor segment and unlinking the
    old ones leaves every survivor twice, and replay must not count a
    dispatch (or anything else) double for it.
    """
    state = RecoveryState()
    seen: set[int] = set()
    for record in sorted(records, key=lambda r: r.seq):
        if record.seq in seen:
            continue
        seen.add(record.seq)
        job = state.jobs.get(record.job_id)
        if job is None:
            job = state.jobs[record.job_id] = JobReplay(record.job_id)
        job.apply(record)
        state.records_replayed += 1
    return state
