"""Fabric checkpoint files + residency re-keying for epoch resume.

An FFT job is a sequence of epoch boundaries (the paper's Eq. 1 model),
and :class:`~repro.fabric.rtms.RuntimeManager` already knows how to
snapshot all architecturally visible mesh state at one
(:meth:`~repro.fabric.rtms.RuntimeManager.checkpoint`).  This module
persists such a snapshot to disk (pickle + CRC32, atomic publish) so a
*restarted process* can restore it into a freshly built session and
execute only the remaining epochs.

One subtlety makes cross-process restore work: tile residency tables
are keyed by ``id(program)``, and a fresh process builds fresh
``Program`` objects.  :func:`rekey_residency` re-keys every restored
residency entry onto the new session's artifact programs by matching
``(name, encoded-bytes)`` — programs that match stay pinned (free on
resume, exactly like the uninterrupted run); programs that do not match
simply lose their pinning and are re-streamed when next required, which
is slower but always correct.
"""

from __future__ import annotations

import os
import pickle
import zlib
from pathlib import Path
from typing import Iterable

from repro.chaos.crashpoints import crashpoint, register_crashpoint
from repro.fabric.assembler import Program
from repro.fabric.mesh import Mesh
from repro.fabric.rtms import FabricCheckpoint, RuntimeManager

__all__ = ["write_checkpoint", "load_checkpoint", "rekey_residency"]

CP_CHECKPOINT_WRITE = register_crashpoint("checkpoint.write")


def checkpoint_dir(journal_dir: Path | str) -> Path:
    """Where a journal's sidecar checkpoints live."""
    return Path(journal_dir) / "checkpoints"


def write_checkpoint(
    directory: Path | str,
    job_id: str,
    slice_index: int,
    rtms: RuntimeManager,
) -> tuple[str, int]:
    """Snapshot ``rtms`` after ``slice_index`` epochs; returns
    ``(path, crc32)`` for the EPOCH_PROGRESS journal record.

    Atomic publish (tmp + rename) so a crash mid-write never leaves a
    half-checkpoint under the final name; the CRC covers the pickled
    bytes so bit-rot is detected at load time.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    blob = pickle.dumps(
        {"slice": slice_index, "checkpoint": rtms.checkpoint()},
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    crc = zlib.crc32(blob) & 0xFFFFFFFF
    path = directory / f"{job_id}.ckpt"
    tmp = path.with_suffix(".ckpt.tmp")
    crashpoint(CP_CHECKPOINT_WRITE)
    with tmp.open("wb") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    tmp.replace(path)
    return str(path), crc


def load_checkpoint(
    path: Path | str, expected_crc: int
) -> tuple[int, FabricCheckpoint] | None:
    """Load and verify a checkpoint; None when missing/corrupt.

    Callers treat None as "resume unavailable, run from scratch" — the
    always-safe fallback.
    """
    path = Path(path)
    if not path.is_file():
        return None
    blob = path.read_bytes()
    if (zlib.crc32(blob) & 0xFFFFFFFF) != expected_crc:
        return None
    try:
        payload = pickle.loads(blob)
        slice_index = int(payload["slice"])
        checkpoint = payload["checkpoint"]
    except Exception:
        return None
    if not isinstance(checkpoint, FabricCheckpoint):
        return None
    return slice_index, checkpoint


def _program_key(program: Program) -> tuple[str, tuple[int, ...]]:
    return (program.name, tuple(program.encoded()))


def rekey_residency(mesh: Mesh, programs: Iterable[Program]) -> int:
    """Re-key restored residency tables onto this process's programs.

    After :meth:`RuntimeManager.restore` of an unpickled checkpoint the
    residency tables reference *unpickled copies* whose ``id()`` will
    never match the fresh artifact's programs.  Matching by name +
    encoded instruction words transfers the pinning; returns how many
    entries were re-keyed.  Entries with no match are left as-is (their
    pinning is unreachable, so the program streams again when needed —
    correct, merely charged).
    """
    by_key = {_program_key(p): p for p in programs}
    rekeyed = 0
    for tile in mesh:
        resident = getattr(tile, "_resident", None)
        if not resident:
            continue
        fresh: dict[int, tuple[Program, int]] = {}
        for old_id, (old_program, base) in resident.items():
            match = by_key.get(_program_key(old_program))
            if match is not None:
                fresh[id(match)] = (match, base)
                rekeyed += 1
                # Control state referencing the stale copy follows along.
                if tile.program is old_program:
                    tile.program = match
            else:
                fresh[old_id] = (old_program, base)
        tile._resident = fresh
    return rekeyed


def verify_checkpoint_file(path: Path | str, expected_crc: int) -> bool:
    """Cheap validity probe (exists + CRC) without unpickling."""
    path = Path(path)
    if not path.is_file():
        return False
    return (zlib.crc32(path.read_bytes()) & 0xFFFFFFFF) == expected_crc


def prune_checkpoints(
    directory: Path | str, keep_job_ids: set[str]
) -> int:
    """Delete checkpoints of jobs that no longer need one; returns the
    number removed (compaction's sidecar twin)."""
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    removed = 0
    for path in sorted(directory.glob("*.ckpt")):
        if path.stem not in keep_job_ids:
            path.unlink(missing_ok=True)
            removed += 1
    return removed
