"""The fabric pool: workers, resident state, and switch-cost queries.

Each :class:`FabricWorker` owns at most one live kernel session — its
*resident configuration*.  Executing a job whose spec matches the
resident key is **warm** (programs pinned, static data resident, only
per-job data pays the ICAP); any other spec forces a **cold** rebuild.
:meth:`FabricWorker.switch_cost_ns` is the scheduler's scoring oracle:
it answers "how much Eq. 1 term-B time would placing this job here
cost", using :meth:`repro.fabric.rtms.RuntimeManager.switch_cost` both
ways — against the live session for warm probes (≈0 by pinning) and
against a scratch cold session for the cold reference.

The :class:`ResidencyCostModel` caches two figures per configuration:

* the *modeled* cold cost (planner estimate on a scratch fabric), used
  for placement scores before any job of that kind ever ran;
* the *measured* cold cost (the actual first-job ``reconfig_ns``),
  recorded after each cold run and used to compute how much
  reconfiguration time a warm placement saved.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Callable

from repro.errors import FaultError, JobCancelled, ServeError
from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.jobs import JobRequest, KernelSpec
from repro.serve.sessions import (
    CancelToken,
    KernelSession,
    SessionFactory,
    SessionStats,
    default_session_factory,
)

__all__ = [
    "HealthState",
    "WorkerRun",
    "FabricWorker",
    "FabricPool",
    "ResidencyCostModel",
]


class HealthState(enum.Enum):
    """Serving-level health of one fabric.

    ``HEALTHY`` fabrics take any job.  ``DEGRADED`` fabrics stay in
    rotation — they have seen correctable faults (scrubbing caught and
    repaired SEUs) or isolated job failures, which is exactly what the
    fault model predicts for a long-lived fabric.  ``QUARANTINED``
    fabrics are out of rotation: repeated failures or an unrepairable
    (hard) fault ejected them; an operator (or a recovery probe)
    re-admits them after the fabric is scrubbed/replaced.
    """

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    QUARANTINED = "quarantined"

    @property
    def code(self) -> int:
        """Dense gauge value (0 healthy / 1 degraded / 2 quarantined)."""
        return {"healthy": 0, "degraded": 1, "quarantined": 2}[self.value]


class ResidencyCostModel:
    """Shared per-configuration cold-cost knowledge (modeled + measured)."""

    def __init__(self, session_factory: SessionFactory) -> None:
        self._session_factory = session_factory
        self._modeled_ns: dict[str, float] = {}
        self._measured_ns: dict[str, float] = {}
        self._lock = threading.Lock()

    def modeled_cold_ns(self, spec: KernelSpec) -> float:
        """Planner-estimated cold configuration cost for ``spec``.

        Built once per configuration from a scratch session: every
        program and static image is charged because nothing is resident
        on a fresh fabric — exactly what the first job would pay.
        """
        key = spec.config_key
        with self._lock:
            cached = self._modeled_ns.get(key)
        if cached is not None:
            return cached
        probe = self._session_factory(spec)
        cost = probe.rtms.switch_cost(probe.cold_setup_epochs())
        with self._lock:
            self._modeled_ns.setdefault(key, cost)
        return cost

    def record_cold_run(self, spec: KernelSpec, reconfig_ns: float) -> None:
        """Remember the measured first-job reconfiguration time."""
        with self._lock:
            self._measured_ns[spec.config_key] = reconfig_ns

    def cold_reference_ns(self, spec: KernelSpec) -> float:
        """Best-available cold cost: measured when known, modeled else."""
        with self._lock:
            measured = self._measured_ns.get(spec.config_key)
        return measured if measured is not None else self.modeled_cold_ns(spec)


@dataclass
class WorkerRun:
    """One completed attempt on a worker."""

    stats: SessionStats
    warm: bool
    #: Reconfiguration time avoided vs a cold placement of the same job.
    reconfig_saved_ns: float
    #: Epoch slices skipped by resuming from a journaled checkpoint.
    resumed_slices: int = 0


class FabricWorker:
    """One pool member: a fabric with (at most) one resident session."""

    def __init__(
        self,
        worker_id: str,
        session_factory: SessionFactory = default_session_factory,
        cost_model: ResidencyCostModel | None = None,
        *,
        failure_threshold: int = 3,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ServeError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.id = worker_id
        self._session_factory = session_factory
        self.cost_model = cost_model or ResidencyCostModel(session_factory)
        #: Optional per-fabric circuit breaker (PR 8).  ``None`` keeps the
        #: PR 3 semantics exactly: availability is health-state-only.
        self.breaker = breaker
        self.session: KernelSession | None = None
        self.resident_key: str | None = None
        # -- lifetime accounting ---------------------------------------
        self.jobs_done = 0
        self.cold_starts = 0
        self.busy_sim_ns = 0.0
        self.reconfig_sim_ns = 0.0
        # -- health ----------------------------------------------------
        self.health = HealthState.HEALTHY
        self.failure_threshold = failure_threshold
        self.consecutive_failures = 0
        self.quarantine_reason: str | None = None
        self.quarantines = 0
        self.faults_detected = 0
        self.faults_corrected = 0
        self.hard_faults = 0
        self.scrub_sim_ns = 0.0

    # ------------------------------------------------------------------
    # health lifecycle
    # ------------------------------------------------------------------

    @property
    def available(self) -> bool:
        """May the scheduler place jobs here?

        Quarantine (PR 3) is the hard gate; a tripped circuit breaker
        (PR 8) is the soft one — an open breaker keeps the worker out of
        rotation for a cooldown, after which half-open probe slots make
        it available again without an operator readmit.
        """
        if self.health is HealthState.QUARANTINED:
            return False
        if self.breaker is not None:
            return self.breaker.admits()
        return True

    @property
    def breaker_open(self) -> bool:
        """Is this worker unavailable *only* because its breaker is
        refusing jobs (i.e. it will come back by itself after the
        cooldown, unlike a quarantine)?"""
        return (
            self.health is not HealthState.QUARANTINED
            and self.breaker is not None
            and not self.breaker.admits()
        )

    def eject(self, reason: str) -> None:
        """Take the fabric out of rotation (drops the resident session).

        Idempotent: ejecting an already-quarantined worker only updates
        the reason.
        """
        if self.health is not HealthState.QUARANTINED:
            self.quarantines += 1
        self.health = HealthState.QUARANTINED
        self.quarantine_reason = reason
        self.session = None
        self.resident_key = None

    def readmit(self) -> None:
        """Return a quarantined/degraded fabric to rotation as healthy.

        Models the post-repair re-admission: the physical fabric was
        scrubbed (or swapped), so the failure history is cleared.  The
        next job pays a cold start — the session was dropped at eject.
        """
        self.health = HealthState.HEALTHY
        self.quarantine_reason = None
        self.consecutive_failures = 0
        if self.breaker is not None:
            self.breaker.reset()

    def record_failure(self, reason: str) -> None:
        """Account one failed job attempt; escalates the health state.

        The first failure degrades the fabric; ``failure_threshold``
        *consecutive* failures — or any :class:`~repro.errors.FaultError`
        (an unrepairable fabric fault) — quarantine it.
        """
        self.consecutive_failures += 1
        if self.health is HealthState.HEALTHY:
            self.health = HealthState.DEGRADED
        if self.consecutive_failures >= self.failure_threshold:
            self.eject(
                f"{self.consecutive_failures} consecutive failures "
                f"(last: {reason})"
            )

    def record_fault_stats(self, stats: SessionStats) -> None:
        """Fold a job's fault counters into the worker's health view.

        Correctable faults (detected and repaired by scrubbing) degrade
        the fabric but keep it serving; a hard fault that survived into
        the stats (tile remapped onto a spare) also only degrades —
        the session's fabric healed itself — but is tracked so operators
        can see spare consumption per fabric.
        """
        self.faults_detected += stats.faults_detected
        self.faults_corrected += stats.faults_corrected
        self.hard_faults += stats.hard_faults
        self.scrub_sim_ns += stats.scrub_ns
        if (
            stats.faults_detected or stats.hard_faults
        ) and self.health is HealthState.HEALTHY:
            self.health = HealthState.DEGRADED

    # ------------------------------------------------------------------
    # scheduling oracle
    # ------------------------------------------------------------------

    def is_warm_for(self, spec: KernelSpec) -> bool:
        return self.session is not None and self.resident_key == spec.config_key

    def switch_cost_ns(self, spec: KernelSpec) -> float:
        """Modeled term-B cost of placing a ``spec`` job on this worker.

        Warm probe: ask the live runtime manager what the job's program
        set would cost — zero when everything is pinned, which is the
        affinity signal.  Cold probe: the cached scratch-fabric estimate
        (the session would be rebuilt, so current residency is moot).
        """
        if self.is_warm_for(spec):
            assert self.session is not None
            return self.session.rtms.switch_cost(self.session.pin_epochs())
        return self.cost_model.modeled_cold_ns(spec)

    # ------------------------------------------------------------------
    # execution (synchronous; the service runs this in a thread)
    # ------------------------------------------------------------------

    def execute(
        self,
        request: JobRequest,
        cancel: CancelToken,
        progress: Callable | None = None,
    ) -> WorkerRun:
        """Run one job to completion on this worker's fabric.

        Raises whatever the kernel raises; raises
        :class:`~repro.errors.JobCancelled` when ``cancel`` fires.  On
        any failure the session is dropped (a job aborted mid-epoch
        leaves fabric memory in an undefined state — the next job pays a
        cold start, like a real fabric scrub) and the health state
        escalates: kernel failures degrade then quarantine at
        ``failure_threshold``; a :class:`~repro.errors.FaultError` (an
        unrepairable fabric fault surfaced to the job) quarantines
        immediately.  A quarantined worker refuses jobs outright.

        ``progress`` (optional, installed by the durability layer) is a
        per-slice hook ``progress(completed_slices, rtms)`` used to
        journal epoch progress and write fabric checkpoints.  A request
        carrying ``resume_slice > 0`` on a **cold** placement restores
        its verified checkpoint and executes only the remaining epochs;
        any doubt about the checkpoint falls back to a from-scratch run.
        """
        spec = request.spec
        if self.health is HealthState.QUARANTINED:
            raise ServeError(
                f"worker {self.id} is quarantined "
                f"({self.quarantine_reason or 'no reason recorded'})"
            )
        if self.breaker is not None:
            # Raises on a (still) open breaker; accounts half-open probes.
            self.breaker.on_dispatch()
        warm = self.is_warm_for(spec)
        if not warm:
            self.session = self._session_factory(spec)
            self.resident_key = spec.config_key
            self.cold_starts += 1
        assert self.session is not None
        if progress is not None and hasattr(self.session, "progress"):
            self.session.progress = progress
        resumed_slices = 0
        try:
            stats = None
            if (
                not warm
                and request.resume_slice > 0
                and hasattr(self.session, "run_resumed")
            ):
                # Lazy import: repro.serve.durability imports this module.
                from repro.serve.durability.resume import load_checkpoint

                loaded = load_checkpoint(
                    request.checkpoint_path, request.checkpoint_crc
                )
                if loaded is not None and loaded[0] == request.resume_slice:
                    stats = self.session.run_resumed(
                        request.payload, cancel, loaded[0], loaded[1]
                    )
                    resumed_slices = loaded[0]
            if stats is None:
                stats = self.session.run(request.payload, cancel)
        except FaultError as exc:
            self.eject(f"fabric fault: {exc}")
            if self.breaker is not None:
                self.breaker.record_failure()
            raise
        except BaseException as exc:
            self.session = None
            self.resident_key = None
            # Cancellation is the service's doing, not the fabric's fault.
            if not isinstance(exc, JobCancelled):
                self.record_failure(repr(exc))
                if self.breaker is not None:
                    self.breaker.record_failure()
            elif self.breaker is not None:
                # Cancellation is neutral: release the probe slot only.
                self.breaker.record_cancelled()
            raise
        finally:
            if progress is not None and self.session is not None:
                if hasattr(self.session, "progress"):
                    self.session.progress = None
        self.jobs_done += 1
        self.consecutive_failures = 0
        if self.breaker is not None:
            self.breaker.record_success()
        self.record_fault_stats(stats)
        self.busy_sim_ns += stats.sim_ns
        self.reconfig_sim_ns += stats.reconfig_ns
        if warm:
            saved = max(
                0.0,
                self.cost_model.cold_reference_ns(spec) - stats.reconfig_ns,
            )
        else:
            self.cost_model.record_cold_run(spec, stats.reconfig_ns)
            saved = 0.0
        return WorkerRun(
            stats=stats,
            warm=warm,
            reconfig_saved_ns=saved,
            resumed_slices=resumed_slices,
        )


    def execute_batch(
        self,
        requests: list[JobRequest],
        cancel: CancelToken,
        progress: Callable | None = None,
    ) -> list[WorkerRun]:
        """Run a group of same-configuration jobs as one batched dispatch.

        All requests must share one ``config_key`` (the coalescing
        policy's grouping invariant).  The session executes them through
        its vector-batched ``run_batch`` — outputs bit-identical to
        sequential :meth:`execute` calls, each lane keeping its own
        :class:`WorkerRun` (warm flag, accounting, reconfig savings).
        Sessions without a ``run_batch``, single-job groups, and resume
        requests fall back to sequential scalar execution.

        The circuit breaker sees the group as **one** dispatch: one
        ``on_dispatch`` admission, one success/failure record — a batch
        occupies the fabric once, so it consumes one half-open probe
        slot, not K.
        """
        if not requests:
            raise ServeError("execute_batch needs at least one request")
        spec = requests[0].spec
        for request in requests[1:]:
            if request.spec.config_key != spec.config_key:
                raise ServeError(
                    f"execute_batch got mixed configurations "
                    f"({request.spec.config_key!r} vs {spec.config_key!r})"
                )
        if (
            len(requests) == 1
            or any(r.resume_slice > 0 for r in requests)
            or (self.is_warm_for(spec)
                and not hasattr(self.session, "run_batch"))
        ):
            return [self.execute(r, cancel, progress) for r in requests]
        if self.health is HealthState.QUARANTINED:
            raise ServeError(
                f"worker {self.id} is quarantined "
                f"({self.quarantine_reason or 'no reason recorded'})"
            )
        if self.breaker is not None:
            self.breaker.on_dispatch()
        warm = self.is_warm_for(spec)
        if not warm:
            session = self._session_factory(spec)
            if not hasattr(session, "run_batch"):
                # No batched tier on this session type: release the probe
                # slot (neutral — nothing ran) and dispatch sequentially,
                # where each execute() does its own breaker admission.
                if self.breaker is not None:
                    self.breaker.record_cancelled()
                return [self.execute(r, cancel, progress) for r in requests]
            self.session = session
            self.resident_key = spec.config_key
            self.cold_starts += 1
        session = self.session
        assert session is not None
        try:
            stats_list = session.run_batch(
                [r.payload for r in requests], cancel
            )
        except FaultError as exc:
            self.eject(f"fabric fault: {exc}")
            if self.breaker is not None:
                self.breaker.record_failure()
            raise
        except BaseException as exc:
            self.session = None
            self.resident_key = None
            if not isinstance(exc, JobCancelled):
                self.record_failure(repr(exc))
                if self.breaker is not None:
                    self.breaker.record_failure()
            elif self.breaker is not None:
                self.breaker.record_cancelled()
            raise
        self.consecutive_failures = 0
        if self.breaker is not None:
            self.breaker.record_success()
        runs: list[WorkerRun] = []
        for index, stats in enumerate(stats_list):
            lane_warm = warm or index > 0
            self.jobs_done += 1
            self.record_fault_stats(stats)
            self.busy_sim_ns += stats.sim_ns
            self.reconfig_sim_ns += stats.reconfig_ns
            if lane_warm:
                saved = max(
                    0.0,
                    self.cost_model.cold_reference_ns(spec)
                    - stats.reconfig_ns,
                )
            else:
                self.cost_model.record_cold_run(spec, stats.reconfig_ns)
                saved = 0.0
            runs.append(
                WorkerRun(stats=stats, warm=lane_warm, reconfig_saved_ns=saved)
            )
        return runs


class FabricPool:
    """A fixed set of workers sharing one residency cost model."""

    def __init__(
        self,
        size: int,
        session_factory: SessionFactory = default_session_factory,
        *,
        failure_threshold: int = 3,
        breaker_factory: Callable[[], CircuitBreaker] | None = None,
    ) -> None:
        if size < 1:
            raise ServeError(f"pool size must be >= 1, got {size}")
        self.cost_model = ResidencyCostModel(session_factory)
        self.workers = [
            FabricWorker(
                f"fabric-{i}",
                session_factory,
                self.cost_model,
                failure_threshold=failure_threshold,
                breaker=breaker_factory() if breaker_factory else None,
            )
            for i in range(size)
        ]

    def __len__(self) -> int:
        return len(self.workers)

    def __iter__(self):
        return iter(self.workers)

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------

    def worker(self, worker_id: str) -> FabricWorker:
        for member in self.workers:
            if member.id == worker_id:
                return member
        raise ServeError(f"no worker {worker_id!r} in pool")

    def available_workers(self) -> list[FabricWorker]:
        """Workers the scheduler may still place jobs on."""
        return [w for w in self.workers if w.available]

    def quarantined_workers(self) -> list[FabricWorker]:
        return [
            w for w in self.workers if w.health is HealthState.QUARANTINED
        ]

    def breaker_open_workers(self) -> list[FabricWorker]:
        """Workers sidelined *only* by a tripped breaker (they will
        re-admit themselves after the cooldown)."""
        return [w for w in self.workers if w.breaker_open]

    def recoverable(self) -> bool:
        """Can this pool ever serve another job without operator help?

        True when some worker is available now **or** is merely behind
        an open breaker whose cooldown will elapse.  False only when
        every worker is quarantined — the PR 3 dead-pool condition.
        """
        return any(
            w.health is not HealthState.QUARANTINED for w in self.workers
        )

    @property
    def quarantine_count(self) -> int:
        """Lifetime number of eject events across the pool."""
        return sum(w.quarantines for w in self.workers)

    @property
    def total_reconfig_ns(self) -> float:
        return sum(w.reconfig_sim_ns for w in self.workers)

    @property
    def total_busy_ns(self) -> float:
        return sum(w.busy_sim_ns for w in self.workers)

    @property
    def total_cold_starts(self) -> int:
        return sum(w.cold_starts for w in self.workers)
