"""Physical constants and unit helpers shared across the library.

All times inside the library are expressed in **nanoseconds** (float) and all
frequencies in **hertz** unless a name says otherwise.  The constants below
are the published reMORPH / ICAP figures the paper's evaluation is built on
(IPDPSW 2013, Sections 2-3):

* tiles clock at 400 MHz, i.e. one instruction every 2.5 ns;
* the reconfiguration port (ICAP) sustains 180 MB/s;
* a data-memory word is 48 bits (6 bytes) -> 33.33 ns to reload one word;
* an instruction-memory word is 72 bits (9 bytes) -> 50 ns to reload one.
"""

from __future__ import annotations

NS_PER_S = 1e9
US_PER_S = 1e6
MS_PER_S = 1e3

#: Tile clock frequency (Hz).  reMORPH tiles run at 300-400 MHz depending on
#: the device speed grade; the paper's numbers all use 400 MHz.
TILE_CLOCK_HZ: float = 400e6

#: Duration of one tile clock cycle in nanoseconds (2.5 ns at 400 MHz).
CYCLE_NS: float = NS_PER_S / TILE_CLOCK_HZ

#: Sustained ICAP reconfiguration bandwidth in bytes per second (180 MB/s,
#: achievable per Liu et al., FPL 2009 -- reference [2] of the paper).
ICAP_BYTES_PER_S: float = 180e6

#: Width of a data-memory word in bits (two 512x48 BRAMs per tile).
DATA_WORD_BITS: int = 48

#: Width of an instruction-memory word in bits (one 512x72 BRAM per tile).
INSTR_WORD_BITS: int = 72

#: Number of data words per tile data memory.
DATA_MEM_WORDS: int = 512

#: Number of instruction words per tile instruction memory.
INSTR_MEM_WORDS: int = 512

#: Number of wires in one inter-tile link (one data word wide).
LINK_WIRES: int = DATA_WORD_BITS

#: Time to reload one data-memory word over the ICAP, in ns.
#: 48 bits = 6 bytes; 6 / 180e6 s = 33.33 ns.  Quoted directly in Sec. 3.1.
DMEM_WORD_RELOAD_NS: float = (DATA_WORD_BITS / 8) / ICAP_BYTES_PER_S * NS_PER_S

#: Time to reload one instruction-memory word over the ICAP, in ns.
#: 72 bits = 9 bytes; 9 / 180e6 s = 50 ns.
IMEM_WORD_RELOAD_NS: float = (INSTR_WORD_BITS / 8) / ICAP_BYTES_PER_S * NS_PER_S

#: Area of one tile in slice LUTs (Sec. 2: "a very low footprint of 200
#: slice LUTs").
TILE_AREA_SLICE_LUTS: int = 200


def cycles_to_ns(cycles: float, clock_hz: float = TILE_CLOCK_HZ) -> float:
    """Convert a cycle count to nanoseconds at the given clock."""
    return cycles * NS_PER_S / clock_hz


def ns_to_cycles(ns: float, clock_hz: float = TILE_CLOCK_HZ) -> float:
    """Convert nanoseconds to (fractional) cycles at the given clock."""
    return ns * clock_hz / NS_PER_S


def bytes_to_reload_ns(nbytes: float, bandwidth: float = ICAP_BYTES_PER_S) -> float:
    """Time in ns to push ``nbytes`` through a reconfiguration port."""
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes}")
    return nbytes / bandwidth * NS_PER_S


def throughput_per_s(period_ns: float) -> float:
    """Items per second given a steady-state period in ns."""
    if period_ns <= 0:
        raise ValueError(f"period must be positive, got {period_ns}")
    return NS_PER_S / period_ns
