"""SEU fault injection, ICAP readback scrubbing, and recovery.

The partial-reconfiguration machinery the paper builds for *performance*
(swap one tile's bitstream while the others compute) is the same
machinery that makes the fabric *repairable*: the single ICAP can read
configuration frames back, compare them against golden images, rewrite
exactly the corrupted words, and — when a tile turns out stuck-at —
stream its state onto a spare.  This package models that whole loop:

* :mod:`repro.faults.model` — fault events, classes (transient vs.
  hard), targets (data memory / instruction memory / link state), and
  per-fault lifecycle records;
* :mod:`repro.faults.injector` — seeded, reproducible injection on a
  Poisson SEU timeline or from scripted campaigns, with stuck-at
  re-assertion;
* :mod:`repro.faults.scrubber` — frame-level readback and partial /
  full repair, all charged on the shared
  :class:`~repro.fabric.icap.IcapPort` timeline so scrub traffic
  competes with epoch reconfiguration exactly as Eq. 1 prices it;
* :mod:`repro.faults.campaign` — the epoch-boundary campaign driver:
  inject due faults, scrub, roll back to the last verified checkpoint
  on detection, re-run, and remap hard-failed tiles onto spares via
  :mod:`repro.mapping.spare`.

``python -m repro faults`` walks through both a transient shower and a
hard-fault remap; ``benchmarks/bench_faults.py`` measures the overhead
vs. scrub-period trade and the partial-repair speedup.
"""

from repro.faults.campaign import (
    CampaignConfig,
    CampaignResult,
    run_campaign,
    used_coords,
)
from repro.faults.injector import FaultInjector
from repro.faults.model import (
    FaultClass,
    FaultEvent,
    FaultTarget,
    InjectionRecord,
    flip_word,
)
from repro.faults.scrubber import ReadbackScrubber, RepairReport, ScrubReport

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "FaultClass",
    "FaultEvent",
    "FaultInjector",
    "FaultTarget",
    "InjectionRecord",
    "ReadbackScrubber",
    "RepairReport",
    "ScrubReport",
    "flip_word",
    "run_campaign",
    "used_coords",
]
