"""Readback scrubbing and repair over the shared ICAP timeline.

The prototype's single configuration port does double duty: it streams
epoch bitstreams *and* scrubs — reads configuration frames back, checks
them, and rewrites corrupted words.  :class:`ReadbackScrubber` charges
both activities on the same :class:`~repro.fabric.icap.IcapPort`
busy-until timeline (labels prefixed ``scrub:`` so reports can split the
bandwidth), which is exactly the Eq. 1 interaction the paper's cost
model predicts: scrub traffic delays reconfiguration and vice versa.

Detection is modeled at the parity/ECC level: the scrubber checks each
live :class:`~repro.faults.model.InjectionRecord` for *persistence* — a
word still holding its corrupted value is flagged, a word legitimately
overwritten since the strike is masked.  Per-coordinate consecutive-
detection streaks identify stuck-at faults (a repaired word that reads
corrupt again scrub after scrub), which the campaign turns into a
spare-tile remap.

Repair has two policies, both rolling the fabric back to the last
verified :class:`~repro.fabric.rtms.FabricCheckpoint`:

* ``partial`` — rewrite only the words that differ from the checkpoint
  (via the memories' ``diff``), 33.33 ns per 48-bit data word and 50 ns
  per 72-bit instruction word;
* ``full`` — reload every scanned tile wholesale (512 data words plus
  the loaded instruction image), the no-readback baseline.

The benchmark harness compares the two on identical fault scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ScrubError
from repro.fabric.mesh import Mesh
from repro.fabric.rtms import FabricCheckpoint, RuntimeManager
from repro.faults.injector import FaultInjector
from repro.faults.model import Coord, FaultTarget, InjectionRecord
from repro.units import DMEM_WORD_RELOAD_NS, IMEM_WORD_RELOAD_NS

__all__ = ["ReadbackScrubber", "RepairReport", "ScrubReport"]

#: Bytes per data / instruction word on the ICAP.
_DMEM_BYTES = 6
_IMEM_BYTES = 9


@dataclass
class ScrubReport:
    """One readback pass: what was scanned, found and suspected."""

    start_ns: float
    end_ns: float
    coords_scanned: int
    words_read: int
    #: Records found corrupt this pass (new detections *and* re-detections).
    detected: list[InjectionRecord] = field(default_factory=list)
    #: Records that turned out overwritten before detection.
    newly_masked: int = 0
    #: Coordinates whose consecutive-detection streak crossed the
    #: hard-fault threshold this pass.
    hard_suspects: list[Coord] = field(default_factory=list)

    @property
    def readback_ns(self) -> float:
        return self.end_ns - self.start_ns

    @property
    def clean(self) -> bool:
        return not self.detected


@dataclass
class RepairReport:
    """One repair action (rollback rewrite or spare remap) on the ICAP."""

    policy: str
    start_ns: float
    end_ns: float
    dmem_words: int
    imem_words: int
    links: int

    @property
    def repair_ns(self) -> float:
        return self.end_ns - self.start_ns


class ReadbackScrubber:
    """Scans a mesh for SEUs and repairs it from checkpoints.

    Parameters
    ----------
    frame_words:
        Readback granularity: frames of this many words are read per
        ICAP transaction (cost is linear either way; frames shape the
        transfer trace the serialization tests inspect).
    hard_streak:
        Consecutive scrubs a coordinate must stay corrupt (through
        repairs) before it is declared hard-failed.
    """

    def __init__(self, *, frame_words: int = 64, hard_streak: int = 3) -> None:
        if frame_words < 1:
            raise ScrubError(f"frame_words must be >= 1, got {frame_words}")
        if hard_streak < 1:
            raise ScrubError(f"hard_streak must be >= 1, got {hard_streak}")
        self.frame_words = frame_words
        self.hard_streak = hard_streak
        #: Per-coordinate consecutive corrupt-scrub count.
        self._streaks: dict[Coord, int] = {}

    # ------------------------------------------------------------------
    # detection helpers
    # ------------------------------------------------------------------

    @staticmethod
    def still_corrupt(mesh: Mesh, record: InjectionRecord) -> bool:
        """Does the fabric still hold this record's corrupted value?"""
        if record.masked or record.abandoned:
            return False
        if record.target is FaultTarget.DMEM:
            return (
                mesh.tile(record.coord).dmem.peek(record.addr)
                == record.corrupted
            )
        if record.target is FaultTarget.IMEM:
            return record.addr in mesh.tile(record.coord).imem.corrupted_slots()
        return mesh.active_link(record.coord) == record.corrupted

    # ------------------------------------------------------------------
    # readback scan
    # ------------------------------------------------------------------

    def scan(
        self,
        rtms: RuntimeManager,
        injector: FaultInjector,
        *,
        coords: list[Coord] | None = None,
    ) -> ScrubReport:
        """Read back ``coords`` (default: whole mesh) and check records.

        Charges one ICAP transaction per ``frame_words`` frame of every
        scanned tile's data memory plus its loaded instruction words
        (labels ``scrub:rb:<coord>``), then classifies every live
        injection record: still-corrupt records are detected (or
        re-detected after a repair — the streak input), records whose
        word was legitimately overwritten before first detection are
        masked.  Advances ``rtms.now_ns`` to the readback end: the
        boundary blocks on scrub completion.
        """
        mesh = rtms.mesh
        scanned = (
            [tile.coord for tile in mesh] if coords is None else list(coords)
        )
        start_ns = rtms.now_ns
        words_read = 0
        end_ns = start_ns
        for coord in scanned:
            tile = mesh.tile(coord)
            n_words = tile.dmem.size
            words_read += n_words + tile.imem.loaded_words()
            # Data frames.
            for base in range(0, n_words, self.frame_words):
                frame = min(self.frame_words, n_words - base)
                _, end_ns = rtms.icap.schedule(
                    frame * _DMEM_BYTES,
                    earliest_ns=start_ns,
                    label=f"scrub:rb:d{coord}",
                )
            # Loaded instruction image (one readback per frame).
            imem_words = tile.imem.loaded_words()
            for base in range(0, imem_words, self.frame_words):
                frame = min(self.frame_words, imem_words - base)
                _, end_ns = rtms.icap.schedule(
                    frame * _IMEM_BYTES,
                    earliest_ns=start_ns,
                    label=f"scrub:rb:i{coord}",
                )
        end_ns = max(end_ns, start_ns)

        report = ScrubReport(
            start_ns=start_ns,
            end_ns=end_ns,
            coords_scanned=len(scanned),
            words_read=words_read,
        )
        scanned_set = set(scanned)
        corrupt_coords: set[Coord] = set()
        for record in injector.records:
            if record.masked or record.abandoned:
                continue
            if record.coord not in scanned_set:
                continue
            if self.still_corrupt(mesh, record):
                corrupt_coords.add(record.coord)
                if record.detected_at_ns is None:
                    record.detected_at_ns = end_ns
                else:
                    record.redetections += 1
                report.detected.append(record)
            elif record.detected_at_ns is None:
                record.masked = True
                report.newly_masked += 1
        for coord in scanned:
            if coord in corrupt_coords:
                streak = self._streaks.get(coord, 0) + 1
                self._streaks[coord] = streak
                if streak >= self.hard_streak:
                    report.hard_suspects.append(coord)
            else:
                self._streaks.pop(coord, None)
        rtms.now_ns = max(rtms.now_ns, end_ns)
        return report

    def reset_streak(self, coord: Coord) -> None:
        """Forget a coordinate's streak (after remapping it away)."""
        self._streaks.pop(coord, None)

    # ------------------------------------------------------------------
    # repair
    # ------------------------------------------------------------------

    def repair(
        self,
        rtms: RuntimeManager,
        checkpoint: FabricCheckpoint,
        *,
        policy: str = "partial",
        coords: list[Coord] | None = None,
    ) -> RepairReport:
        """Roll the fabric back to ``checkpoint`` and charge the rewrite.

        ``partial`` charges exactly the words (and links) that differ
        from the checkpoint — the readback-scrub advantage; ``full``
        charges a wholesale reload of every repaired tile.  Both end in
        the same functional state (:meth:`RuntimeManager.restore`), so
        campaigns can compare policies on identical scenarios.  Advances
        ``rtms.now_ns`` past the repair traffic.
        """
        if policy not in ("partial", "full"):
            raise ScrubError(f"unknown repair policy {policy!r}")
        mesh = rtms.mesh
        targets = (
            list(checkpoint.tiles) if coords is None else list(coords)
        )
        start_ns = rtms.now_ns
        end_ns = start_ns
        dmem_words = 0
        imem_words = 0
        links = 0
        for coord in targets:
            tile = mesh.tile(coord)
            if policy == "partial":
                n_d = len(tile.dmem.diff(checkpoint.dmem_words(coord)))
                n_i = len(tile.imem.diff(checkpoint.imem_slots(coord)))
            else:
                n_d = tile.dmem.size
                n_i = sum(
                    1 for slot in checkpoint.imem_slots(coord) if slot is not None
                )
            if n_d:
                _, end_ns = rtms.icap.schedule(
                    n_d * _DMEM_BYTES,
                    earliest_ns=start_ns,
                    label=f"scrub:rw:d{coord}",
                )
                dmem_words += n_d
            if n_i:
                _, end_ns = rtms.icap.schedule(
                    n_i * _IMEM_BYTES,
                    earliest_ns=start_ns,
                    label=f"scrub:rw:i{coord}",
                )
                imem_words += n_i
            want = checkpoint.links.get(coord)
            if mesh.active_link(coord) != want or policy == "full":
                _, end_ns = rtms.icap.schedule_fixed(
                    rtms.link_cost_ns,
                    earliest_ns=start_ns,
                    label=f"scrub:rw:l{coord}",
                )
                links += 1
        rtms.restore(checkpoint)
        end_ns = max(end_ns, start_ns)
        rtms.now_ns = max(rtms.now_ns, end_ns)
        return RepairReport(
            policy=policy,
            start_ns=start_ns,
            end_ns=end_ns,
            dmem_words=dmem_words,
            imem_words=imem_words,
            links=links,
        )

    @staticmethod
    def full_reload_ns(rtms: RuntimeManager, coord: Coord) -> float:
        """Modeled time to reload one tile wholesale (the baseline)."""
        tile = rtms.mesh.tile(coord)
        return (
            tile.dmem.size * DMEM_WORD_RELOAD_NS
            + tile.imem.loaded_words() * IMEM_WORD_RELOAD_NS
        )
