"""``python -m repro faults`` — the fault-tolerance walkthrough.

Two scenarios, both deterministic (fixed seed):

1. **Transient SEU shower over an FFT.**  A 64-point fabric FFT runs
   under a seeded Poisson SEU timeline with scrubbing at every epoch
   boundary; the demo verifies the scrubbed output is *bit-identical*
   to the fault-free golden run and prints the detection/repair
   statistics and the scrub share of the ICAP bandwidth.

2. **Hard fault and spare-tile remap.**  A single-tile FFT on a 1x2
   mesh takes a stuck-at data-memory fault; scrubbing repairs it,
   watches it re-assert, declares the tile hard-failed and streams the
   workload onto the spare — the output (read from the spare) still
   matches the golden run.
"""

from __future__ import annotations

import numpy as np

from repro.fabric.icap import IcapPort
from repro.fabric.mesh import Mesh
from repro.fabric.rtms import RuntimeManager
from repro.faults.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultClass, FaultEvent, FaultTarget
from repro.faults.scrubber import ReadbackScrubber
from repro.kernels.fft.decompose import FFTPlan
from repro.kernels.fft.runner import FabricFFT

__all__ = ["main"]


def _input(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(n) + 1j * rng.standard_normal(n)) * 0.05


def _golden(fft: FabricFFT, x: np.ndarray) -> tuple[np.ndarray, float]:
    result = fft.run(x)
    return result.output, result.total_ns


def _summary(result: CampaignResult) -> list[str]:
    lines = [
        f"  epochs run            : {result.epochs_run} "
        f"(+{result.retried_epochs} retried)",
        f"  faults injected       : {result.injected}",
        f"  detected / corrected  : {result.detected} / {result.corrected}",
        f"  masked (overwritten)  : {result.masked}",
        f"  rollbacks             : {result.rollbacks}",
        f"  hard failures         : {len(result.hard_failures)} "
        f"{result.remaps if result.remaps else ''}".rstrip(),
        f"  mean detection latency: {result.mean_detection_latency_ns:12.1f} ns",
        f"  mean time-to-repair   : {result.mean_mttr_ns:12.1f} ns",
        f"  total runtime         : {result.total_ns:12.1f} ns",
        f"  ICAP scrub share      : {100 * result.scrub_bandwidth_fraction:.1f}% "
        f"({result.scrub_ns:.0f} ns scrub vs {result.reconfig_ns:.0f} ns reconfig)",
    ]
    return lines


def transient_shower(seed: int = 7) -> tuple[CampaignResult, bool]:
    """Scenario 1: Poisson transient SEUs over a 64-point FFT."""
    plan = FFTPlan(64, 16, 1)
    fft = FabricFFT(plan)
    x = _input(plan.n, seed)
    golden, golden_ns = _golden(fft, x)

    mesh = Mesh(plan.rows, plan.cols)
    rtms = RuntimeManager(mesh, IcapPort())
    injector = FaultInjector(mesh, seed=seed)
    injector.schedule_poisson(
        rate_per_ns=1.0 / 40_000.0,
        until_ns=golden_ns * 3,
        targets=(FaultTarget.DMEM, FaultTarget.IMEM),
    )
    result = run_campaign(
        rtms,
        fft.artifact,
        injector,
        ReadbackScrubber(),
        CampaignConfig(scrub_period=1, repair_policy="partial"),
        payload=x,
    )
    output = fft.read_output(mesh)
    return result, bool(np.array_equal(output, golden))


def hard_fault_remap(seed: int = 11) -> tuple[CampaignResult, bool]:
    """Scenario 2: stuck-at fault, hard declaration, spare-tile remap."""
    plan = FFTPlan(16, 16, 1)  # single working tile at (0, 0)
    fft = FabricFFT(plan)
    x = _input(plan.n, seed)
    golden, _ = _golden(fft, x)

    mesh = Mesh(1, 2)  # (0, 1) is the reserved spare
    rtms = RuntimeManager(mesh, IcapPort())
    injector = FaultInjector(mesh, seed=seed)
    injector.script(
        [
            FaultEvent(
                time_ns=0.0,
                coord=(0, 0),
                target=FaultTarget.DMEM,
                addr=3,
                bit=17,
                fault_class=FaultClass.HARD,
                label="stuck-at",
            )
        ]
    )
    result = run_campaign(
        rtms,
        fft.artifact,
        injector,
        ReadbackScrubber(hard_streak=2),
        CampaignConfig(scrub_period=1, max_repair_attempts=4),
        payload=x,
    )
    # The workload now lives on the spare; read the output from there.
    spare_mesh = Mesh(plan.rows, plan.cols)
    src = mesh.tile(result.remaps[0][1]) if result.remaps else mesh.tile((0, 0))
    spare_mesh.tile((0, 0)).dmem.load_words(src.dmem.snapshot())
    output = fft.read_output(spare_mesh)
    return result, bool(np.array_equal(output, golden))


def main() -> int:
    print("=== Fault model demo: SEU injection + ICAP readback scrubbing ===")
    print()
    print("[1] transient SEU shower over a 64-point fabric FFT")
    result, exact = transient_shower()
    for line in _summary(result):
        print(line)
    print(f"  output vs fault-free  : {'bit-identical' if exact else 'MISMATCH'}")
    print()
    print("[2] stuck-at fault -> hard declaration -> spare-tile remap")
    result, exact = hard_fault_remap()
    for line in _summary(result):
        print(line)
    print(f"  output vs fault-free  : {'bit-identical' if exact else 'MISMATCH'}")
    return 0 if exact else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
