"""Epoch-boundary fault campaigns: inject → scrub → repair → re-run.

:func:`run_campaign` drives an epoch schedule through a
:class:`~repro.fabric.rtms.RuntimeManager` under SEU fire, with the full
recovery loop the paper's partial-reconfiguration story enables:

1. at every epoch boundary, due faults strike (and hard faults
   re-assert);
2. every ``scrub_period`` boundaries the
   :class:`~repro.faults.scrubber.ReadbackScrubber` reads the active
   tiles back over the shared ICAP;
3. a detection rolls the fabric back to the last *verified* checkpoint
   (repair traffic charged per policy: partial word rewrite vs. full
   tile reload), re-runs the epochs since that checkpoint, and re-scrubs
   until clean;
4. a coordinate that stays corrupt through ``hard_streak`` consecutive
   scrubs is declared hard-failed: its checkpointed state is streamed
   onto a healthy spare tile (:mod:`repro.mapping.spare` picks it), all
   remaining epochs are remapped, and the coordinate is retired.

When scrubbing runs at every boundary (``scrub_period=1``) the ordering
guarantees *exact* outputs: faults are detected and repaired before the
epoch that would consume them executes, so the final memories are
bit-identical to a fault-free run.  Larger periods trade output
guarantees for bandwidth: a fault can be read (and propagated) by an
epoch, be overwritten (masked), and escape the persistence check — the
scrub-period sweep in ``benchmarks/bench_faults.py`` quantifies the
overhead side of that trade.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ScrubError
from repro.fabric.rtms import EpochReport, EpochSpec, RuntimeManager
from repro.faults.injector import FaultInjector
from repro.faults.model import Coord
from repro.faults.scrubber import ReadbackScrubber, RepairReport, ScrubReport
from repro.mapping.spare import plan_remap, remap_epochs
from repro.units import DMEM_WORD_RELOAD_NS, IMEM_WORD_RELOAD_NS

__all__ = ["CampaignConfig", "CampaignResult", "run_campaign", "used_coords"]


@dataclass(frozen=True)
class CampaignConfig:
    """Tunables of one fault campaign."""

    #: Scrub every this many epoch boundaries (1 = every boundary,
    #: 0 = never — faults run free, the unprotected baseline).
    scrub_period: int = 1
    #: ``"partial"`` (rewrite differing words) or ``"full"`` (reload tiles).
    repair_policy: str = "partial"
    #: Give up (raise ScrubError) after this many repair attempts at one
    #: boundary; must exceed the scrubber's ``hard_streak`` so stuck-at
    #: faults reach their spare-tile remap before the limit.
    max_repair_attempts: int = 6
    #: Remap hard-failed tiles onto spares (False: raise instead).
    spare_remap: bool = True

    def __post_init__(self) -> None:
        if self.scrub_period < 0:
            raise ScrubError(
                f"scrub_period must be >= 0, got {self.scrub_period}"
            )
        if self.repair_policy not in ("partial", "full"):
            raise ScrubError(f"unknown repair policy {self.repair_policy!r}")
        if self.max_repair_attempts < 1:
            raise ScrubError(
                f"max_repair_attempts must be >= 1, got {self.max_repair_attempts}"
            )


@dataclass
class CampaignResult:
    """Everything a campaign measured."""

    config: CampaignConfig
    epochs_run: int = 0
    #: First-execution reports, in schedule order (retries excluded).
    epoch_reports: list[EpochReport] = field(default_factory=list)
    scrub_reports: list[ScrubReport] = field(default_factory=list)
    repairs: list[RepairReport] = field(default_factory=list)
    #: Rollback + re-execution events (fabric restored to a checkpoint).
    rollbacks: int = 0
    #: Epoch re-executions forced by rollbacks.
    retried_epochs: int = 0
    #: Hard-failed coordinates, in declaration order.
    hard_failures: list[Coord] = field(default_factory=list)
    #: (failed, spare) pairs of executed remaps.
    remaps: list[tuple[Coord, Coord]] = field(default_factory=list)
    injected: int = 0
    detected: int = 0
    corrected: int = 0
    masked: int = 0
    abandoned: int = 0
    detection_latencies_ns: list[float] = field(default_factory=list)
    mttr_ns: list[float] = field(default_factory=list)
    total_ns: float = 0.0
    #: ICAP busy time spent on scrub traffic (readback + repair + remap).
    scrub_ns: float = 0.0
    #: ICAP busy time spent on ordinary epoch reconfiguration.
    reconfig_ns: float = 0.0

    @property
    def scrub_bandwidth_fraction(self) -> float:
        """Share of configuration-port busy time consumed by scrubbing."""
        busy = self.scrub_ns + self.reconfig_ns
        return self.scrub_ns / busy if busy > 0 else 0.0

    @property
    def mean_detection_latency_ns(self) -> float:
        lat = self.detection_latencies_ns
        return sum(lat) / len(lat) if lat else 0.0

    @property
    def mean_mttr_ns(self) -> float:
        return sum(self.mttr_ns) / len(self.mttr_ns) if self.mttr_ns else 0.0


def used_coords(epochs: list[EpochSpec]) -> set[Coord]:
    """Every coordinate an epoch list touches (for spare planning)."""
    used: set[Coord] = set()
    for spec in epochs:
        used |= set(spec.programs) | set(spec.data_images) | set(spec.pokes)
        used |= set(spec.links) | set(spec.run) | set(spec.depends_on)
    return used


def _remap_failed(
    rtms: RuntimeManager,
    checkpoint,
    failed: Coord,
    remaining: list[EpochSpec],
    retired: set[Coord],
) -> tuple[Coord, float]:
    """Move ``failed``'s checkpoint state onto a spare; returns (spare, ns).

    Chooses the spare with :func:`repro.mapping.spare.plan_remap` over
    the coordinates the remaining schedule still uses, streams the
    displaced tile image onto it (full reload of the one moved tile —
    charged ``scrub:remap:``), rewrites the checkpoint in place, and
    detaches the failed tile's link.  The *epoch* rewrite is the
    caller's job (it owns both the pending and the future epoch lists).
    """
    mesh = rtms.mesh
    used = used_coords(remaining) | {failed}
    coord_map = plan_remap(
        mesh.rows, mesh.cols, used, {failed} | set(retired)
    )
    spare = coord_map[failed]
    # Stream the displaced tile image onto the spare (one full tile).
    state = checkpoint.tiles.pop(failed)
    checkpoint.tiles[spare] = state
    n_imem = sum(1 for slot in state["imem"] if slot is not None)
    nbytes = len(state["dmem"]) * 6 + n_imem * 9
    _, end_ns = rtms.icap.schedule(
        nbytes, earliest_ns=rtms.now_ns, label=f"scrub:remap:{failed}->{spare}"
    )
    mesh.tile(spare).restore(state)
    # Carry the link over and detach the dead tile.
    direction = checkpoint.links.pop(failed, None)
    checkpoint.links[spare] = direction
    checkpoint.links[failed] = None
    mesh.configure_link(failed, None)
    if direction is not None:
        mesh.configure_link(spare, direction)
        _, end_ns = rtms.icap.schedule_fixed(
            rtms.link_cost_ns, earliest_ns=rtms.now_ns,
            label=f"scrub:remap:l{spare}",
        )
    rtms.now_ns = max(rtms.now_ns, end_ns)
    return spare, end_ns


def run_campaign(
    rtms: RuntimeManager,
    epochs,
    injector: FaultInjector,
    scrubber: ReadbackScrubber | None = None,
    config: CampaignConfig | None = None,
    *,
    payload=None,
    tag: str = "",
) -> CampaignResult:
    """Execute ``epochs`` under fault injection with scrub/repair recovery.

    ``epochs`` is either a plain ``list[EpochSpec]`` or a compiled
    artifact (:class:`repro.compile.CompiledArtifact`): an artifact is
    expanded to its setup prologue plus one work item bound from
    ``payload``/``tag`` — so a campaign rollback/re-run reuses the
    cached, validated configuration instead of hand-assembled epochs.
    The expansion happens here (not via ``rtms.execute_artifact``) on
    purpose: remap campaigns run schedules on meshes *larger* than the
    compiled shape to keep spare tiles in reserve.

    The injector must target ``rtms.mesh``.  Returns the full
    :class:`CampaignResult`; raises :class:`~repro.errors.ScrubError`
    when a boundary cannot be cleaned within ``max_repair_attempts``
    (e.g. a hard fault with ``spare_remap=False`` or no spare left).
    """
    if hasattr(epochs, "bind"):  # a CompiledArtifact, duck-typed
        artifact = epochs
        epochs = artifact.setup_epochs() + artifact.bind(payload, tag)
    elif payload is not None:
        raise ScrubError("payload is only meaningful with a compiled artifact")
    scrubber = scrubber if scrubber is not None else ReadbackScrubber()
    config = config if config is not None else CampaignConfig()
    if config.max_repair_attempts < scrubber.hard_streak + 1:
        raise ScrubError(
            f"max_repair_attempts ({config.max_repair_attempts}) must exceed "
            f"hard_streak ({scrubber.hard_streak}) for remap to engage"
        )
    result = CampaignResult(config=config)
    mesh = rtms.mesh
    retired: set[Coord] = set(injector.retired_coords)
    remaining = list(epochs)
    checkpoint = rtms.checkpoint()
    pending: list[EpochSpec] = []

    def active() -> list[Coord]:
        return [t.coord for t in mesh if t.coord not in retired]

    def scrub_boundary() -> None:
        """Scan; on detection repair/rollback/re-run until verified clean."""
        nonlocal checkpoint, pending
        attempts = 0
        while True:
            report = scrubber.scan(rtms, injector, coords=active())
            result.scrub_reports.append(report)
            if report.clean:
                break
            attempts += 1
            if attempts > config.max_repair_attempts:
                raise ScrubError(
                    f"boundary still corrupt after {attempts - 1} repair "
                    f"attempts (coords "
                    f"{sorted({r.coord for r in report.detected})})"
                )
            # Declare hard failures before repairing: their state moves
            # with the checkpoint remap below.
            declared = [c for c in report.hard_suspects if c not in retired]
            if declared and not config.spare_remap:
                raise ScrubError(
                    f"hard fault at {declared[0]} with spare_remap disabled"
                )
            repair = scrubber.repair(
                rtms, checkpoint, policy=config.repair_policy
            )
            result.repairs.append(repair)
            result.rollbacks += 1
            for coord in declared:
                spare, _ = _remap_failed(
                    rtms, checkpoint, coord, pending + remaining, retired
                )
                coord_map = {coord: spare}
                pending = remap_epochs(
                    pending, coord_map, rows=mesh.rows, cols=mesh.cols
                )
                remaining[:] = remap_epochs(
                    remaining, coord_map, rows=mesh.rows, cols=mesh.cols
                )
                retired.add(coord)
                injector.retire(coord)
                scrubber.reset_streak(coord)
                result.hard_failures.append(coord)
                result.remaps.append((coord, spare))
            # Stuck cells read corrupt again immediately after rollback.
            injector.reassert()
            if pending:
                rerun = rtms.execute(pending)
                result.retried_epochs += len(rerun.epochs)
                injector.reassert()
        # Verified clean: everything detected is now repaired.
        for record in injector.records:
            if (
                record.detected_at_ns is not None
                and record.repaired_at_ns is None
                and not record.abandoned
            ):
                record.repaired_at_ns = rtms.now_ns
        checkpoint = rtms.checkpoint()
        pending = []

    boundary = 0
    while remaining:
        injector.inject_due(rtms.now_ns)
        injector.reassert()
        if config.scrub_period and boundary % config.scrub_period == 0:
            scrub_boundary()
        spec = remaining.pop(0)
        run = rtms.execute([spec])
        result.epoch_reports.extend(run.epochs)
        result.epochs_run += 1
        pending.append(spec)
        boundary += 1
    # Final boundary: catch faults that struck during the tail epochs.
    injector.inject_due(rtms.now_ns)
    injector.reassert()
    if config.scrub_period:
        scrub_boundary()

    counts = injector.counts()
    result.injected = counts["injected"]
    result.detected = counts["detected"]
    result.corrected = counts["repaired"]
    result.masked = counts["masked"]
    result.abandoned = counts["abandoned"]
    result.detection_latencies_ns = [
        r.detection_latency_ns
        for r in injector.records
        if r.detection_latency_ns is not None
    ]
    result.mttr_ns = [
        r.time_to_repair_ns
        for r in injector.records
        if r.time_to_repair_ns is not None
    ]
    result.total_ns = rtms.now_ns
    result.scrub_ns = rtms.icap.busy_ns_by_prefix("scrub:")
    result.reconfig_ns = rtms.icap.total_busy_ns - result.scrub_ns
    return result


def partial_vs_full_repair_ns(
    rtms: RuntimeManager, checkpoint, coords: list[Coord], corrupt_words: int
) -> tuple[float, float]:
    """Modeled repair times: rewrite ``corrupt_words`` vs. reload tiles.

    The acceptance comparison: a partial repair pays per corrupted data
    word, the baseline reloads every affected tile wholesale.
    """
    partial = corrupt_words * DMEM_WORD_RELOAD_NS
    full = 0.0
    for coord in coords:
        tile = rtms.mesh.tile(coord)
        full += tile.dmem.size * DMEM_WORD_RELOAD_NS
        full += tile.imem.loaded_words() * IMEM_WORD_RELOAD_NS
    return partial, full
