"""SEU fault model: events, classes, targets and lifecycle records.

The paper's Sec. 5 motivation for partial reconfiguration includes fault
tolerance: the same ICAP path that swaps epoch bitstreams can *scrub*
configuration memory — read frames back, compare against golden images,
and rewrite only corrupted words.  This package models that loop.  The
vocabulary lives here:

* :class:`FaultEvent` — one scheduled single-event upset: at ``time_ns``,
  flip ``bit`` of word ``addr`` in a tile memory, or derange a tile's
  link attachment;
* :class:`FaultClass` — ``TRANSIENT`` upsets go away once rewritten,
  ``HARD`` faults (stuck-at) re-assert after every repair and eventually
  force the tile out of service (spare-tile remap);
* :class:`FaultTarget` — data memory, instruction memory, or the link
  configuration state;
* :class:`InjectionRecord` — the mutable lifecycle of one injected
  event: original/corrupted values, when scrubbing detected it, when
  repair restored it, whether a legitimate overwrite masked it before
  detection, whether its tile was abandoned to a spare.

Everything is deterministic: an event fully determines its corruption
(no randomness at injection time), so campaigns with a fixed seed
reproduce byte-for-byte.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import FaultError
from repro.fabric.fixedpoint import wrap_word
from repro.units import DATA_WORD_BITS, INSTR_WORD_BITS

__all__ = [
    "FaultClass",
    "FaultEvent",
    "FaultTarget",
    "InjectionRecord",
    "flip_word",
]

Coord = tuple[int, int]

#: Unsigned mask of a 48-bit data word (two's-complement view).
_WORD_MASK = (1 << DATA_WORD_BITS) - 1


class FaultClass(enum.Enum):
    """Persistence class of an upset."""

    #: Goes away once the word is rewritten (classic SEU).
    TRANSIENT = "transient"
    #: Stuck-at: re-asserts after every rewrite; only a spare-tile remap
    #: removes it from the active fabric.
    HARD = "hard"


class FaultTarget(enum.Enum):
    """Which piece of per-tile state the upset hits."""

    DMEM = "dmem"
    IMEM = "imem"
    LINK = "link"


def flip_word(word: int, bit: int) -> int:
    """Flip one bit of a signed 48-bit data word (two's complement).

    The word is viewed as its 48-bit unsigned pattern, the bit is
    XOR-ed, and the result is re-wrapped to the signed range — exactly
    what an SEU does to a BRAM cell.
    """
    if not 0 <= bit < DATA_WORD_BITS:
        raise FaultError(f"bit {bit} outside data word [0, {DATA_WORD_BITS})")
    return wrap_word((word & _WORD_MASK) ^ (1 << bit))


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled upset.

    Attributes
    ----------
    time_ns:
        Simulated time at which the upset strikes.  The campaign driver
        injects every event whose time has passed at each epoch boundary.
    coord:
        Target tile coordinate.
    target:
        Which state the upset hits (:class:`FaultTarget`).
    addr:
        Word address for memory targets.  For ``IMEM`` the injector
        retargets unloaded slots onto loaded ones (an upset in unused
        SRAM has no architectural effect).  Ignored for ``LINK``.
    bit:
        Bit to flip for ``DMEM``; for ``LINK`` it deterministically
        selects which wrong attachment the port flips to; for ``IMEM``
        it is informational (the decoded model corrupts whole words).
    fault_class:
        ``TRANSIENT`` or ``HARD``.
    label:
        Free-form tag for traces.
    """

    time_ns: float
    coord: Coord
    target: FaultTarget
    addr: int = 0
    bit: int = 0
    fault_class: FaultClass = FaultClass.TRANSIENT
    label: str = ""

    def __post_init__(self) -> None:
        if self.time_ns < 0:
            raise FaultError(f"fault time must be non-negative, got {self.time_ns}")
        if self.addr < 0:
            raise FaultError(f"fault address must be non-negative, got {self.addr}")
        limit = {
            FaultTarget.DMEM: DATA_WORD_BITS,
            FaultTarget.IMEM: INSTR_WORD_BITS,
            FaultTarget.LINK: 64,
        }[self.target]
        if not 0 <= self.bit < limit:
            raise FaultError(
                f"bit {self.bit} out of range for {self.target.value} fault"
            )


@dataclass
class InjectionRecord:
    """Lifecycle of one injected fault, from strike to repair.

    ``original``/``corrupted`` are ints for ``DMEM``, instruction-slot
    objects for ``IMEM`` and :class:`~repro.fabric.links.Direction` (or
    ``None``) for ``LINK``.  Detection works by *persistence*: at scrub
    time the word still holding its corrupted value is flagged (the
    parity/ECC analogue); a word legitimately overwritten in between is
    ``masked`` — the upset had no further architectural effect.
    """

    event: FaultEvent
    #: Effective address (IMEM events may be retargeted to a loaded slot).
    addr: int
    original: object
    corrupted: object
    injected_at_ns: float
    detected_at_ns: float | None = None
    repaired_at_ns: float | None = None
    #: Overwritten by legitimate traffic before detection.
    masked: bool = False
    #: Tile declared hard-failed and remapped to a spare.
    abandoned: bool = False
    #: Times scrubbing found the fault corrupt again after a repair
    #: (hard faults re-assert; the streak drives hard declaration).
    redetections: int = 0

    @property
    def coord(self) -> Coord:
        return self.event.coord

    @property
    def target(self) -> FaultTarget:
        return self.event.target

    @property
    def fault_class(self) -> FaultClass:
        return self.event.fault_class

    @property
    def detection_latency_ns(self) -> float | None:
        """Strike-to-detection latency (None while undetected)."""
        if self.detected_at_ns is None:
            return None
        return self.detected_at_ns - self.event.time_ns

    @property
    def time_to_repair_ns(self) -> float | None:
        """Detection-to-verified-repair time (the per-fault MTTR sample)."""
        if self.detected_at_ns is None or self.repaired_at_ns is None:
            return None
        return self.repaired_at_ns - self.detected_at_ns

    @property
    def status(self) -> str:
        """One-word lifecycle state for reports."""
        if self.abandoned:
            return "abandoned"
        if self.repaired_at_ns is not None:
            return "repaired"
        if self.masked:
            return "masked"
        if self.detected_at_ns is not None:
            return "detected"
        return "latent"
