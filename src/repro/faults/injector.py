"""Seeded, reproducible SEU injection into a mesh.

:class:`FaultInjector` owns a fault *schedule* — either a scripted list
of :class:`~repro.faults.model.FaultEvent` or a Poisson process drawn
from a seeded ``random.Random`` — and applies due events to the mesh on
demand.  Every corruption is a pure function of the event (the RNG is
used only to *build* the schedule), so a campaign with a fixed seed is
bit-reproducible.

Hard (stuck-at) faults are tracked and :meth:`reassert`-ed after every
rollback or re-execution: rewriting a stuck cell does not heal it, which
is what eventually drives the scrubbing streak over its threshold and
triggers the spare-tile remap.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.errors import FaultError
from repro.fabric.links import Direction
from repro.fabric.mesh import Mesh
from repro.faults.model import (
    Coord,
    FaultClass,
    FaultEvent,
    FaultTarget,
    InjectionRecord,
    flip_word,
)
from repro.units import DATA_WORD_BITS

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules and applies SEUs to one mesh.

    Parameters
    ----------
    mesh:
        The fabric under test.
    seed:
        Seed for the schedule RNG (Poisson arrivals, target draws).
    """

    def __init__(self, mesh: Mesh, *, seed: int = 0) -> None:
        self.mesh = mesh
        self.seed = seed
        self._rng = random.Random(seed)
        #: Future events, kept sorted by (time, insertion order).
        self._pending: list[FaultEvent] = []
        #: Lifecycle of every injected event, in injection order.
        self.records: list[InjectionRecord] = []
        #: Hard-fault records that must re-assert after rewrites.
        self._hard: list[InjectionRecord] = []
        #: Coordinates abandoned to spares (no more reasserts/injections).
        self._retired: set[Coord] = set()

    # ------------------------------------------------------------------
    # schedule construction
    # ------------------------------------------------------------------

    def script(self, events: Iterable[FaultEvent]) -> None:
        """Queue an explicit campaign (merged into the pending schedule)."""
        self._pending.extend(events)
        self._pending.sort(key=lambda e: e.time_ns)

    def schedule_poisson(
        self,
        rate_per_ns: float,
        until_ns: float,
        *,
        start_ns: float = 0.0,
        targets: tuple[FaultTarget, ...] = (
            FaultTarget.DMEM,
            FaultTarget.IMEM,
            FaultTarget.LINK,
        ),
        hard_fraction: float = 0.0,
    ) -> list[FaultEvent]:
        """Draw a Poisson SEU timeline over ``[start_ns, until_ns)``.

        Inter-arrival gaps are exponential with mean ``1 / rate_per_ns``;
        each strike picks a uniformly random tile, target kind, word
        address and bit.  A ``hard_fraction`` of strikes (Bernoulli per
        event) are stuck-at.  Events are queued and also returned so
        callers can log the campaign.
        """
        if rate_per_ns <= 0:
            raise FaultError(f"rate must be positive, got {rate_per_ns}")
        if not 0.0 <= hard_fraction <= 1.0:
            raise FaultError(f"hard_fraction must be in [0, 1], got {hard_fraction}")
        if not targets:
            raise FaultError("at least one fault target required")
        events: list[FaultEvent] = []
        t = start_ns
        rng = self._rng
        coords = sorted(tile.coord for tile in self.mesh)
        while True:
            t += rng.expovariate(rate_per_ns)
            if t >= until_ns:
                break
            target = targets[rng.randrange(len(targets))]
            coord = coords[rng.randrange(len(coords))]
            if target is FaultTarget.DMEM:
                addr = rng.randrange(self.mesh.tile(coord).dmem.size)
                bit = rng.randrange(DATA_WORD_BITS)
            elif target is FaultTarget.IMEM:
                addr = rng.randrange(self.mesh.tile(coord).imem.size)
                bit = rng.randrange(72)
            else:
                addr, bit = 0, rng.randrange(64)
            fault_class = (
                FaultClass.HARD
                if rng.random() < hard_fraction
                else FaultClass.TRANSIENT
            )
            events.append(
                FaultEvent(
                    time_ns=t,
                    coord=coord,
                    target=target,
                    addr=addr,
                    bit=bit,
                    fault_class=fault_class,
                )
            )
        self.script(events)
        return events

    def due(self, now_ns: float) -> list[FaultEvent]:
        """Pop every pending event with ``time_ns <= now_ns``."""
        ready: list[FaultEvent] = []
        while self._pending and self._pending[0].time_ns <= now_ns:
            ready.append(self._pending.pop(0))
        return ready

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # injection
    # ------------------------------------------------------------------

    def inject(self, event: FaultEvent, now_ns: float | None = None) -> InjectionRecord:
        """Apply one upset to the mesh; returns its lifecycle record.

        Strikes on retired (spare-remapped) coordinates are recorded as
        immediately masked: the tile is out of service, nothing reads it.
        """
        injected_at = event.time_ns if now_ns is None else now_ns
        if event.coord in self._retired:
            record = InjectionRecord(
                event=event, addr=event.addr, original=None, corrupted=None,
                injected_at_ns=injected_at, masked=True,
            )
            self.records.append(record)
            return record
        tile = self.mesh.tile(event.coord)
        if event.target is FaultTarget.DMEM:
            original = tile.dmem.peek(event.addr)
            corrupted = flip_word(original, event.bit)
            tile.dmem.poke(event.addr, corrupted)
            record = InjectionRecord(
                event=event, addr=event.addr, original=original,
                corrupted=corrupted, injected_at_ns=injected_at,
            )
        elif event.target is FaultTarget.IMEM:
            loaded = tile.imem.loaded_addrs()
            if not loaded:
                # Upset in unused SRAM: no architectural effect.
                record = InjectionRecord(
                    event=event, addr=event.addr, original=None,
                    corrupted=None, injected_at_ns=injected_at, masked=True,
                )
                self.records.append(record)
                return record
            addr = loaded[event.addr % len(loaded)]
            already = set(tile.imem.corrupted_slots())
            original = tile.imem.peek_slot(addr)
            tile.imem.corrupt_slot(addr)
            record = InjectionRecord(
                event=event, addr=addr, original=original,
                corrupted=tile.imem.peek_slot(addr),
                injected_at_ns=injected_at,
                masked=addr in already,  # absorbed by an existing upset
            )
        else:  # LINK
            current = self.mesh.active_link(event.coord)
            options: list[Direction | None] = [
                d for d in Direction if d in self.mesh.neighbours(event.coord)
            ]
            options.append(None)
            options = [d for d in options if d != current]
            corrupted = options[event.bit % len(options)]
            self.mesh.configure_link(event.coord, corrupted)
            record = InjectionRecord(
                event=event, addr=0, original=current, corrupted=corrupted,
                injected_at_ns=injected_at,
            )
        self.records.append(record)
        if event.fault_class is FaultClass.HARD and not record.masked:
            self._hard.append(record)
        return record

    def inject_due(self, now_ns: float) -> list[InjectionRecord]:
        """Inject every due event at ``now_ns``; returns the new records."""
        return [self.inject(event, now_ns=now_ns) for event in self.due(now_ns)]

    # ------------------------------------------------------------------
    # hard-fault persistence
    # ------------------------------------------------------------------

    def reassert(self) -> int:
        """Re-apply every live hard fault (stuck-at semantics).

        Called after any rewrite of fabric state (rollback, repair,
        re-execution): a repaired stuck cell immediately reads corrupt
        again.  Idempotent — the corruption is a fixed function of the
        original injection.  Returns how many faults re-asserted.
        """
        count = 0
        for record in self._hard:
            if record.abandoned or record.coord in self._retired:
                continue
            tile = self.mesh.tile(record.coord)
            if record.target is FaultTarget.DMEM:
                tile.dmem.poke(record.addr, record.corrupted)
            elif record.target is FaultTarget.IMEM:
                tile.imem.corrupt_slot(record.addr)
            else:
                self.mesh.configure_link(record.coord, record.corrupted)
            count += 1
        return count

    def retire(self, coord: Coord) -> int:
        """Abandon a hard-failed coordinate (after a spare-tile remap).

        Every record on the coordinate is marked ``abandoned`` and stops
        re-asserting / being scanned; future strikes on it are masked.
        Returns how many records were abandoned.
        """
        self._retired.add(coord)
        count = 0
        for record in self.records:
            if record.coord == coord and not record.abandoned:
                record.abandoned = True
                count += 1
        self._hard = [r for r in self._hard if not r.abandoned]
        return count

    @property
    def retired_coords(self) -> set[Coord]:
        return set(self._retired)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Injected/detected/repaired/masked/abandoned record counts."""
        out = {
            "injected": len(self.records),
            "detected": 0,
            "repaired": 0,
            "masked": 0,
            "abandoned": 0,
        }
        for record in self.records:
            if record.detected_at_ns is not None:
                out["detected"] += 1
            if record.repaired_at_ns is not None:
                out["repaired"] += 1
            if record.masked:
                out["masked"] += 1
            if record.abandoned:
                out["abandoned"] += 1
        return out
