"""Design-space exploration driver.

Section 3's methodology is a sweep over mapping parameters (columns, link
reconfiguration cost, tile budgets) scored by throughput, area and
utilization.  This package provides the generic machinery:

* :mod:`~repro.dse.sweep` — cartesian parameter sweeps, optionally
  process-parallel;
* :mod:`~repro.dse.objectives` — the scoring metrics;
* :mod:`~repro.dse.pareto` — Pareto-front extraction over
  (throughput, area) and friends;
* :mod:`~repro.dse.explorer` — pre-wired explorations for the two
  kernels;
* :mod:`~repro.dse.report` — plain-text tables/series for the benches.
"""

from repro.dse.sweep import SweepResult, sweep
from repro.dse.objectives import DesignPoint, Objective
from repro.dse.pareto import pareto_front
from repro.dse.explorer import explore_fft, explore_jpeg
from repro.dse.report import format_series, format_table

__all__ = [
    "DesignPoint",
    "Objective",
    "SweepResult",
    "explore_fft",
    "explore_jpeg",
    "format_series",
    "format_table",
    "pareto_front",
    "sweep",
]
