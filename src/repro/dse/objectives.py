"""Design points and scoring objectives.

A :class:`DesignPoint` bundles the three quantities every exploration in
the paper trades off: throughput (items/s), area (tiles / slice LUTs) and
average utilization.  :class:`Objective` wraps a scalarization of these
for single-objective searches; multi-objective exploration goes through
:func:`repro.dse.pareto.pareto_front`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import DSEError
from repro.fabric.area import area_slice_luts

__all__ = ["DesignPoint", "Objective"]


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated design: parameters plus its scored metrics."""

    params: tuple[tuple[str, object], ...]
    throughput_per_s: float
    n_tiles: int
    utilization: float = 0.0
    #: Average power (mW) from :class:`repro.fabric.energy.EnergyModel`;
    #: 0 = not evaluated.
    power_mw: float = 0.0

    def __post_init__(self) -> None:
        if self.n_tiles < 0:
            raise DSEError("n_tiles must be non-negative")
        if self.throughput_per_s < 0:
            raise DSEError("throughput must be non-negative")
        if self.power_mw < 0:
            raise DSEError("power must be non-negative")

    @classmethod
    def make(cls, params: dict[str, object], throughput_per_s: float,
             n_tiles: int, utilization: float = 0.0,
             power_mw: float = 0.0) -> "DesignPoint":
        return cls(
            params=tuple(sorted(params.items())),
            throughput_per_s=throughput_per_s,
            n_tiles=n_tiles,
            utilization=utilization,
            power_mw=power_mw,
        )

    @property
    def area_luts(self) -> int:
        return area_slice_luts(self.n_tiles)

    @property
    def throughput_per_area(self) -> float:
        """The paper's "high performance/area" figure of merit."""
        area = self.area_luts
        return self.throughput_per_s / area if area else 0.0

    @property
    def throughput_per_mw(self) -> float:
        """Performance per watt — the figure of merit the paper's
        introduction motivates CGRAs with."""
        return self.throughput_per_s / self.power_mw if self.power_mw else 0.0

    def param(self, name: str) -> object:
        for key, value in self.params:
            if key == name:
                return value
        raise DSEError(f"design point has no parameter {name!r}")


class Objective(enum.Enum):
    """Scalar objectives for single-objective selection."""

    THROUGHPUT = "throughput"
    AREA = "area"
    THROUGHPUT_PER_AREA = "throughput_per_area"
    UTILIZATION = "utilization"
    THROUGHPUT_PER_WATT = "throughput_per_watt"

    def score(self, point: DesignPoint) -> float:
        """Higher is better for every objective (area is negated)."""
        if self is Objective.THROUGHPUT:
            return point.throughput_per_s
        if self is Objective.AREA:
            return -float(point.area_luts)
        if self is Objective.THROUGHPUT_PER_AREA:
            return point.throughput_per_area
        if self is Objective.THROUGHPUT_PER_WATT:
            return point.throughput_per_mw
        return point.utilization

    def best(self, points: list[DesignPoint]) -> DesignPoint:
        if not points:
            raise DSEError("no design points to choose from")
        return max(points, key=self.score)
