"""Pareto-front extraction over design points.

The throughput/area trade-off of Sec. 3 has no single winner — the
methodology's output is the frontier from which a designer picks per
constraint.  :func:`pareto_front` keeps the points not dominated in
(throughput up, area down), optionally with utilization as a third
dimension.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.dse.objectives import DesignPoint
from repro.errors import DSEError

__all__ = ["pareto_front", "dominates"]

#: Default criteria: maximize throughput, minimize area.
_DEFAULT: tuple[Callable[[DesignPoint], float], ...] = (
    lambda p: p.throughput_per_s,
    lambda p: -float(p.area_luts),
)


def dominates(
    a: DesignPoint,
    b: DesignPoint,
    criteria: Sequence[Callable[[DesignPoint], float]] = _DEFAULT,
) -> bool:
    """True when ``a`` is at least as good as ``b`` everywhere and
    strictly better somewhere (all criteria maximized)."""
    at_least_as_good = all(c(a) >= c(b) for c in criteria)
    strictly_better = any(c(a) > c(b) for c in criteria)
    return at_least_as_good and strictly_better


def pareto_front(
    points: Sequence[DesignPoint],
    criteria: Sequence[Callable[[DesignPoint], float]] = _DEFAULT,
) -> list[DesignPoint]:
    """The non-dominated subset, sorted by descending throughput.

    O(n^2) pairwise filtering — exploration spaces here are hundreds of
    points, far below where a sweep-line would matter.
    """
    if not points:
        raise DSEError("no design points given")
    front = [
        p
        for p in points
        if not any(dominates(q, p, criteria) for q in points if q is not p)
    ]
    # Deduplicate identical metric tuples (distinct params may tie).
    seen: set[tuple[float, ...]] = set()
    unique = []
    for p in sorted(front, key=lambda p: -p.throughput_per_s):
        key = tuple(c(p) for c in criteria)
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return unique
