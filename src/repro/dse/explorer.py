"""Pre-wired explorations for the two kernels.

``explore_fft`` sweeps (columns x link cost) for an N-point FFT and
scores each point; ``explore_jpeg`` sweeps (tile budget x algorithm).
Both return lists of :class:`~repro.dse.objectives.DesignPoint` ready for
Pareto extraction or the report formatters; they are also the backing of
the Figs. 10-12 / 16-17 benches.
"""

from __future__ import annotations

from repro.dse.objectives import DesignPoint
from repro.dse.pareto import pareto_front
from repro.errors import DSEError
from repro.kernels.fft.decompose import FFTPlan
from repro.kernels.fft.perf_model import FFTPerformanceModel, StageProfile
from repro.kernels.jpeg.pipeline_model import rebalance_series
from repro.mapping.cost import TileCostModel

__all__ = ["explore_fft", "explore_jpeg", "fft_point", "fabric_fft_point"]


def fft_point(
    n: int,
    m: int,
    cols: int,
    link_cost_ns: float,
    profile: StageProfile | None = None,
) -> DesignPoint:
    """Score one FFT design point (module-level for process pools)."""
    plan = FFTPlan(n=n, m=m, cols=cols)
    if profile is None:
        profile = (
            StageProfile.table1()
            if plan.stages == 10 and m == 128
            else StageProfile.uniform(plan.stages)
        )
    model = FFTPerformanceModel(plan=plan, profile=profile)
    breakdown = model.evaluate(link_cost_ns)
    # Busy fraction: butterfly beats over the whole period.
    utilization = breakdown.tau[2] / breakdown.total_ns if breakdown.total_ns else 0.0

    # Power: each FFT executes every stage once per row; at the reference
    # 2.5 ns/instruction the butterfly runtimes convert to instruction
    # counts, plus the copy processes.  Static power scales with tiles.
    from repro.fabric.energy import EnergyModel
    from repro.units import CYCLE_NS

    instructions_per_fft = plan.rows * (
        sum(profile.bf_ns) + profile.vcp_ns + profile.hcp_ns
    ) / CYCLE_NS
    ffts_per_s = breakdown.throughput_per_s
    power_mw = EnergyModel().steady_state_mw(
        n_tiles=plan.n_tiles,
        instructions_per_s=instructions_per_fft * ffts_per_s,
        icap_bytes_per_s=(breakdown.tau[1] / 1e9) * ffts_per_s * 180e6,
        link_switches_per_s=(plan.cols + sum(plan.exchanges_per_beat()))
        * plan.rows * ffts_per_s,
    )
    return DesignPoint.make(
        params={"n": n, "m": m, "cols": cols, "link_cost_ns": link_cost_ns},
        throughput_per_s=breakdown.throughput_per_s,
        n_tiles=plan.n_tiles,
        utilization=utilization,
        power_mw=power_mw,
    )


def fabric_fft_point(
    n: int,
    m: int,
    cols: int,
    link_cost_ns: float = 0.0,
) -> dict:
    """Measure one FFT design point on the fabric simulator.

    Compiles the configuration through the content-addressed cache
    (:func:`repro.compile.compile_fft`) and executes one deterministic
    transform on a fresh mesh — the fabric-measured counterpart of the
    analytic :func:`fft_point`.  Module-level so process pools (and the
    repeated-sweep compile benchmark) can dispatch it; revisited points
    reuse the cached artifact, so only the first visit pays lowering,
    validation and the switch-table analysis.
    """
    import numpy as np

    from repro.compile import compile_fft
    from repro.fabric.icap import IcapPort
    from repro.fabric.mesh import Mesh
    from repro.fabric.rtms import RuntimeManager

    plan = FFTPlan(n=n, m=m, cols=cols)
    artifact = compile_fft(plan, link_cost_ns)
    mesh = Mesh(plan.rows, plan.cols)
    rtms = RuntimeManager(mesh, IcapPort(), link_cost_ns=link_cost_ns)
    rng = np.random.RandomState(n + 31 * cols)
    scale = 0.5 / n  # well inside the Q-format headroom
    x = (rng.randn(n) + 1j * rng.randn(n)) * scale
    report = rtms.execute_artifact(artifact, x)
    return {
        "params": {"n": n, "m": m, "cols": cols, "link_cost_ns": link_cost_ns},
        "artifact_hash": artifact.artifact_hash,
        "total_ns": report.total_ns,
        "compute_ns": report.compute_ns,
        "reconfig_ns": report.reconfig_ns,
        "cold_bytes": artifact.total_cold_bytes,
        "epochs": len(report.epochs),
    }


def explore_fft(
    n: int = 1024,
    m: int = 128,
    cols_list: tuple[int, ...] = (1, 2, 5, 10),
    link_costs_ns: tuple[float, ...] = tuple(range(0, 5001, 100)),
    profile: StageProfile | None = None,
) -> list[DesignPoint]:
    """The Figs. 10-12 design space as scored points."""
    if not cols_list or not link_costs_ns:
        raise DSEError("cols_list and link_costs_ns must be non-empty")
    return [
        fft_point(n, m, cols, cost, profile)
        for cols in cols_list
        for cost in link_costs_ns
    ]


def explore_jpeg(
    max_tiles: int = 25,
    algorithms: tuple[str, ...] = ("one", "two", "opt"),
    model: TileCostModel | None = None,
) -> list[DesignPoint]:
    """The Figs. 16-17 design space as scored points."""
    points = []
    for algorithm, series in rebalance_series(
        max_tiles=max_tiles, algorithms=algorithms, model=model
    ).items():
        for entry in series:
            points.append(
                DesignPoint.make(
                    params={"algorithm": algorithm, "tiles": entry.n_tiles},
                    throughput_per_s=entry.images_per_s,
                    n_tiles=entry.n_tiles,
                    utilization=entry.utilization,
                )
            )
    return points


def fft_pareto(n: int = 1024, m: int = 128, link_cost_ns: float = 300.0):
    """Throughput/area frontier at a fixed link cost."""
    points = explore_fft(n=n, m=m, link_costs_ns=(link_cost_ns,))
    return pareto_front(points)
