"""Cartesian parameter sweeps with optional process parallelism.

A sweep evaluates ``fn(**point)`` over the cartesian product of the
parameter axes.  Points are dictionaries, results arbitrary values; the
evaluation function must be a module-level callable when
``processes > 1`` (pickling), which all the shipped explorations satisfy.
Results preserve the cartesian order regardless of the execution backend,
so sweeps are reproducible.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from itertools import product
from typing import Any, Callable

from repro.errors import DSEError

__all__ = ["SweepResult", "sweep", "axis_points"]


def _call(task: tuple[Callable[..., Any], dict[str, Any]]) -> Any:
    """Module-level trampoline so ``executor.map`` can pickle the work."""
    fn, point = task
    return fn(**point)


def axis_points(axes: dict[str, list[Any]]) -> list[dict[str, Any]]:
    """All parameter combinations of the axes, in cartesian order."""
    if not axes:
        raise DSEError("sweep needs at least one axis")
    for name, values in axes.items():
        if not values:
            raise DSEError(f"axis {name!r} has no values")
    names = list(axes)
    return [dict(zip(names, combo)) for combo in product(*axes.values())]


@dataclass
class SweepResult:
    """All evaluated points of one sweep."""

    axes: dict[str, list[Any]]
    points: list[dict[str, Any]] = field(default_factory=list)
    values: list[Any] = field(default_factory=list)
    #: Configuration-compiler cache activity during this sweep (the
    #: :class:`repro.compile.CacheStats` delta of the parent process;
    #: worker processes keep their own caches).  Fabric-measured sweeps
    #: over repeated points show up here as hits instead of lowers.
    compile_cache: Any = None

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(zip(self.points, self.values))

    def series(self, x_axis: str, where: dict[str, Any] | None = None) -> list[tuple[Any, Any]]:
        """(x, value) pairs for points matching the ``where`` filter."""
        out = []
        for point, value in self:
            if where and any(point.get(k) != v for k, v in where.items()):
                continue
            out.append((point[x_axis], value))
        return out

    def best(self, key: Callable[[Any], float], maximize: bool = True):
        """The (point, value) with the extremal ``key(value)``."""
        if not self.points:
            raise DSEError("sweep produced no points")
        chooser = max if maximize else min
        return chooser(zip(self.points, self.values), key=lambda pv: key(pv[1]))


def sweep(
    fn: Callable[..., Any],
    axes: dict[str, list[Any]],
    processes: int | str = 1,
) -> SweepResult:
    """Evaluate ``fn`` over the cartesian product of ``axes``.

    ``processes > 1`` fans the evaluations out over a process pool —
    the sweep axes of Figs. 10-12 are embarrassingly parallel.
    ``processes="auto"`` sizes the pool to :func:`os.cpu_count`.  Points
    are dispatched with a chunked ``executor.map`` (one pickle round-trip
    per chunk instead of per point), and the order of results always
    matches :func:`axis_points`.
    """
    from repro.compile import cache_stats

    points = axis_points(axes)
    if processes == "auto":
        processes = os.cpu_count() or 1
    if not isinstance(processes, int):
        raise DSEError(f"processes must be an int or 'auto', got {processes!r}")
    if processes < 1:
        raise DSEError(f"processes must be >= 1, got {processes}")
    before = cache_stats().snapshot()
    if processes == 1 or len(points) == 1:
        values = [fn(**point) for point in points]
    else:
        # ~4 chunks per worker balances scheduling slack against pickling
        # overhead for the small, even workloads a sweep produces.
        chunksize = max(1, len(points) // (processes * 4))
        with ProcessPoolExecutor(max_workers=processes) as pool:
            values = list(
                pool.map(_call, [(fn, p) for p in points], chunksize=chunksize)
            )
    return SweepResult(
        axes=axes,
        points=points,
        values=values,
        compile_cache=cache_stats().delta(before),
    )
