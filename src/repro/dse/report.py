"""Plain-text reporting for sweeps and experiment tables.

The benchmark harness regenerates the paper's tables and figure series as
text; these formatters keep that output consistent — fixed-width columns,
one row per entry, no external plotting dependencies.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import DSEError

__all__ = ["format_table", "format_series"]


def _fmt(value: Any, width: int) -> str:
    if isinstance(value, bool):
        text = "yes" if value else "no"
    elif isinstance(value, float):
        text = f"{value:.2f}" if abs(value) < 1e6 else f"{value:.3g}"
    else:
        text = str(value)
    return text.rjust(width)


def format_table(rows: Sequence[dict[str, Any]], columns: Sequence[str] | None = None) -> str:
    """Render dict rows as a fixed-width text table."""
    if not rows:
        raise DSEError("no rows to format")
    cols = list(columns) if columns else list(rows[0])
    widths = {
        c: max(len(c), *(len(_fmt(r.get(c, ""), 0).strip()) for r in rows))
        for c in cols
    }
    header = "  ".join(c.rjust(widths[c]) for c in cols)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("  ".join(_fmt(row.get(c, ""), widths[c]) for c in cols))
    return "\n".join(lines)


def format_series(
    series: dict[Any, list[tuple[Any, Any]]],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render keyed (x, y) series as aligned columns, one series per key.

    All series are assumed to share their x grid (true for the shipped
    figure sweeps); the first column is x, then one column per key.
    """
    if not series:
        raise DSEError("no series to format")
    keys = list(series)
    xs = [x for x, _ in series[keys[0]]]
    header = f"{x_label:>12} " + " ".join(f"{str(k):>14}" for k in keys)
    lines = [f"{y_label} by {x_label}", header, "-" * len(header)]
    for i, x in enumerate(xs):
        cells = []
        for k in keys:
            value = series[k][i][1]
            cells.append(f"{value:14.1f}" if isinstance(value, float) else f"{value!s:>14}")
        lines.append(f"{x!s:>12} " + " ".join(cells))
    return "\n".join(lines)
