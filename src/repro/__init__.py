"""repro — partially reconfigurable CGRA design-space exploration.

A from-scratch reproduction of *"Design and Implementation of High
Performance Architectures with Partially Reconfigurable CGRAs"*
(Shahraki Moghaddam, Paul, Balakrishnan — IEEE IPDPSW 2013).

The library has four layers:

:mod:`repro.fabric`
    A cycle-accurate functional model of the reMORPH-style fabric: 48-bit
    tiles with 512-word instruction/data memories, an assembler for the
    tile ISA, a mesh with reconfigurable near-neighbour links, the
    180 MB/s ICAP reconfiguration port and the epoch-based runtime
    manager with partial-overlap accounting.
:mod:`repro.pn` / :mod:`repro.mapping`
    The process-network application model (Eq. 1), the published cost
    profiles (Tables 1 and 3) and the mapping machinery — tile cost
    model, pipeline metrics and the reBalanceOne/Two/OPT algorithms.
:mod:`repro.kernels`
    The two case studies: the radix-2 FFT (decomposition, twiddle
    classification, the tau performance model, fabric-executed
    butterflies) and a complete baseline JPEG encoder/decoder with
    fabric-executed stages.
:mod:`repro.dse` / :mod:`repro.experiments`
    Sweeps, Pareto fronts, and one module per published table/figure.
:mod:`repro.serve`
    A multi-tenant fabric job service on top of the kernels: persistent
    kernel sessions, reconfiguration-affinity scheduling, asyncio QoS
    (timeouts, retries, backpressure, drain) and Prometheus-style
    metrics.  Not imported here — ``from repro.serve import ...``.

Quickstart::

    from repro import FFTPlan, FFTPerformanceModel, StageProfile

    model = FFTPerformanceModel(
        plan=FFTPlan(n=1024, m=128, cols=10),
        profile=StageProfile.table1(),
    )
    print(model.throughput(link_cost_ns=300.0), "FFTs/s")

See README.md for the full tour and DESIGN.md for the reproduction notes.
"""

from repro._version import __version__
from repro.errors import (
    AssemblerError,
    DSEError,
    ExecutionError,
    FabricError,
    FaultError,
    KernelError,
    LinkError,
    MappingError,
    ProcessNetworkError,
    ReconfigError,
    ReproError,
    ScrubError,
)
from repro.fabric import (
    Direction,
    IcapPort,
    Mesh,
    Program,
    RuntimeManager,
    Tile,
    assemble,
)
from repro.pn import (
    Channel,
    Configuration,
    Epoch,
    Process,
    ProcessNetwork,
    eq1_runtime,
    fft1024_processes,
    jpeg_process_network,
    jpeg_processes,
)
from repro.mapping import (
    PipelineMapping,
    PipelineMetrics,
    Stage,
    TileCostModel,
    evaluate_mapping,
    rebalance,
    rebalance_one,
    rebalance_opt,
    rebalance_two,
)
from repro.kernels.fft import (
    FabricFFT,
    FFTPerformanceModel,
    FFTPlan,
    StageProfile,
    classify_twiddles,
    fft_reference,
)
from repro.kernels.jpeg import (
    JPEGDecoder,
    JPEGEncoder,
    decode_image,
    encode_image,
)
from repro.dse import DesignPoint, explore_fft, explore_jpeg, pareto_front, sweep

__all__ = [
    "AssemblerError",
    "Channel",
    "Configuration",
    "DSEError",
    "DesignPoint",
    "Direction",
    "Epoch",
    "ExecutionError",
    "FFTPerformanceModel",
    "FFTPlan",
    "FabricError",
    "FabricFFT",
    "FaultError",
    "IcapPort",
    "JPEGDecoder",
    "JPEGEncoder",
    "KernelError",
    "LinkError",
    "MappingError",
    "Mesh",
    "PipelineMapping",
    "PipelineMetrics",
    "Process",
    "ProcessNetwork",
    "ProcessNetworkError",
    "Program",
    "ReconfigError",
    "ReproError",
    "RuntimeManager",
    "ScrubError",
    "Stage",
    "StageProfile",
    "Tile",
    "TileCostModel",
    "__version__",
    "assemble",
    "classify_twiddles",
    "decode_image",
    "encode_image",
    "eq1_runtime",
    "evaluate_mapping",
    "explore_fft",
    "explore_jpeg",
    "fft1024_processes",
    "fft_reference",
    "jpeg_process_network",
    "jpeg_processes",
    "pareto_front",
    "rebalance",
    "rebalance_one",
    "rebalance_opt",
    "rebalance_two",
    "sweep",
]
