"""Tier-1 smoke test of the serving benchmark.

Runs ``benchmarks/bench_serve.py`` on a reduced trace, checks the
machine-readable ``BENCH_serve.json`` schema, and enforces the ISSUE's
acceptance contract: reconfiguration-affinity scheduling must spend at
least 1.5x less total reconfiguration time than the residency-blind
cold-FIFO baseline on a mixed FFT+JPEG trace.  A separate test holds
the committed repo-level ``BENCH_serve.json`` (full 200-job trace) to
the same bar.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_HARNESS = Path(__file__).resolve().parent.parent / "benchmarks" / "bench_serve.py"

_POLICY_KEYS = {
    "policy", "jobs", "warm_jobs", "cold_jobs", "cold_starts",
    "reconfig_ns", "reconfig_saved_ns", "sim_ns", "makespan_ns",
    "mean_wait_ns", "utilization", "wall_s",
}


@pytest.fixture(scope="module")
def bench_serve():
    spec = importlib.util.spec_from_file_location("bench_serve", _HARNESS)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def report(bench_serve, tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_serve.json"
    produced = bench_serve.run_bench(n_jobs=40, pool_size=2, output=out)
    written = json.loads(out.read_text())
    assert written == produced
    return produced


def test_json_schema(report):
    assert set(report) == {"trace", "policies", "reconfig_ratio"}
    assert set(report["trace"]) == {"jobs", "pool_size", "seed", "fft_fraction"}
    names = [entry["policy"] for entry in report["policies"]]
    assert names == ["affinity", "cold_fifo"]
    for entry in report["policies"]:
        assert set(entry) == _POLICY_KEYS
        assert entry["jobs"] == report["trace"]["jobs"]
        assert entry["warm_jobs"] + entry["cold_jobs"] == entry["jobs"]
        assert entry["reconfig_ns"] > 0
        assert entry["sim_ns"] > entry["reconfig_ns"]
        assert entry["makespan_ns"] > 0
        assert 0.0 < entry["utilization"] <= 1.0


def test_affinity_amortizes_reconfiguration(report):
    """The acceptance bar: >=1.5x less term-B time under affinity."""
    assert report["reconfig_ratio"] >= 1.5, (
        f"affinity scheduling saved only {report['reconfig_ratio']:.2f}x "
        f"reconfiguration time vs cold FIFO (need >= 1.5x)"
    )
    by_name = {entry["policy"]: entry for entry in report["policies"]}
    assert by_name["affinity"]["warm_jobs"] > by_name["cold_fifo"]["warm_jobs"]
    assert by_name["affinity"]["cold_starts"] < by_name["cold_fifo"]["cold_starts"]


def test_replay_is_deterministic(bench_serve, tmp_path):
    first = bench_serve.run_bench(
        n_jobs=16, pool_size=2, output=tmp_path / "a.json"
    )
    second = bench_serve.run_bench(
        n_jobs=16, pool_size=2, output=tmp_path / "b.json"
    )
    for left, right in zip(first["policies"], second["policies"]):
        assert left["reconfig_ns"] == right["reconfig_ns"]
        assert left["sim_ns"] == right["sim_ns"]
        assert left["makespan_ns"] == right["makespan_ns"]
        assert left["warm_jobs"] == right["warm_jobs"]


def test_repo_level_json_records_target_ratio():
    """The committed BENCH_serve.json documents the >=1.5x acceptance bar."""
    path = _HARNESS.parent.parent / "BENCH_serve.json"
    report = json.loads(path.read_text())
    assert report["trace"]["jobs"] == 200
    assert report["reconfig_ratio"] >= 1.5
    names = [entry["policy"] for entry in report["policies"]]
    assert names == ["affinity", "cold_fifo"]
