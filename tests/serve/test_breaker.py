"""Circuit breaker state machine, driven by an injected fake clock."""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.pool import FabricPool

from tests.serve.fakes import fake_factory


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make(clock=None, **kwargs):
    kwargs.setdefault("failure_threshold", 2)
    kwargs.setdefault("cooldown_s", 1.0)
    kwargs.setdefault("cooldown_cap_s", 8.0)
    return CircuitBreaker(clock=clock or FakeClock(), **kwargs)


class TestTripping:
    def test_closed_until_threshold(self):
        breaker = make()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.admits()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.admits()
        assert breaker.opens == 1

    def test_success_resets_the_consecutive_count(self):
        breaker = make()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_open_dispatch_raises(self):
        breaker = make()
        breaker.record_failure()
        breaker.record_failure()
        with pytest.raises(ServeError, match="open circuit breaker"):
            breaker.on_dispatch()


class TestHalfOpen:
    def test_cooldown_elapses_into_half_open(self):
        clock = FakeClock()
        breaker = make(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(0.99)
        assert breaker.state is BreakerState.OPEN
        clock.advance(0.02)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.admits()

    def test_probe_budget_is_bounded(self):
        clock = FakeClock()
        breaker = make(clock, half_open_probes=1)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.on_dispatch() is True  # the probe
        assert not breaker.admits()  # budget spent
        with pytest.raises(ServeError, match="probe budget"):
            breaker.on_dispatch()

    def test_probe_success_closes_and_resets_cooldown(self):
        clock = FakeClock()
        breaker = make(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.0)
        breaker.on_dispatch()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.closes == 1
        # Cooldown is back at base after a clean close.
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_failure_reopens_with_doubled_cooldown(self):
        clock = FakeClock()
        breaker = make(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.0)
        breaker.on_dispatch()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.advance(1.5)
        assert breaker.state is BreakerState.OPEN  # doubled to 2.0
        clock.advance(0.6)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_cooldown_growth_is_capped(self):
        clock = FakeClock()
        breaker = make(clock, cooldown_s=1.0, cooldown_cap_s=4.0)
        breaker.record_failure()
        breaker.record_failure()
        for _ in range(5):  # repeated probe failures: 2, 4, 4, 4, ...
            clock.advance(100.0)
            assert breaker.state is BreakerState.HALF_OPEN
            breaker.on_dispatch()
            breaker.record_failure()
        clock.advance(3.9)
        assert breaker.state is BreakerState.OPEN
        clock.advance(0.2)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_cancelled_probe_releases_the_slot_without_closing(self):
        clock = FakeClock()
        breaker = make(clock, half_open_probes=1)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.0)
        breaker.on_dispatch()
        breaker.record_cancelled()
        assert breaker.state is BreakerState.HALF_OPEN  # not closed
        assert breaker.admits()  # but the next probe may run


class TestMiscellany:
    def test_reset_force_closes(self):
        breaker = make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.reset()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.admits()

    def test_state_codes_are_dense(self):
        assert BreakerState.CLOSED.code == 0
        assert BreakerState.HALF_OPEN.code == 1
        assert BreakerState.OPEN.code == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"cooldown_s": 0.0},
            {"cooldown_s": 2.0, "cooldown_cap_s": 1.0},
            {"half_open_probes": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ServeError):
            CircuitBreaker(**kwargs)


class TestPoolWiring:
    def test_breaker_factory_gives_each_worker_its_own(self):
        clock = FakeClock()
        pool = FabricPool(
            2,
            fake_factory(),
            breaker_factory=lambda: make(clock),
        )
        a, b = pool.workers
        assert a.breaker is not None and b.breaker is not None
        assert a.breaker is not b.breaker

    def test_open_breaker_removes_worker_from_rotation(self):
        clock = FakeClock()
        pool = FabricPool(
            2, fake_factory(), breaker_factory=lambda: make(clock)
        )
        worker = pool.workers[0]
        worker.breaker.record_failure()
        worker.breaker.record_failure()
        assert not worker.available
        assert worker.breaker_open
        assert worker not in pool.available_workers()
        assert pool.breaker_open_workers() == [worker]
        # Breaker-open is softer than quarantine.
        assert worker not in pool.quarantined_workers()
        clock.advance(1.0)
        assert worker.available  # half-open probe slot

    def test_no_factory_means_no_breakers(self):
        pool = FabricPool(1, fake_factory())
        assert pool.workers[0].breaker is None
        assert pool.workers[0].available
