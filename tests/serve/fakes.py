"""Injectable fake sessions for exercising the serving layer.

The real sessions run the fabric simulator; these fakes satisfy the
:class:`~repro.serve.sessions.KernelSession` protocol with controllable
timing and failure behaviour so the service's QoS machinery (timeouts,
retries, backpressure, drain) can be tested in milliseconds.

A failed job drops its worker's session (fabric scrub), so a retry
builds a *new* session through the factory — which is why failure
injection lives in the factory (:func:`flaky_factory`) rather than in
any single session instance.
"""

from __future__ import annotations

import time

from repro.serve.jobs import KernelSpec
from repro.serve.sessions import CancelToken, SessionStats

__all__ = ["FakeRtms", "FakeSession", "fake_factory", "flaky_factory"]


class FakeRtms:
    """Switch-cost oracle stand-in: charges ``cost_ns`` per epoch."""

    def __init__(self, cost_ns: float) -> None:
        self.cost_ns = cost_ns

    def switch_cost(self, specs) -> float:
        return self.cost_ns * len(list(specs))


class FakeSession:
    """Protocol-complete session with scripted behaviour.

    Parameters
    ----------
    sleep_s:
        Wall-clock work per job, sliced into 5 ms cancel polls (so a
        service timeout aborts promptly, like the real epoch boundary).
    fail:
        When true, ``run`` raises ``RuntimeError`` (every time — use
        :func:`flaky_factory` for fail-then-recover schedules).
    cold_reconfig_ns:
        Simulated term-B charge of this session's first job; later jobs
        on the same instance are warm and charge 0.
    """

    def __init__(
        self,
        spec: KernelSpec,
        *,
        sleep_s: float = 0.0,
        fail: bool = False,
        cold_reconfig_ns: float = 1000.0,
        sim_ns: float = 10.0,
    ) -> None:
        self.spec = spec
        self.config_key = spec.config_key
        self.sleep_s = sleep_s
        self.fail = fail
        self.cold_reconfig_ns = cold_reconfig_ns
        self.sim_ns = sim_ns
        self.jobs_run = 0
        self.rtms = FakeRtms(cold_reconfig_ns)

    def run(self, payload, cancel: CancelToken) -> SessionStats:
        deadline = time.monotonic() + self.sleep_s
        slices = 0
        while True:
            cancel.check()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            time.sleep(min(0.005, remaining))
            slices += 1
        if self.fail:
            raise RuntimeError(f"injected failure on {self.config_key}")
        reconfig = self.cold_reconfig_ns if self.jobs_run == 0 else 0.0
        self.jobs_run += 1
        return SessionStats(
            output=payload,
            sim_ns=self.sim_ns,
            reconfig_ns=reconfig,
            slices=max(slices, 1),
        )

    def pin_epochs(self):
        return []  # nothing to stream when warm -> warm probe costs 0

    def cold_setup_epochs(self):
        return ["setup"]  # one charged epoch -> cold probe costs cost_ns

    # rtms is a plain attribute (FakeRtms) — protocol satisfied.


def fake_factory(**kwargs):
    """Session factory building identically-configured fakes."""

    def factory(spec: KernelSpec) -> FakeSession:
        return FakeSession(spec, **kwargs)

    return factory


def flaky_factory(failures: int, **kwargs):
    """Factory whose sessions fail the first ``failures`` *runs*, then
    recover.

    Counting runs (not constructions) matters twice over: the residency
    cost model builds probe sessions that never execute, and a failed
    job drops the worker's session so each retry constructs a fresh one.
    Returns ``(factory, log)`` where ``log`` collects every session
    built, in order.
    """
    state = {"left": failures}
    log: list[FakeSession] = []

    class _Flaky(FakeSession):
        def run(self, payload, cancel: CancelToken) -> SessionStats:
            cancel.check()
            if state["left"] > 0:
                state["left"] -= 1
                raise RuntimeError(f"injected failure on {self.config_key}")
            return super().run(payload, cancel)

    def factory(spec: KernelSpec) -> FakeSession:
        session = _Flaky(spec, **kwargs)
        log.append(session)
        return session

    return factory, log
