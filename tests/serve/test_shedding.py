"""Adaptive load shedding: EWMA, ramp, hard cap, determinism."""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.serve.shedding import LoadShedder


def make(**kwargs):
    kwargs.setdefault("target_delay_s", 1.0)
    kwargs.setdefault("collapse_delay_s", 3.0)
    kwargs.setdefault("ewma_alpha", 1.0)  # last sample only: easy math
    return LoadShedder(**kwargs)


class TestEwma:
    def test_first_sample_seeds_the_ewma(self):
        shedder = make(ewma_alpha=0.5)
        shedder.observe(4.0)
        assert shedder.ewma_s == 4.0

    def test_smoothing(self):
        shedder = make(ewma_alpha=0.5)
        shedder.observe(4.0)
        shedder.observe(0.0)
        assert shedder.ewma_s == pytest.approx(2.0)

    def test_negative_delays_clamp_to_zero(self):
        shedder = make()
        shedder.observe(-5.0)
        assert shedder.ewma_s == 0.0


class TestRamp:
    def test_no_shedding_below_target(self):
        shedder = make()
        shedder.observe(0.9)
        assert shedder.shed_probability() == 0.0
        for _ in range(100):
            assert shedder.decide(queue_depth=5).admit

    def test_linear_ramp_between_target_and_collapse(self):
        shedder = make(max_shed=0.8)
        shedder.observe(2.0)  # halfway from target (1) to collapse (3)
        assert shedder.shed_probability() == pytest.approx(0.4)

    def test_saturates_at_max_shed(self):
        shedder = make(max_shed=0.8)
        shedder.observe(100.0)
        assert shedder.shed_probability() == pytest.approx(0.8)

    def test_retry_after_tracks_backlog(self):
        shedder = make()
        # Hints are jittered upward within [base, base * 1.5): never
        # below the un-jittered estimate, never more than 50% later.
        assert 1.0 <= shedder.retry_after_s() < 1.5  # base = target
        shedder.observe(4.0)
        assert 8.0 <= shedder.retry_after_s() < 12.0  # base = 2 * ewma

    def test_retry_after_jitter_is_bounded_and_seeded(self):
        hints = []
        for _ in range(2):
            shedder = make()
            shedder.observe(4.0)
            hints.append([shedder.retry_after_s() for _ in range(200)])
        assert hints[0] == hints[1]  # seeded: same trace every run
        assert all(8.0 <= h < 12.0 for h in hints[0])
        assert len(set(hints[0])) > 1  # actually spread, not constant

    def test_zero_retry_jitter_restores_exact_hints(self):
        shedder = make(retry_jitter=0.0)
        shedder.observe(4.0)
        assert shedder.retry_after_s() == pytest.approx(8.0)

    def test_jitter_does_not_perturb_shed_decisions(self):
        def decisions(**kw):
            shedder = make(**kw)
            shedder.observe(2.0)
            return [shedder.decide(0).admit for _ in range(200)]

        assert decisions(retry_jitter=0.0) == decisions(retry_jitter=0.5)


class TestDecide:
    def test_hard_cap_rejects_unconditionally(self):
        shedder = make(hard_cap=10)
        decision = shedder.decide(queue_depth=10)
        assert not decision.admit
        assert decision.reason == "admission_cap"
        assert decision.shed_probability == 1.0
        assert decision.retry_after_s >= 1.0
        assert shedder.capped_total == 1

    def test_zero_hard_cap_disables_the_cap(self):
        shedder = make(hard_cap=0)
        assert shedder.decide(queue_depth=10_000).admit

    def test_shed_decisions_are_seed_deterministic(self):
        def trace(seed):
            shedder = make(seed=seed)
            shedder.observe(2.0)  # p = 0.475
            return [shedder.decide(0).admit for _ in range(200)]

        assert trace(7) == trace(7)
        assert trace(7) != trace(8)

    def test_shed_fraction_approximates_the_probability(self):
        shedder = make(seed=0)
        shedder.observe(2.0)
        p = shedder.shed_probability()
        rejected = sum(
            0 if shedder.decide(0).admit else 1 for _ in range(2000)
        )
        assert rejected / 2000 == pytest.approx(p, abs=0.05)
        assert shedder.shed_total == rejected
        assert shedder.admitted_total == 2000 - rejected


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_delay_s": 0.0},
            {"target_delay_s": 2.0, "collapse_delay_s": 2.0},
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"max_shed": 1.0},
            {"max_shed": 0.0},
            {"hard_cap": -1},
        ],
    )
    def test_bad_parameters_raise(self, kwargs):
        with pytest.raises(ServeError):
            make(**kwargs)
