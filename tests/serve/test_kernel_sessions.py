"""Serving the registry kernels: sessions, codecs, durable round-trip.

The hypothesis property here is the ISSUE's contract: *any registered
kernel round-trips graph → artifact → journal codec → recovery replay
with bit-identical payloads*.  ``TestDurableRoundTrip`` implements it
end to end — for a drawn (kind, seed) the payload is journal-encoded,
decoded bit-identically, replayed through a crash-recovered
:class:`DurableEngine`, and the recovered output checked against the
kernel's registered oracle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compile.frontends import compile_kernel, frontend_names, get_frontend
from repro.serve.durability.engine import DurableEngine
from repro.serve.durability.journal import FsyncPolicy, JobJournal
from repro.serve.durability.records import (
    decode_payload,
    encode_payload,
    encode_request,
)
from repro.serve.jobs import JobKind, JobRequest, JobStatus, spec_for
from repro.serve.sessions import (
    ArtifactSession,
    CancelToken,
    Conv2DSession,
    DSPSession,
    GEMMSession,
    default_session_factory,
)

ALL_KINDS = ("conv2d", "dsp", "fft", "gemm", "jpeg")


def _payload(kind: str, seed: int):
    frontend = get_frontend(kind)
    params = frontend.canonicalize(None)
    return params, frontend.example_payload(
        params, np.random.default_rng(seed)
    )


class TestSessionFactory:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_factory_builds_every_registered_kind(self, kind):
        session = default_session_factory(spec_for(kind))
        assert session.spec.kind is JobKind(kind)

    def test_new_kernels_use_the_generic_artifact_session(self):
        assert isinstance(default_session_factory(spec_for("conv2d")),
                          Conv2DSession)
        assert isinstance(default_session_factory(spec_for("gemm")),
                          GEMMSession)
        assert isinstance(default_session_factory(spec_for("dsp")),
                          DSPSession)
        for kind in ("conv2d", "gemm", "dsp"):
            assert isinstance(
                default_session_factory(spec_for(kind)), ArtifactSession
            )


class TestSessionExecution:
    @pytest.mark.parametrize("kind", ("conv2d", "gemm", "dsp"))
    def test_run_output_passes_the_oracle(self, kind):
        params, payload = _payload(kind, seed=1)
        session = default_session_factory(spec_for(kind))
        stats = session.run(payload, CancelToken())
        get_frontend(kind).check_output(params, payload, stats.output)
        assert stats.sim_ns > 0
        assert stats.slices > 0

    @pytest.mark.parametrize("kind", ("conv2d", "gemm", "dsp"))
    def test_batch_outputs_are_bit_identical_to_scalar(self, kind):
        payloads = [_payload(kind, seed=s)[1] for s in range(4)]
        batch = default_session_factory(spec_for(kind))
        batch_stats = batch.run_batch(list(payloads), CancelToken())
        scalar = default_session_factory(spec_for(kind))
        for payload, stats in zip(payloads, batch_stats):
            want = scalar.run(payload, CancelToken()).output
            assert np.array_equal(stats.output, want)

    @pytest.mark.parametrize("kind", ("conv2d", "gemm", "dsp"))
    def test_second_job_is_warm(self, kind):
        _, payload = _payload(kind, seed=2)
        session = default_session_factory(spec_for(kind))
        cold = session.run(payload, CancelToken())
        warm = session.run(payload, CancelToken())
        assert cold.reconfig_ns > 0
        assert warm.reconfig_ns == 0


class TestPayloadCodec:
    @given(
        kind=st.sampled_from(ALL_KINDS),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_example_payload_round_trips_bit_exact(self, kind, seed):
        _, payload = _payload(kind, seed)
        job_kind = JobKind(kind)
        back = decode_payload(job_kind, encode_payload(job_kind, payload))
        assert np.array_equal(np.asarray(back), np.asarray(payload))
        assert np.asarray(back).dtype == np.asarray(payload).dtype


class TestDurableRoundTrip:
    @given(
        kind=st.sampled_from(ALL_KINDS),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=10, deadline=None)
    def test_recovered_replay_matches_the_oracle(
        self, kind, seed, tmp_path_factory
    ):
        params, payload = _payload(kind, seed)
        # graph -> artifact (cached; hash-stable by the pinned tests)
        artifact = compile_kernel(kind, params)
        assert len(artifact.artifact_hash) == 64

        # journal codec: the payload the engine will replay is the
        # decoded one — assert it is bit-identical to what was submitted
        job_kind = JobKind(kind)
        decoded = decode_payload(job_kind, encode_payload(job_kind, payload))
        assert np.array_equal(np.asarray(decoded), np.asarray(payload))

        # crash before running: only SUBMITTED reaches the journal
        home = tmp_path_factory.mktemp(f"wal-{kind}")
        request = JobRequest(
            spec=spec_for(kind), payload=payload, job_id=f"{kind}-{seed}"
        )
        journal = JobJournal(home, fsync=FsyncPolicy.NEVER, lock=False)
        journal.submitted(request.job_id, encode_request(request))
        journal.close()

        # recovery requeues and completes the job from journal state
        engine = DurableEngine(home)
        assert engine.report.recovered_requeued == 1
        engine.run()
        result = engine.results[request.job_id]
        engine.close()
        assert result.status is JobStatus.DONE
        get_frontend(kind).check_output(params, payload, result.output)
