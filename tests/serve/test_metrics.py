"""Metrics registry: counters, gauges, histograms, text exposition."""

import pytest

from repro.errors import ServeError
from repro.serve.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_unlabelled(self):
        counter = Counter("jobs_total", "jobs")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5
        assert counter.total == 3.5

    def test_labelled_series_are_independent(self):
        counter = Counter("jobs_total", "jobs")
        counter.inc(kind="fft")
        counter.inc(kind="fft")
        counter.inc(kind="jpeg")
        assert counter.value(kind="fft") == 2
        assert counter.value(kind="jpeg") == 1
        assert counter.total == 3

    def test_label_order_does_not_matter(self):
        counter = Counter("x_total", "x")
        counter.inc(kind="fft", status="done")
        assert counter.value(status="done", kind="fft") == 1

    def test_render_prometheus_lines(self):
        counter = Counter("jobs_total", "All jobs")
        counter.inc(kind="fft")
        text = "\n".join(counter.render())
        assert "# HELP jobs_total All jobs" in text
        assert "# TYPE jobs_total counter" in text
        assert 'jobs_total{kind="fft"} 1' in text

    def test_cannot_decrease(self):
        counter = Counter("jobs_total", "jobs")
        with pytest.raises(ServeError, match="cannot decrease"):
            counter.inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge("depth", "queue depth")
        gauge.set(4)
        gauge.set(2)
        assert gauge.value() == 2

    def test_labelled(self):
        gauge = Gauge("util", "utilization")
        gauge.set(0.5, fabric="fabric-0")
        gauge.set(0.25, fabric="fabric-1")
        assert gauge.value(fabric="fabric-0") == 0.5
        assert 'util{fabric="fabric-1"} 0.25' in "\n".join(gauge.render())


class TestHistogram:
    def test_percentiles_on_known_data(self):
        histogram = Histogram("lat", "latency")
        for value in range(1, 101):
            histogram.observe(value / 1000.0)
        assert histogram.count == 100
        assert histogram.sum == pytest.approx(5.05)
        assert histogram.percentile(0.5) == pytest.approx(0.050, abs=0.005)
        assert histogram.percentile(0.99) == pytest.approx(0.099, abs=0.005)

    def test_cumulative_buckets_and_inf(self):
        histogram = Histogram("lat", "latency", buckets=(0.01, 0.1))
        for value in (0.005, 0.05, 5.0):
            histogram.observe(value)
        text = "\n".join(histogram.render())
        assert 'lat_bucket{le="0.01"} 1' in text
        assert 'lat_bucket{le="0.1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text

    def test_reservoir_is_bounded(self):
        histogram = Histogram("lat", "latency")
        for value in range(10_000):
            histogram.observe(float(value))
        assert histogram.count == 10_000
        # percentile still sane despite sampling
        assert 3_000 < histogram.percentile(0.5) < 7_000

    def test_empty_percentile_is_zero(self):
        assert Histogram("lat", "latency").percentile(0.5) == 0.0


class TestMetricsRegistry:
    def test_get_or_make_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total", "a")
        second = registry.counter("a_total", "a")
        assert first is second

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "a")
        with pytest.raises(ServeError, match="a_total"):
            registry.gauge("a_total", "a")

    def test_render_concatenates_all_metrics(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "a").inc()
        registry.gauge("b", "b").set(7)
        registry.histogram("c_seconds", "c").observe(0.01)
        text = registry.render()
        for fragment in ("a_total 1", "b 7", "c_seconds_count 1"):
            assert fragment in text

    def test_snapshot_plain_dicts(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "a").inc(kind="fft")
        registry.histogram("c_seconds", "c").observe(0.5)
        snap = registry.snapshot()
        assert snap["a_total"]["kind"] == "counter"
        assert snap["a_total"]["total"] == 1.0
        assert list(snap["a_total"]["values"].values()) == [1.0]
        assert snap["c_seconds"]["count"] == 1
        assert "p50" in snap["c_seconds"]
