"""Job model: specs, config keys, request validation."""

import pytest

from repro.errors import ServeError
from repro.serve.jobs import (
    JobKind,
    JobRequest,
    JobStatus,
    KernelSpec,
    fft_spec,
    jpeg_spec,
)


class TestKernelSpec:
    def test_config_key_is_residency_identity(self):
        assert fft_spec(64, 8, 2).config_key == "fft(64,8,2)"
        assert jpeg_spec(75).config_key == "jpeg(75,False)"

    def test_same_params_same_key(self):
        assert fft_spec(64, 8, 2) == fft_spec(64, 8, 2)
        assert fft_spec(64, 8, 2).config_key == fft_spec(64, 8, 2).config_key

    def test_different_params_different_key(self):
        keys = {
            fft_spec(64, 8, 2).config_key,
            fft_spec(64, 8, 1).config_key,
            jpeg_spec(75).config_key,
            jpeg_spec(50).config_key,
        }
        assert len(keys) == 4

    def test_spec_is_hashable(self):
        assert len({fft_spec(), fft_spec(), jpeg_spec()}) == 2

    def test_defaults_match_paper_workloads(self):
        spec = fft_spec()
        assert spec.kind is JobKind.FFT
        assert spec.params == (64, 8, 2)  # 64-pt, M=8, 8x2 mesh
        assert jpeg_spec().params == (75, False)


class TestJobRequest:
    def test_auto_job_ids_are_unique(self):
        a = JobRequest(spec=fft_spec(), payload=None)
        b = JobRequest(spec=fft_spec(), payload=None)
        assert a.job_id and b.job_id and a.job_id != b.job_id

    def test_explicit_job_id_kept(self):
        request = JobRequest(spec=fft_spec(), payload=None, job_id="mine")
        assert request.job_id == "mine"

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ServeError, match="timeout_s"):
            JobRequest(spec=fft_spec(), payload=None, timeout_s=0)

    def test_rejects_negative_retries(self):
        with pytest.raises(ServeError, match="max_retries"):
            JobRequest(spec=fft_spec(), payload=None, max_retries=-1)


class TestJobStatus:
    def test_only_done_is_ok(self):
        assert JobStatus.DONE.ok
        for status in (JobStatus.FAILED, JobStatus.TIMEOUT, JobStatus.REJECTED):
            assert not status.ok
