"""Pool semantics: residency, switch-cost oracle, failure scrubs."""

import pytest

from repro.errors import ServeError
from repro.serve.jobs import JobRequest, fft_spec, jpeg_spec
from repro.serve.pool import FabricPool, FabricWorker, ResidencyCostModel
from repro.serve.sessions import CancelToken

from tests.serve.fakes import fake_factory, flaky_factory


def _request(spec, payload=None):
    return JobRequest(spec=spec, payload=payload)


class TestFabricWorker:
    def test_first_job_is_cold_second_warm(self):
        worker = FabricWorker("w0", fake_factory(cold_reconfig_ns=500.0))
        first = worker.execute(_request(fft_spec()), CancelToken())
        second = worker.execute(_request(fft_spec()), CancelToken())
        assert not first.warm and first.stats.reconfig_ns == 500.0
        assert second.warm and second.stats.reconfig_ns == 0.0
        assert worker.cold_starts == 1
        assert worker.jobs_done == 2

    def test_spec_change_forces_cold_rebuild(self):
        worker = FabricWorker("w0", fake_factory())
        worker.execute(_request(fft_spec()), CancelToken())
        run = worker.execute(_request(jpeg_spec()), CancelToken())
        assert not run.warm
        assert worker.cold_starts == 2
        assert worker.resident_key == jpeg_spec().config_key

    def test_switch_cost_zero_when_warm(self):
        worker = FabricWorker("w0", fake_factory(cold_reconfig_ns=750.0))
        spec = fft_spec()
        assert worker.switch_cost_ns(spec) == 750.0  # cold estimate
        worker.execute(_request(spec), CancelToken())
        assert worker.switch_cost_ns(spec) == 0.0  # pinned -> free
        assert worker.switch_cost_ns(jpeg_spec()) == 750.0  # other key cold

    def test_warm_run_records_savings(self):
        worker = FabricWorker("w0", fake_factory(cold_reconfig_ns=300.0))
        cold = worker.execute(_request(fft_spec()), CancelToken())
        warm = worker.execute(_request(fft_spec()), CancelToken())
        assert cold.reconfig_saved_ns == 0.0
        # warm job paid 0 vs the measured 300 ns cold reference
        assert warm.reconfig_saved_ns == 300.0

    def test_failure_scrubs_the_session(self):
        factory, log = flaky_factory(failures=1)
        worker = FabricWorker("w0", factory)
        with pytest.raises(RuntimeError, match="injected"):
            worker.execute(_request(fft_spec()), CancelToken())
        assert worker.session is None and worker.resident_key is None
        run = worker.execute(_request(fft_spec()), CancelToken())
        assert not run.warm  # retry paid a fresh cold start
        assert worker.cold_starts == 2
        assert len(log) == 2  # a new session per attempt

    def test_accounting_accumulates(self):
        worker = FabricWorker(
            "w0", fake_factory(sim_ns=40.0, cold_reconfig_ns=100.0)
        )
        for _ in range(3):
            worker.execute(_request(fft_spec()), CancelToken())
        assert worker.busy_sim_ns == pytest.approx(120.0)
        assert worker.reconfig_sim_ns == pytest.approx(100.0)


class TestResidencyCostModel:
    def test_modeled_cost_cached_per_config(self):
        built = []

        def factory(spec):
            built.append(spec)
            return fake_factory(cold_reconfig_ns=42.0)(spec)

        model = ResidencyCostModel(factory)
        assert model.modeled_cold_ns(fft_spec()) == 42.0
        assert model.modeled_cold_ns(fft_spec()) == 42.0
        assert len(built) == 1  # probe session built once per key

    def test_measured_overrides_modeled(self):
        model = ResidencyCostModel(fake_factory(cold_reconfig_ns=42.0))
        spec = fft_spec()
        assert model.cold_reference_ns(spec) == 42.0
        model.record_cold_run(spec, 99.0)
        assert model.cold_reference_ns(spec) == 99.0

    def test_pool_shares_one_model(self):
        pool = FabricPool(3, fake_factory())
        models = {id(worker.cost_model) for worker in pool}
        assert len(models) == 1


class TestFabricPool:
    def test_rejects_empty_pool(self):
        with pytest.raises(ServeError, match="pool size"):
            FabricPool(0, fake_factory())

    def test_totals_aggregate_workers(self):
        pool = FabricPool(2, fake_factory(sim_ns=10.0, cold_reconfig_ns=5.0))
        for worker in pool:
            worker.execute(_request(fft_spec()), CancelToken())
        assert pool.total_busy_ns == pytest.approx(20.0)
        assert pool.total_reconfig_ns == pytest.approx(10.0)
        assert pool.total_cold_starts == 2
        assert len(pool) == 2
