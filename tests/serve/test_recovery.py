"""Journal replay, engine recovery and service restart.

The replay fold is tested directly (idempotency, DONE-wins monotony,
seq dedup), then through the sequential :class:`DurableEngine`
(construction = recovery: result dedup, requeue, epoch resume), and
finally through the asyncio :class:`FabricJobService` (restart replays
the journal the same way).
"""

from __future__ import annotations

import asyncio
import zlib

import numpy as np
import pytest

from repro.serve.durability.engine import DurableEngine
from repro.serve.durability.journal import FsyncPolicy, JobJournal
from repro.serve.durability.records import JournalRecord, RecordType, encode_request
from repro.serve.durability.recovery import replay
from repro.serve.jobs import JobRequest, JobStatus, fft_spec, jpeg_spec
from repro.serve.service import FabricJobService

from tests.serve.fakes import fake_factory


def _fft_request(job_id="job-0", n=16, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    return JobRequest(
        spec=fft_spec(n, 4, 2),
        payload=rng.standard_normal(n) + 1j * rng.standard_normal(n),
        job_id=job_id,
        **kwargs,
    )


def _record(type_, job_id, data=None, seq=0):
    return JournalRecord(type=type_, job_id=job_id, data=data or {}, seq=seq)


class TestReplayFold:
    def test_lifecycle_counting(self):
        request = _fft_request("a")
        records = [
            _record(RecordType.SUBMITTED, "a", encode_request(request), 1),
            _record(RecordType.DISPATCHED, "a", {"worker": "f0"}, 2),
            _record(RecordType.RETRY, "a", {"attempt": 1}, 3),
            _record(RecordType.DISPATCHED, "a", {"worker": "f1"}, 4),
            _record(RecordType.DONE, "a", {"status": "done"}, 5),
        ]
        state = replay(records)
        job = state.jobs["a"]
        assert job.finished
        assert job.dispatches == 2
        assert job.retries == 1
        assert job.last_worker == "f1"
        assert state.finished_jobs() == [job]
        assert state.unfinished_jobs() == []

    def test_seq_dedup_makes_compaction_duplicates_harmless(self):
        records = [
            _record(RecordType.SUBMITTED, "a", {}, 1),
            _record(RecordType.DISPATCHED, "a", {"worker": "f0"}, 2),
        ]
        doubled = records + [
            _record(r.type, r.job_id, dict(r.data), r.seq) for r in records
        ]
        assert replay(doubled).jobs["a"].dispatches == 1

    def test_done_wins_and_first_done_sticks(self):
        records = [
            _record(RecordType.SUBMITTED, "a", {}, 1),
            _record(RecordType.DONE, "a", {"status": "done"}, 2),
            _record(RecordType.DONE, "a", {"status": "failed"}, 3),
        ]
        assert replay(records).jobs["a"].done == {"status": "done"}

    def test_progress_only_advances(self):
        records = [
            _record(RecordType.EPOCH_PROGRESS, "a",
                    {"slice": 4, "checkpoint": "x", "crc": 1}, 1),
            _record(RecordType.EPOCH_PROGRESS, "a",
                    {"slice": 2, "checkpoint": "y", "crc": 2}, 2),
        ]
        job = replay(records).jobs["a"]
        assert job.progress_slice == 4
        assert job.checkpoint_path == "x"

    def test_moved_jobs_are_not_requeued(self):
        request = _fft_request("a")
        records = [
            _record(RecordType.SUBMITTED, "a", encode_request(request), 1),
            _record(RecordType.MOVED, "a", {"to": "shard-2"}, 2),
        ]
        state = replay(records)
        assert state.unfinished_jobs() == []  # the successor owns it

    def test_submitted_after_moved_readopts_the_job(self):
        # Steal it away, drain it back: the journal reads SUBMITTED,
        # MOVED, SUBMITTED.  The fresher SUBMITTED supersedes the stale
        # MOVED — without this, *both* journals disown the job and an
        # acknowledged job is lost.
        request = _fft_request("a")
        records = [
            _record(RecordType.SUBMITTED, "a", encode_request(request), 1),
            _record(RecordType.MOVED, "a", {"to": "shard-2"}, 2),
            _record(RecordType.SUBMITTED, "a", encode_request(request), 3),
        ]
        state = replay(records)
        assert [j.job_id for j in state.unfinished_jobs()] == ["a"]
        assert [r.job_id for r in state.recovered_requests()] == ["a"]
        # And a move after the re-adoption closes it again.
        records.append(_record(RecordType.MOVED, "a", {"to": "shard-1"}, 4))
        assert replay(records).unfinished_jobs() == []

    def test_unsubmitted_jobs_are_not_requeued(self):
        # A DISPATCHED with no SUBMITTED (its segment was corrupt):
        # nothing to requeue from, and nothing to lose — the job was
        # never acknowledged.
        records = [_record(RecordType.DISPATCHED, "ghost", {}, 1)]
        state = replay(records)
        assert state.unfinished_jobs() == []
        assert state.recovered_requests() == []

    def test_resume_requires_verified_checkpoint(self, tmp_path):
        request = _fft_request("a")
        blob = b"checkpoint-bytes"
        good = tmp_path / "a.ckpt"
        good.write_bytes(blob)
        crc = zlib.crc32(blob) & 0xFFFFFFFF
        base = [
            _record(RecordType.SUBMITTED, "a", encode_request(request), 1),
        ]
        verified = replay(
            base
            + [_record(RecordType.EPOCH_PROGRESS, "a",
                       {"slice": 2, "checkpoint": str(good), "crc": crc}, 2)]
        ).recovered_requests()
        assert verified[0].resume_slice == 2
        assert verified[0].checkpoint_path == str(good)

        bad_crc = replay(
            base
            + [_record(RecordType.EPOCH_PROGRESS, "a",
                       {"slice": 2, "checkpoint": str(good), "crc": crc ^ 1},
                       2)]
        ).recovered_requests()
        assert bad_crc[0].resume_slice == 0  # downgrade to from-scratch

        missing = replay(
            base
            + [_record(RecordType.EPOCH_PROGRESS, "a",
                       {"slice": 2, "checkpoint": str(tmp_path / "nope"),
                        "crc": crc}, 2)]
        ).recovered_requests()
        assert missing[0].resume_slice == 0


class TestEngineRecovery:
    def test_finished_jobs_recover_as_results_not_reruns(self, tmp_path):
        engine = DurableEngine(tmp_path)
        engine.submit(_fft_request("a"))
        engine.submit(
            JobRequest(spec=jpeg_spec(75, False),
                       payload=np.zeros((8, 8), dtype=np.int64),
                       job_id="b")
        )
        engine.run()
        engine.close()

        restarted = DurableEngine(tmp_path)
        assert restarted.report.recovered_finished == 2
        assert restarted.queue == []
        recorded = restarted.submit(_fft_request("a"))  # client resubmit
        assert recorded is not None
        assert recorded.recovered
        assert recorded.status is JobStatus.DONE
        # The resubmit appended nothing: dedup is journal-free.
        assert restarted.journal.appended == 0
        restarted.close()

    def test_unfinished_job_is_requeued_and_completes(self, tmp_path):
        # Simulate a crash by writing SUBMITTED without running.
        journal = JobJournal(tmp_path, fsync=FsyncPolicy.NEVER, lock=False)
        request = _fft_request("lost")
        journal.submitted("lost", encode_request(request))
        journal.close()

        engine = DurableEngine(tmp_path)
        assert engine.report.recovered_requeued == 1
        report = engine.run()
        assert report.completed == 1
        assert engine.results["lost"].status is JobStatus.DONE
        engine.close()

    def test_recovered_run_is_bit_identical(self, tmp_path):
        request = _fft_request("x", seed=11)
        clean = DurableEngine(tmp_path / "clean")
        clean.submit(_fft_request("x", seed=11))
        clean.run()
        want = clean.results["x"].output
        clean.close()

        journal = JobJournal(
            tmp_path / "crashed", fsync=FsyncPolicy.NEVER, lock=False
        )
        journal.submitted("x", encode_request(request))
        journal.close()
        recovered = DurableEngine(tmp_path / "crashed")
        recovered.run()
        assert np.array_equal(recovered.results["x"].output, want)
        recovered.close()


class TestServiceRestart:
    def test_restarted_service_requeues_and_dedups(self, tmp_path):
        async def first_life():
            journal = JobJournal(tmp_path, fsync=FsyncPolicy.NEVER)
            service = FabricJobService(
                pool_size=1, session_factory=fake_factory(), journal=journal
            )
            async with service:
                done = await (await service.submit(_request("finished-0")))
            journal.close()
            return done

        def _request(job_id):
            # Journaled submissions must carry codec-able payloads.
            return JobRequest(
                spec=fft_spec(), payload=[0.5] * 16, job_id=job_id
            )

        done = asyncio.run(first_life())
        assert done.status is JobStatus.DONE

        # The process "dies" with one more job acknowledged but not run.
        journal = JobJournal(tmp_path, fsync=FsyncPolicy.NEVER)
        journal.submitted(
            "lost-1",
            encode_request(
                JobRequest(spec=fft_spec(), payload=[0.0] * 16,
                           job_id="lost-1")
            ),
        )
        journal.close()

        async def second_life():
            journal = JobJournal(tmp_path, fsync=FsyncPolicy.NEVER)
            service = FabricJobService(
                pool_size=1, session_factory=fake_factory(), journal=journal
            )
            async with service:
                # The requeued job finishes without any client resubmit.
                recovered = await service.recovered_futures["lost-1"]
                # Resubmitting the finished job returns the recorded
                # result instead of re-executing it.
                replayed = await (await service.submit(_request("finished-0")))
            journal.close()
            return service, recovered, replayed

        service, recovered, replayed = asyncio.run(second_life())
        assert recovered.status is JobStatus.DONE
        assert replayed.recovered
        assert replayed.status is JobStatus.DONE
        outcomes = service.metrics["serve_recovered_jobs_total"]
        assert outcomes.value(outcome="finished") == 1
        assert outcomes.value(outcome="requeued") == 1
