"""``FabricJobService.handoff``: drain-for-migration at the async tier.

The coroutine counterpart of the cluster's shard handoff: surrender the
queued backlog (MOVED journaled, local waiters told to follow the job),
never interrupt in-flight work, and leave a journal whose replay no
longer claims the surrendered jobs — the successor's SUBMITTED records
own them.  No pytest-asyncio in the toolchain, so each test drives its
own event loop via ``asyncio.run``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ServeError
from repro.serve.durability.journal import FsyncPolicy, JobJournal
from repro.serve.durability.records import RecordType
from repro.serve.durability.recovery import replay
from repro.serve.jobs import JobRequest, JobStatus, RejectReason, fft_spec
from repro.serve.service import FabricJobService

from tests.serve.fakes import fake_factory


def _request(job_id: str) -> JobRequest:
    # Journaled submissions must carry codec-able payloads.
    return JobRequest(spec=fft_spec(), payload=[0.5] * 16, job_id=job_id)


def _scenario(tmp_path, n_jobs=5, sleep_s=0.05):
    """Queue ``n_jobs`` on a one-fabric service and hand off mid-burst.

    Returns (inflight result, surrendered requests, journal records).
    """

    async def run():
        journal = JobJournal(tmp_path, fsync=FsyncPolicy.NEVER)
        service = FabricJobService(
            pool_size=1,
            session_factory=fake_factory(sleep_s=sleep_s),
            journal=journal,
        )
        async with service:
            futures = [
                await service.submit(_request(f"ho-{i}"))
                for i in range(n_jobs)
            ]
            # Let the single fabric pick up ho-0 before surrendering.
            await asyncio.sleep(sleep_s / 2)
            surrendered = await service.handoff()
            outcomes = await asyncio.gather(*futures)
        journal.close()
        scan_journal = JobJournal(tmp_path, fsync=FsyncPolicy.NEVER)
        records, _ = scan_journal.scan()
        scan_journal.close()
        return outcomes, surrendered, records

    return asyncio.run(run())


class TestHandoff:
    def test_queued_jobs_are_surrendered_not_executed(self, tmp_path):
        outcomes, surrendered, _ = _scenario(tmp_path)
        assert [r.job_id for r in surrendered] == [
            f"ho-{i}" for i in range(1, 5)
        ]
        by_id = {result.job_id: result for result in outcomes}
        # The in-flight job is never interrupted; handoff waited for it.
        assert by_id["ho-0"].status is JobStatus.DONE
        for job_id in ("ho-1", "ho-2", "ho-3", "ho-4"):
            result = by_id[job_id]
            assert result.status is JobStatus.REJECTED
            assert RejectReason.HANDOFF.value in result.error

    def test_surrendered_futures_carry_the_retry_after_hint(self, tmp_path):
        """A co-located waiter shouldn't hammer the successor the instant
        its future resolves — the rejection tells it when to follow."""

        async def run():
            service = FabricJobService(
                pool_size=1,
                session_factory=fake_factory(sleep_s=0.05),
                handoff_retry_after_s=1.5,
            )
            async with service:
                futures = [
                    await service.submit(_request(f"ho-{i}"))
                    for i in range(3)
                ]
                await asyncio.sleep(0.01)
                await service.handoff()
                return await asyncio.gather(*futures)

        outcomes = asyncio.run(run())
        rejected = [
            r for r in outcomes if r.status is JobStatus.REJECTED
        ]
        assert rejected  # the backlog was surrendered
        for result in rejected:
            # Jittered within [hint, hint * 1.5): never earlier than the
            # configured hint, bounded above so the wait stays honest.
            assert 1.5 <= result.retry_after_s < 2.25

    def test_surrender_is_journaled_as_moved(self, tmp_path):
        _, surrendered, records = _scenario(tmp_path)
        moved = {
            r.job_id for r in records if r.type is RecordType.MOVED
        }
        assert moved == {request.job_id for request in surrendered}

    def test_replay_no_longer_claims_surrendered_jobs(self, tmp_path):
        _, surrendered, records = _scenario(tmp_path)
        state = replay(records)
        requeued = {r.job_id for r in state.recovered_requests()}
        assert requeued.isdisjoint(
            {request.job_id for request in surrendered}
        )

    def test_successor_adopts_the_surrendered_backlog(self, tmp_path):
        _, surrendered, _ = _scenario(tmp_path / "old")

        async def second_home():
            async with FabricJobService(
                pool_size=1, session_factory=fake_factory()
            ) as successor:
                futures = [
                    await successor.submit(request)
                    for request in surrendered
                ]
                return await asyncio.gather(*futures)

        adopted = asyncio.run(second_home())
        assert all(result.status is JobStatus.DONE for result in adopted)

    def test_handoff_leaves_the_service_drained_but_running(self, tmp_path):
        async def run():
            async with FabricJobService(
                pool_size=1, session_factory=fake_factory()
            ) as service:
                surrendered = await service.handoff()
                with pytest.raises(Exception):
                    await service.submit(_request("late"))
                return surrendered

        assert asyncio.run(run()) == []

    def test_handoff_on_a_stopped_service_raises(self):
        service = FabricJobService(
            pool_size=1, session_factory=fake_factory()
        )

        async def run():
            await service.handoff()

        with pytest.raises(ServeError, match="stopped"):
            asyncio.run(run())
