"""Scheduling policies and the deterministic trace replayer."""

import pytest

from repro.errors import ServeError
from repro.serve.jobs import JobRequest, fft_spec, jpeg_spec
from repro.serve.pool import FabricPool, FabricWorker
from repro.serve.scheduler import (
    AffinityPolicy,
    FIFOPolicy,
    make_policy,
    simulate_trace,
)
from repro.serve.sessions import CancelToken

from tests.serve.fakes import fake_factory


def _mixed_queue():
    """f j f j ... alternating queue of 8 requests."""
    queue = []
    for index in range(8):
        spec = fft_spec() if index % 2 == 0 else jpeg_spec()
        queue.append(JobRequest(spec=spec, payload=None, job_id=f"q{index}"))
    return queue


def _warm_worker(spec):
    worker = FabricWorker("w0", fake_factory(cold_reconfig_ns=100.0))
    worker.execute(
        JobRequest(spec=spec, payload=None), CancelToken()
    )
    return worker


class TestFIFOPolicy:
    def test_always_head(self):
        worker = _warm_worker(jpeg_spec())
        queue = _mixed_queue()
        assert FIFOPolicy().select(queue, worker) == 0  # fft head, jpeg-warm


class TestAffinityPolicy:
    def test_prefers_warm_match_over_head(self):
        worker = _warm_worker(jpeg_spec())
        policy = AffinityPolicy()
        queue = _mixed_queue()  # head is fft, first jpeg at index 1
        assert policy.select(queue, worker) == 1

    def test_head_when_warm_for_head(self):
        worker = _warm_worker(fft_spec())
        assert AffinityPolicy().select(_mixed_queue(), worker) == 0

    def test_cold_worker_takes_head(self):
        worker = FabricWorker("w0", fake_factory(cold_reconfig_ns=100.0))
        # nothing resident: every placement costs the same -> arrival order
        assert AffinityPolicy().select(_mixed_queue(), worker) == 0

    def test_starvation_guard_forces_head(self):
        worker = _warm_worker(jpeg_spec())
        policy = AffinityPolicy(patience=3)
        queue = _mixed_queue()
        skipped = [policy.select(queue, worker) for _ in range(3)]
        assert skipped == [1, 1, 1]  # head passed over (skips accumulate)
        assert policy.select(queue, worker) == 0  # patience exhausted

    def test_window_limits_scan(self):
        worker = _warm_worker(jpeg_spec())
        policy = AffinityPolicy(window=1)  # can only see the head
        assert policy.select(_mixed_queue(), worker) == 0

    def test_rejects_bad_knobs(self):
        with pytest.raises(ServeError):
            AffinityPolicy(window=0)
        with pytest.raises(ServeError):
            AffinityPolicy(patience=0)

    def test_make_policy_names(self):
        assert make_policy("affinity").name == "affinity"
        assert make_policy("cold_fifo").name == "cold_fifo"
        assert make_policy("fifo").name == "cold_fifo"
        with pytest.raises(ServeError, match="unknown"):
            make_policy("nope")


class TestSimulateTrace:
    def _trace(self, n=12):
        # f f j j f f ... — paired so a 2-worker FIFO pool cannot get
        # lucky via arrival parity (both workers see kind flips).
        return [
            JobRequest(
                spec=fft_spec() if (i // 2) % 2 == 0 else jpeg_spec(),
                payload=None,
                job_id=f"t{i}",
            )
            for i in range(n)
        ]

    def test_affinity_beats_cold_fifo_on_mixed_trace(self):
        cold = simulate_trace(
            self._trace(), FabricPool(2, fake_factory()), FIFOPolicy()
        )
        warm = simulate_trace(
            self._trace(), FabricPool(2, fake_factory()), AffinityPolicy()
        )
        assert warm.total_reconfig_ns < cold.total_reconfig_ns
        assert warm.warm_jobs > cold.warm_jobs
        # affinity self-partitions: at worst one switch per kind per worker
        assert warm.cold_jobs <= 4
        assert warm.reconfig_saved_ns > cold.reconfig_saved_ns

    def test_all_jobs_replayed_exactly_once(self):
        trace = self._trace()
        result = simulate_trace(
            trace, FabricPool(2, fake_factory()), AffinityPolicy()
        )
        assert sorted(j.job_id for j in result.jobs) == sorted(
            r.job_id for r in trace
        )

    def test_simulated_clock_is_consistent(self):
        result = simulate_trace(
            self._trace(), FabricPool(2, fake_factory(sim_ns=10.0)), FIFOPolicy()
        )
        for job in result.jobs:
            assert job.end_ns == pytest.approx(job.start_ns + job.sim_ns)
        assert result.makespan_ns == pytest.approx(
            max(j.end_ns for j in result.jobs)
        )
        assert 0.0 < result.utilization(2) <= 1.0

    def test_invalid_policy_index_raises(self):
        class Broken:
            name = "broken"

            def select(self, queue, worker):
                return len(queue)  # off the end

        with pytest.raises(ServeError, match="invalid index"):
            simulate_trace(
                self._trace(2), FabricPool(1, fake_factory()), Broken()
            )
