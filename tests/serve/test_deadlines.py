"""End-to-end deadline propagation: request → engine → async service.

``JobRequest.deadline_s`` is an *absolute* monotonic-clock deadline
bounding the whole job life (queue wait + every attempt), distinct from
``timeout_s`` (a per-attempt budget).  ``0`` disables it — and a
deadline-free job must never consult the clock at all, which is what
keeps the deterministic chaos scenarios clock-free.

Covered here:

* request semantics and journal codec round-trip;
* the synchronous :class:`DurableEngine` (injectable clock): expiry
  before dispatch, explicit :meth:`expire`, journaled terminally;
* the asyncio :class:`FabricJobService`: dead-on-arrival rejection at
  admission, expiry while queued, expiry between retries, and the
  per-attempt timeout being capped by the remaining deadline.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.errors import JobRejected, ServeError
from repro.serve.durability.engine import DurableEngine
from repro.serve.durability.journal import FsyncPolicy, JobJournal
from repro.serve.durability.records import (
    RecordType,
    decode_request,
    encode_request,
)
from repro.serve.jobs import JobRequest, JobStatus, fft_spec
from repro.serve.service import FabricJobService

from tests.serve.fakes import fake_factory, flaky_factory


def _request(job_id: str, **kwargs) -> JobRequest:
    return JobRequest(
        spec=fft_spec(16, 4, 2),
        payload=[0.5] * 16,
        job_id=job_id,
        **kwargs,
    )


class TestRequestSemantics:
    def test_zero_means_no_deadline_and_never_expires(self):
        request = _request("dl-0")
        assert request.deadline_s == 0.0
        assert not request.expired(float("inf"))

    def test_absolute_deadline_compares_against_now(self):
        request = _request("dl-0", deadline_s=10.0)
        assert not request.expired(9.999)
        assert request.expired(10.0)

    def test_negative_deadline_rejected(self):
        with pytest.raises(ServeError):
            _request("dl-0", deadline_s=-1.0)

    def test_journal_codec_round_trips_the_deadline(self):
        request = _request("dl-0", deadline_s=123.5)
        decoded = decode_request("dl-0", encode_request(request))
        assert decoded.deadline_s == 123.5

    def test_decode_defaults_missing_deadline_to_disabled(self):
        # Journals written before deadlines existed must still replay.
        body = encode_request(_request("dl-0"))
        body.pop("deadline_s")
        assert decode_request("dl-0", body).deadline_s == 0.0


class TestEngineDeadlines:
    def _engine(self, tmp_path, now):
        clock = lambda: now["t"]  # noqa: E731
        return DurableEngine(
            tmp_path, fsync=FsyncPolicy.NEVER, clock=clock
        )

    def test_expired_job_fails_before_dispatch(self, tmp_path):
        now = {"t": 100.0}
        engine = self._engine(tmp_path, now)
        engine.submit(_request("dl-0", deadline_s=50.0))
        result = engine.step()
        engine.close()
        assert result.status is JobStatus.TIMEOUT
        assert "deadline expired before dispatch" in result.error
        assert engine.report.expired == 1
        assert engine.report.failed == 1

    def test_live_deadline_job_completes_normally(self, tmp_path):
        now = {"t": 100.0}
        engine = self._engine(tmp_path, now)
        engine.submit(_request("dl-0", deadline_s=1e9))
        result = engine.step()
        engine.close()
        assert result.status is JobStatus.DONE
        assert engine.report.expired == 0

    def test_explicit_expire_pops_and_journals(self, tmp_path):
        now = {"t": 100.0}
        engine = self._engine(tmp_path, now)
        engine.submit(_request("dl-0", deadline_s=50.0))
        result = engine.expire("dl-0", where="during drain")
        assert result.status is JobStatus.TIMEOUT
        assert "during drain" in result.error
        assert not engine.queue
        engine.close()
        journal = JobJournal(tmp_path, fsync=FsyncPolicy.NEVER, lock=False)
        records, _ = journal.scan()
        journal.close()
        assert [r.type for r in records if r.job_id == "dl-0"] == [
            RecordType.SUBMITTED,
            RecordType.DONE,
        ]

    def test_expire_unknown_job_raises(self, tmp_path):
        engine = self._engine(tmp_path, {"t": 0.0})
        with pytest.raises(ServeError, match="not queued"):
            engine.expire("dl-missing")
        engine.close()

    def test_expired_terminal_record_is_not_requeued_on_replay(
        self, tmp_path
    ):
        now = {"t": 100.0}
        engine = self._engine(tmp_path, now)
        engine.submit(_request("dl-0", deadline_s=50.0))
        engine.step()
        engine.close()
        revived = DurableEngine(tmp_path, fsync=FsyncPolicy.NEVER)
        assert not revived.queue
        assert revived.results["dl-0"].status is JobStatus.TIMEOUT
        revived.close()


class TestServiceDeadlines:
    def test_dead_on_arrival_is_rejected_at_admission(self):
        async def run():
            service = FabricJobService(
                pool_size=1, session_factory=fake_factory()
            )
            async with service:
                request = _request(
                    "dl-0", deadline_s=time.monotonic() - 1.0
                )
                with pytest.raises(JobRejected) as exc_info:
                    await service.submit(request)
            return exc_info.value

        exc = asyncio.run(run())
        assert exc.reason == "expired"

    def test_deadline_free_jobs_are_unaffected(self):
        async def run():
            service = FabricJobService(
                pool_size=1, session_factory=fake_factory()
            )
            async with service:
                future = await service.submit(_request("dl-0"))
                return await future

        assert asyncio.run(run()).status is JobStatus.DONE

    def test_expiry_while_queued_fails_without_dispatch(self):
        async def run():
            service = FabricJobService(
                pool_size=1,
                session_factory=fake_factory(sleep_s=0.15),
            )
            async with service:
                blocker = await service.submit(_request("dl-block"))
                doomed = await service.submit(
                    _request(
                        "dl-queued",
                        deadline_s=time.monotonic() + 0.02,
                    )
                )
                return await asyncio.gather(blocker, doomed)

        blocked, doomed = asyncio.run(run())
        assert blocked.status is JobStatus.DONE
        assert doomed.status is JobStatus.TIMEOUT
        assert "deadline expired in queue" in doomed.error
        assert doomed.attempts == 0  # never reached a fabric

    def test_expiry_between_retries_stops_the_attempt_loop(self):
        async def run():
            factory, _ = flaky_factory(10)  # fails far past the deadline
            service = FabricJobService(
                pool_size=1,
                session_factory=factory,
                # One backoff outlives the deadline, so the expiry check
                # fires on the retry path before failures exhaust the
                # pool (attempts are near-instant; sleeps dominate).
                retry_backoff_s=0.06,
            )
            async with service:
                future = await service.submit(
                    _request(
                        "dl-retry",
                        deadline_s=time.monotonic() + 0.05,
                        max_retries=50,
                    )
                )
                return await future

        result = asyncio.run(run())
        assert result.status is JobStatus.TIMEOUT
        assert "deadline expired" in result.error
        assert result.attempts >= 1  # it did try before giving up

    def test_attempt_timeout_is_capped_by_remaining_deadline(self):
        async def run():
            service = FabricJobService(
                pool_size=1,
                session_factory=fake_factory(sleep_s=5.0),
            )
            async with service:
                start = time.monotonic()
                future = await service.submit(
                    _request(
                        "dl-cap",
                        deadline_s=start + 0.1,
                        timeout_s=30.0,
                        max_retries=0,
                    )
                )
                result = await future
                return result, time.monotonic() - start

        result, elapsed = asyncio.run(run())
        assert result.status is JobStatus.TIMEOUT
        # Without the cap this would block ~5 s (session run) or 30 s
        # (timeout_s); with it, the attempt dies at the deadline.
        assert elapsed < 2.0

    def test_expired_jobs_surface_in_the_metrics(self):
        async def run():
            service = FabricJobService(
                pool_size=1,
                session_factory=fake_factory(sleep_s=0.15),
            )
            async with service:
                blocker = await service.submit(_request("dl-block"))
                doomed = await service.submit(
                    _request(
                        "dl-queued",
                        deadline_s=time.monotonic() + 0.02,
                    )
                )
                await asyncio.gather(blocker, doomed)
            return service

        service = asyncio.run(run())
        assert service._m_expired.total == 1.0
