"""Serving layer against the real fabric kernels (no fakes).

Checks the pieces the fake-backed tests cannot: kernel outputs are
correct through the service, sessions really go warm (the paper's
amortization), and the switch-cost oracle agrees with what jobs
actually pay.
"""

import asyncio

import numpy as np
import pytest

from repro.kernels.jpeg.decoder import decode_image
from repro.serve.client import generate_trace, run_demo
from repro.serve.jobs import JobRequest, JobStatus, fft_spec, jpeg_spec
from repro.serve.pool import FabricWorker
from repro.serve.service import FabricJobService
from repro.serve.sessions import (
    CancelToken,
    FFTSession,
    JPEGSession,
    default_session_factory,
)


def _fft_payload(seed=0, n=64):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(n) + 1j * rng.standard_normal(n)) * 0.01


def _jpeg_payload(seed=0, shape=(16, 16)):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, shape).astype(np.int64)


class TestSessions:
    def test_fft_session_matches_numpy_and_goes_warm(self):
        session = FFTSession(fft_spec())
        cancel = CancelToken()
        x = _fft_payload()
        first = session.run(x, cancel)
        second = session.run(x, cancel)
        for stats in (first, second):
            np.testing.assert_allclose(
                stats.output, np.fft.fft(x), atol=1e-6
            )
        assert first.reconfig_ns > 0  # cold: programs stream via ICAP
        # warm: instruction images resident, only per-job data moves
        assert second.reconfig_ns < first.reconfig_ns

    def test_jpeg_session_stream_decodes(self):
        session = JPEGSession(jpeg_spec())
        img = _jpeg_payload()
        stats = session.run(img, CancelToken())
        decoded = decode_image(stats.output)
        assert decoded.shape == img.shape
        assert np.mean(np.abs(decoded.astype(float) - img)) < 12.0

    def test_jpeg_warm_jobs_pay_no_icap(self):
        session = JPEGSession(jpeg_spec())
        first = session.run(_jpeg_payload(1), CancelToken())
        second = session.run(_jpeg_payload(2), CancelToken())
        assert first.reconfig_ns > 0
        assert second.reconfig_ns == 0.0  # fully resident pipeline

    def test_cancel_token_aborts_mid_job(self):
        from repro.errors import JobCancelled

        session = FFTSession(fft_spec())
        cancel = CancelToken()
        cancel.cancel()
        with pytest.raises(JobCancelled):
            session.run(_fft_payload(), cancel)

    @pytest.mark.parametrize("spec", [fft_spec(), jpeg_spec()])
    def test_oracle_matches_measured_cold_cost(self, spec):
        """Scheduler scores are the reconfig time jobs actually pay."""
        probe = default_session_factory(spec)
        modeled = probe.rtms.switch_cost(probe.cold_setup_epochs())
        session = default_session_factory(spec)
        payload = (
            _fft_payload() if spec.kind.value == "fft" else _jpeg_payload()
        )
        measured = session.run(payload, CancelToken()).reconfig_ns
        if spec.kind.value == "jpeg":
            # JPEG static state is exactly the cold setup
            assert measured == pytest.approx(modeled)
        else:
            # FFT jobs additionally move per-job (yellow) twiddles
            assert measured >= modeled > 0

    def test_warm_switch_cost_is_zero_on_live_worker(self):
        worker = FabricWorker("w0", default_session_factory)
        spec = jpeg_spec()
        cold_estimate = worker.switch_cost_ns(spec)
        assert cold_estimate > 0
        worker.execute(
            JobRequest(spec=spec, payload=_jpeg_payload()), CancelToken()
        )
        assert worker.switch_cost_ns(spec) == 0.0


class TestClient:
    def test_generate_trace_is_reproducible(self):
        first = generate_trace(n_jobs=10, seed=3)
        second = generate_trace(n_jobs=10, seed=3)
        assert [r.spec for r in first] == [r.spec for r in second]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.payload, b.payload)
        kinds = [r.spec.kind.value for r in first]
        assert kinds.count("fft") == 5  # exact-count shuffle

    def test_trace_fraction_controls_mix(self):
        trace = generate_trace(n_jobs=8, fft_fraction=0.25)
        kinds = [r.spec.kind.value for r in trace]
        assert kinds.count("fft") == 2 and kinds.count("jpeg") == 6

    def test_run_demo_serves_mixed_trace(self):
        summary = asyncio.run(run_demo(n_jobs=8, pool_size=2))
        assert summary["statuses"] == {"done": 8}
        assert summary["warm_jobs"] + summary["cold_jobs"] == 8
        assert summary["warm_jobs"] > 0  # residency paid off in-service
        assert summary["reconfig_saved_ns_total"] > 0
        assert "serve_jobs_submitted_total" in summary["prometheus"]


class TestServiceEndToEnd:
    def test_fft_and_jpeg_jobs_through_the_service(self):
        async def scenario():
            x = _fft_payload()
            img = _jpeg_payload()
            async with FabricJobService(pool_size=2) as service:
                fft_future = await service.submit(
                    JobRequest(spec=fft_spec(), payload=x)
                )
                jpeg_future = await service.submit(
                    JobRequest(spec=jpeg_spec(), payload=img)
                )
                fft_result, jpeg_result = await asyncio.gather(
                    fft_future, jpeg_future
                )
            return x, img, fft_result, jpeg_result

        x, img, fft_result, jpeg_result = asyncio.run(scenario())
        assert fft_result.status is JobStatus.DONE
        assert jpeg_result.status is JobStatus.DONE
        np.testing.assert_allclose(fft_result.output, np.fft.fft(x), atol=1e-6)
        decoded = decode_image(jpeg_result.output)
        assert decoded.shape == img.shape
