"""Batch coalescing in the serving layer: policy, worker, durability.

Three layers of the serve-side batching stack under test:

* :class:`BatchCoalescingPolicy` grouping — same-configuration jobs
  within the affinity window coalesce into one dispatch, resumed jobs
  never do;
* :meth:`FabricWorker.execute_batch` equivalence — batched lane outputs
  and accounting are identical to per-job scalar execution for the real
  FFT and JPEG sessions;
* :class:`DurableEngine` batched steps — per-lane journaling means a
  crash mid-batch recovers exactly the finished lanes and requeues the
  rest, nothing lost and nothing double-run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos.crashpoints import FaultSpec, SimulatedCrash, armed
from repro.errors import ServeError
from repro.serve.durability.engine import DurableEngine
from repro.serve.jobs import JobRequest, JobStatus, fft_spec, jpeg_spec
from repro.serve.pool import FabricPool, FabricWorker
from repro.serve.scheduler import (
    AffinityPolicy,
    BatchCoalescingPolicy,
    make_policy,
    simulate_trace,
)
from repro.serve.sessions import CancelToken

from tests.serve.fakes import fake_factory


def _mixed_queue():
    """f j f j ... alternating queue of 8 requests."""
    queue = []
    for index in range(8):
        spec = fft_spec() if index % 2 == 0 else jpeg_spec()
        queue.append(JobRequest(spec=spec, payload=None, job_id=f"q{index}"))
    return queue


def _fft_queue(n=6):
    return [
        JobRequest(spec=fft_spec(), payload=None, job_id=f"f{index}")
        for index in range(n)
    ]


def _warm_worker(spec):
    worker = FabricWorker("w0", fake_factory(cold_reconfig_ns=100.0))
    worker.execute(JobRequest(spec=spec, payload=None), CancelToken())
    return worker


def _fft_payloads(n, seed=7):
    rng = np.random.default_rng(seed)
    return [
        rng.normal(scale=0.01, size=64) + 1j * rng.normal(scale=0.01, size=64)
        for _ in range(n)
    ]


class TestBatchCoalescingPolicy:
    def test_groups_same_config_within_window(self):
        worker = _warm_worker(jpeg_spec())
        group = BatchCoalescingPolicy().select_group(_mixed_queue(), worker)
        # anchor is the first jpeg (affinity pick); every window jpeg rides
        assert group == [1, 3, 5, 7]

    def test_max_batch_caps_the_group(self):
        worker = _warm_worker(jpeg_spec())
        policy = BatchCoalescingPolicy(max_batch=2)
        assert policy.select_group(_mixed_queue(), worker) == [1, 3]

    def test_window_limits_partner_scan(self):
        worker = _warm_worker(jpeg_spec())
        policy = BatchCoalescingPolicy(window=2)
        assert policy.select_group(_mixed_queue(), worker) == [1]

    def test_group_of_one_without_partners(self):
        worker = _warm_worker(fft_spec())
        queue = _mixed_queue()[:2]  # one fft, one jpeg
        assert BatchCoalescingPolicy().select_group(queue, worker) == [0]

    def test_resumed_anchor_never_coalesces(self):
        queue = _fft_queue()
        queue[0].resume_slice = 3
        worker = FabricWorker("w0", fake_factory())
        group = BatchCoalescingPolicy().select_group(queue, worker)
        assert group == [0]  # mid-stream state is lane-incompatible

    def test_resumed_partner_left_out(self):
        queue = _fft_queue()
        queue[2].resume_slice = 3
        worker = FabricWorker("w0", fake_factory())
        group = BatchCoalescingPolicy().select_group(queue, worker)
        assert group == [0, 1, 3, 4, 5]

    def test_coalesced_jobs_shed_starvation_skips(self):
        worker = _warm_worker(jpeg_spec())
        policy = BatchCoalescingPolicy(patience=3)
        queue = _mixed_queue()
        policy.select(queue, worker)  # head (fft) passed over once
        assert policy._skips  # the skip is recorded...
        ffts = [q for q in queue if q.spec.kind == "fft"]
        group = policy.select_group(ffts, worker)
        assert group[0] == 0  # ...until the head finally dispatches,
        assert not policy._skips  # which sheds its skip count

    def test_rejects_bad_max_batch(self):
        with pytest.raises(ServeError, match="max_batch"):
            BatchCoalescingPolicy(max_batch=0)

    def test_make_policy_names(self):
        assert make_policy("batch_affinity").name == "batch_affinity"
        assert make_policy("batch").name == "batch_affinity"


class TestSimulateTraceCoalescing:
    def _trace(self, n=12):
        return [
            JobRequest(
                spec=fft_spec() if (i // 2) % 2 == 0 else jpeg_spec(),
                payload=None,
                job_id=f"t{i}",
            )
            for i in range(n)
        ]

    def test_all_jobs_replayed_exactly_once(self):
        trace = self._trace()
        result = simulate_trace(
            trace, FabricPool(2, fake_factory()), BatchCoalescingPolicy()
        )
        assert sorted(j.job_id for j in result.jobs) == sorted(
            r.job_id for r in trace
        )

    def test_coalescing_no_worse_than_affinity_on_warmth(self):
        affinity = simulate_trace(
            self._trace(), FabricPool(2, fake_factory()), AffinityPolicy()
        )
        batched = simulate_trace(
            self._trace(),
            FabricPool(2, fake_factory()),
            BatchCoalescingPolicy(),
        )
        # grouping whole runs of one kind keeps at least affinity's warmth
        assert batched.warm_jobs >= affinity.warm_jobs
        assert batched.total_reconfig_ns <= affinity.total_reconfig_ns


class TestWorkerBatchEquivalence:
    def test_fft_batch_matches_scalar(self):
        spec = fft_spec(64, 8, 2)
        payloads = _fft_payloads(6)
        cancel = CancelToken()
        seq = FabricWorker("seq")
        seq_runs = [
            seq.execute(JobRequest(spec=spec, payload=p), cancel)
            for p in payloads
        ]
        bat = FabricWorker("bat")
        bat_runs = bat.execute_batch(
            [JobRequest(spec=spec, payload=p) for p in payloads], cancel
        )
        assert len(bat_runs) == len(seq_runs)
        for a, b in zip(seq_runs, bat_runs):
            assert np.array_equal(a.stats.output, b.stats.output)
            assert a.stats.sim_ns == b.stats.sim_ns
            assert a.warm == b.warm
        # a second batch on the now-warm worker: every lane warm
        again = bat.execute_batch(
            [JobRequest(spec=spec, payload=p) for p in payloads[:3]], cancel
        )
        assert all(run.warm for run in again)
        for p, run in zip(payloads[:3], again):
            ref = seq.execute(JobRequest(spec=spec, payload=p), cancel)
            assert np.array_equal(ref.stats.output, run.stats.output)
            assert ref.stats.sim_ns == run.stats.sim_ns

    def test_jpeg_batch_streams_identical(self):
        from repro.io.images import natural_like

        spec = jpeg_spec(75, False)
        frames = [natural_like(16, 16, seed=s) for s in (1, 2, 3)]
        cancel = CancelToken()
        seq = FabricWorker("jseq")
        seq_runs = [
            seq.execute(JobRequest(spec=spec, payload=f), cancel)
            for f in frames
        ]
        bat = FabricWorker("jbat")
        bat_runs = bat.execute_batch(
            [JobRequest(spec=spec, payload=f) for f in frames], cancel
        )
        for a, b in zip(seq_runs, bat_runs):
            assert a.stats.output == b.stats.output  # byte-exact JFIF stream
            assert a.stats.sim_ns == pytest.approx(b.stats.sim_ns)

    def test_mixed_config_batch_rejected(self):
        worker = FabricWorker("w0")
        requests = [
            JobRequest(spec=fft_spec(64, 8, 2), payload=_fft_payloads(1)[0]),
            JobRequest(spec=jpeg_spec(), payload=np.zeros((8, 8))),
        ]
        with pytest.raises(ServeError):
            worker.execute_batch(requests, CancelToken())


class TestDurableBatch:
    SPEC = fft_spec(64, 8, 2)

    def _submit(self, engine, payloads, prefix="j"):
        for index, payload in enumerate(payloads):
            engine.submit(
                JobRequest(
                    spec=self.SPEC, payload=payload, job_id=f"{prefix}{index}"
                )
            )

    def test_batched_drain_matches_scalar_outputs(self, tmp_path):
        payloads = _fft_payloads(6, seed=3)
        batched = DurableEngine(tmp_path / "batched", max_batch=4)
        self._submit(batched, payloads)
        report = batched.run()
        assert report.completed == 6 and report.failed == 0
        outputs = {j: r.output for j, r in batched.results.items()}
        batched.close()

        scalar = DurableEngine(tmp_path / "scalar", max_batch=1)
        self._submit(scalar, payloads)
        scalar.run()
        for job_id, output in outputs.items():
            assert np.array_equal(output, scalar.results[job_id].output)
        scalar.close()

    def test_crash_mid_batch_requeues_only_unfinished_lanes(self, tmp_path):
        payloads = _fft_payloads(4, seed=3)
        engine = DurableEngine(tmp_path, max_batch=4)
        self._submit(engine, payloads, prefix="c")
        # die on the second lane-done crashpoint visit: exactly one
        # lane's done record reaches the journal before the crash
        with pytest.raises(SimulatedCrash):
            with armed(FaultSpec("serve.batch.lane.done", hit=2)):
                engine.run()

        second = DurableEngine(tmp_path, max_batch=4)
        assert second.report.recovered_finished == 1
        assert second.report.recovered_requeued == 3
        report = second.run()
        assert report.completed == 3  # the finished lane is not re-run
        assert all(
            second.results[f"c{i}"].status is JobStatus.DONE for i in range(4)
        )
        # exactly one result was revived from the journal (which records
        # completion, not the output payload); the re-run lanes all match
        # a clean scalar engine
        recovered = [i for i in range(4) if second.results[f"c{i}"].recovered]
        assert len(recovered) == 1
        scalar = DurableEngine(tmp_path / "ref", max_batch=1)
        self._submit(scalar, payloads, prefix="c")
        scalar.run()
        for i in range(4):
            if i in recovered:
                assert second.results[f"c{i}"].output is None
            else:
                assert np.array_equal(
                    second.results[f"c{i}"].output,
                    scalar.results[f"c{i}"].output,
                )
        scalar.close()
        second.close()
