"""Service QoS machinery: timeouts, retries, backpressure, drain.

These are the ISSUE's failure-path tests.  They run against injected
fake sessions (milliseconds, no fabric sim); an end-to-end test against
the real kernels lives in ``test_serve_end_to_end.py``.  No
pytest-asyncio in the toolchain, so each test drives its own event loop
via ``asyncio.run``.
"""

import asyncio
import threading
import time

import pytest

from repro.errors import JobRejected, ServeError
from repro.serve.jobs import JobRequest, JobStatus, fft_spec, jpeg_spec
from repro.serve.service import FabricJobService

from tests.serve.fakes import FakeSession, fake_factory, flaky_factory


def _request(spec=None, **kwargs):
    kwargs.setdefault("payload", "payload")
    return JobRequest(spec=spec or fft_spec(), **kwargs)


class TestHappyPath:
    def test_submit_returns_result_with_accounting(self):
        async def scenario():
            service = FabricJobService(
                pool_size=1, session_factory=fake_factory(cold_reconfig_ns=500.0)
            )
            async with service:
                first = await (await service.submit(_request()))
                second = await (await service.submit(_request()))
            return service, first, second

        service, first, second = asyncio.run(scenario())
        assert first.status is JobStatus.DONE and first.ok
        assert first.output == "payload"
        assert not first.warm and first.reconfig_ns == 500.0
        assert second.warm and second.reconfig_saved_ns == 500.0
        assert first.attempts == 1
        assert first.worker_id == "fabric-0"
        metrics = service.metrics
        assert metrics["serve_jobs_submitted_total"].total == 2
        assert metrics["serve_warm_jobs_total"].total == 1
        assert metrics["serve_cold_starts_total"].total == 1
        assert metrics["serve_reconfig_saved_ns_total"].total == 500.0

    def test_submit_and_wait(self):
        async def scenario():
            async with FabricJobService(
                pool_size=1, session_factory=fake_factory()
            ) as service:
                return await service.submit_and_wait(_request())

        assert asyncio.run(scenario()).status is JobStatus.DONE

    def test_stopped_service_rejects(self):
        async def scenario():
            service = FabricJobService(
                pool_size=1, session_factory=fake_factory()
            )
            with pytest.raises(JobRejected, match="stopped"):
                await service.submit(_request())
            result = await service.submit_and_wait(_request())
            assert result.status is JobStatus.REJECTED

        asyncio.run(scenario())


class TestTimeout:
    def test_slow_job_times_out_and_cancels(self):
        async def scenario():
            factory = fake_factory(sleep_s=5.0)
            async with FabricJobService(
                pool_size=1, session_factory=factory
            ) as service:
                t0 = time.monotonic()
                result = await service.submit_and_wait(
                    _request(timeout_s=0.05, max_retries=0)
                )
                elapsed = time.monotonic() - t0
                # the worker thread was released promptly (cooperative
                # cancellation at the next 5 ms slice), so a follow-up
                # job still completes
                follow_up = await service.submit_and_wait(
                    _request(timeout_s=5.0)
                )
            return result, elapsed, follow_up

        result, elapsed, follow_up = asyncio.run(scenario())
        assert result.status is JobStatus.TIMEOUT
        assert not result.ok
        assert result.attempts == 1
        assert "exceeded" in result.error
        assert elapsed < 2.0  # nowhere near the 5 s of scripted work
        assert follow_up.status is JobStatus.DONE

    def test_timeout_counts_in_metrics(self):
        async def scenario():
            service = FabricJobService(
                pool_size=1, session_factory=fake_factory(sleep_s=5.0)
            )
            async with service:
                await service.submit_and_wait(
                    _request(timeout_s=0.05, max_retries=0)
                )
            return service.metrics

        metrics = asyncio.run(scenario())
        assert (
            metrics["serve_jobs_completed_total"].value(
                kind="fft", status="timeout"
            )
            == 1
        )


class TestRetry:
    def test_retry_then_fail_exhausts_budget(self):
        async def scenario():
            factory, log = flaky_factory(failures=10)  # never recovers
            service = FabricJobService(
                pool_size=1,
                session_factory=factory,
                retry_backoff_s=0.001,
            )
            async with service:
                result = await service.submit_and_wait(
                    _request(max_retries=2)
                )
            return service, result, log

        service, result, log = asyncio.run(scenario())
        assert result.status is JobStatus.FAILED
        assert result.attempts == 3  # first try + 2 retries
        assert "injected failure" in result.error
        assert service.metrics["serve_job_retries_total"].total == 2
        # every attempt rebuilt the scrubbed session (3 attempts) and the
        # affinity cost model built one scratch probe for the config key
        assert len(log) == 4

    def test_retry_then_succeed(self):
        async def scenario():
            factory, _ = flaky_factory(failures=1)
            service = FabricJobService(
                pool_size=1,
                session_factory=factory,
                retry_backoff_s=0.001,
            )
            async with service:
                result = await service.submit_and_wait(
                    _request(max_retries=2)
                )
            return service, result

        service, result = asyncio.run(scenario())
        assert result.status is JobStatus.DONE
        assert result.attempts == 2
        assert not result.warm  # recovery attempt was a cold start
        assert service.metrics["serve_job_retries_total"].total == 1

    def test_zero_retries_fails_fast(self):
        async def scenario():
            factory, _ = flaky_factory(failures=10)
            async with FabricJobService(
                pool_size=1, session_factory=factory, retry_backoff_s=0.001
            ) as service:
                return await service.submit_and_wait(_request(max_retries=0))

        result = asyncio.run(scenario())
        assert result.status is JobStatus.FAILED
        assert result.attempts == 1


class TestAdmissionControl:
    def test_queue_full_rejection(self):
        async def scenario():
            release = threading.Event()

            def factory(spec):
                return _BlockingSession(spec, release)

            service = FabricJobService(
                pool_size=1, session_factory=factory, max_queue=1
            )
            async with service:
                running = await service.submit(_request(job_id="running"))
                await _wait_until(lambda: service.stats().inflight == 1)
                queued = await service.submit(_request(job_id="queued"))
                with pytest.raises(JobRejected, match="queue full"):
                    await service.submit(_request(job_id="overflow"))
                rejected = await service.submit_and_wait(
                    _request(job_id="overflow2")
                )
                release.set()
                first, second = await asyncio.gather(running, queued)
            return service, first, second, rejected

        service, first, second, rejected = asyncio.run(scenario())
        assert first.status is JobStatus.DONE
        assert second.status is JobStatus.DONE
        assert rejected.status is JobStatus.REJECTED
        assert rejected.error == "rejected: queue_full"  # structured reason
        assert service.metrics["serve_jobs_rejected_total"].total >= 1

    def test_submit_wait_backpressures_until_space(self):
        async def scenario():
            release = threading.Event()

            def factory(spec):
                return _BlockingSession(spec, release)

            async with FabricJobService(
                pool_size=1, session_factory=factory, max_queue=1
            ) as service:
                running = await service.submit(_request())
                await _wait_until(lambda: service.stats().inflight == 1)
                queued = await service.submit(_request())
                waiter = asyncio.create_task(
                    service.submit(_request(), wait=True)
                )
                await asyncio.sleep(0.05)
                assert not waiter.done()  # backpressured, not rejected
                release.set()
                third_future = await waiter
                results = await asyncio.gather(running, queued, third_future)
            return results

        results = asyncio.run(scenario())
        assert [r.status for r in results] == [JobStatus.DONE] * 3


class TestDrainAndShutdown:
    def test_drain_under_load_finishes_backlog(self):
        async def scenario():
            service = FabricJobService(
                pool_size=2, session_factory=fake_factory(sleep_s=0.01)
            )
            async with service:
                futures = [
                    await service.submit(_request(job_id=f"d{i}"))
                    for i in range(10)
                ]
                await service.drain()
                # drained: backlog empty, fabrics idle, admission closed
                stats = service.stats()
                assert stats.queue_depth == 0 and stats.inflight == 0
                with pytest.raises(JobRejected, match="draining"):
                    await service.submit(_request())
                results = [future.result() for future in futures]
            return results

        results = asyncio.run(scenario())
        assert len(results) == 10
        assert all(r.status is JobStatus.DONE for r in results)

    def test_hard_shutdown_rejects_queued_jobs(self):
        async def scenario():
            release = threading.Event()

            def factory(spec):
                return _BlockingSession(spec, release)

            service = FabricJobService(
                pool_size=1, session_factory=factory, max_queue=8
            )
            await service.start()
            running = await service.submit(_request(job_id="running"))
            await _wait_until(lambda: service.stats().inflight == 1)
            queued = [
                await service.submit(_request(job_id=f"q{i}"))
                for i in range(3)
            ]
            await service.shutdown(drain=False)  # fires cancel tokens
            outcomes = await asyncio.gather(running, *queued)
            return outcomes

        outcomes = asyncio.run(scenario())
        # queued jobs were turned away, nothing hangs
        assert all(o.status is not JobStatus.DONE for o in outcomes[1:])
        for outcome in outcomes[1:]:
            assert outcome.status is JobStatus.REJECTED

    def test_shutdown_is_idempotent(self):
        async def scenario():
            service = FabricJobService(
                pool_size=1, session_factory=fake_factory()
            )
            await service.start()
            await service.shutdown()
            await service.shutdown()  # second call is a no-op
            assert not service.running

        asyncio.run(scenario())

    def test_restart_after_shutdown_raises(self):
        async def scenario():
            service = FabricJobService(
                pool_size=1, session_factory=fake_factory()
            )
            await service.start()
            with pytest.raises(ServeError, match="already started"):
                await service.start()
            await service.shutdown()

        asyncio.run(scenario())


class TestServiceConfig:
    def test_rejects_bad_queue_bound(self):
        with pytest.raises(ServeError, match="max_queue"):
            FabricJobService(pool_size=1, max_queue=0)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


class _BlockingSession(FakeSession):
    """Runs until ``release`` fires (still polling cancellation)."""

    def __init__(self, spec, release: threading.Event) -> None:
        super().__init__(spec)
        self._release = release

    def run(self, payload, cancel):
        while not self._release.wait(timeout=0.005):
            cancel.check()
        return super().run(payload, cancel)


async def _wait_until(predicate, timeout_s: float = 2.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(0.005)
