"""Write-ahead journal: framing, corruption tolerance, rotation,
compaction, fsync policy, locking.

The hypothesis corpora implement the ISSUE's round-trip contract: any
record survives frame/unframe exactly, any *truncated tail* yields a
clean prefix of the appended records, and any *flipped byte* never
yields a record that was not appended (corruption can only drop
records, never invent or alter them).
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import JournalError
from repro.locks import HAS_FLOCK
from repro.serve.durability.journal import (
    FsyncPolicy,
    JobJournal,
    _frame,
    _unframe,
)
from repro.serve.durability.records import (
    JournalRecord,
    RecordType,
    decode_payload,
    decode_request,
    encode_payload,
    encode_request,
)
from repro.serve.jobs import JobKind, JobRequest, fft_spec, jpeg_spec

# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------

_json_scalars = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
    st.booleans(),
)

_record_strategy = st.builds(
    JournalRecord,
    type=st.sampled_from(list(RecordType)),
    job_id=st.text(
        alphabet=st.characters(codec="ascii", exclude_characters="\n\r"),
        min_size=1,
        max_size=24,
    ),
    data=st.dictionaries(st.text(max_size=10), _json_scalars, max_size=4),
    seq=st.integers(min_value=0, max_value=2**40),
)


class TestFraming:
    @given(_record_strategy)
    @settings(max_examples=100, deadline=None)
    def test_frame_unframe_round_trip(self, record):
        got = _unframe(_frame(record))
        assert got is not None
        assert got.type is record.type
        assert got.job_id == record.job_id
        assert got.seq == record.seq
        assert json.dumps(got.data, sort_keys=True) == json.dumps(
            record.data, sort_keys=True
        )

    @given(_record_strategy, st.integers(min_value=0))
    @settings(max_examples=100, deadline=None)
    def test_truncated_line_never_decodes(self, record, cut):
        frame = _frame(record)
        cut = cut % len(frame)  # strictly shorter than the frame
        assert _unframe(frame[:cut]) is None

    @given(_record_strategy, st.data())
    @settings(max_examples=100, deadline=None)
    def test_flipped_byte_never_decodes_differently(self, record, data):
        frame = bytearray(_frame(record))
        index = data.draw(st.integers(0, len(frame) - 1))
        bit = data.draw(st.integers(0, 7))
        frame[index] ^= 1 << bit
        got = _unframe(bytes(frame))
        # Either the corruption is detected (None) or — only when the
        # flip landed inside the CRC hex and produced the same value,
        # which cannot happen, or an equivalent JSON byte, which the
        # canonical encoding rules out — the record is unchanged.
        if got is not None:
            assert got.to_json() == record.to_json()

    def test_malformed_json_rejected(self):
        with pytest.raises(JournalError, match="malformed"):
            JournalRecord.from_json('{"nope": 1}')


class TestScanCorruptionTolerance:
    def _fill(self, tmp_path, n=8):
        journal = JobJournal(tmp_path, fsync=FsyncPolicy.NEVER, lock=False)
        for index in range(n):
            journal.submitted(f"job-{index:02d}", {"i": index})
        journal.close()
        return journal.segments()[0]

    @given(cut=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_truncated_tail_yields_clean_prefix(self, tmp_path_factory, cut):
        tmp = tmp_path_factory.mktemp("trunc")
        segment = self._fill(tmp)
        blob = segment.read_bytes()
        segment.write_bytes(blob[: cut % (len(blob) + 1)])
        journal = JobJournal(tmp, fsync=FsyncPolicy.NEVER, lock=False)
        records, report = journal.scan()
        journal.close()
        ids = [r.job_id for r in records]
        assert ids == [f"job-{i:02d}" for i in range(len(ids))]  # prefix
        assert report.dropped <= 1  # at most the torn line itself

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_flipped_byte_drops_only_suffix_of_segment(
        self, tmp_path_factory, data
    ):
        tmp = tmp_path_factory.mktemp("flip")
        segment = self._fill(tmp)
        blob = bytearray(segment.read_bytes())
        index = data.draw(st.integers(0, len(blob) - 1))
        blob[index] ^= 1 << data.draw(st.integers(0, 7))
        segment.write_bytes(bytes(blob))
        journal = JobJournal(tmp, fsync=FsyncPolicy.NEVER, lock=False)
        records, report = journal.scan()
        journal.close()
        # Whatever survives is a prefix of what was appended: nothing
        # after the first distrusted line in the segment is loaded, and
        # no record is ever altered or invented.
        ids = [r.job_id for r in records]
        assert ids == [f"job-{i:02d}" for i in range(len(ids))]
        if len(ids) < 8:
            assert report.dropped >= 1

    def test_corruption_in_one_segment_spares_later_segments(self, tmp_path):
        journal = JobJournal(
            tmp_path, segment_records=2, fsync=FsyncPolicy.NEVER, lock=False
        )
        for index in range(6):
            journal.submitted(f"job-{index}", {})
        journal.close()
        first = journal.segments()[0]
        first.write_bytes(b"garbage\n" + first.read_bytes())
        reopened = JobJournal(tmp_path, fsync=FsyncPolicy.NEVER, lock=False)
        records, report = reopened.scan()
        reopened.close()
        # Segment 0 is fully distrusted after its bad first line, the
        # other two segments load intact.
        assert [r.job_id for r in records] == [
            "job-2", "job-3", "job-4", "job-5"
        ]
        assert report.dropped >= 1


class TestRotationAndFsync:
    def test_rotation_every_n_records(self, tmp_path):
        journal = JobJournal(
            tmp_path, segment_records=3, fsync=FsyncPolicy.NEVER, lock=False
        )
        for index in range(7):
            journal.submitted(f"job-{index}", {})
        assert len(journal.segments()) == 3
        assert journal.rotations == 3  # counts every segment open
        journal.close()

    def test_fsync_policies_count(self, tmp_path):
        always = JobJournal(
            tmp_path / "a", fsync=FsyncPolicy.ALWAYS, lock=False
        )
        for index in range(3):
            always.submitted(f"job-{index}", {})
        assert always.fsyncs == 3
        always.close()

        never = JobJournal(tmp_path / "n", fsync="never", lock=False)
        for index in range(3):
            never.submitted(f"job-{index}", {})
        assert never.fsyncs == 0
        never.close()

    def test_seq_resumes_after_reopen(self, tmp_path):
        journal = JobJournal(tmp_path, fsync="never", lock=False)
        journal.submitted("a", {})
        journal.submitted("b", {})
        journal.close()
        reopened = JobJournal(tmp_path, fsync="never", lock=False)
        record = reopened.submitted("c", {})
        reopened.close()
        assert record.seq == 3


class TestCompaction:
    def test_keeps_done_of_finished_and_everything_unfinished(self, tmp_path):
        journal = JobJournal(tmp_path, fsync="never", lock=False)
        journal.submitted("done-job", {"payload": 1})
        journal.dispatched("done-job", {"worker": "f0"})
        journal.done("done-job", {"status": "done"})
        journal.submitted("live-job", {"payload": 2})
        journal.dispatched("live-job", {"worker": "f1"})
        dropped = journal.compact()
        assert dropped == 2  # done-job's SUBMITTED + DISPATCHED
        records, _ = journal.scan()
        kinds = {(r.job_id, r.type) for r in records}
        assert (("done-job", RecordType.DONE)) in kinds
        assert (("live-job", RecordType.SUBMITTED)) in kinds
        assert (("live-job", RecordType.DISPATCHED)) in kinds
        assert ("done-job", RecordType.SUBMITTED) not in kinds
        journal.close()

    def test_readopted_job_survives_compaction(self, tmp_path):
        """SUBMITTED after MOVED means the job bounced back (stolen
        away, then drained home).  Compaction must not treat the stale
        MOVED as terminal and disown the job."""
        journal = JobJournal(tmp_path, fsync="never", lock=False)
        journal.submitted("bounce", {"payload": 1})
        journal.moved("bounce", {"to": "shard-2"})
        journal.submitted("bounce", {"payload": 1})
        journal.compact()
        records, _ = journal.scan()
        journal.close()
        types = [r.type for r in sorted(records, key=lambda r: r.seq)]
        # Everything kept: the job is open, replay must requeue it.
        assert types == [
            RecordType.SUBMITTED,
            RecordType.MOVED,
            RecordType.SUBMITTED,
        ]


@pytest.mark.skipif(not HAS_FLOCK, reason="platform lacks flock()")
class TestLocking:
    def test_second_journal_on_same_dir_fails_fast(self, tmp_path):
        journal = JobJournal(tmp_path, fsync="never")
        with pytest.raises(JournalError, match="locked"):
            JobJournal(tmp_path, fsync="never")
        journal.close()
        # Released on close: a restart can take over.
        retaken = JobJournal(tmp_path, fsync="never")
        retaken.close()


# ---------------------------------------------------------------------------
# payload / request codec
# ---------------------------------------------------------------------------

_finite = st.floats(allow_nan=False, allow_infinity=False, width=64)


class TestPayloadCodec:
    @given(st.lists(st.tuples(_finite, _finite), min_size=1, max_size=32))
    @settings(max_examples=60, deadline=None)
    def test_fft_payload_bit_exact(self, pairs):
        x = np.array([complex(re, im) for re, im in pairs])
        back = decode_payload(JobKind.FFT, encode_payload(JobKind.FFT, x))
        assert back.dtype == np.complex128
        assert np.array_equal(back, x.astype(np.complex128))

    @given(
        st.lists(
            st.lists(st.integers(0, 255), min_size=4, max_size=4),
            min_size=4,
            max_size=4,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_jpeg_payload_bit_exact(self, rows):
        frame = np.array(rows, dtype=np.int64)
        back = decode_payload(JobKind.JPEG, encode_payload(JobKind.JPEG, frame))
        assert back.dtype == np.int64
        assert np.array_equal(back, frame)

    def test_request_round_trip(self):
        rng = np.random.default_rng(3)
        request = JobRequest(
            spec=fft_spec(16, 4, 2),
            payload=rng.standard_normal(16) + 1j * rng.standard_normal(16),
            job_id="rt-0",
            timeout_s=12.5,
            max_retries=3,
            tag="client-7",
        )
        back = decode_request("rt-0", encode_request(request))
        assert back.spec == request.spec
        assert back.timeout_s == 12.5
        assert back.max_retries == 3
        assert back.tag == "client-7"
        assert np.array_equal(back.payload, request.payload)

    def test_jpeg_request_round_trip(self):
        rng = np.random.default_rng(4)
        request = JobRequest(
            spec=jpeg_spec(75, False),
            payload=rng.integers(0, 256, size=(8, 8), dtype=np.int64),
            job_id="rt-1",
        )
        back = decode_request("rt-1", encode_request(request))
        assert back.spec == request.spec
        assert np.array_equal(back.payload, request.payload)
