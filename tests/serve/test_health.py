"""Fabric health: eject/readmit, quarantine escalation, requeue.

The serving-level half of the fault story: a fabric that keeps failing
(or surfaces an unrepairable fault) leaves the rotation, its in-flight
job moves to a healthy fabric, and operators can eject/readmit by hand.
All against fake sessions — the real fault plumbing is covered by
``tests/faults/``.
"""

import asyncio

import pytest

from repro.errors import FaultError, ServeError
from repro.serve.jobs import JobRequest, JobStatus, fft_spec
from repro.serve.pool import FabricPool, FabricWorker, HealthState
from repro.serve.scheduler import FIFOPolicy, simulate_trace
from repro.serve.service import FabricJobService
from repro.serve.sessions import CancelToken, SessionStats

from tests.serve.fakes import FakeSession, fake_factory

KINDS = ("healthy", "degraded", "quarantined")


def _request(**kwargs):
    kwargs.setdefault("payload", "payload")
    return JobRequest(spec=fft_spec(), **kwargs)


def faulty_factory(failures: int, *, error=FaultError, **kwargs):
    """Factory whose sessions raise ``error`` for the first N runs."""
    state = {"left": failures}

    class _Faulty(FakeSession):
        def run(self, payload, cancel: CancelToken) -> SessionStats:
            cancel.check()
            if state["left"] > 0:
                state["left"] -= 1
                raise error("injected fabric fault")
            return super().run(payload, cancel)

    def factory(spec):
        return _Faulty(spec, **kwargs)

    return factory


class TestHealthState:
    def test_gauge_codes(self):
        assert [HealthState(v).code for v in KINDS] == [0, 1, 2]


class TestWorkerLifecycle:
    def test_eject_drops_session_and_readmit_pays_cold(self):
        worker = FabricWorker("w0", fake_factory())
        worker.execute(_request(), CancelToken())
        assert worker.is_warm_for(fft_spec())
        worker.eject("operator")
        assert worker.health is HealthState.QUARANTINED
        assert not worker.available
        assert worker.session is None and worker.resident_key is None
        with pytest.raises(ServeError, match="quarantined"):
            worker.execute(_request(), CancelToken())
        worker.readmit()
        assert worker.health is HealthState.HEALTHY
        run = worker.execute(_request(), CancelToken())
        assert not run.warm  # post-repair cold start

    def test_eject_is_idempotent(self):
        worker = FabricWorker("w0", fake_factory())
        worker.eject("first")
        worker.eject("second")
        assert worker.quarantines == 1
        assert worker.quarantine_reason == "second"

    def test_failures_degrade_then_quarantine_at_threshold(self):
        worker = FabricWorker(
            "w0", faulty_factory(3, error=RuntimeError), failure_threshold=3
        )
        for expected in (HealthState.DEGRADED, HealthState.DEGRADED,
                         HealthState.QUARANTINED):
            with pytest.raises(RuntimeError):
                worker.execute(_request(), CancelToken())
            assert worker.health is expected
        assert "3 consecutive failures" in worker.quarantine_reason

    def test_success_resets_the_failure_streak(self):
        worker = FabricWorker(
            "w0", faulty_factory(2, error=RuntimeError), failure_threshold=3
        )
        with pytest.raises(RuntimeError):
            worker.execute(_request(), CancelToken())
        # Hand-heal one failure's worth, then succeed.
        with pytest.raises(RuntimeError):
            worker.execute(_request(), CancelToken())
        worker.execute(_request(), CancelToken())
        assert worker.consecutive_failures == 0
        assert worker.health is HealthState.DEGRADED  # history, not rotation

    def test_fault_error_quarantines_immediately(self):
        worker = FabricWorker("w0", faulty_factory(1), failure_threshold=3)
        with pytest.raises(FaultError):
            worker.execute(_request(), CancelToken())
        assert worker.health is HealthState.QUARANTINED
        assert "fabric fault" in worker.quarantine_reason

    def test_fault_stats_degrade_and_accumulate(self):
        worker = FabricWorker("w0", fake_factory())
        worker.record_fault_stats(
            SessionStats(faults_detected=2, faults_corrected=2, scrub_ns=10.0)
        )
        worker.record_fault_stats(SessionStats(hard_faults=1))
        assert worker.health is HealthState.DEGRADED
        assert worker.available  # degraded fabrics stay in rotation
        assert (worker.faults_detected, worker.faults_corrected) == (2, 2)
        assert worker.hard_faults == 1 and worker.scrub_sim_ns == 10.0

    def test_validation(self):
        with pytest.raises(ServeError):
            FabricWorker("w0", fake_factory(), failure_threshold=0)


class TestPoolHealth:
    def test_lookup_and_partition(self):
        pool = FabricPool(3, fake_factory())
        pool.worker("fabric-1").eject("test")
        assert [w.id for w in pool.available_workers()] == [
            "fabric-0", "fabric-2"
        ]
        assert [w.id for w in pool.quarantined_workers()] == ["fabric-1"]
        assert pool.quarantine_count == 1
        with pytest.raises(ServeError):
            pool.worker("fabric-9")

    def test_replay_skips_quarantined_workers(self):
        pool = FabricPool(2, fake_factory())
        pool.worker("fabric-0").eject("test")
        trace = [_request() for _ in range(4)]
        result = simulate_trace(trace, pool, FIFOPolicy())
        assert {j.worker_id for j in result.jobs} == {"fabric-1"}

    def test_replay_with_no_workers_raises(self):
        pool = FabricPool(1, fake_factory())
        pool.worker("fabric-0").eject("test")
        with pytest.raises(ServeError, match="quarantined"):
            simulate_trace([_request()], pool, FIFOPolicy())


class TestServiceHealth:
    def test_quarantine_requeues_job_onto_healthy_fabric(self):
        async def scenario():
            service = FabricJobService(
                pool_size=2, session_factory=faulty_factory(1)
            )
            async with service:
                result = await service.submit_and_wait(_request())
            return service, result

        service, result = asyncio.run(scenario())
        assert result.status is JobStatus.DONE
        bad = service.pool.quarantined_workers()
        assert len(bad) == 1
        assert result.worker_id != bad[0].id  # finished on the healthy one
        metrics = service.metrics
        assert metrics["serve_jobs_requeued_total"].total == 1
        assert metrics["serve_worker_quarantined_total"].total == 1
        assert metrics["serve_worker_health"].value(fabric=bad[0].id) == 2.0

    def test_last_fabric_quarantined_fails_fast(self):
        async def scenario():
            service = FabricJobService(
                pool_size=1, session_factory=faulty_factory(10)
            )
            async with service:
                return await service.submit_and_wait(_request())

        result = asyncio.run(scenario())
        assert result.status is JobStatus.FAILED
        assert "no healthy fabric remains" in result.error

    def test_operator_eject_and_readmit(self):
        async def scenario():
            service = FabricJobService(
                pool_size=1, session_factory=fake_factory()
            )
            async with service:
                await service.eject("fabric-0", reason="maintenance")
                # The lone worker idles; the job must wait for readmission.
                future = await service.submit(_request())
                await asyncio.sleep(0.05)
                assert not future.done()
                await service.readmit("fabric-0")
                result = await future
            return service, result

        service, result = asyncio.run(scenario())
        assert result.status is JobStatus.DONE
        metrics = service.metrics
        assert metrics["serve_worker_readmitted_total"].total == 1
        assert metrics["serve_worker_health"].value(fabric="fabric-0") == 0.0
