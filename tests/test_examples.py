"""Smoke tests: the shipped example scripts must run cleanly.

Only the fast examples run in the default suite; the longer ones
(`fft_exploration.py`, `jpeg_pipeline.py`) are exercised manually and by
the benchmark suite's equivalent code paths.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_examples_present(self):
        names = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py",
            "fft_exploration.py",
            "jpeg_pipeline.py",
            "custom_kernel.py",
            "temporal_reuse.py",
        } <= names

    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "expected 31" in out
        assert "max error vs numpy.fft" in out
        assert "FFTs/s" in out

    def test_custom_kernel(self):
        out = run_example("custom_kernel.py")
        assert "rebalancing over tile budgets" in out
        assert "Eq. 1" in out

    @pytest.mark.slow
    def test_temporal_reuse(self):
        out = run_example("temporal_reuse.py")
        assert "Gantt" in out or "T0_0" in out
