"""Tier-1 smoke test of the compile-cache benchmark.

Runs ``benchmarks/bench_compile.py`` against a temporary output path,
checks the ``BENCH_compile.json`` schema, and enforces the acceptance
contract: the warm pass must be served entirely from the cache at
>= 5x the cold config-build time, with byte-stable content hashes.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_HARNESS = Path(__file__).resolve().parent.parent / "benchmarks" / "bench_compile.py"


@pytest.fixture(scope="module")
def bench_compile():
    spec = importlib.util.spec_from_file_location("bench_compile", _HARNESS)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def entry(bench_compile, tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_compile.json"
    produced = bench_compile.run_bench(output=out)
    written = json.loads(out.read_text())
    assert written == produced
    return produced


def test_json_schema(entry):
    assert entry["bench"] == "compile_cache_repeated_sweep"
    assert set(entry) == {
        "bench", "points", "cold_s", "warm_s", "speedup", "cache",
        "hashes", "hashes_stable", "pass_timings_ms", "acceptance",
    }
    assert set(entry["acceptance"]) == {"min_speedup", "pass"}
    assert set(entry["cache"]) == {
        "hits", "misses", "disk_hits", "lowers", "evictions",
        "corrupt_quarantined", "requests", "hit_rate",
    }


def test_sweep_shape(entry):
    # 6 FFT decompositions x 2 link costs + 3 JPEG setups.
    assert entry["points"] == 15
    assert len(entry["hashes"]) == 15
    assert all(len(h) == 64 for h in entry["hashes"].values())


def test_warm_pass_served_from_cache(entry):
    cache = entry["cache"]
    assert cache["hits"] == entry["points"]
    assert cache["misses"] == cache["lowers"] == entry["points"]
    assert cache["hit_rate"] == pytest.approx(0.5)


def test_acceptance(entry):
    assert entry["hashes_stable"] is True
    assert entry["speedup"] >= entry["acceptance"]["min_speedup"] == 5.0
    assert entry["acceptance"]["pass"] is True


def test_pass_timings_cover_the_pipeline(entry):
    from repro.compile.passes import default_passes

    assert set(entry["pass_timings_ms"]) == {
        name for name, _ in default_passes()
    }
    assert all(t >= 0 for t in entry["pass_timings_ms"].values())
