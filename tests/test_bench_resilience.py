"""Tier-1 smoke test of the resilience benchmark.

Runs ``benchmarks/bench_resilience.py`` at reduced sizes, checks the
machine-readable ``BENCH_resilience.json`` schema, and enforces the
ISSUE's acceptance contract on the committed full-size artifact:
journal overhead <= 15 % of the simulated makespan on the 200-job
mixed trace, recovery work linear in journal length, and the load
shedder holding p99 queue delay well under the naive bounded queue at
5x overload.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent.parent
_HARNESS = _ROOT / "benchmarks" / "bench_resilience.py"
_COMMITTED = _ROOT / "BENCH_resilience.json"

_JOURNAL_KEYS = {
    "jobs", "seed", "fft_fraction", "records", "bytes", "segments",
    "rotations", "makespan_ns", "journal_ns", "overhead_pct", "model",
}
_RECOVERY_KEYS = {
    "jobs", "records", "bytes", "segments", "recovered_finished",
    "recovered_requeued", "replay_ns",
}
_POLICY_KEYS = {
    "policy", "arrivals", "completed", "rejected", "rejected_total",
    "mean_wait_s", "p50_wait_s", "p99_wait_s",
}


@pytest.fixture(scope="module")
def bench_resilience():
    spec = importlib.util.spec_from_file_location(
        "bench_resilience", _HARNESS
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def report(bench_resilience, tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_resilience.json"
    produced = bench_resilience.run_bench(
        n_jobs=20,
        recovery_lengths=(5, 10, 20),
        n_arrivals=600,
        output=out,
    )
    assert json.loads(out.read_text()) == produced
    return produced


def _check_schema(report):
    assert set(report) == {"journal", "recovery", "overload"}
    assert set(report["journal"]) == _JOURNAL_KEYS
    for point in report["recovery"]:
        assert set(point) == _RECOVERY_KEYS
    overload = report["overload"]
    names = [entry["policy"] for entry in overload["policies"]]
    assert names == ["shed", "queue_only"]
    for entry in overload["policies"]:
        assert set(entry) == _POLICY_KEYS
        assert entry["completed"] + entry["rejected_total"] == entry["arrivals"]
        assert set(entry["rejected"]) == {"shed", "admission_cap",
                                         "queue_full"}


def test_reduced_run_schema(report):
    _check_schema(report)


def test_recovery_work_tracks_journal_length(report):
    points = report["recovery"]
    assert [p["jobs"] for p in points] == sorted(p["jobs"] for p in points)
    records = [p["records"] for p in points]
    assert records == sorted(records)
    for point in points:
        # Every completed job recovers as a recorded result, and the
        # replay never invents work: 3 records per completed job.
        assert point["recovered_finished"] == point["jobs"]
        assert point["recovered_requeued"] == 0
        assert point["records"] == 3 * point["jobs"]


def test_shedder_bounds_p99_even_at_reduced_size(report):
    overload = report["overload"]
    shed, naive = overload["policies"]
    assert shed["p99_wait_s"] < naive["p99_wait_s"]
    assert shed["rejected_total"] > 0  # the shedder did shed


class TestCommittedArtifact:
    @pytest.fixture(scope="class")
    def committed(self):
        assert _COMMITTED.is_file(), "BENCH_resilience.json not committed"
        return json.loads(_COMMITTED.read_text())

    def test_schema(self, committed):
        _check_schema(committed)

    def test_journal_overhead_bar(self, committed):
        journal = committed["journal"]
        assert journal["jobs"] == 200
        assert journal["overhead_pct"] <= 15.0

    def test_recovery_scaling_is_linear(self, committed):
        points = committed["recovery"]
        assert len(points) >= 3
        ratios = [p["records"] / p["jobs"] for p in points]
        # Per-job replay work is constant: linear scaling in trace size.
        assert max(ratios) == min(ratios)

    def test_shed_vs_collapse_bar(self, committed):
        overload = committed["overload"]
        assert overload["overload_factor"] == 5.0
        shed, naive = overload["policies"]
        assert shed["policy"] == "shed"
        assert overload["p99_ratio"] >= 2.0
        assert shed["p99_wait_s"] <= overload["collapse_delay_s"] * 2.0

    def test_no_wall_clock_leaks(self, committed):
        # Byte-reproducibility: the artifact must not contain any
        # wall-clock measurement.
        text = _COMMITTED.read_text()
        assert "wall_s" not in text
