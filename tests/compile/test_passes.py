"""Each compiler pass in isolation, plus the manager's error wrapping."""

from __future__ import annotations

import pytest

from repro.compile.passes import (
    CompileUnit,
    PassManager,
    cold_deltas_pass,
    default_passes,
    validate_links_pass,
    validate_memory_pass,
    validate_routes_pass,
    validate_schedule_pass,
)
from repro.compile.ir import IRBuilder
from repro.errors import CompileError
from repro.fabric.assembler import assemble
from repro.fabric.links import Direction
from repro.fabric.rtms import EpochSpec
from repro.units import DATA_MEM_WORDS

from tests.compile.conftest import build_tiny_plan


def _unit(builder: IRBuilder) -> CompileUnit:
    return CompileUnit(graph=builder.graph(), plan=builder.plan())


def _single_epoch_unit(spec: EpochSpec, rows: int = 2,
                       cols: int = 2) -> CompileUnit:
    builder = IRBuilder("t", {}, rows, cols, 0.0)
    builder.emit(spec)
    return _unit(builder)


class TestValidateLinks:
    def test_legal_plan_passes(self, tiny_builder):
        validate_links_pass(_unit(tiny_builder))

    def test_detach_is_always_legal(self):
        unit = _single_epoch_unit(EpochSpec(name="e", links={(0, 0): None}))
        validate_links_pass(unit)

    def test_link_off_the_mesh_is_rejected(self):
        # (0, 1) is the east edge of a 2x2 mesh; EAST points outside.
        unit = _single_epoch_unit(
            EpochSpec(name="e", links={(0, 1): Direction.EAST})
        )
        with pytest.raises(CompileError, match="off\nthe mesh|off the mesh|outside"):
            validate_links_pass(unit)

    def test_error_carries_pass_name_and_location(self):
        unit = _single_epoch_unit(
            EpochSpec(name="edge", links={(1, 1): Direction.SOUTH})
        )
        with pytest.raises(CompileError) as excinfo:
            validate_links_pass(unit)
        assert excinfo.value.pass_name == "validate-links"
        assert excinfo.value.epoch == "edge"
        assert excinfo.value.coord == (1, 1)

    def test_non_direction_link_is_rejected(self):
        unit = _single_epoch_unit(EpochSpec(name="e", links={(0, 0): "EAST"}))
        with pytest.raises(CompileError, match="principal direction"):
            validate_links_pass(unit)

    def test_link_coordinate_outside_mesh_is_rejected(self):
        unit = _single_epoch_unit(
            EpochSpec(name="e", links={(5, 5): Direction.WEST})
        )
        with pytest.raises(CompileError, match="outside"):
            validate_links_pass(unit)


class TestValidateMemory:
    def test_legal_plan_passes(self, tiny_builder):
        validate_memory_pass(_unit(tiny_builder))

    def test_data_image_address_out_of_range(self):
        unit = _single_epoch_unit(
            EpochSpec(name="e", data_images={(0, 0): {DATA_MEM_WORDS: 1}})
        )
        with pytest.raises(CompileError, match="data memory"):
            validate_memory_pass(unit)

    def test_poke_address_out_of_range(self):
        unit = _single_epoch_unit(
            EpochSpec(name="e", pokes={(0, 0): {-1: 1}})
        )
        with pytest.raises(CompileError, match="data memory"):
            validate_memory_pass(unit)

    def test_program_placed_off_mesh(self, tiny_program):
        unit = _single_epoch_unit(
            EpochSpec(name="e", programs={(9, 9): tiny_program})
        )
        with pytest.raises(CompileError, match="outside"):
            validate_memory_pass(unit)


class TestValidateSchedule:
    def test_legal_plan_passes(self, tiny_builder):
        validate_schedule_pass(_unit(tiny_builder))

    def test_duplicate_epoch_names_rejected(self, tiny_program):
        builder = IRBuilder("t", {}, 1, 1, 0.0)
        spec = EpochSpec(name="dup", programs={(0, 0): tiny_program},
                         run=[(0, 0)])
        builder.emit(spec)
        builder.emit(spec)
        with pytest.raises(CompileError, match="duplicate epoch name"):
            validate_schedule_pass(_unit(builder))

    def test_run_before_any_program_installed(self):
        unit = _single_epoch_unit(EpochSpec(name="e", run=[(0, 0)]))
        with pytest.raises(CompileError, match="runs before"):
            validate_schedule_pass(unit)

    def test_resident_rerun_in_a_later_epoch_is_legal(self, tiny_program):
        builder = IRBuilder("t", {}, 1, 1, 0.0)
        builder.emit(EpochSpec(name="load", programs={(0, 0): tiny_program},
                               run=[(0, 0)]))
        builder.emit(EpochSpec(name="rerun", run=[(0, 0)], restart=True))
        validate_schedule_pass(_unit(builder))

    def test_duplicate_run_coordinates_rejected(self, tiny_program):
        unit = _single_epoch_unit(
            EpochSpec(name="e", programs={(0, 0): tiny_program},
                      run=[(0, 0), (0, 0)])
        )
        with pytest.raises(CompileError, match="duplicate coordinates"):
            validate_schedule_pass(unit)

    def test_depends_on_must_be_in_mesh(self, tiny_program):
        unit = _single_epoch_unit(
            EpochSpec(name="e", programs={(0, 0): tiny_program},
                      run=[(0, 0)], depends_on=[(7, 0)])
        )
        with pytest.raises(CompileError, match="outside"):
            validate_schedule_pass(unit)


class TestValidateRoutes:
    def test_matching_store_direction_passes(self):
        builder = build_tiny_plan(
            link_dir=Direction.EAST, source="SNB.E 0, 5\nHALT"
        )
        validate_routes_pass(_unit(builder))

    def test_mismatched_store_direction_rejected(self):
        builder = build_tiny_plan(
            link_dir=Direction.SOUTH, source="SNB.E 0, 5\nHALT"
        )
        with pytest.raises(CompileError, match="stores\n?.*EAST"):
            validate_routes_pass(_unit(builder))

    def test_store_over_detached_link_rejected(self):
        builder = build_tiny_plan(link_dir=None, source="SNB.E 0, 5\nHALT")
        with pytest.raises(CompileError, match="detached"):
            validate_routes_pass(_unit(builder))

    def test_link_state_persists_across_epochs(self):
        # Epoch 1 configures the link; epoch 2 re-installs the storing
        # program without repeating the link — still legal, because the
        # fabric's link state persists.
        program = assemble("SNB.E 0, 5\nHALT", name="store_e")
        builder = IRBuilder("t", {}, 2, 2, 0.0)
        builder.emit(EpochSpec(name="cfg", links={(0, 0): Direction.EAST},
                               programs={(0, 0): program}, run=[(0, 0)]))
        builder.emit(EpochSpec(name="again", programs={(0, 0): program},
                               run=[(0, 0)]))
        validate_routes_pass(_unit(builder))


class TestColdDeltas:
    def test_resident_program_not_recharged(self, tiny_program):
        builder = IRBuilder("t", {}, 1, 1, 0.0)
        builder.emit(EpochSpec(name="load", programs={(0, 0): tiny_program},
                               run=[(0, 0)]))
        builder.emit(EpochSpec(name="rerun", programs={(0, 0): tiny_program},
                               run=[(0, 0)]))
        unit = _unit(builder)
        cold_deltas_pass(unit)
        assert unit.cold_bytes[0] > 0
        assert unit.cold_bytes[1] == 0

    def test_unchanged_link_not_recounted(self, tiny_program):
        builder = IRBuilder("t", {}, 2, 2, 0.0)
        for name in ("a", "b"):
            builder.emit(
                EpochSpec(name=name, links={(0, 0): Direction.EAST},
                          programs={(0, 0): tiny_program}, run=[(0, 0)])
            )
        unit = _unit(builder)
        cold_deltas_pass(unit)
        assert unit.cold_link_changes == (1, 0)


class TestPassManager:
    def test_default_pipeline_produces_a_complete_artifact(self, tiny_builder):
        artifact = PassManager().run(_unit(tiny_builder))
        assert artifact.artifact_hash
        assert len(artifact.programs) == len(artifact.decoded) == 1
        assert artifact.epoch_names == ("setup", "stage0")
        assert len(artifact.switch_table) == 2
        assert len(artifact.pass_timings) == len(default_passes())

    def test_compile_errors_pass_through_unwrapped(self):
        builder = build_tiny_plan(link_dir=Direction.SOUTH,
                                  source="SNB.E 0, 5\nHALT")
        with pytest.raises(CompileError) as excinfo:
            PassManager().run(_unit(builder))
        assert excinfo.value.pass_name == "validate-routes"

    def test_crashing_pass_is_wrapped_with_its_name(self, tiny_builder):
        def boom(unit):
            raise ValueError("kaboom")

        manager = PassManager([("explode", boom)])
        with pytest.raises(CompileError, match="pass crashed: kaboom") as excinfo:
            manager.run(_unit(tiny_builder))
        assert excinfo.value.pass_name == "explode"

    def test_spliced_pipeline_runs_in_order(self, tiny_builder):
        ran = []
        passes = [(name, fn) for name, fn in default_passes()]
        passes.insert(0, ("probe", lambda unit: ran.append("probe")))
        PassManager(passes).run(_unit(tiny_builder))
        assert ran == ["probe"]
