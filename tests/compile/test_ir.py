"""IRBuilder demand recording, artifact binding, pin epochs."""

from __future__ import annotations

import pytest

from repro.compile.frontends import compile_fft, compile_plan
from repro.compile.ir import InputPort, IRBuilder
from repro.errors import CompileError
from repro.fabric.assembler import assemble
from repro.fabric.links import Direction
from repro.fabric.rtms import EpochSpec
from repro.kernels.fft.decompose import FFTPlan

from tests.compile.conftest import build_tiny_plan


class TestIRBuilder:
    def test_graph_mirrors_the_emission_stream(self, tiny_builder):
        graph = tiny_builder.graph()
        assert graph.kind == "tiny"
        assert [node.program for node in graph.processes] == ["tiny"]
        assert graph.processes[0].coords == ((0, 0),)
        assert [d.direction for d in graph.links] == [Direction.EAST]
        # setup image is charged, and there are no free pokes
        assert [(m.words, m.charged) for m in graph.memory] == [(1, True)]

    def test_program_var_image_is_a_charged_demand(self):
        program = assemble(".var a\n.word a, 42\nHALT", name="with_image")
        builder = IRBuilder("t", {}, 1, 1, 0.0)
        builder.emit(EpochSpec(name="e", programs={(0, 0): program},
                               run=[(0, 0)]))
        charged = builder.graph().charged_words()
        assert charged == {(0, 0): 1}

    def test_pokes_are_uncharged(self):
        builder = IRBuilder("t", {}, 1, 1, 0.0)
        builder.emit(EpochSpec(name="e", pokes={(0, 0): {0: 1, 1: 2}}))
        graph = builder.graph()
        assert graph.charged_words() == {}
        assert graph.memory[0].words == 2

    def test_second_input_port_rejected(self):
        builder = IRBuilder("t", {}, 1, 1, 0.0)
        port = InputPort("input", encoder=lambda payload: {})
        builder.set_input(port)
        with pytest.raises(CompileError, match="already has an input port"):
            builder.set_input(port)

    def test_params_are_sorted(self):
        builder = IRBuilder("t", {"zeta": 1, "alpha": 2}, 1, 1, 0.0)
        assert builder.plan().params == (("alpha", 2), ("zeta", 1))

    def test_imem_pressure_counts_distinct_programs_once(self, tiny_program):
        builder = IRBuilder("t", {}, 1, 1, 0.0)
        builder.emit(EpochSpec(name="a", programs={(0, 0): tiny_program},
                               run=[(0, 0)]))
        builder.emit(EpochSpec(name="b", programs={(0, 0): tiny_program},
                               run=[(0, 0)]))
        pressure = builder.graph().imem_pressure()
        assert pressure == {(0, 0): tiny_program.imem_words}


class TestBind:
    def test_tag_prefixes_every_epoch_name(self):
        artifact = compile_plan(*_tiny_artifact_parts())
        names = [spec.name for spec in artifact.bind(tag="t3_")]
        assert names == ["t3_stage0"]

    def test_binding_never_mutates_the_template(self):
        artifact = compile_plan(*_tiny_artifact_parts())
        artifact.bind(tag="x_")
        assert [spec.name for spec in artifact.plan.body] == ["stage0"]

    def test_bound_epochs_share_program_objects(self):
        # Sharing is what keeps pinning free across work items.
        artifact = compile_plan(*_tiny_artifact_parts())
        a = artifact.bind(tag="a_")[0]
        b = artifact.bind(tag="b_")[0]
        template = artifact.plan.body[0]
        assert a.programs[(0, 0)] is template.programs[(0, 0)]
        assert b.programs[(0, 0)] is template.programs[(0, 0)]

    def test_payload_required_when_plan_has_input_port(self):
        artifact = compile_fft(FFTPlan(16, 16, 1))
        with pytest.raises(CompileError, match="needs a payload"):
            artifact.bind()

    def test_payload_rejected_when_plan_has_none(self):
        artifact = compile_plan(*_tiny_artifact_parts())
        with pytest.raises(CompileError, match="unexpected payload"):
            artifact.bind(payload=[1, 2, 3])

    def test_pin_epochs_strip_everything_but_programs(self):
        artifact = compile_plan(*_tiny_artifact_parts())
        pins = artifact.pin_epochs()
        assert len(pins) == 1  # the data-only setup epoch carries none
        assert pins[0].programs and not pins[0].links
        assert not pins[0].run and not pins[0].data_images

    def test_decoded_for_unknown_program_raises(self):
        artifact = compile_plan(*_tiny_artifact_parts())
        stranger = assemble("HALT", name="stranger")
        with pytest.raises(CompileError, match="not part of"):
            artifact.decoded_for(stranger)

    def test_decoded_for_returns_the_predecoded_table(self):
        artifact = compile_plan(*_tiny_artifact_parts())
        program = artifact.programs[0]
        assert artifact.decoded_for(program) is artifact.decoded[0]


def _tiny_artifact_parts():
    builder = build_tiny_plan()
    return builder.graph(), builder.plan()
