"""The switch-cost table vs the runtime manager, pair by pair.

The artifact's ``switch_table[i][j]`` claims to equal
``RuntimeManager.switch_cost([e_i, e_j]) - switch_cost([e_i])`` on a
fresh mesh — the marginal price of configuration ``j`` right after
``i``.  These tests check *every* epoch pair of both kernels' plans
against the live runtime manager, so the analytic table can never drift
from the executable truth.
"""

from __future__ import annotations

import pytest

from repro.compile.frontends import compile_fft, compile_jpeg
from repro.fabric.icap import IcapPort
from repro.fabric.mesh import Mesh
from repro.fabric.rtms import RuntimeManager
from repro.kernels.fft.decompose import FFTPlan


def _assert_parity(artifact) -> None:
    plan = artifact.plan
    epochs = list(plan.epochs)
    assert artifact.epoch_names == tuple(spec.name for spec in epochs)
    n = len(epochs)
    assert len(artifact.switch_table) == n
    for i, first in enumerate(epochs):
        rtms = RuntimeManager(
            Mesh(plan.rows, plan.cols), IcapPort(),
            link_cost_ns=plan.link_cost_ns,
        )
        base = rtms.switch_cost([first])
        for j, second in enumerate(epochs):
            expected = rtms.switch_cost([first, second]) - base
            got = artifact.switch_cost_ns(i, j)
            assert got == pytest.approx(expected, rel=1e-12, abs=1e-9), (
                f"table[{i}][{j}] ({first.name} -> {second.name}): "
                f"table says {got}, runtime says {expected}"
            )


class TestSwitchTableParity:
    def test_fft_plan_every_pair(self):
        # 64-point FFT over two columns with a non-zero link cost: the
        # richest plan (twiddles, HCP copies, exchanges, commit).
        artifact = compile_fft(FFTPlan(64, 8, 2), link_cost_ns=100.0)
        assert len(artifact.plan.epochs) > 10
        _assert_parity(artifact)

    def test_fft_single_column_zero_link_cost(self):
        _assert_parity(compile_fft(FFTPlan(16, 16, 1)))

    def test_jpeg_plan_every_pair(self):
        artifact = compile_jpeg(75)
        assert len(artifact.plan.epochs) == 6  # preload + 5 stages
        _assert_parity(artifact)

    def test_jpeg_chroma_variant(self):
        _assert_parity(compile_jpeg(90, chroma=True))


class TestColdDeltasParity:
    """``cold_bytes`` must equal what a cold fabric actually streams."""

    @pytest.mark.parametrize(
        "artifact_fn",
        [
            lambda: compile_fft(FFTPlan(64, 16, 1)),
            lambda: compile_jpeg(50),
        ],
        ids=["fft", "jpeg"],
    )
    def test_executed_reconfig_bytes_match(self, artifact_fn):
        import numpy as np

        artifact = artifact_fn()
        rtms = RuntimeManager(Mesh(artifact.rows, artifact.cols), IcapPort())
        if artifact.kind == "fft":
            payload = np.zeros(artifact.plan.params_dict()["n"], complex)
        else:
            payload = np.zeros((8, 8))
        setup_report = rtms.run_setup(artifact)
        body_report = rtms.execute_artifact(artifact, payload)
        executed = [epoch.reconfig_bytes for epoch in setup_report.epochs]
        # The late-bound input epoch streams nothing (host pokes).
        body = [epoch.reconfig_bytes for epoch in body_report.epochs]
        if artifact.plan.input_port is not None:
            assert body[0] == 0
            body = body[1:]
        executed.extend(body)
        assert tuple(executed) == artifact.cold_bytes
        assert sum(executed) == artifact.total_cold_bytes
