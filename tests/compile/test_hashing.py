"""Content-hash properties: order insensitivity, semantic sensitivity.

The two laws the cache relies on (see ``src/repro/compile/hashing.py``):
building the same plan with dictionaries populated in any insertion
order yields the same hash, while flipping any *semantic* ingredient —
one link direction, one memory word, one instruction word — yields a
different one.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compile.hashing import (
    canonical_bytes,
    epoch_fingerprint,
    plan_hash,
    program_fingerprint,
)
from repro.errors import CompileError
from repro.fabric.assembler import assemble
from repro.fabric.links import Direction
from repro.fabric.rtms import EpochSpec

from tests.compile.conftest import build_tiny_plan

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**62), 2**62),
    st.floats(allow_nan=False),
    st.text(max_size=12),
    st.sampled_from(list(Direction)),
)
values = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.integers(-100, 100), inner, max_size=4),
    ),
    max_leaves=12,
)


class TestCanonicalBytes:
    @given(st.dictionaries(st.integers(-1000, 1000), st.integers(), max_size=8),
           st.randoms(use_true_random=False))
    def test_dict_insertion_order_is_irrelevant(self, d, rnd):
        items = list(d.items())
        rnd.shuffle(items)
        assert canonical_bytes(dict(items)) == canonical_bytes(d)

    @settings(max_examples=60)
    @given(values)
    def test_identity_free_and_deterministic(self, value):
        # A deep copy shares no object identity with the original, yet
        # serializes to the same bytes — canonical form never leans on
        # id()/hash() salting.
        import copy

        assert canonical_bytes(copy.deepcopy(value)) == canonical_bytes(value)

    def test_tuple_and_list_agree(self):
        assert canonical_bytes((1, 2, "x")) == canonical_bytes([1, 2, "x"])

    def test_bool_is_not_int(self):
        assert canonical_bytes(True) != canonical_bytes(1)

    def test_direction_tagged_by_name(self):
        assert canonical_bytes(Direction.EAST) != canonical_bytes("EAST")

    def test_unknown_type_is_a_compile_error(self):
        with pytest.raises(CompileError, match="cannot canonically hash"):
            canonical_bytes(object())

    def test_unhashable_inside_container_is_caught(self):
        with pytest.raises(CompileError):
            canonical_bytes({(0, 0): {1: set()}})


class TestOrderInsensitivity:
    def test_poke_and_link_insertion_order(self, tiny_program):
        forward = EpochSpec(
            name="e",
            links={(0, 0): Direction.EAST, (1, 0): Direction.NORTH},
            programs={(0, 0): tiny_program, (0, 1): tiny_program},
            pokes={(0, 0): {1: 10, 2: 20}, (1, 1): {0: 5}},
        )
        backward = EpochSpec(
            name="e",
            links={(1, 0): Direction.NORTH, (0, 0): Direction.EAST},
            programs={(0, 1): tiny_program, (0, 0): tiny_program},
            pokes={(1, 1): {0: 5}, (0, 0): {2: 20, 1: 10}},
        )
        assert canonical_bytes(epoch_fingerprint(forward)) == \
            canonical_bytes(epoch_fingerprint(backward))

    def test_full_plans_hash_identically(self):
        a = build_tiny_plan().plan()
        b = build_tiny_plan().plan()
        assert plan_hash(a) == plan_hash(b)

    def test_program_identity_is_irrelevant(self):
        # Two distinct Program objects with identical source fingerprint
        # (and therefore hash) the same.
        p1 = assemble("MOV 5, #1\nHALT", name="tiny")
        p2 = assemble("MOV 5, #1\nHALT", name="tiny")
        assert p1 is not p2
        assert canonical_bytes(program_fingerprint(p1)) == \
            canonical_bytes(program_fingerprint(p2))


class TestSemanticSensitivity:
    def test_flipping_one_link_changes_the_hash(self):
        east = build_tiny_plan(link_dir=Direction.EAST).plan()
        south = build_tiny_plan(link_dir=Direction.SOUTH).plan()
        assert plan_hash(east) != plan_hash(south)

    def test_detaching_the_link_changes_the_hash(self):
        linked = build_tiny_plan(link_dir=Direction.EAST).plan()
        detached = build_tiny_plan(link_dir=None).plan()
        assert plan_hash(linked) != plan_hash(detached)

    def test_flipping_one_memory_word_changes_the_hash(self):
        a = build_tiny_plan(image_word=7).plan()
        b = build_tiny_plan(image_word=8).plan()
        assert plan_hash(a) != plan_hash(b)

    def test_flipping_one_instruction_changes_the_hash(self):
        a = build_tiny_plan(source="MOV 5, #1\nHALT").plan()
        b = build_tiny_plan(source="MOV 5, #2\nHALT").plan()
        assert plan_hash(a) != plan_hash(b)

    def test_renaming_an_epoch_changes_the_hash(self):
        a = build_tiny_plan(epoch_name="stage0").plan()
        b = build_tiny_plan(epoch_name="stage1").plan()
        assert plan_hash(a) != plan_hash(b)

    def test_link_cost_is_part_of_the_identity(self):
        a = build_tiny_plan(link_cost_ns=0.0).plan()
        b = build_tiny_plan(link_cost_ns=100.0).plan()
        assert plan_hash(a) != plan_hash(b)

    def test_mesh_shape_is_part_of_the_identity(self):
        a = build_tiny_plan(rows=2, cols=2).plan()
        b = build_tiny_plan(rows=2, cols=3).plan()
        assert plan_hash(a) != plan_hash(b)

    @given(st.integers(0, 2**40), st.integers(0, 2**40))
    def test_any_memory_word_flip_is_visible(self, w1, w2):
        a = build_tiny_plan(image_word=w1).plan()
        b = build_tiny_plan(image_word=w2).plan()
        assert (plan_hash(a) == plan_hash(b)) == (w1 == w2)
