"""Shared builders for the configuration-compiler tests.

Small synthetic plans keep the pass/hash tests independent of the real
kernel frontends: every helper builds through :class:`IRBuilder` exactly
the way the lowerings do, so the fixtures exercise the same code paths
without dragging in FFT twiddle tables.
"""

from __future__ import annotations

import pytest

from repro.compile.ir import IRBuilder
from repro.fabric.assembler import Program, assemble
from repro.fabric.links import Direction
from repro.fabric.rtms import EpochSpec


@pytest.fixture
def tiny_program() -> Program:
    return assemble("MOV 5, #1\nHALT", name="tiny")


def build_tiny_plan(
    *,
    link_dir: Direction | None = Direction.EAST,
    image_word: int = 7,
    source: str = "MOV 5, #1\nHALT",
    rows: int = 2,
    cols: int = 2,
    link_cost_ns: float = 10.0,
    epoch_name: str = "stage0",
):
    """A one-setup, one-body plan over a tiny mesh.

    Keyword knobs flip exactly one semantic ingredient at a time — the
    hash-sensitivity tests vary each in isolation.
    """
    program = assemble(source, name="tiny")
    builder = IRBuilder(
        "tiny", {"image_word": image_word}, rows, cols, link_cost_ns
    )
    builder.emit_setup(
        EpochSpec(name="setup", data_images={(0, 0): {3: image_word}})
    )
    links = {} if link_dir is None else {(0, 0): link_dir}
    builder.emit(
        EpochSpec(
            name=epoch_name,
            links=links,
            programs={(0, 0): program},
            run=[(0, 0)],
        )
    )
    return builder


@pytest.fixture
def tiny_builder() -> IRBuilder:
    return build_tiny_plan()
