"""The kernel-frontend registry and the byte-stability contract.

``TestPinnedHashes`` is the acceptance gate of the dataflow-frontend
refactor: FFT and JPEG re-expressed through :class:`DataflowGraph` must
produce byte-for-byte the artifact hashes the hand lowerings produced,
so every warm :class:`~repro.compile.cache.ArtifactCache` entry (memory
and disk tier alike) stays valid.  The hex strings below were captured
from the pre-refactor lowerings; changing any of them invalidates every
deployed cache and MUST NOT happen silently.
"""

from __future__ import annotations

import pytest

from repro.compile import clear_cache
from repro.compile.frontends import (
    compile_fft,
    compile_jpeg,
    compile_kernel,
    frontend_names,
    frontend_summaries,
    get_frontend,
    kernel_suggestions,
)
from repro.errors import CompileError
from repro.kernels.fft.decompose import FFTPlan

#: (kind, params) -> pre-refactor artifact hash.  Captured from the
#: hand lowerings at the commit introducing the dataflow frontend.
PINNED_HASHES = {
    ("fft", (("cols", 2), ("link_cost_ns", 100.0), ("m", 8), ("n", 64))):
        "4e62172f921d3cd1b1af81890c952c1d5aa96d1f8214828a1825f82038c8e1a1",
    ("fft", (("cols", 2), ("link_cost_ns", 0.0), ("m", 8), ("n", 64))):
        "7e8b1e87fec945ccc549a92c68a2449ebf29a9c9c63cf1879bae061f5f6d8fbb",
    ("fft", (("cols", 1), ("link_cost_ns", 100.0), ("m", 16), ("n", 16))):
        "958ab87a5dae5ebc4eaafac646f371729a2843249e23227f76f23327ad0c11b9",
    ("fft", (("cols", 4), ("link_cost_ns", 100.0), ("m", 16), ("n", 256))):
        "aeb0c699d1223c958bc215828f6f3aa78aad01d022ecd585fc7df9b787f4cb88",
    ("jpeg", (("chroma", False), ("quality", 75))):
        "4df4e16cf3633bd1c4b8d6557e2e410f2e5c947199abb3327ed80ff63caf0b2a",
    ("jpeg", (("chroma", True), ("quality", 90))):
        "95e786f8db2c7bb7809f6ad437cf94325421d5dd11bb4934d9b969a0f39811b9",
    ("jpeg", (("chroma", False), ("quality", 50))):
        "6b46023ea2a1ade01bb5f2983cf113c942091005ded8598e960cdc5ed06a67c3",
}


class TestPinnedHashes:
    @pytest.mark.parametrize(
        "kind,params,want",
        [(k, dict(p), h) for (k, p), h in PINNED_HASHES.items()],
    )
    def test_graph_lowering_is_byte_stable(self, kind, params, want):
        assert compile_kernel(kind, params).artifact_hash == want

    def test_typed_conveniences_hit_the_same_cache_entries(self):
        clear_cache()
        a = compile_fft(FFTPlan(64, 8, 2), link_cost_ns=100.0)
        b = compile_kernel(
            "fft", {"n": 64, "m": 8, "cols": 2, "link_cost_ns": 100.0}
        )
        assert a is b
        c = compile_jpeg(75, False)
        d = compile_kernel("jpeg", {"quality": 75, "chroma": False})
        assert c is d


class TestRegistry:
    def test_all_five_builtins_register(self):
        assert frontend_names() == ("conv2d", "dsp", "fft", "gemm", "jpeg")

    def test_summaries_cover_every_kind(self):
        summaries = frontend_summaries()
        assert sorted(summaries) == sorted(frontend_names())
        assert all(summaries.values())

    def test_unknown_kind_is_a_typed_frontend_error(self):
        with pytest.raises(CompileError) as excinfo:
            get_frontend("fft2d")
        assert excinfo.value.pass_name == "frontend"
        assert "did you mean" in str(excinfo.value)

    def test_kernel_suggestions_catch_typos(self):
        assert "gemm" in kernel_suggestions("gem")
        assert "conv2d" in kernel_suggestions("conv")
        assert kernel_suggestions("zzzzzz") == []

    @pytest.mark.parametrize("kind", ["conv2d", "gemm", "dsp", "fft", "jpeg"])
    def test_oracle_contract_is_complete(self, kind):
        frontend = get_frontend(kind)
        assert frontend.example_payload is not None
        assert frontend.reference is not None
        assert frontend.description

    def test_canonicalize_coerces_by_default_type(self):
        frontend = get_frontend("fft")
        canonical = frontend.canonicalize({"n": 16.0, "link_cost_ns": 0})
        assert canonical == {
            "n": 16, "m": 8, "cols": 2, "link_cost_ns": 0.0
        }
        assert isinstance(canonical["n"], int)
        assert isinstance(canonical["link_cost_ns"], float)

    def test_canonicalize_rejects_unknown_parameters(self):
        with pytest.raises(CompileError, match="no parameter 'radix'"):
            get_frontend("fft").canonicalize({"radix": 4})

    def test_spellings_share_one_cache_entry(self):
        clear_cache()
        a = compile_kernel("gemm", {"n": 8, "block": 4})
        b = compile_kernel("gemm", {"n": 8.0, "block": 4.0})
        c = compile_kernel("gemm")
        assert a is b is c

    def test_spec_round_trip(self):
        for kind in frontend_names():
            frontend = get_frontend(kind)
            spec_params = frontend.spec_params(None)
            assert len(spec_params) == len(frontend.param_names)
            back = frontend.params_from_spec(spec_params)
            assert back == frontend.canonicalize(None)

    def test_params_from_spec_checks_arity(self):
        with pytest.raises(CompileError, match="spec wants params"):
            get_frontend("gemm").params_from_spec((8,))
