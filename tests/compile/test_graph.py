"""The user-facing dataflow frontend: construction, validation, cost
model, lowering parity with a hand-driven IRBuilder."""

from __future__ import annotations

import pytest

from repro.compile.frontends import compile_plan
from repro.compile.graph import DataflowGraph, Process
from repro.compile.ir import IRBuilder
from repro.errors import CompileError
from repro.fabric.assembler import assemble
from repro.fabric.rtms import EpochSpec


def _prog(name: str, source: str = "HALT"):
    return assemble(source, name=name)


def _tiny_graph() -> DataflowGraph:
    graph = DataflowGraph("tiny", {"x": 1}, 1, 1)
    graph.add_process(
        "load", data_images={(0, 0): {0: 7}}, setup=True
    )
    graph.add_process(
        "work",
        programs={(0, 0): _prog("work")},
        run=[(0, 0)],
        after="load",
    )
    return graph


class TestConstruction:
    def test_mesh_must_be_positive(self):
        with pytest.raises(CompileError, match="at least 1x1"):
            DataflowGraph("k", {}, 0, 2)

    def test_duplicate_process_name_rejected(self):
        graph = _tiny_graph()
        with pytest.raises(CompileError, match="duplicate process"):
            graph.add_process("work", pokes={(0, 0): {0: 1}})

    def test_spec_name_must_match_process_name(self):
        graph = DataflowGraph("k", {}, 1, 1)
        spec = EpochSpec(name="other", pokes={(0, 0): {0: 1}})
        with pytest.raises(CompileError, match="wraps an epoch named"):
            graph.add_process("mine", spec=spec)

    def test_spec_and_fields_are_exclusive(self):
        graph = DataflowGraph("k", {}, 1, 1)
        spec = EpochSpec(name="p", pokes={(0, 0): {0: 1}})
        with pytest.raises(CompileError, match="either spec= or epoch"):
            graph.add_process("p", spec=spec, run=[(0, 0)])

    def test_off_mesh_tile_rejected_at_add_time(self):
        graph = DataflowGraph("k", {}, 1, 1)
        with pytest.raises(CompileError, match="outside the 1x1 mesh"):
            graph.add_process("p", pokes={(0, 3): {0: 1}})

    def test_second_input_port_rejected(self):
        graph = _tiny_graph()
        graph.set_input("input", ("fft-input-v1", 16, 16, 0, 16))
        with pytest.raises(CompileError, match="already has input port"):
            graph.set_input("again", ("fft-input-v1", 16, 16, 0, 16))


class TestEdges:
    def test_after_accepts_process_string_and_lists(self):
        graph = DataflowGraph("k", {}, 1, 1)
        a = graph.add_process("a", pokes={(0, 0): {0: 1}})
        graph.add_process("b", pokes={(0, 0): {1: 1}}, after=a)
        graph.add_process("c", pokes={(0, 0): {2: 1}}, after=["a", "b"])
        assert graph.edges == (("a", "b"), ("a", "c"), ("b", "c"))

    def test_backward_edge_fails_validation(self):
        graph = DataflowGraph("k", {}, 1, 1)
        graph.add_process("first", pokes={(0, 0): {0: 1}})
        graph.add_process("second", pokes={(0, 0): {1: 1}})
        graph.connect("second", "first")
        with pytest.raises(CompileError, match="against the firing order"):
            graph.validate()

    def test_self_edge_fails_validation(self):
        graph = DataflowGraph("k", {}, 1, 1)
        graph.add_process("only", pokes={(0, 0): {0: 1}})
        graph.connect("only", "only")
        with pytest.raises(CompileError, match="against the firing order"):
            graph.validate()

    def test_unknown_edge_endpoint_fails_validation(self):
        graph = _tiny_graph()
        graph._edges.append(("work", "ghost"))
        with pytest.raises(CompileError, match="unknown process 'ghost'"):
            graph.validate()

    def test_unknown_after_fails_validation(self):
        graph = DataflowGraph("k", {}, 1, 1)
        graph.add_process("p", pokes={(0, 0): {0: 1}}, after="missing")
        with pytest.raises(CompileError, match="unknown process"):
            graph.validate()


class TestCostModel:
    def test_process_cycles_defaults_to_instruction_words(self):
        graph = DataflowGraph("k", {}, 1, 1)
        graph.add_process(
            "p",
            programs={(0, 0): _prog("p", "NOP\nNOP\nHALT")},
            run=[(0, 0)],
        )
        assert graph.process_cycles("p") == 3

    def test_explicit_cycles_win(self):
        graph = DataflowGraph("k", {}, 1, 1)
        graph.add_process(
            "p",
            programs={(0, 0): _prog("p")},
            run=[(0, 0)],
            cycles=99,
        )
        assert graph.process_cycles("p") == 99

    def test_memory_words_folds_images_pokes_and_vars(self):
        graph = DataflowGraph("k", {}, 1, 2)
        graph.add_process(
            "p",
            programs={(0, 0): _prog("p", ".var a\n.word a, 5\nHALT")},
            data_images={(0, 0): {10: 1, 11: 2}},
            pokes={(0, 1): {0: 1}},
            run=[(0, 0)],
        )
        assert graph.memory_words("p") == {(0, 0): 3, (0, 1): 1}

    def test_critical_path_is_longest_weighted_chain(self):
        graph = DataflowGraph("k", {}, 1, 1)
        graph.add_process("a", pokes={(0, 0): {0: 1}}, cycles=10)
        graph.add_process("b", pokes={(0, 0): {1: 1}}, cycles=5, after="a")
        graph.add_process("c", pokes={(0, 0): {2: 1}}, cycles=20)
        # chain a->b = 15, lone c = 20
        assert graph.critical_path_cycles() == 20
        graph.add_process("d", pokes={(0, 0): {3: 1}}, cycles=30, after="b")
        assert graph.critical_path_cycles() == 45
        assert graph.total_cycles() == 65

    def test_empty_graph_costs_nothing(self):
        graph = DataflowGraph("k", {}, 1, 1)
        assert graph.critical_path_cycles() == 0
        assert graph.total_cycles() == 0

    def test_unknown_process_lookup_raises(self):
        graph = _tiny_graph()
        with pytest.raises(CompileError, match="unknown process"):
            graph.process_cycles("nope")


class TestLowering:
    def test_lower_matches_hand_driven_irbuilder(self):
        graph = _tiny_graph()
        kernel_graph, plan = graph.lower()

        builder = IRBuilder("tiny", {"x": 1}, 1, 1, 0.0)
        for process in graph.processes:
            if process.setup:
                builder.emit_setup(process.spec)
            else:
                builder.emit(process.spec)
        want_plan = builder.plan()

        assert plan.kind == want_plan.kind
        assert [e.name for e in plan.setup] == [
            e.name for e in want_plan.setup
        ]
        assert [e.name for e in plan.body] == [e.name for e in want_plan.body]
        # byte stability: the emitted epochs ARE the process specs
        assert plan.setup[0] is graph.processes[0].spec
        assert plan.body[0] is graph.processes[1].spec
        assert compile_plan(kernel_graph, plan).artifact_hash == \
            compile_plan(builder.graph(), want_plan).artifact_hash

    def test_setup_body_split_preserves_insertion_order(self):
        graph = DataflowGraph("k", {}, 1, 1)
        graph.add_process("s1", data_images={(0, 0): {0: 1}}, setup=True)
        graph.add_process("b1", pokes={(0, 0): {1: 1}})
        graph.add_process("s2", data_images={(0, 0): {2: 1}}, setup=True)
        graph.add_process("b2", pokes={(0, 0): {3: 1}})
        _, plan = graph.lower()
        assert [e.name for e in plan.setup] == ["s1", "s2"]
        assert [e.name for e in plan.body] == ["b1", "b2"]

    def test_lower_carries_the_input_port(self):
        graph = _tiny_graph()
        port = graph.set_input(
            "input", ("fft-input-v1", 16, 16, 0, 16)
        )
        _, plan = graph.lower()
        assert plan.input_port is port

    def test_unknown_port_signature_is_a_frontend_error(self):
        graph = _tiny_graph()
        with pytest.raises(CompileError) as excinfo:
            graph.set_input("input", ("no-such-codec-v1", 1, 2))
        assert excinfo.value.pass_name == "frontend"

    def test_processes_property_is_a_snapshot(self):
        graph = _tiny_graph()
        assert isinstance(graph.processes, tuple)
        assert all(isinstance(p, Process) for p in graph.processes)
        assert graph.processes[0].coords == ((0, 0),)
