"""ArtifactCache: request memo, LRU, disk tier, counters."""

from __future__ import annotations

import pickle

import pytest

from repro.compile.cache import ArtifactCache, CacheStats
from repro.compile.frontends import compile_fft, compile_jpeg
from repro.errors import CompileError
from repro.kernels.fft.decompose import FFTPlan


class TestStats:
    def test_requests_and_hit_rate(self):
        stats = CacheStats(hits=3, misses=1, disk_hits=1)
        assert stats.requests == 5
        assert stats.hit_rate == pytest.approx(0.8)

    def test_empty_hit_rate_is_zero(self):
        assert CacheStats().hit_rate == 0.0

    def test_delta_of_snapshots(self):
        stats = CacheStats(hits=2, misses=4, lowers=4)
        before = stats.snapshot()
        stats.hits += 3
        stats.misses += 1
        diff = stats.delta(before)
        assert (diff.hits, diff.misses, diff.lowers) == (3, 1, 0)

    def test_as_dict_schema(self):
        keys = set(CacheStats().as_dict())
        assert keys == {"hits", "misses", "disk_hits", "lowers",
                        "evictions", "corrupt_quarantined",
                        "requests", "hit_rate"}


class TestMemoryCache:
    def test_second_request_is_a_hit_and_identical(self):
        cache = ArtifactCache()
        a = compile_fft(FFTPlan(16, 16, 1), cache=cache)
        b = compile_fft(FFTPlan(16, 16, 1), cache=cache)
        assert a is b
        assert cache.stats.hits == 1
        assert cache.stats.misses == cache.stats.lowers == 1

    def test_distinct_params_are_distinct_entries(self):
        cache = ArtifactCache()
        a = compile_fft(FFTPlan(16, 16, 1), cache=cache)
        b = compile_fft(FFTPlan(16, 16, 1), link_cost_ns=50.0, cache=cache)
        assert a is not b
        assert a.artifact_hash != b.artifact_hash
        assert len(cache) == 2

    def test_lru_eviction_under_capacity_pressure(self):
        cache = ArtifactCache(capacity=1)
        compile_fft(FFTPlan(16, 16, 1), cache=cache)
        compile_jpeg(75, cache=cache)  # evicts the FFT
        assert len(cache) == 1
        assert cache.stats.evictions == 1
        # Re-requesting the evicted artifact recompiles (miss, not hit).
        compile_fft(FFTPlan(16, 16, 1), cache=cache)
        assert cache.stats.misses == 3
        assert cache.stats.hits == 0

    def test_lookup_by_content_hash(self):
        cache = ArtifactCache()
        artifact = compile_jpeg(75, cache=cache)
        assert cache.lookup(artifact.artifact_hash) is artifact
        assert cache.lookup("0" * 64) is None

    def test_clear_resets_everything(self):
        cache = ArtifactCache()
        compile_fft(FFTPlan(16, 16, 1), cache=cache)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.requests == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(CompileError, match="capacity"):
            ArtifactCache(capacity=0)

    def test_build_without_hash_rejected(self):
        cache = ArtifactCache()

        class Hollow:
            artifact_hash = ""

        with pytest.raises(CompileError, match="without a\n?.*content hash"):
            cache.get_or_compile("bogus", {}, lambda: Hollow())


class TestDiskTier:
    def test_round_trip_through_the_disk_store(self, tmp_path):
        first = ArtifactCache(disk_dir=tmp_path)
        artifact = compile_jpeg(75, cache=first)
        files = list(tmp_path.glob("*.artifact"))
        assert [p.stem for p in files] == [artifact.artifact_hash]

        # A fresh process-equivalent: new cache, same directory.  The
        # persisted request index routes the request straight to disk.
        second = ArtifactCache(disk_dir=tmp_path)
        revived = compile_jpeg(75, cache=second)
        assert second.stats.disk_hits == 1
        assert second.stats.misses == 0
        assert second.stats.lowers == 0
        assert revived.artifact_hash == artifact.artifact_hash
        assert revived.switch_table == artifact.switch_table
        # Predecoded closures were stripped at pickle time and revived.
        assert len(revived.decoded) == len(revived.programs) > 0
        # The input-port encoder was rebuilt from its signature: the
        # revived artifact binds (and validates) payloads like new.
        import numpy as np

        bound = revived.bind(np.zeros((8, 8)))
        assert bound[0].name == "pixels" and bound[0].pokes

    def test_memoised_request_revives_from_disk_after_clearing_memory(
            self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        artifact = compile_fft(FFTPlan(16, 16, 1), cache=cache)
        # Drop memory but keep the memo by rebuilding it with one miss.
        cache._store.clear()
        revived = compile_fft(FFTPlan(16, 16, 1), cache=cache)
        assert cache.stats.disk_hits == 1
        assert revived.artifact_hash == artifact.artifact_hash

    def test_corrupt_entry_is_detected(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        artifact = compile_jpeg(75, cache=cache)
        path = tmp_path / f"{artifact.artifact_hash}.artifact"
        bogus = tmp_path / ("1" * 64 + ".artifact")
        path.rename(bogus)  # now named by the wrong hash
        with pytest.raises(CompileError, match="corrupt or renamed"):
            cache._disk_load("1" * 64)

    def test_non_artifact_pickle_is_rejected(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        path = tmp_path / ("2" * 64 + ".artifact")
        path.write_bytes(pickle.dumps({"not": "an artifact"}))
        with pytest.raises(CompileError, match="not a CompiledArtifact"):
            cache._disk_load("2" * 64)


class TestDiskHardening:
    """ISSUE 5 satellites: quarantine, fsync publishes, index locking,
    torn-write crash points."""

    def test_corrupt_artifact_is_quarantined_not_fatal(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        artifact = compile_jpeg(75, cache=cache)
        path = tmp_path / f"{artifact.artifact_hash}.artifact"
        path.write_bytes(b"rotted bytes")
        cache._store.clear()  # force the disk tier

        revived = compile_jpeg(75, cache=cache)  # falls back to compile
        assert revived.artifact_hash == artifact.artifact_hash
        assert cache.stats.corrupt_quarantined == 1
        moved = tmp_path / "corrupt" / path.name
        assert moved.read_bytes() == b"rotted bytes"
        # The fresh compile re-published a good copy under the old name.
        assert path.exists() and path.read_bytes() != b"rotted bytes"

    def test_lookup_reports_quarantined_entry_as_miss(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        artifact = compile_jpeg(75, cache=cache)
        path = tmp_path / f"{artifact.artifact_hash}.artifact"
        path.write_bytes(b"rotted bytes")
        cache._store.clear()
        assert cache.lookup(artifact.artifact_hash) is None
        assert cache.stats.corrupt_quarantined == 1

    def test_fsync_publish_round_trips(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path, fsync=True)
        artifact = compile_jpeg(75, cache=cache)
        second = ArtifactCache(disk_dir=tmp_path)
        revived = compile_jpeg(75, cache=second)
        assert revived.artifact_hash == artifact.artifact_hash
        assert second.stats.disk_hits == 1

    def test_index_rewrites_take_the_file_lock(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        compile_jpeg(75, cache=cache)
        assert (tmp_path / "index.lock").exists()

    def test_torn_payload_write_publishes_nothing(self, tmp_path):
        from repro.chaos.crashpoints import FaultSpec, SimulatedCrash, armed

        cache = ArtifactCache(disk_dir=tmp_path)
        with armed(FaultSpec("cache.payload.write", action="torn",
                             torn_fraction=0.5)):
            with pytest.raises(SimulatedCrash):
                compile_jpeg(75, cache=cache)
        # The atomic publish never happened: no visible artifact, only
        # the torn tmp file a restart can ignore.
        assert list(tmp_path.glob("*.artifact")) == []

        fresh = ArtifactCache(disk_dir=tmp_path)
        artifact = compile_jpeg(75, cache=fresh)
        assert artifact.artifact_hash
