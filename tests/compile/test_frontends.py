"""Frontend wiring: default cache, runner integration, DSE hooks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compile import cache_stats, clear_cache, get_cache
from repro.compile.frontends import compile_fft, compile_jpeg
from repro.dse.explorer import fabric_fft_point
from repro.dse.sweep import sweep
from repro.errors import KernelError, ReconfigError
from repro.fabric.icap import IcapPort
from repro.fabric.mesh import Mesh
from repro.fabric.rtms import RuntimeManager
from repro.kernels.fft.decompose import FFTPlan
from repro.kernels.fft.runner import FabricFFT
from repro.kernels.jpeg.fabric_runner import FabricBlockPipeline


class TestDefaultCache:
    def test_frontends_share_the_process_cache(self):
        clear_cache()
        a = compile_fft(FFTPlan(16, 16, 1))
        b = compile_fft(FFTPlan(16, 16, 1))
        assert a is b
        assert get_cache().stats.hits == 1
        assert cache_stats().lowers == 1

    def test_runners_compile_through_the_same_cache(self):
        clear_cache()
        fft_a = FabricFFT(FFTPlan(16, 16, 1))
        fft_b = FabricFFT(FFTPlan(16, 16, 1))
        assert fft_a.artifact is fft_b.artifact
        pipe_a = FabricBlockPipeline(quality=75)
        pipe_b = FabricBlockPipeline(quality=75)
        assert pipe_a.artifact is pipe_b.artifact


class TestArtifactExecution:
    def test_mesh_shape_mismatch_is_rejected(self):
        artifact = compile_fft(FFTPlan(64, 8, 2))  # 8x2 mesh
        rtms = RuntimeManager(Mesh(2, 2), IcapPort())
        with pytest.raises(ReconfigError, match="compiled for"):
            rtms.execute_artifact(artifact, np.zeros(64, complex))
        with pytest.raises(ReconfigError):
            rtms.run_setup(artifact)

    def test_bound_input_validates_like_the_legacy_runner(self):
        artifact = compile_fft(FFTPlan(16, 16, 1))
        with pytest.raises(KernelError, match="shape"):
            artifact.bind(np.zeros(8, complex))
        with pytest.raises(KernelError, match="overflow"):
            artifact.bind(np.full(16, 1e6 + 0j))

    def test_fft_through_artifact_matches_numpy(self):
        plan = FFTPlan(64, 16, 1)
        fft = FabricFFT(plan)
        rng = np.random.default_rng(5)
        x = (rng.standard_normal(64) + 1j * rng.standard_normal(64)) * 0.05
        result = fft.run(x)
        rel = np.linalg.norm(result.output - np.fft.fft(x)) / \
            np.linalg.norm(np.fft.fft(x))
        assert rel < 1e-3


class TestDSEHooks:
    def test_fabric_fft_point_is_pool_safe_and_hashed(self):
        row = fabric_fft_point(16, 16, 1)
        assert row["params"] == {"n": 16, "m": 16, "cols": 1,
                                 "link_cost_ns": 0.0}
        assert len(row["artifact_hash"]) == 64
        assert row["total_ns"] > 0
        assert row["epochs"] > 0

    def test_sweep_reports_compile_cache_delta(self):
        clear_cache()
        result = sweep(
            lambda n, cols: fabric_fft_point(n, 16, cols)["total_ns"],
            {"n": [16, 16], "cols": [1]},
        )
        stats = result.compile_cache
        assert stats is not None
        # Two sweep points, one distinct configuration: 1 lower + 1 hit.
        assert stats.lowers == 1
        assert stats.hits == 1
