"""``plan_hash_prefix``: the plan-hash → ring-key projection."""

from __future__ import annotations

import hashlib

import pytest

from repro.compile.frontends import compile_jpeg
from repro.compile.hashing import plan_hash_prefix
from repro.errors import CompileError

DIGEST = hashlib.sha256(b"a plan").hexdigest()


class TestProjection:
    def test_default_is_the_top_64_bits(self):
        assert plan_hash_prefix(DIGEST) == int(DIGEST, 16) >> 192
        assert plan_hash_prefix(DIGEST) < (1 << 64)

    @pytest.mark.parametrize("bits", [1, 8, 16, 64, 255, 256])
    def test_bits_slices_from_the_top(self, bits):
        value = plan_hash_prefix(DIGEST, bits)
        assert 0 <= value < (1 << bits)
        assert value == int(DIGEST, 16) >> (256 - bits)

    def test_narrower_prefixes_nest(self):
        # The 16-bit key is the 64-bit key's own top 16 bits.
        assert plan_hash_prefix(DIGEST, 16) == plan_hash_prefix(DIGEST) >> 48

    def test_accepts_a_compiled_artifact(self):
        artifact = compile_jpeg(75, False)
        assert plan_hash_prefix(artifact) == plan_hash_prefix(
            artifact.artifact_hash
        )

    def test_deterministic_across_compiles(self):
        assert plan_hash_prefix(compile_jpeg(75, False)) == plan_hash_prefix(
            compile_jpeg(75, False)
        )
        assert plan_hash_prefix(compile_jpeg(75, False)) != plan_hash_prefix(
            compile_jpeg(50, False)
        )


class TestErrors:
    @pytest.mark.parametrize("bits", [0, -1, 257])
    def test_bits_out_of_range(self, bits):
        with pytest.raises(CompileError, match="bits"):
            plan_hash_prefix(DIGEST, bits)

    def test_non_string_input(self):
        with pytest.raises(CompileError, match="artifact or hex digest"):
            plan_hash_prefix(12345)

    def test_wrong_length_digest(self):
        with pytest.raises(CompileError, match="64-hex-digit"):
            plan_hash_prefix("abc123")

    def test_non_hex_digest(self):
        with pytest.raises(CompileError, match="non-hex"):
            plan_hash_prefix("z" * 64)
