"""Cross-process file locks: pid stamping and bounded acquisition.

The contention cases fork a real child process to hold the lock —
``flock`` ownership is per-open-file-description, so a second
:class:`FileLock` instance in the *same* process would succeed and
prove nothing.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.errors import LockTimeout
from repro.locks import HAS_FLOCK, FileLock
from repro.serve.durability.journal import FsyncPolicy, JobJournal

pytestmark = pytest.mark.skipif(
    not HAS_FLOCK, reason="advisory flock unavailable"
)


def _hold(path, acquired, release):
    lock = FileLock(path)
    lock.acquire()
    acquired.set()
    release.wait(timeout=30)
    lock.release()


@pytest.fixture
def holder(tmp_path):
    """A child process holding ``tmp_path/x.lock``; yields (path, pid)."""
    path = tmp_path / "x.lock"
    ctx = multiprocessing.get_context("spawn")
    acquired, release = ctx.Event(), ctx.Event()
    proc = ctx.Process(target=_hold, args=(path, acquired, release))
    proc.start()
    assert acquired.wait(timeout=30)
    yield path, proc.pid
    release.set()
    proc.join(timeout=30)


class TestFileLock:
    def test_stamps_holder_pid(self, tmp_path):
        lock = FileLock(tmp_path / "a.lock")
        lock.acquire()
        try:
            assert lock.holder_pid() == os.getpid()
        finally:
            lock.release()

    def test_timeout_names_the_holder(self, holder):
        path, holder_pid = holder
        contender = FileLock(path)
        with pytest.raises(LockTimeout) as exc_info:
            contender.acquire(timeout_s=0.2, poll_s=0.02)
        assert exc_info.value.holder_pid == holder_pid
        assert f"held by pid {holder_pid}" in str(exc_info.value)
        assert exc_info.value.path == str(path)
        assert not contender.held

    def test_bounded_wait_succeeds_once_released(self, tmp_path):
        path = tmp_path / "b.lock"
        ctx = multiprocessing.get_context("spawn")
        acquired, release = ctx.Event(), ctx.Event()
        proc = ctx.Process(target=_hold, args=(path, acquired, release))
        proc.start()
        assert acquired.wait(timeout=30)
        release.set()
        proc.join(timeout=30)
        lock = FileLock(path)
        lock.acquire(timeout_s=5.0, poll_s=0.02)
        try:
            assert lock.held
        finally:
            lock.release()

    def test_try_acquire_contended_returns_false(self, holder):
        path, _pid = holder
        contender = FileLock(path)
        assert contender.try_acquire() is False
        assert not contender.held

    def test_reacquire_same_instance_is_an_error(self, tmp_path):
        lock = FileLock(tmp_path / "c.lock")
        lock.acquire()
        try:
            with pytest.raises(RuntimeError, match="already held"):
                lock.acquire()
        finally:
            lock.release()


class TestJournalLock:
    def test_bounded_journal_open_raises_typed(self, tmp_path):
        """A second journal over the same directory fails typed inside
        ``lock_timeout_s`` instead of blocking the rejoin forever."""
        home = tmp_path / "journal"
        first = JobJournal(home, fsync=FsyncPolicy.NEVER)
        start = time.monotonic()
        try:
            with pytest.raises(LockTimeout) as exc_info:
                JobJournal(
                    home, fsync=FsyncPolicy.NEVER, lock_timeout_s=0.3
                )
        finally:
            first.close()
        assert time.monotonic() - start < 10.0
        assert exc_info.value.holder_pid == os.getpid()
