"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fabric.mesh import Mesh


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG shared by numerical tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def mesh2x2() -> Mesh:
    return Mesh(2, 2)


@pytest.fixture
def mesh1x2() -> Mesh:
    return Mesh(1, 2)
