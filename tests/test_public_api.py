"""Public API surface: imports, __all__, version, error hierarchy."""

import pytest

import repro
from repro.errors import (
    AssemblerError,
    DSEError,
    ExecutionError,
    FabricError,
    JobCancelled,
    JobRejected,
    KernelError,
    LinkError,
    MappingError,
    ProcessNetworkError,
    ReconfigError,
    ReproError,
    ServeError,
)


class TestSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_docstring_mentions_paper(self):
        assert "IPDPSW" in repro.__doc__


class TestErrors:
    @pytest.mark.parametrize("exc", [
        FabricError, AssemblerError, ExecutionError, LinkError,
        ReconfigError, MappingError, ProcessNetworkError, KernelError,
        DSEError, ServeError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_fabric_family(self):
        for exc in (AssemblerError, ExecutionError, LinkError, ReconfigError):
            assert issubclass(exc, FabricError)

    def test_serve_family(self):
        for exc in (JobRejected, JobCancelled):
            assert issubclass(exc, ServeError)

    def test_assembler_error_line_prefix(self):
        assert "line 3" in str(AssemblerError("bad", line=3))
        assert str(AssemblerError("bad")) == "bad"


class TestIntegrationSmoke:
    def test_quickstart_snippet(self):
        """The snippet from the package docstring must keep working."""
        from repro import FFTPerformanceModel, FFTPlan, StageProfile

        model = FFTPerformanceModel(
            plan=FFTPlan(n=1024, m=128, cols=10),
            profile=StageProfile.table1(),
        )
        assert model.throughput(link_cost_ns=300.0) > 0

    def test_cross_layer_flow(self, rng):
        """fabric -> kernel -> mapping -> dse in one pass."""
        import numpy as np

        from repro import (
            FabricFFT,
            FFTPlan,
            TileCostModel,
            evaluate_mapping,
            explore_jpeg,
            jpeg_processes,
            pareto_front,
            rebalance_one,
        )

        x = (rng.standard_normal(16) + 1j * rng.standard_normal(16)) * 0.01
        out = FabricFFT(FFTPlan(16, 4, 2)).run(x).output
        assert np.allclose(out, np.fft.fft(x), atol=1e-6)

        order = [jpeg_processes()[n] for n in
                 ("shift", "DCT", "Quantize", "Hman1")]
        mapping = rebalance_one(order, 4, TileCostModel())
        metrics = evaluate_mapping(mapping, TileCostModel())
        assert metrics.n_tiles == 4

        front = pareto_front(explore_jpeg(max_tiles=6, algorithms=("one",)))
        assert front
