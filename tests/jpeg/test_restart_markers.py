"""Restart markers (DRI / RSTn): emission, resync, error containment."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.io.images import natural_like
from repro.kernels.jpeg.decoder import decode_image
from repro.kernels.jpeg.encoder import JPEGEncoder
from repro.kernels.jpeg.huffman import BitWriter


class TestBitWriterMarkers:
    def test_emit_marker_byte_aligns(self):
        w = BitWriter()
        w.write(0b1, 1)
        w.emit_marker(0xD0)
        stream = w.flush()
        assert stream[-2:] == b"\xff\xd0"
        assert stream[0] == 0b11111111  # 1 payload bit + 7 pad ones -> stuffed
        # 0xFF padding byte gets a stuffing zero before the marker
        assert stream[1] == 0x00

    def test_only_rst_markers_allowed(self):
        with pytest.raises(KernelError):
            BitWriter().emit_marker(0xD9)

    def test_align_idempotent(self):
        w = BitWriter()
        w.write(0b101, 3)
        w.align()
        before = w.bit_length
        w.align()
        assert w.bit_length == before


class TestRoundTrip:
    @pytest.mark.parametrize("interval", [1, 2, 5])
    def test_restart_stream_decodes_identically(self, interval):
        img = natural_like(24, 32, seed=8)
        plain = decode_image(JPEGEncoder(quality=80).encode(img))
        restarted = decode_image(
            JPEGEncoder(quality=80, restart_interval=interval).encode(img)
        )
        assert np.array_equal(plain, restarted)

    def test_dri_segment_present(self):
        img = natural_like(16, 16, seed=8)
        stream = JPEGEncoder(quality=80, restart_interval=2).encode(img)
        at = stream.find(bytes([0xFF, 0xDD]))
        assert at > 0
        assert int.from_bytes(stream[at + 4:at + 6], "big") == 2

    def test_rst_markers_in_scan(self):
        img = natural_like(16, 32, seed=8)  # 2x4 = 8 blocks
        stream = JPEGEncoder(quality=80, restart_interval=2).encode(img)
        count = sum(
            stream.count(bytes([0xFF, 0xD0 + m])) for m in range(8)
        )
        assert count >= 3  # 8 blocks / interval 2 -> 3 interior markers

    def test_markers_cycle_mod_8(self):
        img = natural_like(8, 8 * 20, seed=8)  # 20 blocks in a row
        stream = JPEGEncoder(quality=80, restart_interval=1).encode(img)
        # with 20 blocks and interval 1 there are 19 markers: RST0..7,0..
        assert bytes([0xFF, 0xD0]) in stream
        assert bytes([0xFF, 0xD7]) in stream

    def test_no_marker_after_last_block(self):
        img = natural_like(8, 16, seed=8)  # exactly 2 blocks
        stream = JPEGEncoder(quality=80, restart_interval=2).encode(img)
        scan_start = stream.find(bytes([0xFF, 0xDA]))
        assert stream.count(bytes([0xFF, 0xD0]), scan_start) == 0

    def test_negative_interval_rejected(self):
        with pytest.raises(KernelError):
            JPEGEncoder(restart_interval=-1).encode(
                np.zeros((8, 8), dtype=np.uint8)
            )


class TestErrorContainment:
    def test_out_of_order_marker_detected(self):
        img = natural_like(16, 32, seed=8)
        stream = bytearray(
            JPEGEncoder(quality=80, restart_interval=2).encode(img)
        )
        # swap the first RST0 into an RST5: the decoder must notice
        at = stream.find(bytes([0xFF, 0xD0]))
        assert at > 0
        stream[at + 1] = 0xD5
        with pytest.raises(KernelError, match="out of order"):
            decode_image(bytes(stream))

    def test_dc_predictor_reset_bounds_damage(self):
        """Corrupting one block's DC bits must not shift every later
        block when restarts are present (the whole point of RSTn)."""
        img = np.full((8, 48), 128, dtype=np.uint8)  # 6 identical blocks
        enc = JPEGEncoder(quality=80, restart_interval=1)
        stream = bytearray(enc.encode(img))
        # each flat block encodes as one byte (DC cat 0 + EOB + padding);
        # corrupt the FIRST block's entropy byte, leaving markers intact
        scan_at = stream.find(bytes([0xFF, 0xDA])) + 10
        assert stream[scan_at] not in (0xFF,)  # entropy byte, not a marker
        stream[scan_at] ^= 0b01100000
        decoded = decode_image(bytes(stream))
        # blocks after the first restart marker recover exactly
        assert np.array_equal(decoded[:, 8:], img[:, 8:])