"""Huffman coding: tables, bit writer, block coding, stage decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KernelError
from repro.kernels.jpeg.huffman import (
    BitWriter,
    HuffmanTable,
    STD_AC_CHROMINANCE,
    STD_AC_LUMINANCE,
    STD_DC_CHROMINANCE,
    STD_DC_LUMINANCE,
    encode_block_coefficients,
    encode_block_stages,
    magnitude_bits,
    magnitude_category,
    run_length_pairs,
)


class TestTables:
    @pytest.mark.parametrize("table", [
        STD_DC_LUMINANCE, STD_DC_CHROMINANCE,
        STD_AC_LUMINANCE, STD_AC_CHROMINANCE,
    ])
    def test_standard_tables_prefix_free(self, table):
        assert table.is_prefix_free()

    def test_ac_tables_have_162_symbols(self):
        assert len(STD_AC_LUMINANCE.values) == 162
        assert len(STD_AC_CHROMINANCE.values) == 162

    def test_dc_tables_cover_categories(self):
        assert set(STD_DC_LUMINANCE.values) == set(range(12))

    def test_canonical_code_lengths_match_bits(self):
        table = STD_AC_LUMINANCE
        by_length = {}
        for _, (code, length) in table.codes.items():
            by_length[length] = by_length.get(length, 0) + 1
        for i, count in enumerate(table.bits, start=1):
            assert by_length.get(i, 0) == count

    def test_known_codeword(self):
        # DC luminance category 0 is the 2-bit code 00
        assert STD_DC_LUMINANCE.encode_symbol(0) == (0b00, 2)
        # AC luminance EOB is the 4-bit code 1010
        assert STD_AC_LUMINANCE.encode_symbol(0x00) == (0b1010, 4)
        # AC luminance ZRL is the 11-bit code 11111111001
        assert STD_AC_LUMINANCE.encode_symbol(0xF0) == (0b11111111001, 11)

    def test_unknown_symbol_raises(self):
        with pytest.raises(KernelError):
            STD_DC_LUMINANCE.encode_symbol(99)

    def test_malformed_bits_rejected(self):
        with pytest.raises(KernelError):
            HuffmanTable(bits=(1,) * 15, values=(0,))
        with pytest.raises(KernelError):
            HuffmanTable(bits=(2,) + (0,) * 15, values=(0,))


class TestBitWriter:
    def test_msb_first_packing(self):
        w = BitWriter()
        w.write(0b101, 3)
        w.write(0b00001, 5)
        assert w.flush() == bytes([0b10100001])

    def test_padding_with_ones(self):
        w = BitWriter()
        w.write(0b0, 1)
        assert w.flush() == bytes([0b01111111])

    def test_ff_stuffing(self):
        w = BitWriter()
        w.write(0xFF, 8)
        assert w.flush() == b"\xff\x00"

    def test_code_too_wide_rejected(self):
        with pytest.raises(KernelError):
            BitWriter().write(0b100, 2)

    def test_bit_length_tracking(self):
        w = BitWriter()
        w.write(0b1, 1)
        w.write(0b1111111, 7)
        w.write(0b1, 1)
        assert w.bit_length == 9

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(4, 4)),
                    min_size=0, max_size=64))
    def test_flush_always_byte_aligned(self, codes):
        w = BitWriter()
        for code, length in codes:
            w.write(code, length)
        assert len(w.flush()) * 8 >= w.bit_length


class TestMagnitudes:
    @pytest.mark.parametrize("value,cat", [
        (0, 0), (1, 1), (-1, 1), (2, 2), (3, 2), (-3, 2),
        (255, 8), (-255, 8), (1023, 10),
    ])
    def test_categories(self, value, cat):
        assert magnitude_category(value) == cat

    def test_negative_magnitude_bits_ones_complement(self):
        # -3 in category 2: bits = -3 + 3 = 0b00
        assert magnitude_bits(-3, 2) == 0
        assert magnitude_bits(3, 2) == 3
        assert magnitude_bits(0, 0) == 0

    @given(st.integers(min_value=-1023, max_value=1023))
    def test_bits_fit_category(self, v):
        cat = magnitude_category(v)
        bits = magnitude_bits(v, cat)
        assert 0 <= bits < (1 << max(cat, 1))


class TestRunLength:
    def test_all_zero_block_is_single_eob(self):
        assert run_length_pairs(np.zeros(63, dtype=int)) == [(0, 0)]

    def test_trailing_zeros_become_eob(self):
        ac = np.zeros(63, dtype=int)
        ac[0] = 5
        assert run_length_pairs(ac) == [(0, 5), (0, 0)]

    def test_long_run_emits_zrl(self):
        ac = np.zeros(63, dtype=int)
        ac[20] = 7  # 20 zeros: ZRL (16) + run of 4
        assert run_length_pairs(ac) == [(15, 0), (4, 7), (0, 0)]

    def test_full_block_no_eob(self):
        ac = np.ones(63, dtype=int)
        pairs = run_length_pairs(ac)
        assert len(pairs) == 63
        assert (0, 0) not in pairs

    def test_wrong_length_rejected(self):
        with pytest.raises(KernelError):
            run_length_pairs(np.zeros(64, dtype=int))


class TestBlockEncoding:
    def test_returns_dc_for_chaining(self):
        zz = np.zeros(64, dtype=int)
        zz[0] = 42
        w = BitWriter()
        assert encode_block_coefficients(zz, 0, w) == 42

    def test_zero_block_costs_little(self):
        w = BitWriter()
        encode_block_coefficients(np.zeros(64, dtype=int), 0, w)
        # DC category 0 (2 bits) + EOB (4 bits)
        assert w.bit_length == 6

    def test_dc_out_of_range_rejected(self):
        zz = np.zeros(64, dtype=int)
        zz[0] = 1 << 12
        with pytest.raises(KernelError):
            encode_block_coefficients(zz, 0, BitWriter())

    def test_ac_out_of_range_rejected(self):
        zz = np.zeros(64, dtype=int)
        zz[5] = 1 << 11
        with pytest.raises(KernelError):
            encode_block_coefficients(zz, 0, BitWriter())

    @given(st.lists(st.integers(-200, 200), min_size=64, max_size=64),
           st.integers(-500, 500))
    @settings(max_examples=80, deadline=None)
    def test_stage_decomposition_equals_one_shot(self, values, prev_dc):
        """Hman1..Hman5 composed == the monolithic encoder (bit exact)."""
        zz = np.array(values)
        w1, w2 = BitWriter(), BitWriter()
        dc1 = encode_block_coefficients(zz, prev_dc, w1)
        dc2 = encode_block_stages(zz, prev_dc, w2)
        assert dc1 == dc2
        assert w1.flush() == w2.flush()
