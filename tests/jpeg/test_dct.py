"""8x8 DCT: orthogonality, inversion, quarter decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.jpeg.dct import (
    dct2d,
    dct_matrix,
    dct_quarter,
    dct_quarters,
    idct2d,
)

blocks = st.lists(
    st.floats(min_value=-128, max_value=127), min_size=64, max_size=64
).map(lambda v: np.array(v).reshape(8, 8))


class TestMatrix:
    def test_orthonormal(self):
        c = dct_matrix(8)
        np.testing.assert_allclose(c @ c.T, np.eye(8), atol=1e-12)

    def test_first_row_constant(self):
        c = dct_matrix(8)
        np.testing.assert_allclose(c[0], np.sqrt(1 / 8))

    def test_read_only(self):
        with pytest.raises(ValueError):
            dct_matrix(8)[0, 0] = 1

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            dct_matrix(0)


class TestTransform:
    def test_constant_block_is_pure_dc(self):
        out = dct2d(np.full((8, 8), 4.0))
        assert out[0, 0] == pytest.approx(32.0)  # 4 * 8 (orthonormal)
        out[0, 0] = 0
        np.testing.assert_allclose(out, 0, atol=1e-12)

    def test_matches_scipy(self, rng):
        from scipy.fft import dctn

        block = rng.standard_normal((8, 8))
        expected = dctn(block, type=2, norm="ortho")
        np.testing.assert_allclose(dct2d(block), expected, atol=1e-10)

    def test_idct_inverts(self, rng):
        block = rng.standard_normal((8, 8)) * 100
        np.testing.assert_allclose(idct2d(dct2d(block)), block, atol=1e-9)

    @given(blocks)
    @settings(max_examples=50, deadline=None)
    def test_energy_preserved(self, block):
        # orthonormal transform: Parseval
        assert np.sum(dct2d(block) ** 2) == pytest.approx(
            np.sum(block.astype(float) ** 2), rel=1e-9, abs=1e-6
        )

    @given(blocks)
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, block):
        np.testing.assert_allclose(idct2d(dct2d(block)), block, atol=1e-8)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            dct2d(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            idct2d(np.zeros((4, 4)))


class TestQuarters:
    def test_quarters_reassemble_full(self, rng):
        block = rng.standard_normal((8, 8)) * 64
        np.testing.assert_allclose(dct_quarters(block), dct2d(block), atol=1e-10)

    def test_dc_lives_in_quadrant_00(self):
        block = np.full((8, 8), 1.0)
        q00 = dct_quarter(block, 0, 0)
        assert q00[0, 0] == pytest.approx(8.0)
        for qr, qc in ((0, 1), (1, 0), (1, 1)):
            np.testing.assert_allclose(dct_quarter(block, qr, qc), 0, atol=1e-12)

    def test_each_quarter_is_4x4(self, rng):
        block = rng.standard_normal((8, 8))
        for qr in (0, 1):
            for qc in (0, 1):
                assert dct_quarter(block, qr, qc).shape == (4, 4)

    def test_invalid_quadrant(self):
        with pytest.raises(ValueError):
            dct_quarter(np.zeros((8, 8)), 2, 0)

    @given(blocks)
    @settings(max_examples=30, deadline=None)
    def test_reassembly_property(self, block):
        np.testing.assert_allclose(dct_quarters(block), dct2d(block), atol=1e-8)
