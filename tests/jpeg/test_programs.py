"""JPEG tile programs vs the reference pipeline."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.fabric.tile import Tile
from repro.kernels.jpeg.dct import dct2d, dct_quarter
from repro.kernels.jpeg.programs import (
    PIXEL_QBITS,
    alpha_quantize_program,
    dc_category_program,
    dct_coefficient_words,
    matmul8_program,
    shift_program,
    zigzag_program,
)
from repro.kernels.jpeg.quant import (
    LUMINANCE_QTABLE,
    alpha_scale_table,
    quantize,
    scale_qtable,
)
from repro.kernels.jpeg.zigzag import zigzag
from repro.fabric.fixedpoint import FixedPointFormat

Q14 = FixedPointFormat(PIXEL_QBITS)


def fabric_block_pipeline(block, qtable):
    """Run shift->DCT->quantize->zigzag on one tile; return the vector."""
    recip = alpha_scale_table(qtable, 14)
    tile = Tile()
    for i, w in enumerate(dct_coefficient_words()):
        tile.dmem.poke(i, w)
    for i, v in enumerate(np.asarray(block).reshape(-1)):
        tile.dmem.poke(64 + i, int(v))
    for i, r in enumerate(recip.reshape(-1)):
        tile.dmem.poke(192 + i, int(r))
    for program in (
        shift_program(64, 64, PIXEL_QBITS),
        matmul8_program(a_base=0, b_base=64, out_base=128, qbits=30),
        matmul8_program(a_base=128, b_base=0, out_base=64, qbits=30,
                        transpose_b=True),
        alpha_quantize_program(64, qbits=28, a_base=64, recip_base=192,
                               out_base=128),
        zigzag_program(a_base=128, out_base=320),
    ):
        tile.load_program(program)
        tile.run()
    return np.array([tile.dmem.peek(320 + i) for i in range(64)])


class TestShift:
    def test_shift_and_scale(self):
        tile = Tile()
        tile.dmem.poke(0, 200)
        tile.load_program(shift_program(1, 0, PIXEL_QBITS))
        tile.run()
        assert tile.dmem.peek(0) == (200 - 128) << PIXEL_QBITS

    def test_plain_shift(self):
        tile = Tile()
        tile.dmem.poke(0, 100)
        tile.load_program(shift_program(1, 0, 0))
        tile.run()
        assert tile.dmem.peek(0) == -28

    def test_invalid_count(self):
        with pytest.raises(KernelError):
            shift_program(0)


class TestMatmul:
    def test_identity_times_matrix(self, rng):
        tile = Tile()
        q = 20
        eye = np.eye(8)
        mat = rng.standard_normal((8, 8))
        fmt = FixedPointFormat(q)
        for i, v in enumerate(eye.reshape(-1)):
            tile.dmem.poke(i, fmt.encode(v))
        for i, v in enumerate(mat.reshape(-1)):
            tile.dmem.poke(64 + i, fmt.encode(v))
        tile.load_program(matmul8_program(a_base=0, b_base=64, out_base=128,
                                          qbits=q))
        tile.run()
        got = np.array([fmt.decode(tile.dmem.peek(128 + i)) for i in range(64)])
        np.testing.assert_allclose(got.reshape(8, 8), mat, atol=1e-4)

    def test_full_dct_matches_reference(self, rng):
        block = rng.integers(0, 256, (8, 8))
        tile = Tile()
        for i, w in enumerate(dct_coefficient_words()):
            tile.dmem.poke(i, w)
        for i, v in enumerate((block.reshape(-1) - 128) << PIXEL_QBITS):
            tile.dmem.poke(64 + i, int(v))
        for program in (
            matmul8_program(a_base=0, b_base=64, out_base=128, qbits=30),
            matmul8_program(a_base=128, b_base=0, out_base=64, qbits=30,
                            transpose_b=True),
        ):
            tile.load_program(program)
            tile.run()
        got = np.array([Q14.decode(tile.dmem.peek(64 + i)) for i in range(64)])
        want = dct2d(block.astype(float) - 128)
        np.testing.assert_allclose(got.reshape(8, 8), want, atol=1e-2)

    def test_quarter_dct_rows(self, rng):
        """4x8 x 8x8 x 8x4 firing produces one output quadrant (p10)."""
        block = rng.integers(0, 256, (8, 8))
        tile = Tile()
        for i, w in enumerate(dct_coefficient_words()):
            tile.dmem.poke(i, w)
        for i, v in enumerate((block.reshape(-1) - 128) << PIXEL_QBITS):
            tile.dmem.poke(64 + i, int(v))
        tile.load_program(matmul8_program(rows=4, inner=8, cols=8,
                                          a_base=0, b_base=64, out_base=128,
                                          qbits=30))
        tile.run()
        tile.load_program(matmul8_program(rows=4, inner=8, cols=4,
                                          a_base=128, b_base=0, out_base=300,
                                          qbits=30, transpose_b=True))
        tile.run()
        got = np.array([Q14.decode(tile.dmem.peek(300 + i)) for i in range(16)])
        want = dct_quarter(block.astype(float) - 128, 0, 0)
        np.testing.assert_allclose(got.reshape(4, 4), want, atol=1e-2)

    def test_quarter_cycles_about_quarter_of_full(self):
        full = Tile()
        full.load_program(matmul8_program())
        full_cycles = full.run()
        quarter = Tile()
        quarter.load_program(matmul8_program(rows=4, inner=8, cols=4))
        quarter_cycles = quarter.run()
        assert quarter_cycles < full_cycles / 3

    def test_invalid_dimensions(self):
        with pytest.raises(KernelError):
            matmul8_program(rows=0)


class TestFullPipeline:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_reference_within_one_level(self, seed):
        """The reciprocal quantizer may differ from true division by at
        most one level, and only at level boundaries (quant.py note)."""
        rng = np.random.default_rng(seed)
        block = rng.integers(0, 256, (8, 8))
        qtable = scale_qtable(LUMINANCE_QTABLE, 75)
        got = fabric_block_pipeline(block, qtable)
        want = zigzag(quantize(dct2d(block.astype(float) - 128), qtable))
        diff = np.abs(got - want)
        assert diff.max() <= 1
        assert np.count_nonzero(diff) <= 3  # boundary cases are rare

    def test_different_quality_tables(self):
        rng = np.random.default_rng(7)
        block = rng.integers(0, 256, (8, 8))
        for quality in (30, 60, 95):
            qtable = scale_qtable(LUMINANCE_QTABLE, quality)
            got = fabric_block_pipeline(block, qtable)
            want = zigzag(quantize(dct2d(block.astype(float) - 128), qtable))
            # at most one off-by-one from the reciprocal quantizer
            assert np.abs(got - want).max() <= 1

    def test_encoder_with_fabric_stage_roundtrips(self):
        """Inject the fabric block pipeline into the encoder and decode."""
        from repro.kernels.jpeg.decoder import decode_image
        from repro.kernels.jpeg.encoder import JPEGEncoder
        from repro.io.images import natural_like

        img = natural_like(16, 16, seed=4)
        encoder = JPEGEncoder(quality=75)
        qtable = encoder.qtable

        def fabric_quantizer(coefficients):
            # the tile computes DCT too; here we reuse its quantize stage
            # semantics through the reciprocal table
            recip = alpha_scale_table(qtable, 14)
            scaled = coefficients * recip / (1 << 14)
            return np.floor(scaled + 0.5).astype(np.int64)

        encoder.quantizer = fabric_quantizer
        decoded = decode_image(encoder.encode(img))
        assert np.abs(decoded.astype(int) - img.astype(int)).max() < 40


class TestRunLengthScan:
    """Hman2 as a tile program vs the reference scanner."""

    @staticmethod
    def tile_rle(zz):
        from repro.kernels.jpeg.programs import rle_program

        tile = Tile()
        for i, v in enumerate(zz):
            tile.dmem.poke(320 + i, int(v))
        tile.load_program(rle_program())
        tile.run()
        n = tile.dmem.peek(511)
        return [
            (tile.dmem.peek(384 + 2 * i), tile.dmem.peek(384 + 2 * i + 1))
            for i in range(n)
        ]

    def test_all_zero_block(self):
        from repro.kernels.jpeg.huffman import run_length_pairs

        zz = np.zeros(64, dtype=int)
        assert self.tile_rle(zz) == run_length_pairs(zz[1:])

    def test_zrl_case(self):
        from repro.kernels.jpeg.huffman import run_length_pairs

        zz = np.zeros(64, dtype=int)
        zz[21] = 7  # 20 leading zeros -> ZRL + run 4
        got = self.tile_rle(zz)
        assert got == run_length_pairs(zz[1:])
        assert got[0] == (15, 0)

    def test_full_block_no_eob(self):
        from repro.kernels.jpeg.huffman import run_length_pairs

        zz = np.ones(64, dtype=int)
        got = self.tile_rle(zz)
        assert got == run_length_pairs(zz[1:])
        assert len(got) == 63

    def test_last_position_value(self):
        from repro.kernels.jpeg.huffman import run_length_pairs

        zz = np.zeros(64, dtype=int)
        zz[63] = -3
        assert self.tile_rle(zz) == run_length_pairs(zz[1:])

    def test_random_blocks_match_reference(self, rng):
        from repro.kernels.jpeg.huffman import run_length_pairs

        for _ in range(15):
            zz = np.zeros(64, dtype=int)
            count = int(rng.integers(0, 24))
            idx = rng.choice(np.arange(1, 64), size=count, replace=False)
            zz[idx] = rng.integers(-200, 200, count)
            assert self.tile_rle(zz) == run_length_pairs(zz[1:])

    def test_restart_safe(self):
        """The RLE program re-initializes everything at entry."""
        from repro.kernels.jpeg.huffman import run_length_pairs

        tile = Tile()
        zz1 = np.zeros(64, dtype=int); zz1[5] = 9
        zz2 = np.zeros(64, dtype=int); zz2[2] = -4; zz2[40] = 7
        from repro.kernels.jpeg.programs import rle_program

        for zz in (zz1, zz2):
            for i, v in enumerate(zz):
                tile.dmem.poke(320 + i, int(v))
            tile.load_program(rle_program())
            tile.run()
            n = tile.dmem.peek(511)
            got = [
                (tile.dmem.peek(384 + 2 * i), tile.dmem.peek(384 + 2 * i + 1))
                for i in range(n)
            ]
            assert got == run_length_pairs(zz[1:])


class TestDCCategory:
    @pytest.mark.parametrize("value,prev,diff,cat", [
        (50, 50, 0, 0),
        (37, 50, -13, 4),
        (100, 0, 100, 7),
        (0, -255, 255, 8),
    ])
    def test_category_cases(self, value, prev, diff, cat):
        tile = Tile()
        tile.dmem.poke(0, value)
        tile.dmem.poke(1, prev)
        tile.load_program(dc_category_program())
        tile.run()
        assert tile.dmem.peek(128) == diff
        assert tile.dmem.peek(129) == cat

    def test_matches_reference_category(self):
        from repro.kernels.jpeg.huffman import magnitude_category

        for diff in (-512, -3, -1, 0, 1, 2, 7, 8, 1023):
            tile = Tile()
            tile.dmem.poke(0, diff)
            tile.dmem.poke(1, 0)
            tile.load_program(dc_category_program())
            tile.run()
            assert tile.dmem.peek(129) == magnitude_category(diff)
