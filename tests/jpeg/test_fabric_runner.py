"""Fabric-executed JPEG blocks: decodability and cost accounting."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.io.images import natural_like
from repro.kernels.jpeg.decoder import decode_image
from repro.kernels.jpeg.encoder import JPEGEncoder
from repro.kernels.jpeg.fabric_runner import FabricBlockPipeline


@pytest.fixture(scope="module")
def encoded():
    image = natural_like(16, 24, seed=6)
    pipeline = FabricBlockPipeline(quality=75)
    result = pipeline.encode_image(image)
    return image, pipeline, result


class TestBlocks:
    def test_block_shape_validated(self):
        with pytest.raises(KernelError):
            FabricBlockPipeline().encode_block(np.zeros((4, 4)))

    def test_block_matches_reference_within_one_level(self, rng):
        block = rng.integers(0, 256, (8, 8))
        pipeline = FabricBlockPipeline(quality=75)
        got = pipeline.encode_block(block)
        want = JPEGEncoder(quality=75).encode_block_to_zigzag(block)
        assert np.abs(got - want).max() <= 1

    def test_chroma_pipeline_uses_k2_table(self, rng):
        from repro.kernels.jpeg.dct import dct2d
        from repro.kernels.jpeg.quant import (
            CHROMINANCE_QTABLE, quantize, scale_qtable,
        )
        from repro.kernels.jpeg.zigzag import zigzag

        block = rng.integers(0, 256, (8, 8))
        pipeline = FabricBlockPipeline(quality=80, chroma=True)
        got = pipeline.encode_block(block)
        qtable = scale_qtable(CHROMINANCE_QTABLE, 80)
        want = zigzag(quantize(dct2d(block.astype(float) - 128), qtable))
        assert np.abs(got - want).max() <= 1


class TestImage:
    def test_stream_is_decodable(self, encoded):
        image, _, result = encoded
        decoded = decode_image(result.stream)
        assert decoded.shape == image.shape
        assert np.abs(decoded.astype(int) - image.astype(int)).max() < 60

    def test_block_count(self, encoded):
        _, _, result = encoded
        assert result.blocks == 2 * 3

    def test_first_block_pays_the_programs(self, encoded):
        """Stage programs install once; later blocks are compute-only."""
        _, pipeline, result = encoded
        program_ns = sum(p.imem_bytes for p in pipeline._programs) / 180e6 * 1e9
        assert result.first_block_ns >= result.steady_block_ns + 0.7 * program_ns
        # and subsequent blocks are flat (no per-block reconfiguration)
        times = pipeline._block_times[1:]
        assert max(times) - min(times) < 10.0

    def test_steady_block_rate(self, encoded):
        _, _, result = encoded
        # ~10k cycles/block at 2.5ns -> tens of microseconds
        assert 10_000 < result.steady_block_ns < 100_000
        assert result.blocks_per_s > 10_000

    def test_data1_charged_once(self, encoded):
        """ICAP traffic = data1 (64+64 words) + the five programs, not
        per-block reloads."""
        _, pipeline, result = encoded
        program_bytes = sum(p.imem_bytes for p in pipeline._programs)
        data1_bytes = (64 + 64) * 6
        assert result.reconfig_bytes == program_bytes + data1_bytes

    def test_non_8bit_rejected(self):
        with pytest.raises(KernelError):
            FabricBlockPipeline().encode_image(np.full((8, 8), 999))
