"""Encoder/decoder round trips and stream structure."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.io.images import checkerboard, gradient, natural_like
from repro.kernels.jpeg.decoder import decode_image
from repro.kernels.jpeg.encoder import JPEGEncoder, blocks_of, encode_image, level_shift
from repro.kernels.jpeg.quant import scale_qtable, LUMINANCE_QTABLE


class TestBlocking:
    def test_level_shift(self):
        assert level_shift(np.full((8, 8), 128))[0, 0] == 0
        assert level_shift(np.zeros((8, 8)))[0, 0] == -128

    def test_exact_multiple(self):
        blocks, rows, cols = blocks_of(np.zeros((16, 24)))
        assert (rows, cols) == (2, 3)
        assert blocks.shape == (2, 3, 8, 8)

    def test_padding_replicates_edges(self):
        img = np.arange(10 * 12).reshape(10, 12) % 256
        blocks, rows, cols = blocks_of(img)
        assert (rows, cols) == (2, 2)
        # padded rows replicate the last image row
        assert blocks[1, 0][3, 0] == img[9, 0]

    def test_200x200_blocks(self):
        _, rows, cols = blocks_of(np.zeros((200, 200)))
        assert rows * cols == 625  # unpadded frame; 800 needs the stride

    def test_empty_rejected(self):
        with pytest.raises(KernelError):
            blocks_of(np.zeros((0, 8)))

    def test_non_2d_rejected(self):
        with pytest.raises(KernelError):
            blocks_of(np.zeros((8, 8, 3)))


class TestStreamStructure:
    def test_markers_present(self):
        stream = encode_image(gradient(16, 16))
        assert stream[:2] == b"\xff\xd8"          # SOI
        assert stream[-2:] == b"\xff\xd9"         # EOI
        assert b"JFIF\x00" in stream
        assert bytes([0xFF, 0xDB]) in stream      # DQT
        assert bytes([0xFF, 0xC0]) in stream      # SOF0
        assert bytes([0xFF, 0xC4]) in stream      # DHT
        assert bytes([0xFF, 0xDA]) in stream      # SOS

    def test_dimensions_in_sof(self):
        stream = encode_image(gradient(24, 40))
        at = stream.find(bytes([0xFF, 0xC0]))
        height = int.from_bytes(stream[at + 5:at + 7], "big")
        width = int.from_bytes(stream[at + 7:at + 9], "big")
        assert (height, width) == (24, 40)

    def test_non_8bit_rejected(self):
        with pytest.raises(KernelError):
            encode_image(np.full((8, 8), 300))

    def test_float_input_clipped(self):
        stream = JPEGEncoder().encode(np.full((8, 8), 127.6))
        assert decode_image(stream).shape == (8, 8)


class TestRoundTrip:
    @pytest.mark.parametrize("maker,quality,bound", [
        (gradient, 90, 6),
        (gradient, 50, 14),
        (lambda h, w: natural_like(h, w, seed=3), 90, 20),
        (checkerboard, 95, 60),
    ])
    def test_distortion_bounded(self, maker, quality, bound):
        img = maker(32, 40)
        decoded = decode_image(encode_image(img, quality=quality))
        assert decoded.shape == img.shape
        err = np.abs(decoded.astype(int) - img.astype(int))
        assert err.max() <= bound

    def test_flat_image_nearly_lossless(self):
        img = np.full((16, 16), 130, dtype=np.uint8)
        decoded = decode_image(encode_image(img, quality=75))
        assert np.abs(decoded.astype(int) - 130).max() <= 1

    def test_odd_dimensions_preserved(self):
        img = natural_like(13, 21, seed=5)
        decoded = decode_image(encode_image(img, quality=85))
        assert decoded.shape == (13, 21)

    def test_higher_quality_smaller_error(self):
        img = natural_like(40, 40, seed=9)
        low = decode_image(encode_image(img, quality=20))
        high = decode_image(encode_image(img, quality=95))
        err = lambda d: float(np.mean((d.astype(float) - img) ** 2))
        assert err(high) < err(low)

    def test_lower_quality_smaller_stream(self):
        img = natural_like(64, 64, seed=2)
        assert len(encode_image(img, 20)) < len(encode_image(img, 90))

    def test_smooth_images_compress_harder(self):
        smooth = len(encode_image(gradient(64, 64), 75))
        busy = len(encode_image(checkerboard(64, 64), 75))
        assert smooth < busy

    def test_coefficient_distortion_within_quant_step(self, rng):
        """Dequantized decoder coefficients differ from the true DCT by at
        most half a quantization step per coefficient."""
        img = natural_like(16, 16, seed=7)
        encoder = JPEGEncoder(quality=75)
        stream = encoder.encode(img)
        decoded = decode_image(stream)
        table = scale_qtable(LUMINANCE_QTABLE, 75)
        # spatial error bounded by sum of coefficient errors (loose bound)
        bound = np.sum(table) / 2 / 8 + 2
        assert np.abs(decoded.astype(int) - img.astype(int)).max() <= bound


class TestEncoderHooks:
    def test_custom_quantizer_injected(self):
        calls = []

        def spy_quantizer(coefficients):
            calls.append(1)
            from repro.kernels.jpeg.quant import quantize
            return quantize(coefficients, scale_qtable(LUMINANCE_QTABLE, 75))

        encoder = JPEGEncoder(quality=75, quantizer=spy_quantizer)
        encoder.encode(gradient(16, 16))
        assert len(calls) == 4  # 2x2 blocks

    def test_last_coefficients_exposed(self):
        encoder = JPEGEncoder()
        encoder.encode(gradient(16, 24))
        assert len(encoder.last_coefficients) == 6
        assert all(zz.shape == (64,) for zz in encoder.last_coefficients)


class TestDecoderErrors:
    def test_missing_soi(self):
        with pytest.raises(KernelError, match="SOI"):
            decode_image(b"\x00\x00")

    def test_truncated_stream(self):
        stream = encode_image(gradient(16, 16))
        with pytest.raises(KernelError):
            decode_image(stream[:-10] + b"\xff\xd9"[:0])  # no EOI at all
