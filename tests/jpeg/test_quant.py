"""Quantization tables, scaling, and the alpha reciprocal trick."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.kernels.jpeg.quant import (
    CHROMINANCE_QTABLE,
    LUMINANCE_QTABLE,
    alpha_scale_table,
    dequantize,
    quantize,
    scale_qtable,
)


class TestTables:
    def test_annex_k1_spot_values(self):
        assert LUMINANCE_QTABLE[0, 0] == 16
        assert LUMINANCE_QTABLE[7, 7] == 99
        assert LUMINANCE_QTABLE[0, 1] == 11

    def test_annex_k2_spot_values(self):
        assert CHROMINANCE_QTABLE[0, 0] == 17
        assert CHROMINANCE_QTABLE[4, 4] == 99

    def test_read_only(self):
        with pytest.raises(ValueError):
            LUMINANCE_QTABLE[0, 0] = 1


class TestScaling:
    def test_quality_50_is_identity(self):
        assert np.array_equal(scale_qtable(LUMINANCE_QTABLE, 50),
                              LUMINANCE_QTABLE)

    def test_higher_quality_finer(self):
        q90 = scale_qtable(LUMINANCE_QTABLE, 90)
        assert np.all(q90 <= LUMINANCE_QTABLE)

    def test_lower_quality_coarser(self):
        q10 = scale_qtable(LUMINANCE_QTABLE, 10)
        assert np.all(q10 >= LUMINANCE_QTABLE)

    def test_clamped_to_byte_range(self):
        q1 = scale_qtable(LUMINANCE_QTABLE, 1)
        q100 = scale_qtable(LUMINANCE_QTABLE, 100)
        assert q1.max() <= 255 and q100.min() >= 1

    def test_invalid_quality(self):
        with pytest.raises(ValueError):
            scale_qtable(LUMINANCE_QTABLE, 0)
        with pytest.raises(ValueError):
            scale_qtable(LUMINANCE_QTABLE, 101)


class TestQuantize:
    def test_rounds_half_away_from_zero(self):
        table = np.full((8, 8), 10)
        block = np.full((8, 8), 15.0)
        assert quantize(block, table)[0, 0] == 2
        assert quantize(-block, table)[0, 0] == -2

    def test_dequantize_inverts_scale(self):
        table = LUMINANCE_QTABLE
        levels = np.ones((8, 8), dtype=np.int64)
        np.testing.assert_array_equal(dequantize(levels, table), table)

    def test_quantize_dequantize_error_bounded(self, rng):
        table = LUMINANCE_QTABLE
        block = rng.uniform(-500, 500, (8, 8))
        restored = dequantize(quantize(block, table), table)
        assert np.all(np.abs(restored - block) <= table / 2 + 1e-9)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            quantize(np.zeros((4, 4)), LUMINANCE_QTABLE)
        with pytest.raises(ValueError):
            dequantize(np.zeros((4, 4), dtype=np.int64), LUMINANCE_QTABLE)


class TestAlphaReciprocal:
    def test_reciprocal_values(self):
        table = np.full((8, 8), 16)
        recip = alpha_scale_table(table, 14)
        assert np.all(recip == 1024)  # 2^14 / 16

    def test_invalid_table(self):
        with pytest.raises(ValueError):
            alpha_scale_table(np.zeros((8, 8), dtype=np.int64))

    @given(st.integers(min_value=1, max_value=255),
           st.integers(min_value=-2048, max_value=2048))
    def test_reciprocal_close_to_division(self, q, c):
        recip = int(alpha_scale_table(np.full((8, 8), q), 14)[0, 0])
        approx = (c * recip + (1 << 13)) >> 14
        exact = int(np.sign(c) * np.floor(abs(c) / q + 0.5))
        assert abs(approx - exact) <= 1
