"""Zig-zag scan order and inverse."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.kernels.jpeg.zigzag import ZIGZAG_ORDER, izigzag, zigzag


class TestOrder:
    def test_is_a_permutation(self):
        assert sorted(ZIGZAG_ORDER) == list(range(64))

    def test_known_prefix(self):
        # T.81 figure 5: 0, 1, 8, 16, 9, 2, 3, 10 ...
        assert list(ZIGZAG_ORDER[:8]) == [0, 1, 8, 16, 9, 2, 3, 10]

    def test_ends_at_highest_frequency(self):
        assert ZIGZAG_ORDER[-1] == 63

    def test_neighbouring_entries_are_adjacent_cells(self):
        for a, b in zip(ZIGZAG_ORDER, ZIGZAG_ORDER[1:]):
            ra, ca = divmod(int(a), 8)
            rb, cb = divmod(int(b), 8)
            assert abs(ra - rb) <= 1 and abs(ca - cb) <= 1

    def test_read_only(self):
        with pytest.raises(ValueError):
            ZIGZAG_ORDER[0] = 5


class TestScan:
    def test_dc_first(self):
        block = np.arange(64).reshape(8, 8)
        assert zigzag(block)[0] == block[0, 0]

    def test_roundtrip(self, rng):
        block = rng.integers(-100, 100, (8, 8))
        assert np.array_equal(izigzag(zigzag(block)), block)

    @given(st.lists(st.integers(-1000, 1000), min_size=64, max_size=64))
    def test_roundtrip_property(self, values):
        vec = np.array(values)
        assert np.array_equal(zigzag(izigzag(vec)), vec)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            zigzag(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            izigzag(np.zeros(32))

    def test_low_frequency_energy_moves_forward(self):
        block = np.zeros((8, 8))
        block[:2, :2] = 10
        scanned = zigzag(block)
        assert np.all(scanned[:5] != 0) or scanned[0] != 0
        assert np.all(scanned[20:] == 0)
