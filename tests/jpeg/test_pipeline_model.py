"""Figs. 16-17 series: rebalance curves for the JPEG pipeline."""

import pytest

from repro.kernels.jpeg.pipeline_model import (
    jpeg_pipeline_order,
    rebalance_series,
)


@pytest.fixture(scope="module")
def series():
    return rebalance_series(max_tiles=25)


class TestPipelineOrder:
    def test_ten_processes_in_fig3_order(self):
        names = [p.name for p in jpeg_pipeline_order()]
        assert names[0] == "shift" and names[1] == "DCT"
        assert names[-1] == "Hman5"
        assert len(names) == 10


class TestSeries:
    def test_all_algorithms_present(self, series):
        assert set(series) == {"one", "two", "opt"}

    def test_budgets_1_to_25(self, series):
        for algo in series:
            assert [p.n_tiles for p in series[algo]] == list(range(1, 26))

    def test_throughput_monotone(self, series):
        for algo in series:
            ips = [p.images_per_s for p in series[algo]]
            assert all(b >= a - 1e-9 for a, b in zip(ips, ips[1:]))

    def test_single_tile_utilization_is_one(self, series):
        for algo in series:
            assert series[algo][0].utilization == pytest.approx(1.0)

    def test_refined_at_least_greedy(self, series):
        for i in range(25):
            assert series["two"][i].images_per_s >= \
                series["one"][i].images_per_s - 1e-9
            assert series["opt"][i].images_per_s >= \
                series["one"][i].images_per_s - 1e-9

    def test_algorithms_mostly_agree(self, series):
        """Paper: the three give the same mapping in most cases."""
        same = sum(
            1 for i in range(25)
            if abs(series["one"][i].images_per_s
                   - series["opt"][i].images_per_s) < 1e-9
        )
        assert same >= 15

    def test_divergence_where_heaviest_is_composite(self, series):
        """...and differ somewhere in the mid-budget range."""
        diverged = [
            series["one"][i].n_tiles
            for i in range(25)
            if abs(series["one"][i].images_per_s
                   - series["opt"][i].images_per_s) > 1e-9
        ]
        assert diverged, "expected at least one diverging budget"
        assert all(3 <= t <= 25 for t in diverged)

    def test_24_tiles_throughput_matches_table5_binding(self, series):
        """The 24-tile reBalanceOne point must equal the Table 5 mapping's
        throughput (DCT x17 dominates: 19.63 us/block)."""
        point = series["one"][23]
        assert point.n_tiles == 24
        assert point.images_per_s == pytest.approx(
            1e9 / (19630 * 800), rel=0.01
        )

    def test_mapping_labels_present(self, series):
        assert "[DCT]" in series["one"][23].mapping_label
