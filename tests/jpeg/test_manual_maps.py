"""Table 4: the five manual mappings against the published row values."""

import pytest

from repro.kernels.jpeg.manual_maps import (
    MANUAL_IMPLEMENTATIONS,
    manual_mapping_table,
)


@pytest.fixture(scope="module")
def rows():
    return manual_mapping_table()


class TestStructure:
    def test_five_implementations(self):
        assert [impl.index for impl in MANUAL_IMPLEMENTATIONS] == [1, 2, 3, 4, 5]

    def test_tile_counts_match_paper(self):
        assert [impl.n_tiles for impl in MANUAL_IMPLEMENTATIONS] == \
            [1, 2, 10, 13, 5]

    def test_impl4_has_four_quarter_dcts(self):
        impl4 = MANUAL_IMPLEMENTATIONS[3]
        quarters = [t for t in impl4.tiles if t.processes == ("dct",)]
        assert len(quarters) == 4

    def test_impl1_hosts_whole_pipeline(self):
        impl1 = MANUAL_IMPLEMENTATIONS[0]
        assert len(impl1.tiles[0].processes) == 10


class TestPublishedValues:
    @pytest.mark.parametrize("index,paper_time", [
        (1, 419.0), (2, 334.0), (3, 334.0), (4, 84.0), (5, 86.0),
    ])
    def test_block_time_within_one_percent(self, rows, index, paper_time):
        row = rows[index - 1]
        assert row["time_us"] == pytest.approx(paper_time, rel=0.01)

    @pytest.mark.parametrize("index,paper_util", [
        (1, 1.00), (2, 0.62), (3, 0.12), (4, 0.37), (5, 0.98),
    ])
    def test_utilization_within_two_points(self, rows, index, paper_util):
        row = rows[index - 1]
        assert row["utilization"] == pytest.approx(paper_util, abs=0.02)

    @pytest.mark.parametrize("index,paper_ips", [
        (1, 2.98), (2, 3.74), (3, 3.74), (4, 14.88), (5, 14.43),
    ])
    def test_images_per_s_within_two_percent(self, rows, index, paper_ips):
        row = rows[index - 1]
        assert row["images_per_s"] == pytest.approx(paper_ips, rel=0.02)

    def test_reconfig_flags_match(self, rows):
        assert [r["reconfig"] for r in rows] == [True, True, False, False, True]

    def test_relink_flags_match(self, rows):
        assert [r["relink"] for r in rows] == [False, False, False, True, True]


class TestInterpretation:
    def test_two_and_ten_tiles_same_throughput(self, rows):
        """Paper: "whether we use two tiles or 10 tiles, throughput is the
        same" — DCT dominates both."""
        assert rows[1]["images_per_s"] == pytest.approx(rows[2]["images_per_s"])

    def test_splitting_dct_quadruples_throughput(self, rows):
        assert rows[3]["images_per_s"] / rows[2]["images_per_s"] == \
            pytest.approx(4.0, rel=0.02)

    def test_impl5_best_utilization(self, rows):
        best = max(rows, key=lambda r: r["utilization"])
        assert best["impl"] in (1, 5)
        assert rows[4]["utilization"] > 0.95
