"""Color JPEG: conversions, subsampling, 4:4:4 / 4:2:0 round trips."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KernelError
from repro.kernels.jpeg.color import (
    ColorJPEGEncoder,
    encode_color_image,
    rgb_to_ycbcr,
    subsample_420,
    upsample_420,
    ycbcr_to_rgb,
)
from repro.kernels.jpeg.decoder import decode_image


def smooth_rgb(h, w):
    i, j = np.mgrid[0:h, 0:w]
    return np.stack(
        [
            128 + 60 * np.sin(i / 7),
            128 + 50 * np.cos(j / 9),
            100 + 40 * np.sin((i + j) / 11),
        ],
        axis=-1,
    ).astype(np.uint8)


class TestConversions:
    def test_grey_maps_to_zero_chroma(self):
        grey = np.full((4, 4, 3), 77, dtype=np.uint8)
        ycc = rgb_to_ycbcr(grey)
        np.testing.assert_allclose(ycc[..., 0], 77, atol=0.5)
        np.testing.assert_allclose(ycc[..., 1], 128, atol=0.5)
        np.testing.assert_allclose(ycc[..., 2], 128, atol=0.5)

    def test_primaries_luma_weights(self):
        red = np.zeros((1, 1, 3)); red[..., 0] = 255
        assert rgb_to_ycbcr(red)[0, 0, 0] == pytest.approx(0.299 * 255)
        green = np.zeros((1, 1, 3)); green[..., 1] = 255
        assert rgb_to_ycbcr(green)[0, 0, 0] == pytest.approx(0.587 * 255)

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_within_one_lsb(self, r, g, b):
        rgb = np.array([[[r, g, b]]], dtype=np.uint8)
        back = ycbcr_to_rgb(rgb_to_ycbcr(rgb))
        assert np.abs(back.astype(int) - rgb.astype(int)).max() <= 1

    def test_shape_validation(self):
        with pytest.raises(KernelError):
            rgb_to_ycbcr(np.zeros((4, 4)))
        with pytest.raises(KernelError):
            ycbcr_to_rgb(np.zeros((4, 4, 2)))


class TestSubsampling:
    def test_box_filter_average(self):
        plane = np.array([[0, 4], [8, 12]], dtype=float)
        assert subsample_420(plane)[0, 0] == 6.0

    def test_halves_dimensions(self):
        assert subsample_420(np.zeros((16, 24))).shape == (8, 12)

    def test_odd_dimensions_padded(self):
        assert subsample_420(np.zeros((15, 23))).shape == (8, 12)

    def test_upsample_restores_size(self):
        small = subsample_420(np.zeros((20, 30)))
        assert upsample_420(small, 20, 30).shape == (20, 30)

    def test_sub_then_up_preserves_smooth_content(self):
        i, j = np.mgrid[0:32, 0:32]
        plane = 100 + 20 * np.sin(i / 9) * np.cos(j / 9)
        back = upsample_420(subsample_420(plane), 32, 32)
        assert np.abs(back - plane).max() < 3.0

    def test_upsample_too_small_rejected(self):
        with pytest.raises(KernelError):
            upsample_420(np.zeros((2, 2)), 100, 100)

    def test_non_2d_rejected(self):
        with pytest.raises(KernelError):
            subsample_420(np.zeros((2, 2, 3)))


class TestColorRoundTrip:
    @pytest.mark.parametrize("subsampling,bound", [("444", 8), ("420", 16)])
    def test_smooth_image(self, subsampling, bound):
        img = smooth_rgb(40, 48)
        stream = encode_color_image(img, quality=90, subsampling=subsampling)
        out = decode_image(stream)
        assert out.shape == img.shape
        assert np.abs(out.astype(int) - img.astype(int)).max() <= bound

    def test_420_smaller_than_444(self):
        img = smooth_rgb(64, 64)
        s444 = encode_color_image(img, 80, "444")
        s420 = encode_color_image(img, 80, "420")
        assert len(s420) < len(s444)

    def test_odd_dimensions(self):
        img = smooth_rgb(19, 27)
        out = decode_image(encode_color_image(img, 90, "420"))
        assert out.shape == (19, 27, 3)

    def test_flat_color_nearly_lossless(self):
        img = np.full((16, 16, 3), (200, 50, 120), dtype=np.uint8)
        out = decode_image(encode_color_image(img, 85, "420"))
        assert np.abs(out.astype(int) - img.astype(int)).max() <= 3

    def test_invalid_subsampling(self):
        with pytest.raises(KernelError):
            ColorJPEGEncoder(subsampling="422")

    def test_greyscale_input_rejected(self):
        with pytest.raises(KernelError):
            encode_color_image(np.zeros((8, 8), dtype=np.uint8))

    def test_stream_has_three_components(self):
        stream = encode_color_image(smooth_rgb(16, 16))
        at = stream.find(bytes([0xFF, 0xC0]))
        assert stream[at + 9] == 3  # component count in SOF

    def test_random_noise_survives(self, rng):
        img = rng.integers(0, 256, (24, 24, 3)).astype(np.uint8)
        out = decode_image(encode_color_image(img, quality=95, subsampling="444"))
        # noisy chroma is heavily quantized; just require sane output
        assert out.shape == img.shape
        assert out.dtype == np.uint8
