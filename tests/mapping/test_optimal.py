"""Exact optimal partitioner and the heuristics' optimality gap."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MappingError
from repro.mapping.cost import TileCostModel
from repro.mapping.optimal import min_tiles_for_interval, optimal_mapping
from repro.mapping.rebalance import rebalance
from repro.pn.process import Process


def procs(*cycles):
    return [Process(f"p{i}", runtime_cycles=c, insts=10)
            for i, c in enumerate(cycles)]


@pytest.fixture
def model():
    return TileCostModel()


class TestFeasibility:
    def test_single_tile_needs_total(self, model):
        ps = procs(100, 200, 300)
        total = model.block_time_ns(ps)
        result = min_tiles_for_interval(ps, total, model)
        assert result is not None and result[0] == 1

    def test_unreachable_interval_needs_replication(self, model):
        ps = procs(1000)
        tiles, stages = min_tiles_for_interval(
            ps, model.block_time_ns(ps) / 4, model
        )
        assert tiles == 4
        assert stages[0].copies == 4

    def test_non_positive_target(self, model):
        assert min_tiles_for_interval(procs(1), 0.0, model) is None

    def test_witness_achieves_target(self, model):
        ps = procs(50, 400, 80, 120, 30)
        target = 500.0
        result = min_tiles_for_interval(ps, target, model)
        assert result is not None
        tiles, stages = result
        from repro.mapping.placement import PipelineMapping

        mapping = PipelineMapping(stages)
        assert mapping.n_tiles == tiles
        assert mapping.interval_ns(model) <= target + 1e-9
        assert mapping.process_names() == [p.name for p in ps]


class TestOptimal:
    def test_budget_one_is_whole_pipeline(self, model):
        ps = procs(10, 20, 30)
        result = optimal_mapping(ps, 1, model)
        assert result.n_tiles == 1
        assert result.interval_ns == pytest.approx(model.block_time_ns(ps))

    def test_respects_budget(self, model):
        ps = procs(13, 88, 4, 9, 230, 17)
        for budget in (1, 3, 6, 9):
            assert optimal_mapping(ps, budget, model).n_tiles <= budget

    def test_monotone_in_budget(self, model):
        ps = procs(33, 45, 220, 18, 77)
        intervals = [
            optimal_mapping(ps, b, model).interval_ns for b in range(1, 10)
        ]
        assert all(b <= a + 1e-9 for a, b in zip(intervals, intervals[1:]))

    def test_invalid_inputs(self, model):
        with pytest.raises(MappingError):
            optimal_mapping([], 1, model)
        with pytest.raises(MappingError):
            optimal_mapping(procs(1), 0, model)

    def test_beats_greedy_on_adversarial_pipeline(self, model):
        """A case where greedy splitting commits early and pays."""
        ps = procs(60, 60, 60, 60, 200, 60, 60, 60, 60)
        budget = 3
        greedy = rebalance(ps, budget, model).mappings[-1].interval_ns(model)
        exact = optimal_mapping(ps, budget, model).interval_ns
        assert exact <= greedy + 1e-9


class TestOptimalityGap:
    def test_heuristics_never_beat_the_optimum(self, model):
        from repro.kernels.jpeg.pipeline_model import jpeg_pipeline_order

        ps = jpeg_pipeline_order()
        for budget in (1, 2, 5, 10, 17, 24):
            exact = optimal_mapping(ps, budget, model).interval_ns
            for algo in ("one", "two", "opt"):
                heuristic = rebalance(
                    ps, budget, model, algorithm=algo
                ).mappings[-1].interval_ns(model)
                assert heuristic >= exact - 1e-6

    def test_jpeg_gap_is_small(self, model):
        """Sec. 3.5's greedy family stays within ~15% of optimal on the
        paper's own workload across all published budgets."""
        from repro.kernels.jpeg.pipeline_model import jpeg_pipeline_order

        ps = jpeg_pipeline_order()
        worst_gap = 0.0
        for budget in range(1, 26):
            exact = optimal_mapping(ps, budget, model).interval_ns
            greedy = rebalance(ps, budget, model).mappings[-1].interval_ns(model)
            worst_gap = max(worst_gap, greedy / exact)
        assert worst_gap < 1.25

    @given(
        st.lists(st.integers(min_value=1, max_value=5000),
                 min_size=1, max_size=6),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_optimum_lower_bounds_all_heuristics(self, cycles, budget):
        model = TileCostModel()
        ps = procs(*cycles)
        exact = optimal_mapping(ps, budget, model).interval_ns
        for algo in ("one", "two", "opt"):
            heuristic = rebalance(
                ps, budget, model, algorithm=algo
            ).mappings[-1].interval_ns(model)
            assert heuristic >= exact - 1e-6
        # and the optimum respects the trivial lower bounds
        heaviest = max(model.block_time_ns([p]) for p in ps)
        assert exact >= heaviest / budget - 1e-6
