"""Copy-process insertion between stages."""

import pytest

from repro.mapping.copy_insertion import copy_overhead_ns, insert_copies
from repro.mapping.placement import PipelineMapping, Stage
from repro.pn.process import CopyVariant, Process


def stage(name, words, cycles=100):
    return Stage((Process(name, runtime_cycles=cycles, output_words=words),))


class TestInsertion:
    def test_boundary_gets_copies(self):
        mapping = PipelineMapping([stage("a", 64), stage("b", 0)])
        boundaries = insert_copies(mapping)
        assert len(boundaries) == 1
        assert boundaries[0].words == 64
        assert [p.name for p in boundaries[0].copies] == ["CP64"]

    def test_greedy_decomposition(self):
        mapping = PipelineMapping([stage("a", 112), stage("b", 0)])
        (boundary,) = insert_copies(mapping)
        assert [p.name for p in boundary.copies] == ["CP64", "CP32", "CP16"]

    def test_remainder_rounds_up(self):
        mapping = PipelineMapping([stage("a", 5), stage("b", 0)])
        (boundary,) = insert_copies(mapping)
        assert [p.name for p in boundary.copies] == ["CP16"]

    def test_zero_word_boundary_skipped(self):
        mapping = PipelineMapping([stage("a", 0), stage("b", 0)])
        assert insert_copies(mapping) == []

    def test_last_stage_has_no_boundary(self):
        mapping = PipelineMapping([stage("a", 64)])
        assert insert_copies(mapping) == []


class TestCost:
    def test_memory_variant_cost(self):
        mapping = PipelineMapping([stage("a", 64), stage("b", 0)])
        cost = copy_overhead_ns(mapping, CopyVariant.MEMORY)
        assert cost == pytest.approx(720 * 2.5)

    def test_time_variant_cheaper(self):
        mapping = PipelineMapping([stage("a", 64), stage("b", 0)])
        fast = copy_overhead_ns(mapping, CopyVariant.TIME)
        slow = copy_overhead_ns(mapping, CopyVariant.MEMORY)
        assert fast < slow

    def test_self_update_ablation(self):
        mapping = PipelineMapping([stage("a", 64), stage("b", 0)])
        optimized = copy_overhead_ns(mapping, self_update=True)
        reloaded = copy_overhead_ns(mapping, self_update=False)
        # the non-optimized version pays the data3 reload per firing
        assert reloaded > optimized
