"""Snake placement and link planning."""

import pytest

from repro.errors import MappingError
from repro.fabric.links import Direction
from repro.mapping.linkplan import LinkPlan, plan_links, snake_placement
from repro.mapping.placement import PipelineMapping, Stage
from repro.pn.process import Process


def procs(n):
    return [Process(f"p{i}", runtime_cycles=10) for i in range(n)]


class TestSnake:
    def test_first_row_left_to_right(self):
        assert snake_placement(3, 5) == [(0, 0), (0, 1), (0, 2)]

    def test_second_row_reverses(self):
        coords = snake_placement(8, 4)
        assert coords[4] == (1, 3)
        assert coords[7] == (1, 0)

    def test_consecutive_positions_are_neighbours(self):
        coords = snake_placement(17, 5)
        for a, b in zip(coords, coords[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    def test_invalid_args(self):
        with pytest.raises(MappingError):
            snake_placement(0, 4)
        with pytest.raises(MappingError):
            snake_placement(4, 0)


class TestPlanLinks:
    def test_linear_pipeline_static_chain(self):
        mapping = PipelineMapping([Stage((p,)) for p in procs(4)])
        plan = plan_links(mapping, mesh_cols=2)
        assert plan.per_block_relinks == 0
        assert not plan.needs_relink
        assert plan.static_links[(0, 0)] is Direction.EAST
        assert plan.static_links[(0, 1)] is Direction.SOUTH
        assert plan.static_links[(1, 1)] is Direction.WEST

    def test_replicated_stage_needs_relink(self):
        a, b, c = procs(3)
        mapping = PipelineMapping(
            [Stage((a,)), Stage((b,), copies=3), Stage((c,))]
        )
        plan = plan_links(mapping, mesh_cols=5)
        assert plan.needs_relink
        assert plan.per_block_relinks == 2  # steer in + merge out

    def test_replicated_at_pipeline_edges(self):
        a, b = procs(2)
        head = PipelineMapping([Stage((a,), copies=2), Stage((b,))])
        assert plan_links(head).per_block_relinks == 1
        tail = PipelineMapping([Stage((a,)), Stage((b,), copies=2)])
        assert plan_links(tail).per_block_relinks == 1

    def test_relink_time(self):
        plan = LinkPlan(placement=((0, 0),), per_block_relinks=3)
        assert plan.per_block_relink_ns(700.0) == pytest.approx(2100.0)
        with pytest.raises(MappingError):
            plan.per_block_relink_ns(-1)

    def test_placement_length_counts_copies(self):
        a, b = procs(2)
        mapping = PipelineMapping([Stage((a,), copies=3), Stage((b,))])
        plan = plan_links(mapping, mesh_cols=2)
        assert len(plan.placement) == 4
