"""Tile cost model: fits, pinning policies, reload accounting."""

import pytest

from repro.errors import MappingError
from repro.mapping.cost import PinningPolicy, TileCostModel
from repro.pn.process import Process
from repro.pn.profiles import jpeg_processes
from repro.units import DMEM_WORD_RELOAD_NS, IMEM_WORD_RELOAD_NS


def proc(name, cycles=100, insts=50, data3=0):
    return Process(name, runtime_cycles=cycles, insts=insts, data3=data3)


class TestFitting:
    def test_fits_under_capacity(self):
        model = TileCostModel()
        assert model.fits([proc("a", insts=200), proc("b", insts=300)])
        assert not model.fits([proc("a", insts=300), proc("b", insts=300)])

    def test_no_reload_when_fitting(self):
        model = TileCostModel()
        cost = model.block_cost([proc("a"), proc("b")])
        assert cost.imem_reload_ns == 0.0
        assert not cost.needs_reconfig

    def test_runtime_summed(self):
        model = TileCostModel()
        cost = model.block_cost([proc("a", cycles=100), proc("b", cycles=300)])
        assert cost.runtime_ns == pytest.approx(1000.0)

    def test_data3_charged(self):
        model = TileCostModel()
        cost = model.block_cost([proc("a", data3=9)])
        assert cost.dmem_reload_ns == pytest.approx(9 * DMEM_WORD_RELOAD_NS)

    def test_data3_ablation_switch(self):
        model = TileCostModel(charge_data3=False)
        assert model.block_cost([proc("a", data3=9)]).dmem_reload_ns == 0.0

    def test_empty_tile_rejected(self):
        with pytest.raises(MappingError):
            TileCostModel().block_cost([])


class TestGreedyPinning:
    def test_pins_everything_when_fitting(self):
        model = TileCostModel()
        ps = [proc("a", insts=100), proc("b", insts=100)]
        assert model.greedy_pin_set(ps) == {"a", "b"}

    def test_respects_residency_constraint(self):
        model = TileCostModel()
        ps = [proc(n, insts=i) for n, i in
              (("a", 300), ("b", 250), ("c", 200))]
        pin = model.greedy_pin_set(ps)
        pinned_words = sum(p.insts for p in ps if p.name in pin)
        largest_swapped = max(
            (p.insts for p in ps if p.name not in pin), default=0
        )
        assert pinned_words + largest_swapped <= 512

    def test_jpeg_pipeline_reload(self):
        # the full p0..p9 pipeline exceeds 512 instructions
        ps = [p for n, p in jpeg_processes().items() if n != "dct"]
        model = TileCostModel(policy=PinningPolicy.GREEDY)
        cost = model.block_cost(ps)
        assert cost.needs_reconfig
        assert cost.reloaded_insts > 0


class TestExplicitPinning:
    def test_paper_pin_set_reproduces_impl1(self):
        """Table 4 impl 1: 419 us per block with {Hman1,3,5} pinned."""
        catalogue = jpeg_processes()
        chain = [catalogue[n] for n in
                 ("shift", "DCT", "Alpha", "Quantize", "Zigzag",
                  "Hman1", "Hman2", "Hman3", "Hman4", "Hman5")]
        model = TileCostModel(policy=PinningPolicy.EXPLICIT)
        cost = model.block_cost(chain, pinned={"Hman1", "Hman3", "Hman5"})
        # runtime 391.75us + 421 insts x 50ns + 92 data3 x 33.33ns
        assert cost.total_ns / 1000 == pytest.approx(415.9, abs=0.1)
        assert cost.reloaded_insts == 421

    def test_explicit_requires_pin_set(self):
        model = TileCostModel(policy=PinningPolicy.EXPLICIT)
        big = [proc("a", insts=300), proc("b", insts=300)]
        with pytest.raises(MappingError, match="needs a pin set"):
            model.block_cost(big)

    def test_unknown_pinned_name_rejected(self):
        model = TileCostModel(policy=PinningPolicy.EXPLICIT)
        big = [proc("a", insts=300), proc("b", insts=300)]
        with pytest.raises(MappingError, match="not on tile"):
            model.block_cost(big, pinned={"zz"})

    def test_infeasible_pin_set_rejected(self):
        model = TileCostModel(policy=PinningPolicy.EXPLICIT)
        big = [proc("a", insts=400), proc("b", insts=200)]
        with pytest.raises(MappingError, match="no room"):
            model.block_cost(big, pinned={"a"})


class TestNonePolicy:
    def test_reloads_everything_over_capacity(self):
        model = TileCostModel(policy=PinningPolicy.NONE)
        big = [proc("a", insts=300), proc("b", insts=300)]
        cost = model.block_cost(big)
        assert cost.imem_reload_ns == pytest.approx(600 * IMEM_WORD_RELOAD_NS)

    def test_invalid_capacity(self):
        with pytest.raises(MappingError):
            TileCostModel(imem_words=0)
