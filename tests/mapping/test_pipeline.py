"""Pipeline metrics: throughput, utilization, area figures."""

import pytest

from repro.mapping.cost import TileCostModel
from repro.mapping.pipeline import (
    JPEG_BLOCKS_PER_IMAGE,
    PipelineMetrics,
    evaluate_mapping,
)
from repro.mapping.placement import PipelineMapping, Stage
from repro.pn.process import Process


def procs(*cycles):
    return [Process(f"p{i}", runtime_cycles=c) for i, c in enumerate(cycles)]


class TestMetrics:
    def test_items_per_s(self):
        m = PipelineMetrics(n_tiles=1, interval_ns=1000.0, busy_ns=1000.0)
        assert m.items_per_s(1) == pytest.approx(1e6)
        assert m.items_per_s(100) == pytest.approx(1e4)

    def test_copy_overhead_extends_block_time(self):
        m = PipelineMetrics(n_tiles=1, interval_ns=900.0, busy_ns=900.0,
                            copy_overhead_ns=100.0)
        assert m.block_time_ns == 1000.0

    def test_invalid_blocks_per_item(self):
        m = PipelineMetrics(n_tiles=1, interval_ns=1.0, busy_ns=1.0)
        with pytest.raises(ValueError):
            m.items_per_s(0)

    def test_utilization_bounds(self):
        m = PipelineMetrics(n_tiles=2, interval_ns=100.0, busy_ns=150.0)
        assert m.utilization == pytest.approx(0.75)
        full = PipelineMetrics(n_tiles=1, interval_ns=100.0, busy_ns=100.0)
        assert full.utilization == 1.0

    def test_utilization_clipped_at_one(self):
        m = PipelineMetrics(n_tiles=1, interval_ns=100.0, busy_ns=150.0)
        assert m.utilization == 1.0

    def test_area(self):
        m = PipelineMetrics(n_tiles=5, interval_ns=1.0, busy_ns=1.0)
        assert m.area_luts == 1000
        assert m.throughput_per_area(1) == pytest.approx(1e9 / 1000)

    def test_blocks_per_image_constant(self):
        # 256-wide stride x 200 rows of a padded 200x200 frame
        assert JPEG_BLOCKS_PER_IMAGE == 800 == (256 // 8) * (200 // 8)


class TestEvaluateMapping:
    def test_single_tile_fully_utilized(self):
        model = TileCostModel()
        mapping = PipelineMapping.single_tile(procs(100, 200))
        metrics = evaluate_mapping(mapping, model)
        assert metrics.utilization == 1.0
        assert metrics.n_tiles == 1

    def test_replicated_stage_busy_accounting(self):
        model = TileCostModel()
        (a,) = procs(1000)
        b = Process("b", runtime_cycles=250)
        mapping = PipelineMapping([Stage((a,), copies=4), Stage((b,))])
        metrics = evaluate_mapping(mapping, model)
        # interval = 1000/4 = 250 cycles = 625ns; both stages saturated
        assert metrics.interval_ns == pytest.approx(625.0)
        assert metrics.utilization == pytest.approx(1.0)

    def test_unbalanced_utilization(self):
        model = TileCostModel()
        mapping = PipelineMapping(
            [Stage((p,)) for p in procs(1000, 100)]
        )
        metrics = evaluate_mapping(mapping, model)
        assert metrics.utilization == pytest.approx((1000 + 100) / (2 * 1000))
