"""Epoch-schedule generation and the temporal-folding trade-off."""

import pytest

from repro.errors import MappingError
from repro.mapping.cost import TileCostModel
from repro.mapping.epochs import (
    folded_epochs,
    folding_tradeoff,
    spatial_epochs,
)
from repro.mapping.placement import PipelineMapping, Stage
from repro.pn.network import Channel, ProcessNetwork
from repro.pn.process import Process
from repro.pn.runtime_model import eq1_runtime


def make_network(count=6, cycles=1000, insts=60):
    processes = [
        Process(f"p{i}", runtime_cycles=cycles, insts=insts, data1=8,
                output_words=32)
        for i in range(count)
    ]
    net = ProcessNetwork(processes)
    for a, b in zip(processes, processes[1:]):
        net.add_channel(Channel(a.name, b.name, 32))
    return net


class TestSpatial:
    def test_one_epoch_per_stage(self):
        net = make_network(4)
        mapping = PipelineMapping(
            [Stage((p,)) for p in net.pipeline_order()]
        )
        epochs = spatial_epochs(mapping, TileCostModel())
        assert len(epochs) == 4
        # full binding in every epoch, one distinct tile per process
        binding = epochs[0].configuration.binding
        assert len(binding) == 4
        assert len(set(binding.values())) == 4
        assert all(e.configuration.binding == binding for e in epochs)

    def test_durations_are_stage_times(self):
        net = make_network(2)
        model = TileCostModel()
        mapping = PipelineMapping([Stage(tuple(net.pipeline_order()))])
        (epoch,) = spatial_epochs(mapping, model)
        assert epoch.duration_ns == pytest.approx(
            mapping.stages[0].tile_time_ns(model)
        )

    def test_eq1_of_spatial_schedule_has_no_reconfig(self):
        """A pure space mapping preloads everything: term B is zero."""
        net = make_network(4)
        mapping = PipelineMapping([Stage((p,)) for p in net.pipeline_order()])
        epochs = spatial_epochs(mapping, TileCostModel())
        out = eq1_runtime(epochs, net, link_cost_ns=500.0, copy_ns_per_word=1.0)
        assert out.reconfig_ns == 0.0


class TestFolded:
    def test_phase_count(self):
        net = make_network(7)
        epochs = folded_epochs(net.pipeline_order(), 3)
        assert len(epochs) == 3  # ceil(7/3)

    def test_single_tile_fold(self):
        net = make_network(5)
        epochs = folded_epochs(net.pipeline_order(), 1)
        assert len(epochs) == 5
        assert all(len(e.configuration.binding) == 1 for e in epochs)

    def test_enough_tiles_is_single_phase(self):
        net = make_network(5)
        epochs = folded_epochs(net.pipeline_order(), 8)
        assert len(epochs) == 1

    def test_invalid_inputs(self):
        with pytest.raises(MappingError):
            folded_epochs([], 2)
        with pytest.raises(MappingError):
            folded_epochs(make_network(2).pipeline_order(), 0)


class TestTradeoff:
    def test_reconfig_share_decreases_with_tiles(self):
        net = make_network(8, cycles=400, insts=120)
        points = folding_tradeoff(net, [1, 2, 4, 8], link_cost_ns=300.0)
        shares = [p.reconfig_share for p in points]
        assert shares[0] > shares[-1]
        assert points[-1].breakdown.reconfig_ns == 0.0  # single phase

    def test_term_a_constant_across_folds_when_balanced(self):
        """Equal-runtime processes: compute time = phases x runtime."""
        net = make_network(8, cycles=1000)
        points = folding_tradeoff(net, [2, 4], link_cost_ns=0.0)
        assert points[0].breakdown.compute_ns == pytest.approx(4 * 2500.0)
        assert points[1].breakdown.compute_ns == pytest.approx(2 * 2500.0)

    def test_runtime_monotone_nonincreasing_in_tiles(self):
        net = make_network(9, cycles=700, insts=90)
        points = folding_tradeoff(net, [1, 3, 9], link_cost_ns=200.0)
        runtimes = [p.runtime_ns for p in points]
        assert runtimes[0] >= runtimes[1] >= runtimes[2]

    def test_reuse_overhead_bounded_for_heavy_processes(self):
        """The paper's motivation, quantified: when processes run long
        enough, folding 8 processes onto 2 tiles costs barely more than
        the unavoidable 4x serialization — the reconfiguration term is
        a small fraction, so area shrinks 4x for ~4x runtime."""
        net = make_network(8, cycles=40_000, insts=100)
        points = {p.n_tiles: p for p in
                  folding_tradeoff(net, [2, 8], link_cost_ns=300.0)}
        serialization = 8 / 2
        slowdown = points[2].runtime_ns / points[8].runtime_ns
        assert slowdown < serialization * 1.10
        assert points[2].reconfig_share < 0.10
