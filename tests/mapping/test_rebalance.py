"""Rebalancing algorithms: splits, surrounding sets, invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MappingError
from repro.mapping.cost import TileCostModel
from repro.mapping.placement import PipelineMapping, Stage
from repro.mapping.rebalance import (
    rebalance,
    rebalance_one,
    rebalance_opt,
    rebalance_two,
    redistribute_average,
    redistribute_optimal,
    split_stage_balanced,
    surrounding_set,
)
from repro.pn.process import Process


def procs(*cycles):
    return [Process(f"p{i}", runtime_cycles=c, insts=10)
            for i, c in enumerate(cycles)]


@pytest.fixture
def model():
    return TileCostModel()


class TestSplit:
    def test_balanced_split(self, model):
        stage = Stage(tuple(procs(100, 100, 100, 100)))
        left, right = split_stage_balanced(stage, model)
        assert len(left.processes) == 2 and len(right.processes) == 2

    def test_split_heavy_head(self, model):
        stage = Stage(tuple(procs(1000, 10, 10, 10)))
        left, right = split_stage_balanced(stage, model)
        assert len(left.processes) == 1

    def test_split_preserves_order(self, model):
        stage = Stage(tuple(procs(5, 50, 500, 5)))
        left, right = split_stage_balanced(stage, model)
        names = [p.name for p in left.processes + right.processes]
        assert names == [p.name for p in stage.processes]

    def test_single_process_unsplittable(self, model):
        with pytest.raises(MappingError):
            split_stage_balanced(Stage(tuple(procs(1))), model)


class TestSurroundingSet:
    def test_whole_pipeline_when_no_copies(self):
        mapping = PipelineMapping([Stage((p,)) for p in procs(1, 2, 3)])
        assert surrounding_set(mapping, 1) == (0, 2)

    def test_bounded_by_replicated_stage(self):
        p = procs(1, 2, 3, 4)
        mapping = PipelineMapping(
            [Stage((p[0],), copies=2), Stage((p[1],)), Stage((p[2],)),
             Stage((p[3],), copies=3)]
        )
        assert surrounding_set(mapping, 1) == (1, 2)
        assert surrounding_set(mapping, 2) == (1, 2)

    def test_replicated_heavy_is_alone(self):
        p = procs(1, 2)
        mapping = PipelineMapping([Stage((p[0],), copies=2),
                                   Stage((p[1],), copies=2)])
        assert surrounding_set(mapping, 0) == (0, 0)

    def test_out_of_range(self):
        mapping = PipelineMapping([Stage((procs(1)[0],))])
        with pytest.raises(MappingError):
            surrounding_set(mapping, 3)


class TestRedistribute:
    def test_average_produces_requested_tiles(self, model):
        stages = redistribute_average(procs(10, 20, 30, 40, 50), 3, model)
        assert len(stages) == 3
        assert sum(len(s.processes) for s in stages) == 5

    def test_average_more_tiles_than_processes(self, model):
        stages = redistribute_average(procs(10, 20), 5, model)
        assert len(stages) == 2  # one process per tile is the max split

    def test_optimal_minimizes_max(self, model):
        ps = procs(90, 10, 10, 90)
        stages = redistribute_optimal(ps, 2, model)
        worst = max(model.block_time_ns(list(s.processes)) for s in stages)
        # the optimal contiguous 2-split of (90,10,10,90) is (90,10 | 10,90)
        assert worst == pytest.approx(model.block_time_ns(ps[:2]))

    def test_optimal_never_worse_than_average(self, model):
        ps = procs(7, 80, 12, 44, 3, 61)
        for k in (2, 3, 4):
            opt = redistribute_optimal(ps, k, model)
            avg = redistribute_average(ps, k, model)
            worst_opt = max(model.block_time_ns(list(s.processes)) for s in opt)
            worst_avg = max(model.block_time_ns(list(s.processes)) for s in avg)
            assert worst_opt <= worst_avg + 1e-9

    def test_invalid_tile_count(self, model):
        with pytest.raises(MappingError):
            redistribute_optimal(procs(1), 0, model)


class TestDrivers:
    def test_trace_covers_all_budgets(self, model):
        trace = rebalance(procs(10, 20, 30), 5, model)
        assert [m.n_tiles for m in trace.mappings] == [1, 2, 3, 4, 5]
        assert trace.at_tiles(3).n_tiles == 3
        with pytest.raises(MappingError):
            trace.at_tiles(99)

    def test_single_heavy_process_duplicates(self, model):
        mapping = rebalance_one(procs(1000), 4, model)
        assert mapping.n_stages == 1
        assert mapping.stages[0].copies == 4

    def test_throughput_monotone_nondecreasing(self, model):
        ps = procs(100, 700, 150, 300, 50)
        trace = rebalance(ps, 10, model, algorithm="one")
        intervals = [m.interval_ns(model) for m in trace.mappings]
        for earlier, later in zip(intervals, intervals[1:]):
            assert later <= earlier + 1e-9

    def test_all_algorithms_preserve_process_order(self, model):
        ps = procs(13, 88, 4, 9, 230, 17)
        names = [p.name for p in ps]
        for algo in ("one", "two", "opt"):
            mapping = rebalance(ps, 6, model, algorithm=algo).mappings[-1]
            assert mapping.process_names() == names

    def test_refined_never_worse_than_greedy(self, model):
        ps = procs(33, 45, 220, 18, 77, 64, 12)
        for budget in range(1, 12):
            one = rebalance_one(ps, budget, model).interval_ns(model)
            two = rebalance_two(ps, budget, model).interval_ns(model)
            opt = rebalance_opt(ps, budget, model).interval_ns(model)
            assert two <= one + 1e-9
            assert opt <= one + 1e-9

    def test_unknown_algorithm(self, model):
        with pytest.raises(MappingError, match="unknown algorithm"):
            rebalance(procs(1), 1, model, algorithm="zzz")

    def test_empty_processes(self, model):
        with pytest.raises(MappingError):
            rebalance([], 1, model)

    def test_zero_tiles(self, model):
        with pytest.raises(MappingError):
            rebalance(procs(1), 0, model)


@st.composite
def random_pipelines(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    cycles = draw(st.lists(st.integers(min_value=1, max_value=10_000),
                           min_size=n, max_size=n))
    budget = draw(st.integers(min_value=1, max_value=12))
    return cycles, budget


class TestProperties:
    @given(random_pipelines())
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold_for_all_algorithms(self, case):
        cycles, budget = case
        ps = procs(*cycles)
        model = TileCostModel()
        for algo in ("one", "two", "opt"):
            mapping = rebalance(ps, budget, model, algorithm=algo).mappings[-1]
            # exact tile budget, order preserved, positive interval
            assert mapping.n_tiles == budget
            assert mapping.process_names() == [p.name for p in ps]
            assert mapping.interval_ns(model) > 0
            # interval can never beat the theoretical lower bound
            total = model.block_time_ns(ps)
            heaviest = max(model.block_time_ns([p]) for p in ps)
            lower = max(total / budget * 0, heaviest / budget)
            assert mapping.interval_ns(model) >= lower - 1e-9

    @given(random_pipelines())
    @settings(max_examples=40, deadline=None)
    def test_trace_intervals_monotone(self, case):
        cycles, budget = case
        ps = procs(*cycles)
        model = TileCostModel()
        trace = rebalance(ps, budget, model, algorithm="one")
        intervals = [m.interval_ns(model) for m in trace.mappings]
        assert all(b <= a + 1e-9 for a, b in zip(intervals, intervals[1:]))
