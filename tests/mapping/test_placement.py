"""Stages and pipeline mappings."""

import pytest

from repro.errors import MappingError
from repro.mapping.cost import TileCostModel
from repro.mapping.placement import PipelineMapping, Stage
from repro.pn.process import Process


def procs(*specs):
    return [Process(n, runtime_cycles=c, insts=10) for n, c in specs]


@pytest.fixture
def model():
    return TileCostModel()


class TestStage:
    def test_empty_stage_rejected(self):
        with pytest.raises(MappingError):
            Stage(())

    def test_replicated_multi_process_rejected(self):
        a, b = procs(("a", 10), ("b", 10))
        with pytest.raises(MappingError, match="single-process"):
            Stage((a, b), copies=2)

    def test_copies_must_be_positive(self):
        (a,) = procs(("a", 10))
        with pytest.raises(MappingError):
            Stage((a,), copies=0)

    def test_effective_time_divides_by_copies(self, model):
        (a,) = procs(("a", 1000))
        stage = Stage((a,), copies=4)
        assert stage.effective_time_ns(model) == pytest.approx(
            stage.tile_time_ns(model) / 4
        )

    def test_label(self):
        a, b = procs(("a", 1), ("b", 1))
        assert Stage((a, b)).label() == "[a,b]"
        assert Stage((a,), copies=3).label() == "[a]x3"


class TestMapping:
    def test_single_tile_start(self, model):
        ps = procs(("a", 10), ("b", 20))
        mapping = PipelineMapping.single_tile(ps)
        assert mapping.n_tiles == 1
        assert mapping.process_names() == ["a", "b"]

    def test_n_tiles_counts_copies(self):
        a, b = procs(("a", 10), ("b", 10))
        mapping = PipelineMapping([Stage((a,), copies=3), Stage((b,))])
        assert mapping.n_tiles == 4
        assert mapping.n_stages == 2

    def test_heaviest_stage(self, model):
        a, b, c = procs(("a", 10), ("b", 500), ("c", 20))
        mapping = PipelineMapping([Stage((a,)), Stage((b,)), Stage((c,))])
        assert mapping.heaviest_stage(model) == 1

    def test_heaviest_uses_effective_time(self, model):
        a, b = procs(("a", 400), ("b", 500))
        mapping = PipelineMapping([Stage((a,)), Stage((b,), copies=2)])
        # b's effective 250 < a's 400
        assert mapping.heaviest_stage(model) == 0

    def test_heaviest_tie_breaks_earliest(self, model):
        a, b = procs(("a", 100), ("b", 100))
        mapping = PipelineMapping([Stage((a,)), Stage((b,))])
        assert mapping.heaviest_stage(model) == 0

    def test_interval_is_max_effective(self, model):
        a, b = procs(("a", 100), ("b", 300))
        mapping = PipelineMapping([Stage((a,)), Stage((b,))])
        assert mapping.interval_ns(model) == pytest.approx(750.0)

    def test_tile_times_expand_copies(self, model):
        (a,) = procs(("a", 100))
        mapping = PipelineMapping([Stage((a,), copies=3)])
        assert len(mapping.tile_times_ns(model)) == 3

    def test_replace_stage(self, model):
        a, b = procs(("a", 10), ("b", 10))
        mapping = PipelineMapping([Stage((a, b))])
        split = mapping.replace_stage(0, Stage((a,)), Stage((b,)))
        assert split.n_stages == 2
        assert mapping.n_stages == 1  # original untouched

    def test_replace_out_of_range(self):
        (a,) = procs(("a", 10))
        with pytest.raises(MappingError):
            PipelineMapping([Stage((a,))]).replace_stage(5, Stage((a,)))

    def test_validate_covers(self):
        a, b = procs(("a", 10), ("b", 10))
        mapping = PipelineMapping([Stage((a,)), Stage((b,))])
        mapping.validate_covers(["a", "b"])
        with pytest.raises(MappingError):
            mapping.validate_covers(["b", "a"])

    def test_equality_by_structure(self):
        a, b = procs(("a", 10), ("b", 10))
        m1 = PipelineMapping([Stage((a,)), Stage((b,))])
        m2 = PipelineMapping([Stage((a,)), Stage((b,))])
        m3 = PipelineMapping([Stage((a, b))])
        assert m1 == m2
        assert m1 != m3

    def test_empty_mapping_interval_rejected(self, model):
        with pytest.raises(MappingError):
            PipelineMapping([]).interval_ns(model)

    def test_describe(self, model):
        a, = procs(("a", 100))
        text = PipelineMapping([Stage((a,), copies=2)]).describe(model)
        assert "[a]x2" in text
