"""Synthetic image generators."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.io.images import band_limited_noise, checkerboard, gradient, natural_like
from repro.io.images import test_image as make_image


@pytest.mark.parametrize("maker", [gradient, checkerboard,
                                   band_limited_noise, natural_like])
class TestCommon:
    def test_shape_and_dtype(self, maker):
        img = maker(24, 40)
        assert img.shape == (24, 40)
        assert img.dtype == np.uint8

    def test_invalid_dimensions(self, maker):
        with pytest.raises(KernelError):
            maker(0, 10)


class TestSpecifics:
    def test_gradient_monotone_rows(self):
        img = gradient(32, 32)
        assert img[0, 0] <= img[-1, -1]
        assert img[-1, -1] == 255

    def test_checkerboard_two_values(self):
        img = checkerboard(16, 16, cell=2)
        assert set(np.unique(img)) == {0, 255}
        assert img[0, 0] != img[0, 2]

    def test_checkerboard_invalid_cell(self):
        with pytest.raises(KernelError):
            checkerboard(8, 8, cell=0)

    def test_noise_deterministic_by_seed(self):
        a = band_limited_noise(16, 16, seed=1)
        b = band_limited_noise(16, 16, seed=1)
        c = band_limited_noise(16, 16, seed=2)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_noise_cutoff_validated(self):
        with pytest.raises(KernelError):
            band_limited_noise(16, 16, cutoff=0)

    def test_natural_spectrum_decays(self):
        img = natural_like(64, 64, seed=0).astype(float)
        spectrum = np.abs(np.fft.rfft2(img - img.mean()))
        low = spectrum[1:4, 1:4].mean()
        high = spectrum[20:30, 20:30].mean()
        assert low > high  # 1/f character

    def test_dispatch(self):
        assert make_image("gradient", 8, 8).shape == (8, 8)
        with pytest.raises(KernelError):
            make_image("nope")
