"""Host software baselines."""

import numpy as np
import pytest

from repro.baselines import (
    fft_pure_python,
    host_fft_throughput,
    host_jpeg_blocks_per_s,
)
from repro.errors import KernelError


class TestPurePython:
    def test_matches_numpy(self, rng):
        x = list(rng.standard_normal(64) + 1j * rng.standard_normal(64))
        got = np.array(fft_pure_python(x))
        np.testing.assert_allclose(got, np.fft.fft(np.array(x)), atol=1e-9)

    def test_trivial_sizes(self):
        assert fft_pure_python([1 + 0j]) == [1 + 0j]
        out = fft_pure_python([1 + 0j, 1 + 0j])
        np.testing.assert_allclose(out, [2, 0], atol=1e-12)

    def test_non_power_rejected(self):
        with pytest.raises(KernelError):
            fft_pure_python([0j] * 6)


class TestThroughput:
    def test_fft_baselines_report(self):
        results = host_fft_throughput(n=256, min_seconds=0.02)
        assert len(results) == 3
        names = [r.name for r in results]
        assert any("pure-python" in n for n in names)
        for r in results:
            assert r.items_per_s > 0 and r.iterations >= 3

    def test_numpy_beats_pure_python(self):
        results = {r.name: r.items_per_s
                   for r in host_fft_throughput(n=1024, min_seconds=0.02)}
        assert results["numpy.fft"] > results["pure-python radix-2"]

    def test_invalid_duration(self):
        with pytest.raises(KernelError):
            host_fft_throughput(min_seconds=0)

    def test_jpeg_blocks_per_s(self):
        result = host_jpeg_blocks_per_s(min_seconds=0.02)
        assert result.items_per_s > 0
