"""Eq. 1 runtime decomposition."""

import pytest

from repro.errors import ProcessNetworkError
from repro.fabric.links import Direction
from repro.pn.epoch import Configuration, Epoch
from repro.pn.network import ProcessNetwork
from repro.pn.process import Process
from repro.pn.runtime_model import eq1_runtime
from repro.units import IMEM_WORD_RELOAD_NS


@pytest.fixture
def network():
    net = ProcessNetwork(
        [
            Process("p1", 1000, insts=40, output_words=16),
            Process("p2", 2000, insts=40, output_words=16),
        ]
    )
    net.connect("p1", "p2", 16)
    return net


def test_empty_epochs_rejected(network):
    with pytest.raises(ProcessNetworkError):
        eq1_runtime([], network, 0.0, copy_ns_per_word=1.0)


def test_single_epoch_is_pure_compute(network):
    c = Configuration("C1", binding={"p1": (0, 0), "p2": (0, 1)})
    out = eq1_runtime([Epoch(c, 5000.0)], network, 100.0, copy_ns_per_word=1.0)
    assert out.compute_ns == 5000.0
    assert out.reconfig_ns == 0.0  # first configuration is preloaded
    assert out.copy_ns == 0.0      # neighbours: no explicit copies
    assert out.total_ns == 5000.0


def test_term_a_sums_epochs(network):
    c = Configuration("C1", binding={"p1": (0, 0)})
    epochs = [Epoch(c, 1000.0), Epoch(c, 2000.0)]
    out = eq1_runtime(epochs, network, 0.0, copy_ns_per_word=0.0)
    assert out.compute_ns == 3000.0


def test_term_b_charges_link_changes(network):
    c1 = Configuration("C1", binding={"p1": (0, 0)},
                       links={(0, 0): Direction.EAST})
    c2 = Configuration("C2", binding={"p1": (0, 0)},
                       links={(0, 0): Direction.SOUTH})
    out = eq1_runtime(
        [Epoch(c1, 0.0), Epoch(c2, 0.0)], network, 700.0, copy_ns_per_word=0.0
    )
    assert out.reconfig_ns == pytest.approx(700.0)


def test_term_b_charges_new_placement_once(network):
    c1 = Configuration("C1", binding={"p1": (0, 0)})
    c2 = Configuration("C2", binding={"p1": (0, 0), "p2": (0, 1)})
    epochs = [Epoch(c1, 0.0), Epoch(c2, 0.0), Epoch(c1, 0.0), Epoch(c2, 0.0)]
    out = eq1_runtime(epochs, network, 0.0, copy_ns_per_word=0.0)
    # p2 swaps in once; on the revisit it is still resident
    assert out.reconfig_ns == pytest.approx(40 * IMEM_WORD_RELOAD_NS)


def test_term_c_charges_moves_by_distance(network):
    c1 = Configuration("C1", binding={"p1": (0, 0)})
    c2 = Configuration("C2", binding={"p1": (0, 3)})
    out = eq1_runtime(
        [Epoch(c1, 0.0), Epoch(c2, 0.0)], network, 0.0, copy_ns_per_word=2.0
    )
    # 16 output words x 3 hops x 2 ns
    assert out.copy_ns == pytest.approx(96.0)


def test_term_c_charges_non_neighbour_channels(network):
    c = Configuration("C1", binding={"p1": (0, 0), "p2": (0, 2)})
    out = eq1_runtime([Epoch(c, 0.0)], network, 0.0, copy_ns_per_word=1.0)
    # channel spans 2 hops -> 1 extra hop of 16 words
    assert out.copy_ns == pytest.approx(16.0)


def test_pinned_processes_never_charged(network):
    c1 = Configuration("C1", binding={"p1": (0, 0)})
    c2 = Configuration("C2", binding={"p1": (0, 0), "p2": (0, 1)})
    out = eq1_runtime(
        [Epoch(c1, 0.0), Epoch(c2, 0.0)],
        network, 0.0, copy_ns_per_word=0.0,
        pinned={("p2", (0, 1))},
    )
    assert out.reconfig_ns == 0.0


def test_breakdown_str():
    net = ProcessNetwork([Process("p", 1)])
    c = Configuration("C", binding={"p": (0, 0)})
    out = eq1_runtime([Epoch(c, 10.0)], net, 0.0, copy_ns_per_word=0.0)
    assert "total" in str(out)
