"""Published profiles: Table 1 and Table 3 data integrity."""

import pytest

from repro.pn.process import CopyVariant
from repro.pn.profiles import (
    FFT1024_PROFILE,
    JPEG_COPY_PROCESSES,
    JPEG_PROFILE,
    fft1024_processes,
    jpeg_copy_process,
    jpeg_process_network,
    jpeg_processes,
)


class TestTable1:
    def test_all_rows_present(self):
        names = {f"BF{i}" for i in range(10)} | {"vcp", "hcp"}
        assert set(FFT1024_PROFILE) == names

    def test_published_runtimes(self):
        assert FFT1024_PROFILE["BF0"][0] == 2672.0
        assert FFT1024_PROFILE["BF9"][0] == 4364.0
        assert FFT1024_PROFILE["vcp"][0] == 789.0
        assert FFT1024_PROFILE["hcp"][0] == 1557.0

    def test_twiddle_counts_follow_min_rule(self):
        # Table 1's counts equal min(M, N / 2^(s+1)) for M=128, N=1024
        for i in range(10):
            assert FFT1024_PROFILE[f"BF{i}"][1] == min(128, 1024 >> (i + 1))

    def test_process_objects(self):
        ps = fft1024_processes()
        assert ps["BF0"].insts == 101
        assert ps["BF0"].data2 == 128 * 2 + 41
        assert ps["vcp"].insts == 16
        assert ps["vcp"].runtime_ns == pytest.approx(789.0)

    def test_profile_is_readonly(self):
        with pytest.raises(TypeError):
            FFT1024_PROFILE["BF0"] = (0, 0)  # type: ignore[index]


class TestTable3:
    def test_row_count(self):
        assert len(JPEG_PROFILE) == 11  # p0..p10

    def test_published_key_rows(self):
        assert JPEG_PROFILE["DCT"] == (62, 64, 14, 13, 133324)
        assert JPEG_PROFILE["Zigzag"] == (65, 0, 0, 0, 65)
        assert JPEG_PROFILE["dct"] == (62, 64, 14, 13, 33372)

    def test_total_pipeline_runtime(self):
        total = sum(
            JPEG_PROFILE[n][4]
            for n in JPEG_PROFILE
            if n != "dct"
        )
        assert total == 156700  # 391.75 us at 400 MHz

    def test_quarter_dct_is_quarter(self):
        # 4 x 33372 = 133488 ~ 133324: splitting gains ~4x
        assert 4 * JPEG_PROFILE["dct"][4] == pytest.approx(
            JPEG_PROFILE["DCT"][4], rel=0.01
        )

    def test_huffman_does_not_fit_one_tile(self):
        insts = sum(JPEG_PROFILE[f"Hman{i}"][0] for i in range(1, 6))
        assert insts > 512  # why the paper splits it into five processes

    def test_process_objects_divisible(self):
        ps = jpeg_processes()
        assert ps["DCT"].divisible_into == ("dct", 4)
        assert ps["dct"].part_of == "DCT"


class TestCopyProcesses:
    def test_both_variants_published(self):
        assert set(JPEG_COPY_PROCESSES) == {CopyVariant.MEMORY, CopyVariant.TIME}

    def test_memory_variant_values(self):
        p = jpeg_copy_process(64, CopyVariant.MEMORY)
        assert p.insts == 11 and p.runtime_cycles == 720

    def test_time_variant_values(self):
        p = jpeg_copy_process(16, CopyVariant.TIME)
        assert p.insts == 17 and p.runtime_cycles == 17

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError):
            jpeg_copy_process(48)


class TestNetworks:
    def test_linear_pipeline(self):
        net = jpeg_process_network()
        assert net.validate_linear()
        assert len(net) == 10
        assert net.topological_order()[0] == "shift"
        assert net.topological_order()[-1] == "Hman5"

    def test_split_dct_variant(self):
        net = jpeg_process_network(split_dct=True)
        assert len(net) == 13  # 9 chain stages + 4 quarters
        assert not net.validate_linear()
        assert set(net.successors("shift")) == {f"dct_{k}" for k in range(4)}
        for k in range(4):
            assert net.successors(f"dct_{k}") == ["Alpha"]

    def test_split_dct_total_work_preserved(self):
        full = jpeg_process_network().total_runtime_cycles()
        split = jpeg_process_network(split_dct=True).total_runtime_cycles()
        assert split == pytest.approx(full - 133324 + 4 * 33372)
