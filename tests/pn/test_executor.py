"""Token-level network execution: firing rules, joins, JPEG semantics."""

import numpy as np
import pytest

from repro.errors import ProcessNetworkError
from repro.pn.executor import Behavior, NetworkExecutor
from repro.pn.network import Channel, ProcessNetwork
from repro.pn.process import Process


def chain_network(*names, words=1):
    net = ProcessNetwork(Process(n, runtime_cycles=100) for n in names)
    for a, b in zip(names, names[1:]):
        net.add_channel(Channel(a, b, words))
    return net


def passthrough(dst):
    """A behaviour forwarding its tokens to ``dst`` unchanged."""
    def fn(inputs):
        tokens = [t for src in sorted(inputs) for t in inputs[src]]
        return {dst: tokens}
    return Behavior(fn)


class TestBasics:
    def test_identity_pipeline(self):
        net = chain_network("a", "b", "c")
        exe = NetworkExecutor(net, {
            "a": passthrough("b"),
            "b": passthrough("c"),
            "c": passthrough("__sink__"),
        })
        exe.feed("a", [1, 2, 3])
        fired = exe.run()
        assert exe.collect("c") == [1, 2, 3]
        assert fired == 9  # three tokens through three processes
        assert exe.pending_tokens() == 0

    def test_transforming_pipeline(self):
        net = chain_network("double", "inc")
        exe = NetworkExecutor(net, {
            "double": Behavior(lambda i: {"inc": [2 * t for t in i["__external__"]]}),
            "inc": Behavior(lambda i: {"__sink__": [t + 1 for t in i["double"]]}),
        })
        exe.feed("double", [1, 5])
        exe.run()
        assert exe.collect("inc") == [3, 11]

    def test_firing_counts_and_estimate(self):
        net = chain_network("a", "b")
        exe = NetworkExecutor(net, {
            "a": passthrough("b"),
            "b": passthrough("__sink__"),
        })
        exe.feed("a", [0] * 4)
        exe.run()
        assert exe.firing_counts() == {"a": 4, "b": 4}
        assert exe.estimated_compute_ns() == pytest.approx(8 * 250.0)

    def test_block_granularity_consumption(self):
        """A words=4 channel fires the consumer once per 4 tokens."""
        net = chain_network("src", "blocky", words=4)
        exe = NetworkExecutor(net, {
            "src": Behavior(lambda i: {"blocky": i["__external__"] * 4},
                            produce={"blocky": 4}),
            "blocky": Behavior(lambda i: {"__sink__": [sum(i["src"])]},
                               produce={"__sink__": None}),
        })
        exe.feed("src", [1, 2, 3])
        exe.run()
        assert exe.collect("blocky") == [4, 8, 12]

    def test_insufficient_tokens_defer_firing(self):
        net = chain_network("a", "b", words=3)
        exe = NetworkExecutor(net, {
            "a": Behavior(lambda i: {"b": i["__external__"] * 3},
                          produce={"b": 3}),
            "b": passthrough("__sink__"),
        })
        exe.feed("a", [7])
        exe.run()
        assert exe.collect("b") == [7, 7, 7]
        exe2 = NetworkExecutor(net, {
            "a": Behavior(lambda i: {"b": i["__external__"]},
                          produce={"b": None}),
            "b": passthrough("__sink__"),
        })
        exe2.feed("a", [7])
        exe2.run()
        # only one token on a words=3 channel: b never fires
        assert exe2.collect("b") == []
        assert exe2.pending_tokens() == 1


class TestBoundedRun:
    def _pipeline(self):
        net = chain_network("a", "b", "c")
        exe = NetworkExecutor(net, {
            "a": passthrough("b"),
            "b": passthrough("c"),
            "c": passthrough("__sink__"),
        })
        return exe

    def test_resumable_slices_match_single_run(self):
        exe = self._pipeline()
        exe.feed("a", [1, 2, 3])
        fired = 0
        while True:
            n, quiescent = exe.run_bounded(2)
            fired += n
            if quiescent:
                break
        assert fired == 9
        assert exe.collect("c") == [1, 2, 3]
        assert exe.pending_tokens() == 0

    def test_reports_quiescence_exactly_at_budget(self):
        exe = self._pipeline()
        exe.feed("a", [7])
        n, quiescent = exe.run_bounded(3)
        assert (n, quiescent) == (3, True)
        assert exe.collect("c") == [7]

    def test_partial_slice_not_quiescent(self):
        exe = self._pipeline()
        exe.feed("a", [1, 2])
        n, quiescent = exe.run_bounded(1)
        assert (n, quiescent) == (1, False)
        assert exe.pending_tokens() > 0

    def test_zero_budget_probe(self):
        exe = self._pipeline()
        assert exe.run_bounded(0) == (0, True)
        exe.feed("a", [1])
        assert exe.run_bounded(0) == (0, False)

    def test_negative_budget_rejected(self):
        exe = self._pipeline()
        with pytest.raises(ProcessNetworkError, match="non-negative"):
            exe.run_bounded(-1)

    def test_interleaved_networks(self):
        """Two networks pumped cooperatively both complete."""
        first, second = self._pipeline(), self._pipeline()
        first.feed("a", [1, 2])
        second.feed("a", [10])
        done = {id(first): False, id(second): False}
        for _ in range(20):
            for exe in (first, second):
                if not done[id(exe)]:
                    _, done[id(exe)] = exe.run_bounded(1)
        assert first.collect("c") == [1, 2]
        assert second.collect("c") == [10]


class TestValidation:
    def test_missing_behavior_rejected(self):
        net = chain_network("a", "b")
        with pytest.raises(ProcessNetworkError, match="missing"):
            NetworkExecutor(net, {"a": passthrough("b")})

    def test_unknown_behavior_rejected(self):
        net = chain_network("a")
        with pytest.raises(ProcessNetworkError, match="unknown"):
            NetworkExecutor(net, {"a": passthrough("__sink__"),
                                  "zz": passthrough("x")})

    def test_produce_to_non_successor_rejected(self):
        net = chain_network("a", "b")
        exe = NetworkExecutor(net, {
            "a": Behavior(lambda i: {"zzz": [1]}),
            "b": passthrough("__sink__"),
        })
        exe.feed("a", [1])
        with pytest.raises(ProcessNetworkError, match="non-successors"):
            exe.run()

    def test_wrong_production_count_rejected(self):
        net = chain_network("a", "b", words=2)
        exe = NetworkExecutor(net, {
            "a": Behavior(lambda i: {"b": [1]}),  # declares 2 via channel
            "b": passthrough("__sink__"),
        })
        exe.feed("a", [1])
        with pytest.raises(ProcessNetworkError, match="produced 1 tokens"):
            exe.run()

    def test_livelock_budget(self):
        net = chain_network("a", "b")
        # 'b' regenerates a token for itself through... a source that
        # always produces two tokens per consumed one, flooding forever
        exe = NetworkExecutor(net, {
            "a": Behavior(lambda i: {"b": i["__external__"] * 2},
                          produce={"b": None}),
            "b": passthrough("__sink__"),
        })
        exe.feed("a", [0] * 200)
        exe.run(max_firings=10_000)  # quiesces fine
        exe.feed("a", [0] * 200)
        with pytest.raises(ProcessNetworkError, match="exceeded"):
            exe.run(max_firings=100)

    def test_feed_non_source_rejected(self):
        net = chain_network("a", "b")
        exe = NetworkExecutor(net, {
            "a": passthrough("b"), "b": passthrough("__sink__"),
        })
        with pytest.raises(ProcessNetworkError):
            exe.feed("b", [1])
        with pytest.raises(ProcessNetworkError):
            exe.collect("a")


class TestFanOutFanIn:
    def test_split_join(self):
        """A diamond: source fans out to two workers, a join sums."""
        net = ProcessNetwork(Process(n, 10) for n in ("s", "w1", "w2", "j"))
        net.connect("s", "w1", 1)
        net.connect("s", "w2", 1)
        net.connect("w1", "j", 1)
        net.connect("w2", "j", 1)
        exe = NetworkExecutor(net, {
            "s": Behavior(lambda i: {"w1": i["__external__"],
                                     "w2": i["__external__"]}),
            "w1": Behavior(lambda i: {"j": [t * 10 for t in i["s"]]}),
            "w2": Behavior(lambda i: {"j": [t + 1 for t in i["s"]]}),
            "j": Behavior(lambda i: {"__sink__": [i["w1"][0] + i["w2"][0]]}),
        })
        exe.feed("s", [3, 4])
        exe.run()
        assert exe.collect("j") == [3 * 10 + 4, 4 * 10 + 5]


class TestJPEGNetwork:
    def test_pipeline_matches_reference_encoder(self, rng):
        """The Fig. 3 network executed token-by-token produces the same
        quantized zig-zag coefficients as the monolithic encoder."""
        from repro.kernels.jpeg.dct import dct2d
        from repro.kernels.jpeg.encoder import JPEGEncoder
        from repro.kernels.jpeg.quant import quantize, scale_qtable, LUMINANCE_QTABLE
        from repro.kernels.jpeg.zigzag import zigzag
        from repro.pn.profiles import jpeg_process_network

        qtable = scale_qtable(LUMINANCE_QTABLE, 75)
        net = jpeg_process_network()

        def block_stage(fn, dst):
            return Behavior(
                lambda i, fn=fn, : {dst: [fn(t) for src in i for t in i[src]]},
                consume={src: 1 for src in net.predecessors(dst) or []},
            )

        behaviors = {
            "shift": Behavior(lambda i: {
                "DCT": [b - 128.0 for b in i["__external__"]]
            }, produce={"DCT": None}),
            "DCT": Behavior(lambda i: {
                "Alpha": [dct2d(b) for b in i["shift"]]
            }, consume={"shift": 1}, produce={"Alpha": None}),
            "Alpha": Behavior(lambda i: {
                "Quantize": i["DCT"]
            }, consume={"DCT": 1}, produce={"Quantize": None}),
            "Quantize": Behavior(lambda i: {
                "Zigzag": [quantize(b, qtable) for b in i["Alpha"]]
            }, consume={"Alpha": 1}, produce={"Zigzag": None}),
            "Zigzag": Behavior(lambda i: {
                "Hman1": [zigzag(b) for b in i["Quantize"]]
            }, consume={"Quantize": 1}, produce={"Hman1": None}),
        }
        # the five Huffman stages forward the vector (their real work is
        # exercised in kernels/jpeg tests); the sink collects it
        chain = ["Hman1", "Hman2", "Hman3", "Hman4", "Hman5"]
        for name, nxt in zip(chain, chain[1:] + ["__sink__"]):
            prev = net.predecessors(name)[0]
            behaviors[name] = Behavior(
                lambda i, nxt=nxt, prev=prev: {nxt: i[prev]},
                consume={prev: 1}, produce={nxt: None},
            )

        exe = NetworkExecutor(net, behaviors)
        blocks = [rng.integers(0, 256, (8, 8)).astype(float) for _ in range(3)]
        exe.feed("shift", blocks)
        exe.run()
        got = exe.collect("Hman5")

        encoder = JPEGEncoder(quality=75)
        for zz, block in zip(got, blocks):
            want = encoder.encode_block_to_zigzag(block.astype(np.int64))
            assert np.array_equal(zz, want)

    def test_quarter_dct_fan_in(self, rng):
        """The split-DCT network (Fig. 15) reassembles the full DCT."""
        from repro.kernels.jpeg.dct import dct2d, dct_quarter
        from repro.pn.profiles import jpeg_process_network

        net = jpeg_process_network(split_dct=True)
        quadrant = {f"dct_{k}": divmod(k, 2) for k in range(4)}

        behaviors = {}
        behaviors["shift"] = Behavior(
            lambda i: {
                f"dct_{k}": [b - 128.0 for b in i["__external__"]]
                for k in range(4)
            },
            produce={f"dct_{k}": None for k in range(4)},
        )
        for k in range(4):
            qr, qc = quadrant[f"dct_{k}"]
            behaviors[f"dct_{k}"] = Behavior(
                lambda i, qr=qr, qc=qc, k=k: {
                    "Alpha": [dct_quarter(b, qr, qc) for b in i["shift"]]
                },
                consume={"shift": 1}, produce={"Alpha": None},
            )

        def join(inputs):
            out = np.empty((8, 8))
            for k in range(4):
                qr, qc = quadrant[f"dct_{k}"]
                out[4 * qr:4 * qr + 4, 4 * qc:4 * qc + 4] = \
                    inputs[f"dct_{k}"][0]
            return {"Quantize": [out]}

        behaviors["Alpha"] = Behavior(
            join, consume={f"dct_{k}": 1 for k in range(4)},
            produce={"Quantize": None},
        )
        rest = ["Quantize", "Zigzag", "Hman1", "Hman2", "Hman3", "Hman4",
                "Hman5"]
        for name, nxt in zip(rest, rest[1:] + ["__sink__"]):
            prev = net.predecessors(name)[0]
            behaviors[name] = Behavior(
                lambda i, nxt=nxt, prev=prev: {nxt: i[prev]},
                consume={prev: 1}, produce={nxt: None},
            )

        exe = NetworkExecutor(net, behaviors)
        block = rng.integers(0, 256, (8, 8)).astype(float)
        exe.feed("shift", [block])
        exe.run()
        (got,) = exe.collect("Hman5")
        np.testing.assert_allclose(got, dct2d(block - 128.0), atol=1e-10)
