"""Process annotations and derived costs."""

import pytest

from repro.pn.process import CopyVariant, Process
from repro.units import CYCLE_NS, DMEM_WORD_RELOAD_NS, IMEM_WORD_RELOAD_NS


class TestProcess:
    def test_runtime_conversion(self):
        p = Process("x", runtime_cycles=400)
        assert p.runtime_ns == pytest.approx(1000.0)
        assert CYCLE_NS == pytest.approx(2.5)

    def test_dmem_words(self):
        p = Process("x", runtime_cycles=1, data1=10, data2=5, data3=2)
        assert p.dmem_words == 17

    def test_swap_in_cost(self):
        p = Process("x", runtime_cycles=1, insts=100, data1=64)
        expected = 100 * IMEM_WORD_RELOAD_NS + 64 * DMEM_WORD_RELOAD_NS
        assert p.swap_in_ns == pytest.approx(expected)

    def test_per_firing_reload(self):
        p = Process("x", runtime_cycles=1, data3=9)
        assert p.per_firing_reload_ns == pytest.approx(9 * DMEM_WORD_RELOAD_NS)

    def test_negative_runtime_rejected(self):
        with pytest.raises(ValueError):
            Process("x", runtime_cycles=-1)

    def test_negative_annotation_rejected(self):
        with pytest.raises(ValueError):
            Process("x", runtime_cycles=1, insts=-1)

    def test_with_runtime_preserves_annotations(self):
        p = Process("x", runtime_cycles=1, insts=7, data1=3,
                    divisible_into=("y", 4))
        q = p.with_runtime(99)
        assert q.runtime_cycles == 99
        assert q.insts == 7 and q.divisible_into == ("y", 4)

    def test_str_mentions_name(self):
        assert "x" in str(Process("x", runtime_cycles=1))

    def test_frozen(self):
        p = Process("x", runtime_cycles=1)
        with pytest.raises(Exception):
            p.insts = 5  # type: ignore[misc]


class TestCopyVariant:
    def test_variants_distinct(self):
        assert CopyVariant.MEMORY.value != CopyVariant.TIME.value
