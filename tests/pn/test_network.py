"""Process-network graph structure and ordering."""

import pytest

from repro.errors import ProcessNetworkError
from repro.pn.network import Channel, ProcessNetwork
from repro.pn.process import Process


def chain(*names):
    net = ProcessNetwork(Process(n, runtime_cycles=10) for n in names)
    for a, b in zip(names, names[1:]):
        net.connect(a, b, 8)
    return net


class TestConstruction:
    def test_duplicate_process_rejected(self):
        net = ProcessNetwork([Process("a", 1)])
        with pytest.raises(ProcessNetworkError):
            net.add_process(Process("a", 2))

    def test_channel_to_unknown_rejected(self):
        net = ProcessNetwork([Process("a", 1)])
        with pytest.raises(ProcessNetworkError, match="unknown"):
            net.connect("a", "b")

    def test_self_loop_rejected(self):
        with pytest.raises(ProcessNetworkError, match="self-loop"):
            Channel("a", "a")

    def test_negative_words_rejected(self):
        with pytest.raises(ProcessNetworkError):
            Channel("a", "b", words=-1)


class TestQueries:
    def test_membership_and_len(self):
        net = chain("a", "b", "c")
        assert len(net) == 3
        assert "b" in net and "z" not in net

    def test_successors_predecessors(self):
        net = chain("a", "b", "c")
        assert net.successors("a") == ["b"]
        assert net.predecessors("c") == ["b"]

    def test_sources_sinks(self):
        net = chain("a", "b", "c")
        assert net.sources() == ["a"]
        assert net.sinks() == ["c"]

    def test_channel_words_sums_parallel_edges(self):
        net = chain("a", "b")
        net.connect("a", "b", 4)
        assert net.channel_words("a", "b") == 12

    def test_unknown_process_lookup(self):
        with pytest.raises(ProcessNetworkError):
            chain("a").process("zz")

    def test_total_runtime(self):
        assert chain("a", "b", "c").total_runtime_cycles() == 30


class TestOrdering:
    def test_topological_chain(self):
        assert chain("a", "b", "c").topological_order() == ["a", "b", "c"]

    def test_topological_diamond(self):
        net = ProcessNetwork(Process(n, 1) for n in "abcd")
        net.connect("a", "b")
        net.connect("a", "c")
        net.connect("b", "d")
        net.connect("c", "d")
        order = net.topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_cycle_detected(self):
        net = chain("a", "b")
        net.connect("b", "a")
        with pytest.raises(ProcessNetworkError, match="cycle"):
            net.topological_order()

    def test_pipeline_order_returns_processes(self):
        order = chain("a", "b").pipeline_order()
        assert [p.name for p in order] == ["a", "b"]

    def test_validate_linear(self):
        assert chain("a", "b", "c").validate_linear()
        net = chain("a", "b")
        net.add_process(Process("c", 1))
        net.connect("a", "c")
        assert not net.validate_linear()
