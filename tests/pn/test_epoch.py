"""Configurations, epochs and switch costs."""

import pytest

from repro.errors import ProcessNetworkError
from repro.fabric.links import Direction
from repro.pn.epoch import Configuration, Epoch, reconfig_cost_ns
from repro.pn.network import ProcessNetwork
from repro.pn.process import Process
from repro.units import DMEM_WORD_RELOAD_NS, IMEM_WORD_RELOAD_NS


@pytest.fixture
def network():
    return ProcessNetwork(
        [
            Process("a", 100, insts=20, data1=8),
            Process("b", 100, insts=30),
        ]
    )


class TestConfiguration:
    def test_tiles_and_processes_on(self):
        c = Configuration("C1", binding={"a": (0, 0), "b": (0, 0), "c": (0, 1)})
        assert c.tiles() == {(0, 0), (0, 1)}
        assert c.processes_on((0, 0)) == ["a", "b"]

    def test_changed_links(self):
        c1 = Configuration("C1", links={(0, 0): Direction.EAST})
        c2 = Configuration("C2", links={(0, 0): Direction.SOUTH,
                                        (0, 1): Direction.EAST})
        assert c1.changed_links(c2) == 2
        assert c1.changed_links(c1) == 0

    def test_moved_processes(self):
        c1 = Configuration("C1", binding={"a": (0, 0), "b": (0, 1)})
        c2 = Configuration("C2", binding={"a": (0, 0), "b": (1, 1)})
        assert c1.moved_processes(c2) == ["b"]


class TestEpoch:
    def test_negative_duration_rejected(self):
        with pytest.raises(ProcessNetworkError):
            Epoch(Configuration("C"), duration_ns=-1)


class TestReconfigCost:
    def test_link_cost_counted(self, network):
        c1 = Configuration("C1", links={(0, 0): Direction.EAST})
        c2 = Configuration("C2", links={(0, 0): Direction.SOUTH})
        cost = reconfig_cost_ns(c1, c2, network, link_cost_ns=700.0)
        assert cost == pytest.approx(700.0)

    def test_new_binding_pays_swap_in(self, network):
        c1 = Configuration("C1", binding={"a": (0, 0)})
        c2 = Configuration("C2", binding={"a": (0, 0), "b": (0, 0)})
        cost = reconfig_cost_ns(c1, c2, network, link_cost_ns=0.0)
        assert cost == pytest.approx(30 * IMEM_WORD_RELOAD_NS)

    def test_resident_binding_is_free(self, network):
        c1 = Configuration("C1", binding={"a": (0, 0)})
        c2 = Configuration("C2", binding={"a": (0, 0)})
        assert reconfig_cost_ns(c1, c2, network, 0.0) == 0.0

    def test_data1_charged_with_instructions(self, network):
        c1 = Configuration("C1")
        c2 = Configuration("C2", binding={"a": (0, 0)})
        cost = reconfig_cost_ns(c1, c2, network, 0.0)
        assert cost == pytest.approx(
            20 * IMEM_WORD_RELOAD_NS + 8 * DMEM_WORD_RELOAD_NS
        )

    def test_explicit_resident_set(self, network):
        c1 = Configuration("C1")
        c2 = Configuration("C2", binding={"a": (0, 0)})
        resident = {("a", (0, 0))}
        assert reconfig_cost_ns(c1, c2, network, 0.0, resident=resident) == 0.0

    def test_negative_link_cost_rejected(self, network):
        with pytest.raises(ProcessNetworkError):
            reconfig_cost_ns(Configuration("a"), Configuration("b"),
                             network, -1.0)
