"""Crash-point registry, fault controller, guarded writes."""

from __future__ import annotations

import io

import pytest

import repro.compile.cache  # noqa: F401  (registers cache.* crash points)
import repro.serve.durability.journal  # noqa: F401  (journal.* points)
import repro.serve.durability.resume  # noqa: F401  (checkpoint.write)
from repro.chaos.crashpoints import (
    FaultSpec,
    SimulatedCrash,
    armed,
    crashpoint,
    guarded_write,
    register_crashpoint,
    registered_crashpoints,
)
from repro.errors import ChaosError

#: Every instrumented site the durable modules register at import time.
EXPECTED_POINTS = {
    "journal.append",
    "journal.append.after",
    "journal.fsync",
    "journal.rotate",
    "journal.compact.write",
    "journal.compact.swap",
    "checkpoint.write",
    "cache.payload.write",
    "cache.index.write",
}


class TestRegistry:
    def test_all_instrumented_sites_are_registered(self):
        assert EXPECTED_POINTS <= set(registered_crashpoints())

    def test_registration_is_idempotent(self):
        before = registered_crashpoints()
        assert register_crashpoint("journal.append") == "journal.append"
        assert registered_crashpoints() == before


class TestController:
    def test_unarmed_crashpoints_are_free(self):
        crashpoint("journal.append")  # no controller: no-op

    def test_crash_fires_at_the_exact_hit(self):
        with armed(FaultSpec("p", action="crash", hit=3)) as controller:
            crashpoint("p")
            crashpoint("p")
            with pytest.raises(SimulatedCrash) as info:
                crashpoint("p")
            crashpoint("p")  # fired specs never re-fire
        assert info.value.point == "p" and info.value.hit == 3
        assert controller.visits["p"] == 4
        assert len(controller.fired) == 1

    def test_oserror_action_is_catchable(self):
        with armed(FaultSpec("p", action="oserror")):
            with pytest.raises(OSError, match="injected"):
                crashpoint("p")

    def test_simulated_crash_pierces_except_exception(self):
        with armed(FaultSpec("p", action="crash")):
            with pytest.raises(SimulatedCrash):
                try:
                    crashpoint("p")
                except Exception:  # the defensive block a kill ignores
                    pytest.fail("SimulatedCrash must not be an Exception")

    def test_nested_arming_rejected(self):
        with armed():
            with pytest.raises(ChaosError, match="already armed"):
                with armed():
                    pass

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"action": "explode"},
            {"hit": 0},
            {"torn_fraction": 1.5},
        ],
    )
    def test_fault_spec_validation(self, kwargs):
        with pytest.raises(ChaosError):
            FaultSpec("p", **kwargs)


class TestGuardedWrite:
    def test_plain_write_when_unarmed(self):
        sink = io.BytesIO()
        guarded_write(sink, b"abcdef", "w")
        assert sink.getvalue() == b"abcdef"

    def test_torn_write_keeps_the_fraction_then_dies(self):
        sink = io.BytesIO()
        with armed(FaultSpec("w", action="torn", torn_fraction=0.5)):
            with pytest.raises(SimulatedCrash):
                guarded_write(sink, b"abcdef", "w")
        assert sink.getvalue() == b"abc"

    def test_torn_fraction_zero_writes_nothing(self):
        sink = io.BytesIO()
        with armed(FaultSpec("w", action="torn", torn_fraction=0.0)):
            with pytest.raises(SimulatedCrash):
                guarded_write(sink, b"abcdef", "w")
        assert sink.getvalue() == b""

    def test_oserror_writes_nothing(self):
        sink = io.BytesIO()
        with armed(FaultSpec("w", action="oserror")):
            with pytest.raises(OSError):
                guarded_write(sink, b"abcdef", "w")
        assert sink.getvalue() == b""
