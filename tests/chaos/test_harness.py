"""The kill-and-restart chaos matrix.

The headline test sweeps **every registered crash point** with a
crash-at-first-hit plan and asserts every recovery invariant holds; the
rest of the module pins the specific behaviours the ISSUE names: torn
appends, injected disk errors at the acknowledgment edge, epoch resume
with bit-identical output, and compaction crash tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.compile.cache  # noqa: F401  (register cache.* points)
from repro.chaos.crashpoints import (
    FaultSpec,
    SimulatedCrash,
    armed,
    registered_crashpoints,
)
from repro.chaos.harness import ChaosScenario, run_scenario
from repro.serve.durability.journal import FsyncPolicy, JobJournal
from repro.serve.durability.recovery import replay


def _scenario(*faults, **kwargs):
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("n_jobs", 3)
    kwargs.setdefault("checkpoint_every_slices", 2)
    return ChaosScenario(faults=tuple(faults), **kwargs)


class TestMatrix:
    def test_clean_run_has_no_violations(self, tmp_path):
        report = run_scenario(_scenario(), tmp_path)
        assert report.ok, report.violations
        assert report.restarts == 0
        assert report.jobs_acked == report.jobs_completed == 3

    @pytest.mark.parametrize("point", registered_crashpoints())
    def test_crash_at_every_registered_point(self, point, tmp_path):
        """Crash at the first visit of ``point``: whatever the journal
        managed to keep, recovery must satisfy every invariant.  Points
        the scenario never visits degenerate to a clean run — equally a
        pass (the sweep stays exhaustive as new points are registered).
        """
        report = run_scenario(
            _scenario(FaultSpec(point, action="crash", hit=1)), tmp_path
        )
        assert report.ok, (point, report.violations)

    @pytest.mark.parametrize("hit", [1, 2, 3, 5, 8])
    def test_crash_after_nth_append(self, hit, tmp_path):
        report = run_scenario(
            _scenario(FaultSpec("journal.append.after", hit=hit)), tmp_path
        )
        assert report.ok, (hit, report.violations)
        assert report.restarts == 1

    @pytest.mark.parametrize("fraction", [0.0, 0.25, 0.5, 0.9])
    def test_torn_append_is_dropped_not_trusted(self, fraction, tmp_path):
        report = run_scenario(
            _scenario(
                FaultSpec(
                    "journal.append",
                    action="torn",
                    hit=2,
                    torn_fraction=fraction,
                )
            ),
            tmp_path,
        )
        assert report.ok, report.violations
        assert report.restarts == 1
        if fraction > 0.0:
            assert report.corrupt_lines_dropped >= 1

    @pytest.mark.parametrize("seed", [0, 1, 7, 13])
    def test_seed_sweep_with_a_mid_trace_crash(self, seed, tmp_path):
        report = run_scenario(
            _scenario(
                FaultSpec("journal.append.after", hit=4), seed=seed, n_jobs=4
            ),
            tmp_path,
        )
        assert report.ok, (seed, report.violations)


class TestAcknowledgmentEdge:
    def test_disk_error_at_submit_is_not_an_ack(self, tmp_path):
        report = run_scenario(
            _scenario(FaultSpec("journal.append", action="oserror", hit=1)),
            tmp_path,
        )
        assert report.ok, report.violations
        assert report.submit_errors == 1  # client saw the error, retried
        assert report.restarts == 0  # the process survived
        assert report.jobs_acked == report.jobs_completed == 3


class TestEpochResume:
    def test_two_deaths_resume_bit_identically(self, tmp_path):
        """The demo's hardest ladder rung, held as a regression: a torn
        append kills incarnation 1, a crash kills incarnation 2, and the
        job that resumed from its epoch checkpoint still produces the
        bit-identical fault-free output (checked by the harness's
        baseline invariant)."""
        report = run_scenario(
            ChaosScenario(
                faults=(
                    FaultSpec("journal.append", action="torn", hit=4,
                              torn_fraction=0.25),
                    FaultSpec("journal.append.after", action="crash", hit=9),
                ),
                seed=7,
                n_jobs=4,
                checkpoint_every_slices=2,
            ),
            tmp_path,
        )
        assert report.ok, report.violations
        assert report.restarts == 2
        assert report.jobs_resumed >= 1
        assert report.resumed_slices > 0

    def test_checkpoint_crash_downgrades_to_scratch(self, tmp_path):
        report = run_scenario(
            _scenario(FaultSpec("checkpoint.write", action="crash", hit=1)),
            tmp_path,
        )
        assert report.ok, report.violations

    def test_no_checkpointing_still_recovers_from_scratch(self, tmp_path):
        report = run_scenario(
            _scenario(
                FaultSpec("journal.append.after", hit=5),
                checkpoint_every_slices=0,
            ),
            tmp_path,
        )
        assert report.ok, report.violations
        assert report.jobs_resumed == 0  # nothing to resume from


class TestCompactionCrashes:
    def _populated(self, tmp_path):
        journal = JobJournal(tmp_path, fsync=FsyncPolicy.NEVER, lock=False)
        journal.submitted("done-0", {"p": 0})
        journal.done("done-0", {"status": "done"})
        journal.submitted("live-0", {"p": 1})
        return journal

    def _fold(self, tmp_path):
        journal = JobJournal(tmp_path, fsync=FsyncPolicy.NEVER, lock=False)
        records, _ = journal.scan()
        journal.close()
        state = replay(records)
        return {
            job_id: (job.finished, job.submitted is not None)
            for job_id, job in state.jobs.items()
        }

    @pytest.mark.parametrize(
        "point", ["journal.compact.write", "journal.compact.swap"]
    )
    def test_crash_mid_compaction_loses_nothing(self, point, tmp_path):
        want = {"done-0": (True, True), "live-0": (False, True)}
        journal = self._populated(tmp_path)
        with armed(FaultSpec(point, action="crash", hit=1)):
            with pytest.raises(SimulatedCrash):
                journal.compact()
        folded = self._fold(tmp_path)
        # DONE of the finished job and everything of the live job
        # survive whichever half-state the crash left behind.
        assert folded["done-0"][0] is True
        assert folded["live-0"] == want["live-0"]


class TestDemo:
    def test_demo_ladder_is_green(self, capsys):
        from repro.chaos.demo import main

        assert main() == 0
        out = capsys.readouterr().out
        assert "all scenarios green" in out
        assert "FAIL" not in out


class TestDeterminism:
    def test_same_scenario_same_report(self, tmp_path):
        scenario = _scenario(
            FaultSpec("journal.append", action="torn", hit=3),
        )
        a = run_scenario(scenario, tmp_path / "a").as_dict()
        b = run_scenario(scenario, tmp_path / "b").as_dict()
        assert a == b

    def test_payload_round_trip_is_exact_for_resumed_jobs(self, tmp_path):
        # The baseline comparison inside run_scenario is the real check;
        # this pins that FFT outputs are complex arrays compared exactly.
        report = run_scenario(
            _scenario(FaultSpec("journal.append.after", hit=3)), tmp_path
        )
        assert report.ok
        assert not any(
            "differs from fault-free baseline" in v for v in report.violations
        )

    def test_outputs_equal_helper(self):
        from repro.chaos.harness import _outputs_equal

        assert _outputs_equal(np.arange(4), np.arange(4))
        assert not _outputs_equal(np.arange(4), np.arange(4) + 1)
        assert _outputs_equal(b"x", b"x")
        assert not _outputs_equal(b"x", b"y")
