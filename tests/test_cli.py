"""The `python -m repro` command-line entry point."""

import pytest

from repro.__main__ import ARTIFACTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table4", "fig10", "table5"):
            assert name in out

    def test_help(self, capsys):
        assert main(["--help"]) == 0
        assert "Usage" in capsys.readouterr().out

    def test_no_args_prints_help(self, capsys):
        assert main([]) == 0
        assert "Usage" in capsys.readouterr().out

    def test_single_artifact(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "1066.7" in out

    def test_multiple_artifacts(self, capsys):
        assert main(["table5", "fig8"]) == 0
        out = capsys.readouterr().out
        assert "Table 5" in out and "Fig. 8" in out
        assert "=" * 72 in out  # separator between artifacts

    def test_unknown_artifact(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown artifact" in capsys.readouterr().err

    def test_unknown_artifact_suggests_close_match(self, capsys):
        assert main(["tabel4"]) == 2
        err = capsys.readouterr().err
        assert "unknown artifact" in err
        assert "did you mean" in err
        assert "table4" in err

    def test_unknown_artifact_mixed_with_known_runs_nothing(self, capsys):
        assert main(["table2", "nope"]) == 2
        captured = capsys.readouterr()
        assert "unknown artifact" in captured.err
        assert "Table 2" not in captured.out

    def test_version_flag(self, capsys):
        from repro._version import __version__

        for flag in ("--version", "-V"):
            assert main([flag]) == 0
            out = capsys.readouterr().out.strip()
            assert out == f"repro {__version__}"

    def test_serve_subcommand(self, capsys):
        assert main(["serve", "--jobs", "6", "--pool", "2"]) == 0
        out = capsys.readouterr().out
        assert "repro serve demo" in out
        assert "warm / cold" in out

    def test_serve_forwards_policy(self, capsys):
        assert main(["serve", "--jobs", "4", "--policy", "cold_fifo"]) == 0
        assert "policy=cold_fifo" in capsys.readouterr().out

    def test_compile_subcommand(self, capsys):
        assert main(["compile"]) == 0
        out = capsys.readouterr().out
        assert "Configuration compiler demo" in out
        assert "artifact hash" in out
        assert "pass timings" in out
        assert "cache check: OK" in out

    def test_subcommand_typo_suggests_compile(self, capsys):
        assert main(["compil"]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err and "compile" in err

    def test_help_mentions_compile(self, capsys):
        assert main(["--help"]) == 0
        assert "compile" in capsys.readouterr().out

    def test_faults_subcommand_dispatches(self, monkeypatch):
        # The real demo runs two full campaigns (exercised by CI's
        # fault-smoke job); dispatch is what the CLI owns, so stub the
        # entry point and assert it is reached.
        import repro.faults.demo as demo

        calls = []
        monkeypatch.setattr(demo, "main", lambda: calls.append(1) or 0)
        assert main(["faults"]) == 0
        assert calls == [1]

    @pytest.mark.parametrize("name", ["table2", "table4", "table5", "fig12"])
    def test_fast_artifacts_render(self, name, capsys):
        assert main([name]) == 0
        assert capsys.readouterr().out.strip()

    def test_kernels_subcommand_lists_the_registry(self, capsys):
        from repro.compile.frontends import frontend_names

        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        for kind in frontend_names():
            assert kind in out
        assert "size=16" in out  # defaults are shown

    def test_kernel_typo_suggests_registered_kind(self, capsys):
        assert main(["gem"]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err and "gemm" in err

    def test_serve_kinds_flag_mixes_registry_kernels(self, capsys):
        assert main(["serve", "--jobs", "5", "--kinds", "all"]) == 0
        assert "statuses" in capsys.readouterr().out

    def test_registry_complete(self):
        # every experiments module with a render() is wired up
        import repro.experiments as experiments

        renderable = [
            name for name in experiments.__all__
            if hasattr(getattr(experiments, name), "render")
        ]
        assert len(ARTIFACTS) == len(renderable)
