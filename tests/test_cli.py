"""The `python -m repro` command-line entry point."""

import pytest

from repro.__main__ import ARTIFACTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table4", "fig10", "table5"):
            assert name in out

    def test_help(self, capsys):
        assert main(["--help"]) == 0
        assert "Usage" in capsys.readouterr().out

    def test_no_args_prints_help(self, capsys):
        assert main([]) == 0
        assert "Usage" in capsys.readouterr().out

    def test_single_artifact(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "1066.7" in out

    def test_multiple_artifacts(self, capsys):
        assert main(["table5", "fig8"]) == 0
        out = capsys.readouterr().out
        assert "Table 5" in out and "Fig. 8" in out
        assert "=" * 72 in out  # separator between artifacts

    def test_unknown_artifact(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown artifact" in capsys.readouterr().err

    @pytest.mark.parametrize("name", ["table2", "table4", "table5", "fig12"])
    def test_fast_artifacts_render(self, name, capsys):
        assert main([name]) == 0
        assert capsys.readouterr().out.strip()

    def test_registry_complete(self):
        # every experiments module with a render() is wired up
        import repro.experiments as experiments

        renderable = [
            name for name in experiments.__all__
            if hasattr(getattr(experiments, name), "render")
        ]
        assert len(ARTIFACTS) == len(renderable)
