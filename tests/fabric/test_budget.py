"""Cycle-budget semantics: identical across engines and entry points.

The reference interpreter checks ``consumed > max_cycles`` *after* each
instruction, so a run that halts at exactly ``max_cycles`` is legal and
one cycle less raises.  The fast path batches whole superblocks and can
replay memoized runs, so these tests pin the boundary behaviour for
``Tile.run`` and ``run_concurrent`` under both tiers — including the
memo-replay second run, which must honour the budget rather than replay
a recorded run that would not have fit.
"""

from __future__ import annotations

import pytest

from repro.errors import ExecutionError
from repro.fabric.assembler import assemble
from repro.fabric.simulator import run_concurrent
from repro.fabric.tile import Tile

# Straightline body (fuses into one superblock) followed by a short loop
# (exercises the branch path), then HALT.
_SOURCE = """
.var a
.var i
MOV a, #0
ADD a, a, #3
ADD a, a, #4
SUB a, a, #2
MOV i, #3
loop:
ADD a, a, #1
SUB i, i, #1
BNZ i, loop
HALT
"""

ENGINES = ("fast", "reference")


def _fresh_tile() -> tuple[Tile, object]:
    program = assemble(_SOURCE)
    tile = Tile()
    tile.load_program(program)
    return tile, program


def _reference_cycles() -> int:
    tile, _ = _fresh_tile()
    return tile.run(engine="reference")


@pytest.fixture(scope="module")
def exact_cycles() -> int:
    return _reference_cycles()


@pytest.mark.parametrize("engine", ENGINES)
def test_exact_budget_is_legal(engine, exact_cycles):
    tile, _ = _fresh_tile()
    assert tile.run(max_cycles=exact_cycles, engine=engine) == exact_cycles
    assert tile.halted
    assert tile.dmem.peek(0) == 8


@pytest.mark.parametrize("engine", ENGINES)
def test_one_cycle_short_raises(engine, exact_cycles):
    tile, _ = _fresh_tile()
    with pytest.raises(ExecutionError, match="exceeded"):
        tile.run(max_cycles=exact_cycles - 1, engine=engine)


@pytest.mark.parametrize("engine", ENGINES)
def test_concurrent_exact_budget_is_legal(engine, exact_cycles):
    tile, _ = _fresh_tile()
    run = run_concurrent([tile], max_cycles_per_tile=exact_cycles, engine=engine)
    assert run.makespan_ns == pytest.approx(exact_cycles * 2.5)
    assert tile.dmem.peek(0) == 8


@pytest.mark.parametrize("engine", ENGINES)
def test_concurrent_one_cycle_short_raises(engine, exact_cycles):
    tile, _ = _fresh_tile()
    with pytest.raises(ExecutionError, match="exceeded"):
        run_concurrent([tile], max_cycles_per_tile=exact_cycles - 1, engine=engine)


def test_memo_replay_respects_budget(exact_cycles):
    """A memoized run must not replay into a budget it would overflow."""
    program = assemble(_SOURCE)
    # Prime the memo with an unconstrained fast run.
    tile = Tile()
    tile.load_program(program)
    tile.run(engine="fast")
    # Exact budget: replay (or re-execution) must succeed...
    tile2 = Tile()
    tile2.load_program(program)
    assert tile2.run(max_cycles=exact_cycles, engine="fast") == exact_cycles
    # ...one cycle less must raise exactly like the reference tier.
    tile3 = Tile()
    tile3.load_program(program)
    with pytest.raises(ExecutionError, match="exceeded"):
        tile3.run(max_cycles=exact_cycles - 1, engine="fast")


def test_engines_agree_on_cycle_count(exact_cycles):
    tile, _ = _fresh_tile()
    assert tile.run(engine="fast") == exact_cycles
