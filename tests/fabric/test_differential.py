"""Differential fuzzing: the tile vs a direct Python interpretation.

Hypothesis generates random straight-line ALU programs over a small
register window; each runs both on the fabric tile (through the assembler
and the full fetch/decode/execute path) and through a transparent Python
evaluation of the same operations.  Any divergence in final memory state
is a bug in one of assembler, ISA semantics, or the tile datapath.
"""

from hypothesis import given, settings, strategies as st

from repro.fabric.assembler import assemble
from repro.fabric.fixedpoint import wrap_word
from repro.fabric.tile import Tile

REGS = 8  # dmem[0..8) is the register window
VALS = st.integers(min_value=-(2**40), max_value=2**40)

_BINARY = ("ADD", "SUB", "MUL", "AND", "OR", "XOR", "MIN", "MAX")
_UNARY = ("MOV", "ABS", "NEG", "NOT")


@st.composite
def straightline_programs(draw):
    initial = draw(st.lists(VALS, min_size=REGS, max_size=REGS))
    n_ops = draw(st.integers(min_value=1, max_value=24))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["bin", "un", "imm", "shift", "mulq"]))
        dst = draw(st.integers(0, REGS - 1))
        a = draw(st.integers(0, REGS - 1))
        b = draw(st.integers(0, REGS - 1))
        if kind == "bin":
            ops.append((draw(st.sampled_from(_BINARY)), dst, a, b))
        elif kind == "un":
            ops.append((draw(st.sampled_from(_UNARY)), dst, a, None))
        elif kind == "imm":
            ops.append(("MOVI", dst, draw(VALS), None))
        elif kind == "shift":
            ops.append((
                draw(st.sampled_from(("SHL", "SRA"))),
                dst, a, draw(st.integers(0, 47)),
            ))
        else:
            ops.append(("MULQ", dst, a, (b, draw(st.integers(1, 47)))))
    return initial, ops


def python_eval(initial, ops):
    regs = [wrap_word(v) for v in initial]
    for op, dst, a, b in ops:
        if op == "MOVI":
            regs[dst] = wrap_word(a)
        elif op == "MOV":
            regs[dst] = regs[a]
        elif op == "ABS":
            regs[dst] = wrap_word(abs(regs[a]))
        elif op == "NEG":
            regs[dst] = wrap_word(-regs[a])
        elif op == "NOT":
            regs[dst] = wrap_word(~regs[a])
        elif op == "ADD":
            regs[dst] = wrap_word(regs[a] + regs[b])
        elif op == "SUB":
            regs[dst] = wrap_word(regs[a] - regs[b])
        elif op == "MUL":
            regs[dst] = wrap_word(regs[a] * regs[b])
        elif op == "AND":
            regs[dst] = wrap_word(regs[a] & regs[b])
        elif op == "OR":
            regs[dst] = wrap_word(regs[a] | regs[b])
        elif op == "XOR":
            regs[dst] = wrap_word(regs[a] ^ regs[b])
        elif op == "MIN":
            regs[dst] = min(regs[a], regs[b])
        elif op == "MAX":
            regs[dst] = max(regs[a], regs[b])
        elif op == "SHL":
            regs[dst] = wrap_word(regs[a] << b)
        elif op == "SRA":
            regs[dst] = wrap_word(regs[a] >> b)
        elif op == "MULQ":
            src2, q = b
            regs[dst] = wrap_word(
                (regs[a] * regs[src2] + (1 << (q - 1))) >> q
            )
        else:  # pragma: no cover
            raise AssertionError(op)
    return regs


def to_assembly(ops):
    lines = []
    for op, dst, a, b in ops:
        if op == "MOVI":
            lines.append(f"MOV {dst}, #{a}")
        elif op in _UNARY:
            lines.append(f"{op} {dst}, {a}")
        elif op in ("SHL", "SRA"):
            lines.append(f"{op} {dst}, {a}, #{b}")
        elif op == "MULQ":
            src2, q = b
            lines.append(f"MULQ {dst}, {a}, {src2}, {q}")
        else:
            lines.append(f"{op} {dst}, {a}, {b}")
    lines.append("HALT")
    return "\n".join(lines)


class TestDifferential:
    @given(straightline_programs())
    @settings(max_examples=150, deadline=None)
    def test_tile_matches_python(self, case):
        initial, ops = case
        tile = Tile()
        for i, v in enumerate(initial):
            tile.dmem.poke(i, v)
        tile.load_program(assemble(to_assembly(ops), name="fuzz"))
        tile.run()
        expected = python_eval(initial, ops)
        got = [tile.dmem.peek(i) for i in range(REGS)]
        assert got == expected

    @given(straightline_programs())
    @settings(max_examples=50, deadline=None)
    def test_programs_lint_clean_and_cycle_bounded(self, case):
        _, ops = case
        program = assemble(to_assembly(ops), name="fuzz")
        assert program.lint() == []
        tile = Tile()
        tile.load_program(program)
        cycles = tile.run()
        # straight-line: at most 2 cycles per instruction
        assert cycles <= 2 * len(program)
