"""Program disassembly and static linting."""

from repro.fabric.assembler import assemble


class TestDisassemble:
    def test_lists_every_instruction(self):
        p = assemble(".var a\nMOV a, #1\nloop: SUB a, a, #1\nBNZ a, loop\nHALT",
                     name="d")
        text = p.disassemble()
        assert "program 'd'" in text
        assert ".var a @ 0" in text
        assert "loop:" in text
        assert text.count("\n") >= 5

    def test_addresses_sequential(self):
        p = assemble("NOP\nNOP\nHALT")
        lines = [l for l in p.disassemble().splitlines() if not l.startswith(";")]
        assert lines[0].strip().startswith("0")
        assert lines[2].strip().startswith("2")


class TestLint:
    def test_clean_program(self):
        p = assemble(".var a\nMOV a, #1\nHALT")
        assert p.lint() == []

    def test_clean_loop(self):
        p = assemble(
            ".var c\nMOV c, #3\nloop: SUB c, c, #1\nBNZ c, loop\nHALT"
        )
        assert p.lint() == []

    def test_missing_halt_detected(self):
        p = assemble(".var a\nMOV a, #1\nADD a, a, #1")
        assert any("fall off" in w for w in p.lint())

    def test_unreachable_code_detected(self):
        p = assemble("JMP end\nNOP\nNOP\nend: HALT")
        warnings = p.lint()
        assert sum("unreachable" in w for w in warnings) == 2

    def test_out_of_range_target_detected(self):
        p = assemble("JMP 99\nHALT")
        warnings = p.lint()
        assert any("outside the program" in w for w in warnings)
        assert any("unreachable" in w for w in warnings)  # the HALT

    def test_conditional_fallthrough_not_flagged(self):
        p = assemble(".var a\nBZ a, done\nMOV a, #1\ndone: HALT")
        assert p.lint() == []

    def test_empty_program(self):
        from repro.fabric.assembler import Program

        assert Program(name="empty").lint() == ["program has no instructions"]

    def test_all_shipped_kernel_programs_are_clean(self):
        """Every generated FFT/JPEG tile program passes the linter."""
        from repro.kernels.fft.programs import (
            bf_exchange_program,
            bf_internal_program,
            copy_pair_program,
            copy_program,
            local_copy_program,
            twiddle_square_program,
        )
        from repro.kernels.jpeg.programs import (
            alpha_quantize_program,
            dc_category_program,
            matmul8_program,
            rle_program,
            shift_program,
            zigzag_program,
        )

        programs = [
            bf_exchange_program(8, True, "C", "A"),
            bf_exchange_program(8, False, "A", "C"),
            bf_internal_program(8, 2),
            copy_program(8, 0, 0, "E"),
            copy_program(8, 0, 0, "E", unrolled=True),
            copy_pair_program(4, 0, 60, 20, 64, "S"),
            local_copy_program(4, 0, 50),
            twiddle_square_program(8),
            shift_program(),
            matmul8_program(),
            alpha_quantize_program(),
            zigzag_program(),
            dc_category_program(),
            rle_program(),
        ]
        for program in programs:
            assert program.lint() == [], program.name
