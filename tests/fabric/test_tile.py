"""Tile execution: control flow, addressing, neighbour stores, stats."""

import pytest

from repro.errors import ExecutionError, LinkError
from repro.fabric.assembler import assemble
from repro.fabric.links import Direction
from repro.fabric.tile import Tile
from repro.units import CYCLE_NS


def run_program(source: str) -> Tile:
    tile = Tile()
    tile.load_program(assemble(source))
    tile.run()
    return tile


class TestExecution:
    def test_mov_immediate(self):
        tile = run_program(".var a\nMOV a, #7\nHALT")
        assert tile.dmem.peek(0) == 7

    def test_indirect_store(self):
        tile = run_program(
            ".var p\n.var t\n.word p, 100\nMOV @p, #55\nHALT"
        )
        assert tile.dmem.peek(100) == 55

    def test_indirect_load(self):
        tile = run_program(
            ".var p\n.var out\n.word p, 100\n.word 100, 9\nMOV out, @p\nHALT"
        )
        assert tile.dmem.peek(1) == 9

    def test_unary_ops(self):
        tile = run_program(
            ".var a\n.var b\n.var c\nMOV a, #-5\nABS b, a\nNEG c, a\nHALT"
        )
        assert tile.dmem.peek(1) == 5
        assert tile.dmem.peek(2) == 5

    def test_not(self):
        tile = run_program(".var a\nNOT a, #0\nHALT")
        assert tile.dmem.peek(0) == -1

    def test_branch_taken_and_not_taken(self):
        tile = run_program(
            """
            .var x
            .var hit
                MOV x, #0
                BNZ x, bad
                MOV hit, #1
                JMP end
            bad:
                MOV hit, #99
            end:
                HALT
            """
        )
        assert tile.dmem.peek(1) == 1

    def test_bneg_bpos(self):
        tile = run_program(
            """
            .var v
            .var neg
            .var pos
                MOV v, #-3
                BNEG v, isneg
                JMP next
            isneg:
                MOV neg, #1
            next:
                MOV v, #3
                BPOS v, ispos
                JMP end
            ispos:
                MOV pos, #1
            end:
                HALT
            """
        )
        assert tile.dmem.peek(1) == 1
        assert tile.dmem.peek(2) == 1

    def test_loop_cycle_count(self):
        tile = Tile()
        tile.load_program(assemble(
            ".var c\n.word c, 10\nloop:\nSUB c, c, #1\nBNZ c, loop\nHALT"
        ))
        cycles = tile.run()
        # 10 iterations x (SUB + BNZ) + HALT = 21 single-cycle instructions
        assert cycles == 21
        assert tile.stats.branches_taken == 9

    def test_run_ns(self):
        tile = Tile()
        tile.load_program(assemble("NOP\nNOP\nHALT"))
        assert tile.run_ns() == pytest.approx(3 * CYCLE_NS)


class TestLifecycle:
    def test_run_without_program(self):
        with pytest.raises(ExecutionError, match="no program"):
            Tile().run()

    def test_restart_reruns(self):
        tile = Tile()
        tile.load_program(assemble(".var a\nADD a, a, #1\nHALT"))
        tile.run()
        tile.restart()
        tile.run()
        assert tile.dmem.peek(0) == 2

    def test_restart_without_program(self):
        with pytest.raises(ExecutionError):
            Tile().restart()

    def test_runaway_detection(self):
        tile = Tile()
        tile.load_program(assemble("loop: JMP loop"))
        with pytest.raises(ExecutionError, match="exceeded"):
            tile.run(max_cycles=100)

    def test_step_when_halted_returns_zero(self):
        tile = Tile()
        tile.load_program(assemble("HALT"))
        tile.run()
        assert tile.step() == 0

    def test_load_program_resets_pc_and_data_image(self):
        tile = Tile()
        tile.load_program(assemble(".var a\n.word a, 5\nHALT"))
        assert tile.pc == 0 and not tile.halted
        assert tile.dmem.peek(0) == 5

    def test_load_program_preserves_other_data(self):
        tile = Tile()
        tile.dmem.poke(100, 77)
        tile.load_program(assemble("HALT"))
        assert tile.dmem.peek(100) == 77

    def test_addr_helper(self):
        tile = Tile()
        tile.load_program(assemble(".var xyz\nHALT"))
        assert tile.addr("xyz") == 0

    def test_stats_reset(self):
        tile = Tile()
        tile.load_program(assemble("NOP\nHALT"))
        tile.run()
        tile.stats.reset()
        assert tile.stats.instructions == 0


class TestNeighbourStores:
    def test_snb_without_mesh_raises(self):
        tile = Tile()
        tile.load_program(assemble(".var v\nSNB.E 0, v\nHALT"))
        with pytest.raises(ExecutionError, match="resolver"):
            tile.run()

    def test_snb_through_active_link(self, mesh1x2):
        mesh1x2.configure_link((0, 0), Direction.EAST)
        tile = mesh1x2.tile((0, 0))
        tile.load_program(assemble(".var v\n.word v, 31\nSNB.E 5, v\nHALT"))
        tile.run()
        assert mesh1x2.tile((0, 1)).dmem.peek(5) == 31
        assert tile.stats.neighbour_stores == 1

    def test_snb_wrong_direction_raises(self, mesh1x2):
        mesh1x2.configure_link((0, 0), Direction.EAST)
        tile = mesh1x2.tile((0, 0))
        tile.load_program(assemble(".var v\nSNB.W 0, v\nHALT"))
        with pytest.raises(LinkError, match="link is EAST"):
            tile.run()

    def test_snb_detached_raises(self, mesh1x2):
        tile = mesh1x2.tile((0, 0))
        tile.load_program(assemble(".var v\nSNB.E 0, v\nHALT"))
        with pytest.raises(LinkError, match="detached"):
            tile.run()

    def test_snb_indirect_neighbour_address(self, mesh1x2):
        mesh1x2.configure_link((0, 0), Direction.EAST)
        tile = mesh1x2.tile((0, 0))
        tile.load_program(assemble(
            ".var p\n.var v\n.word p, 42\n.word v, 8\nSNB.E @p, v\nHALT"
        ))
        tile.run()
        assert mesh1x2.tile((0, 1)).dmem.peek(42) == 8
