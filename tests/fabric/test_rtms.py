"""Runtime manager: epoch sequencing, overlap accounting, reports."""

import pytest

from repro.fabric.assembler import assemble
from repro.fabric.icap import IcapPort
from repro.fabric.links import Direction
from repro.fabric.mesh import Mesh
from repro.fabric.rtms import EpochSpec, RuntimeManager
from repro.units import CYCLE_NS, IMEM_WORD_RELOAD_NS

WORK = assemble("\n".join(["NOP"] * 99) + "\nHALT", name="work100")
TINY = assemble("HALT", name="tiny")


@pytest.fixture
def rtms():
    return RuntimeManager(Mesh(2, 2), IcapPort(), link_cost_ns=200.0)


class TestBasics:
    def test_single_epoch_compute(self, rtms):
        report = rtms.execute(
            [EpochSpec("e", programs={(0, 0): WORK}, run=[(0, 0)])]
        )
        epoch = report.epochs[0]
        assert epoch.compute_ns == pytest.approx(100 * CYCLE_NS)
        # compute waits for the program load
        assert epoch.end_ns == pytest.approx(
            100 * IMEM_WORD_RELOAD_NS + 100 * CYCLE_NS
        )

    def test_pinned_program_not_recharged(self, rtms):
        spec = EpochSpec("e", programs={(0, 0): WORK}, run=[(0, 0)])
        rtms.execute([spec])
        second = rtms.execute(
            [EpochSpec("again", programs={(0, 0): WORK}, run=[(0, 0)])]
        )
        assert second.epochs[0].reconfig_ns == 0.0

    def test_restart_reruns_program(self, rtms):
        spec = EpochSpec("e", programs={(0, 0): WORK}, run=[(0, 0)])
        rtms.execute([spec])
        report = rtms.execute([EpochSpec("re", run=[(0, 0)])])
        assert report.epochs[0].compute_ns == pytest.approx(100 * CYCLE_NS)

    def test_link_changes_charged(self, rtms):
        report = rtms.execute(
            [EpochSpec("links", links={(0, 0): Direction.EAST,
                                       (0, 1): Direction.SOUTH})]
        )
        epoch = report.epochs[0]
        assert epoch.link_changes == 2
        assert epoch.reconfig_ns == pytest.approx(400.0)

    def test_unchanged_link_free(self, rtms):
        rtms.execute([EpochSpec("a", links={(0, 0): Direction.EAST})])
        report = rtms.execute([EpochSpec("b", links={(0, 0): Direction.EAST})])
        assert report.epochs[0].link_changes == 0

    def test_pokes_are_free_and_applied(self, rtms):
        report = rtms.execute(
            [EpochSpec("p", pokes={(0, 0): {7: 99}})]
        )
        assert rtms.mesh.tile((0, 0)).dmem.peek(7) == 99
        assert report.epochs[0].reconfig_ns == 0.0

    def test_data_images_are_charged(self, rtms):
        report = rtms.execute(
            [EpochSpec("d", data_images={(0, 0): {7: 99}})]
        )
        assert report.epochs[0].reconfig_bytes == 6
        assert report.epochs[0].reconfig_ns > 0


class TestOverlap:
    def test_reconfig_overlaps_other_tiles_compute(self, rtms):
        # Tile (0,0) computes while tile (0,1) is reconfigured: total time
        # should be close to max of the two, not the sum.
        rtms.execute([EpochSpec("load", programs={(0, 0): WORK})])
        report = rtms.execute(
            [
                EpochSpec(
                    "overlap",
                    programs={(0, 1): WORK},  # 5000 ns of ICAP
                    run=[(0, 0)],             # 250 ns of compute
                )
            ]
        )
        epoch = report.epochs[0]
        assert epoch.duration_ns == pytest.approx(100 * IMEM_WORD_RELOAD_NS)
        assert epoch.compute_ns == pytest.approx(100 * CYCLE_NS)

    def test_overlapped_ns_reported(self, rtms):
        rtms.execute([EpochSpec("load", programs={(0, 0): WORK})])
        report = rtms.execute(
            [EpochSpec("o", programs={(0, 1): TINY}, run=[(0, 0)])]
        )
        epoch = report.epochs[0]
        # the tiny reload (50ns) hides under the 250ns compute entirely
        assert epoch.overlapped_ns == pytest.approx(epoch.reconfig_ns)

    def test_busy_tile_defers_reconfig(self, rtms):
        # Run a tile, then reconfigure the same tile: the reload cannot
        # start before the tile's own compute ends.
        rtms.execute([EpochSpec("a", programs={(0, 0): WORK}, run=[(0, 0)])])
        t_after_first = rtms.now_ns
        report = rtms.execute([EpochSpec("b", programs={(0, 0): TINY})])
        assert report.epochs[0].start_ns == pytest.approx(t_after_first)


class TestReports:
    def test_run_report_totals(self, rtms):
        report = rtms.execute(
            [
                EpochSpec("one", programs={(0, 0): WORK}, run=[(0, 0)]),
                EpochSpec("two", run=[(0, 0)]),
            ]
        )
        assert report.total_ns == report.epochs[-1].end_ns
        assert report.compute_ns == pytest.approx(2 * 100 * CYCLE_NS)
        assert len(report.gantt().splitlines()) == 2

    def test_utilization(self, rtms):
        report = rtms.execute(
            [EpochSpec("e", programs={(0, 0): WORK}, run=[(0, 0)])]
        )
        util = report.utilization(1)
        assert 0 < util < 1  # reload time keeps it below 1
        assert report.utilization(0) == 0.0

    def test_depends_on_gates_start(self, rtms):
        rtms.execute(
            [EpochSpec("a", programs={(0, 0): WORK}, run=[(0, 0)])]
        )
        finish = rtms.tile_ready_ns[(0, 0)]
        report = rtms.execute(
            [EpochSpec("b", programs={(0, 1): TINY}, run=[(0, 1)],
                       depends_on=[(0, 0)])]
        )
        # (0,1) could start after its own 50ns reload, but the dependency
        # on (0,0) pushes the compute to `finish`.
        epoch = report.epochs[0]
        assert epoch.end_ns >= finish

    def test_link_cost_property(self, rtms):
        rtms.link_cost_ns = 500.0
        assert rtms.link_cost_ns == 500.0
        with pytest.raises(Exception):
            rtms.link_cost_ns = -1

    def test_reset(self, rtms):
        rtms.execute([EpochSpec("e", programs={(0, 0): TINY}, run=[(0, 0)])])
        rtms.reset()
        assert rtms.now_ns == 0.0
        assert rtms.tile_ready_ns == {}


class TestSwitchCost:
    """switch_cost() must agree with executed reconfig_ns (satellite)."""

    def _spec(self):
        return EpochSpec(
            "mix",
            programs={(0, 0): WORK, (0, 1): TINY},
            data_images={(1, 0): {3: 7, 4: 9}},
            links={(0, 0): Direction.EAST, (1, 0): Direction.NORTH},
            run=[(0, 0)],
        )

    def test_agrees_with_executed_report_single_spec(self, rtms):
        spec = self._spec()
        estimate = rtms.switch_cost(spec)
        report = rtms.execute([spec])
        assert estimate == pytest.approx(report.epochs[0].reconfig_ns)
        assert estimate > 0

    def test_agrees_with_executed_report_sequence(self, rtms):
        specs = [
            self._spec(),
            # second epoch: WORK pinned from the first, link unchanged,
            # fresh data image -> only the image + the new link charge.
            EpochSpec(
                "warm",
                programs={(0, 0): WORK},
                data_images={(0, 1): {1: 2}},
                links={(0, 0): Direction.EAST, (0, 1): Direction.SOUTH},
            ),
        ]
        estimate = rtms.switch_cost(specs)
        report = rtms.execute(specs)
        executed = sum(e.reconfig_ns for e in report.epochs)
        assert estimate == pytest.approx(executed)

    def test_no_side_effects(self, rtms):
        spec = self._spec()
        rtms.switch_cost(spec)
        # nothing loaded, nothing scheduled, no link flipped
        assert rtms.icap.total_busy_ns == 0.0
        assert rtms.mesh.tile((0, 0)).resident_base(WORK) is None
        assert rtms.mesh.active_link((0, 0)) is None
        assert rtms.now_ns == 0.0

    def test_warm_fabric_costs_nothing(self, rtms):
        spec = EpochSpec(
            "p", programs={(0, 0): WORK}, links={(0, 0): Direction.EAST}
        )
        rtms.execute([spec])
        assert rtms.switch_cost(spec) == 0.0

    def test_pinned_within_sequence(self, rtms):
        a = EpochSpec("a", programs={(0, 0): WORK})
        b = EpochSpec("b", programs={(0, 0): WORK})
        assert rtms.switch_cost([a, b]) == pytest.approx(rtms.switch_cost(a))
