"""Area accounting."""

import pytest

from repro.fabric.area import BRAMS_PER_TILE, area_slice_luts


def test_published_per_tile_figure():
    assert area_slice_luts(1) == 200


def test_linear_scaling():
    assert area_slice_luts(24) == 24 * 200


def test_custom_per_tile():
    assert area_slice_luts(3, luts_per_tile=150) == 450


def test_zero_tiles():
    assert area_slice_luts(0) == 0


def test_negative_rejected():
    with pytest.raises(ValueError):
        area_slice_luts(-1)


def test_brams_per_tile():
    assert BRAMS_PER_TILE == 3  # two data + one instruction BRAM
