"""Reconfiguration planning: deltas, pinning, overlap scheduling."""

import pytest

from repro.fabric.assembler import assemble
from repro.fabric.icap import IcapPort
from repro.fabric.links import Direction
from repro.fabric.mesh import Mesh
from repro.fabric.reconfig import ReconfigPlanner
from repro.units import IMEM_WORD_RELOAD_NS

PROG_A = assemble(".var a\n.word a, 1\nNOP\nHALT", name="A")
PROG_B = assemble("NOP\nNOP\nHALT", name="B")


@pytest.fixture
def planner():
    mesh = Mesh(2, 2)
    return ReconfigPlanner(mesh, IcapPort(), link_cost_ns=100.0)


class TestPlan:
    def test_program_load_emits_imem_and_dmem(self, planner):
        txn = planner.plan(programs={(0, 0): PROG_A})
        kinds = [b.kind.value for b in txn.bitstreams]
        assert len(txn.bitstreams) == 2  # imem + data image
        assert txn.total_bytes == 2 * 9 + 1 * 6

    def test_program_without_data_image(self, planner):
        txn = planner.plan(programs={(0, 0): PROG_B})
        assert len(txn.bitstreams) == 1
        assert txn.total_bytes == 3 * 9

    def test_pinning_skips_resident_program(self, planner):
        planner.mesh.tile((0, 0)).load_program(PROG_A)
        txn = planner.plan(programs={(0, 0): PROG_A})
        assert txn.bitstreams == []

    def test_force_reload_overrides_pinning(self, planner):
        planner.mesh.tile((0, 0)).load_program(PROG_A)
        txn = planner.plan(programs={(0, 0): PROG_A}, force_program_reload=True)
        assert len(txn.bitstreams) == 2

    def test_link_delta_only(self, planner):
        planner.mesh.configure_link((0, 0), Direction.EAST)
        txn = planner.plan(links={(0, 0): Direction.EAST,
                                  (0, 1): Direction.SOUTH})
        assert txn.link_changes == 1

    def test_data_images(self, planner):
        txn = planner.plan(data_images={(1, 1): {5: 42, 6: 43}})
        assert txn.total_bytes == 12
        assert txn.memory_words == 2

    def test_empty_data_image_skipped(self, planner):
        txn = planner.plan(data_images={(1, 1): {}})
        assert txn.bitstreams == []

    def test_duration_upper_bound(self, planner):
        txn = planner.plan(
            programs={(0, 0): PROG_B}, links={(0, 1): Direction.SOUTH}
        )
        expected = 3 * IMEM_WORD_RELOAD_NS + 100.0
        assert txn.duration_ns(planner.icap, 100.0) == pytest.approx(expected)


class TestApply:
    def test_apply_mutates_mesh(self, planner):
        txn = planner.plan(
            programs={(0, 0): PROG_A},
            data_images={(0, 1): {7: 9}},
            links={(1, 0): Direction.NORTH},
        )
        planner.apply(txn)
        assert planner.mesh.tile((0, 0)).program is PROG_A
        assert planner.mesh.tile((0, 1)).dmem.peek(7) == 9
        assert planner.mesh.active_link((1, 0)) is Direction.NORTH

    def test_apply_serializes_on_port(self, planner):
        txn = planner.plan(
            programs={(0, 0): PROG_B, (0, 1): PROG_B},
        )
        applied = planner.apply(txn)
        # two 3-instruction images, back to back on one port
        assert applied.duration_ns == pytest.approx(6 * IMEM_WORD_RELOAD_NS)
        assert applied.tile_ready_ns[(0, 1)] > applied.tile_ready_ns[(0, 0)]

    def test_busy_tile_delays_its_reload(self, planner):
        txn = planner.plan(programs={(0, 0): PROG_B})
        applied = planner.apply(txn, tile_busy_until={(0, 0): 5000.0})
        assert applied.start_ns == 5000.0

    def test_busy_other_tile_does_not_delay(self, planner):
        txn = planner.plan(programs={(0, 0): PROG_B})
        applied = planner.apply(txn, tile_busy_until={(1, 1): 5000.0})
        assert applied.start_ns == 0.0

    def test_link_charged_fixed_cost(self, planner):
        txn = planner.plan(links={(0, 0): Direction.EAST})
        applied = planner.apply(txn)
        assert applied.duration_ns == pytest.approx(100.0)

    def test_reconfig_marks_counters(self, planner):
        txn = planner.plan(data_images={(0, 0): {1: 2}})
        planner.apply(txn)
        assert planner.mesh.tile((0, 0)).dmem.reconfig_writes == 1

    def test_empty_transaction(self, planner):
        applied = planner.apply(planner.plan(), now_ns=42.0)
        assert applied.start_ns == 42.0
        assert applied.duration_ns == 0.0

    def test_negative_link_cost_rejected(self):
        with pytest.raises(Exception):
            ReconfigPlanner(Mesh(1, 1), IcapPort(), link_cost_ns=-1)


class TestReconfigErrorContext:
    """ReconfigError carries the tile coordinate and ICAP timestamp."""

    def test_plain_message_without_context(self):
        from repro.errors import ReconfigError

        err = ReconfigError("bad image")
        assert str(err) == "bad image"
        assert err.coord is None and err.icap_ns is None

    def test_coord_and_timestamp_render_like_a_trace_entry(self):
        from repro.errors import ReconfigError

        err = ReconfigError("bad image", coord=(1, 0), icap_ns=1200.0)
        assert err.coord == (1, 0)
        assert err.icap_ns == 1200.0
        assert str(err) == "bad image [tile (1, 0), icap t=1200.00 ns]"

    def test_fault_hierarchy(self):
        from repro.errors import FabricError, FaultError, ScrubError

        assert issubclass(FaultError, FabricError)
        assert issubclass(ScrubError, FaultError)
