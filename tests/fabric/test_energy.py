"""Energy model: term composition and design trade-offs."""

import pytest

from repro.errors import FabricError
from repro.fabric.energy import EnergyBreakdown, EnergyModel


class TestTerms:
    def test_compute_scaling(self):
        model = EnergyModel(instruction_pj=20.0)
        assert model.compute_nj(1000) == pytest.approx(20.0)

    def test_reconfig_scaling(self):
        model = EnergyModel(icap_byte_pj=50.0)
        assert model.reconfig_nj(200) == pytest.approx(10.0)

    def test_link_scaling(self):
        assert EnergyModel(link_switch_nj=2.0).link_nj(5) == 10.0

    def test_static_mw_times_ns_is_pj(self):
        model = EnergyModel(tile_static_mw=1.0)
        # 1 mW over 1000 ns = 1000 pJ = 1 nJ per tile
        assert model.static_nj(3, 1000.0) == pytest.approx(3.0)

    @pytest.mark.parametrize("kwargs", [
        {"instruction_pj": -1}, {"icap_byte_pj": -1},
        {"link_switch_nj": -1}, {"tile_static_mw": -1},
    ])
    def test_negative_constants_rejected(self, kwargs):
        with pytest.raises(FabricError):
            EnergyModel(**kwargs)

    def test_negative_inputs_rejected(self):
        model = EnergyModel()
        with pytest.raises(FabricError):
            model.compute_nj(-1)
        with pytest.raises(FabricError):
            model.static_nj(-1, 10)


class TestBreakdown:
    def test_total(self):
        b = EnergyBreakdown(1.0, 2.0, 3.0, 4.0)
        assert b.total_nj == 10.0
        assert "total=10.0nJ" in str(b)


class TestRunEnergy:
    def test_from_real_run(self):
        from repro.fabric.assembler import assemble
        from repro.fabric.icap import IcapPort
        from repro.fabric.links import Direction
        from repro.fabric.mesh import Mesh
        from repro.fabric.rtms import EpochSpec, RuntimeManager

        mesh = Mesh(1, 2)
        rtms = RuntimeManager(mesh, IcapPort(), link_cost_ns=100.0)
        prog = assemble("\n".join(["NOP"] * 20) + "\nHALT", name="w")
        report = rtms.execute(
            [EpochSpec("e", programs={(0, 0): prog},
                       links={(0, 0): Direction.EAST}, run=[(0, 0)])]
        )
        instructions = sum(t.stats.instructions for t in mesh)
        breakdown = EnergyModel().run_energy_nj(report, len(mesh), instructions)
        assert breakdown.compute_nj > 0
        assert breakdown.reconfig_nj > 0   # the program image went over ICAP
        assert breakdown.link_nj == pytest.approx(1.0)  # one switch
        assert breakdown.static_nj > 0


class TestSteadyState:
    def test_static_dominates_idle_design(self):
        model = EnergyModel()
        idle = model.steady_state_mw(n_tiles=10, instructions_per_s=0)
        assert idle == pytest.approx(10 * model.tile_static_mw)

    def test_power_monotone_in_activity(self):
        model = EnergyModel()
        slow = model.steady_state_mw(4, instructions_per_s=1e8)
        fast = model.steady_state_mw(4, instructions_per_s=4e8)
        assert fast > slow

    def test_performance_per_watt_tradeoff(self):
        """More tiles raise throughput linearly but static power too;
        performance/watt saturates — the paper's motivation for reuse."""
        model = EnergyModel()
        ratios = []
        for tiles in (1, 4, 16, 64):
            throughput = tiles * 1e6          # ideal linear scaling
            instr_rate = tiles * 4e8          # each tile saturated
            power = model.steady_state_mw(tiles, instr_rate)
            ratios.append(throughput / power)
        # per-watt efficiency stops improving once dynamic power dominates
        assert ratios[-1] / ratios[0] < 2.0
