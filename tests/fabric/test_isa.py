"""ISA semantics: operand validation, cycle model, ALU behaviour."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ExecutionError
from repro.fabric.fixedpoint import WORD_MAX, WORD_MIN, wrap_word
from repro.fabric.isa import (
    ALU_OPS,
    AddrMode,
    Instruction,
    Opcode,
    Operand,
    direct,
    evaluate_alu,
    imm,
    indirect,
)

words = st.integers(min_value=WORD_MIN, max_value=WORD_MAX)


class TestOperand:
    def test_direct_bounds(self):
        direct(0)
        direct(511)
        with pytest.raises(ValueError):
            Operand(AddrMode.DIR, 512)
        with pytest.raises(ValueError):
            Operand(AddrMode.DIR, -1)

    def test_immediate_range(self):
        imm(WORD_MAX)
        imm(WORD_MIN)
        with pytest.raises(ValueError):
            imm(WORD_MAX + 1)

    def test_read_port_counts(self):
        assert imm(5).reads == 0
        assert direct(5).reads == 1
        assert indirect(5).reads == 2

    def test_str_forms(self):
        assert str(imm(7)) == "#7"
        assert str(direct(7)) == "7"
        assert str(indirect(7)) == "@7"


class TestInstructionValidation:
    def test_alu_requires_three_operands(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, dst=direct(0), src1=direct(1))

    def test_alu_rejects_immediate_destination(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, dst=imm(0), src1=direct(1), src2=direct(2))

    def test_mulq_shift_range(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.MULQ, dst=direct(0), src1=direct(1),
                        src2=direct(2), aux=0)
        with pytest.raises(ValueError):
            Instruction(Opcode.MULQ, dst=direct(0), src1=direct(1),
                        src2=direct(2), aux=48)

    def test_snb_direction_range(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.SNB, dst=direct(0), src1=direct(1), aux=4)

    def test_halt_takes_no_operands(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.HALT, dst=direct(0), src1=direct(1))

    def test_branch_needs_test_operand(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.BZ, aux=3)


class TestCycleModel:
    def test_direct_alu_single_cycle(self):
        instr = Instruction(Opcode.ADD, dst=direct(0), src1=direct(1), src2=direct(2))
        assert instr.cycles == 1

    def test_two_indirect_sources_two_cycles(self):
        instr = Instruction(Opcode.ADD, dst=direct(0), src1=indirect(1), src2=indirect(2))
        assert instr.read_ports == 4
        assert instr.cycles == 2

    def test_indirect_destination_counts_pointer_read(self):
        instr = Instruction(Opcode.MOV, dst=indirect(0), src1=direct(1))
        assert instr.read_ports == 2
        assert instr.cycles == 1

    def test_immediate_only_is_single_cycle(self):
        instr = Instruction(Opcode.MOV, dst=direct(0), src1=imm(3))
        assert instr.cycles == 1

    def test_cycles_formula(self):
        for instr in (
            Instruction(Opcode.MULQ, dst=indirect(0), src1=indirect(1),
                        src2=indirect(2), aux=30),
            Instruction(Opcode.NOP),
        ):
            assert instr.cycles == max(1, math.ceil(instr.read_ports / 2))


class TestALU:
    @given(words, words)
    def test_add_wraps_like_python(self, a, b):
        assert evaluate_alu(Opcode.ADD, a, b) == wrap_word(a + b)

    @given(words, words)
    def test_sub_wraps_like_python(self, a, b):
        assert evaluate_alu(Opcode.SUB, a, b) == wrap_word(a - b)

    @given(words, words)
    def test_mul_wraps_like_python(self, a, b):
        assert evaluate_alu(Opcode.MUL, a, b) == wrap_word(a * b)

    @given(words, words)
    def test_min_max_consistent(self, a, b):
        assert evaluate_alu(Opcode.MIN, a, b) == min(a, b)
        assert evaluate_alu(Opcode.MAX, a, b) == max(a, b)

    @given(words, st.integers(min_value=0, max_value=47))
    def test_shifts(self, a, s):
        assert evaluate_alu(Opcode.SHL, a, s) == wrap_word(a << s)
        assert evaluate_alu(Opcode.SRA, a, s) == wrap_word(a >> s)

    def test_shr_zero_fills(self):
        assert evaluate_alu(Opcode.SHR, -1, 40) == 0xFF

    def test_shift_out_of_range_raises(self):
        with pytest.raises(ExecutionError):
            evaluate_alu(Opcode.SHL, 1, 48)
        with pytest.raises(ExecutionError):
            evaluate_alu(Opcode.SHR, 1, -1)

    def test_mulq_rounds(self):
        # 3 * 3 = 9; >> 1 with rounding: (9 + 1) >> 1 = 5
        assert evaluate_alu(Opcode.MULQ, 3, 3, aux=1) == 5

    @given(words, words)
    def test_xor_self_inverse(self, a, b):
        x = evaluate_alu(Opcode.XOR, a, b)
        assert evaluate_alu(Opcode.XOR, x, b) == a

    def test_non_alu_opcode_raises(self):
        with pytest.raises(ExecutionError):
            evaluate_alu(Opcode.JMP, 1, 2)


class TestEncoding:
    def test_encode_fits_72_bits(self):
        for op in ALU_OPS:
            instr = Instruction(op, dst=direct(511), src1=indirect(255),
                                src2=imm(1000), aux=30 if op is Opcode.MULQ else 0)
            assert 0 <= instr.encode() < (1 << 72)

    def test_distinct_instructions_distinct_encodings(self):
        a = Instruction(Opcode.ADD, dst=direct(0), src1=direct(1), src2=direct(2))
        b = Instruction(Opcode.SUB, dst=direct(0), src1=direct(1), src2=direct(2))
        c = Instruction(Opcode.ADD, dst=direct(3), src1=direct(1), src2=direct(2))
        assert len({a.encode(), b.encode(), c.encode()}) == 3

    def test_str_contains_mnemonic(self):
        instr = Instruction(Opcode.MULQ, dst=direct(0), src1=direct(1),
                            src2=direct(2), aux=30)
        assert "MULQ" in str(instr) and "q=30" in str(instr)
