"""Partial bitstreams: sizing and serialization round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ReconfigError
from repro.fabric.bitstream import PartialBitstream, ReconfigKind


class TestSizing:
    def test_imem_bytes(self):
        b = PartialBitstream(ReconfigKind.IMEM, (0, 0), words=(1, 2, 3))
        assert b.payload_words == 3
        assert b.nbytes == 27  # 9 bytes per 72-bit word

    def test_dmem_bytes_per_pair(self):
        b = PartialBitstream(ReconfigKind.DMEM, (0, 0), words=(10, 99, 11, 98))
        assert b.payload_words == 2
        assert b.nbytes == 12  # 6 bytes per 48-bit word

    def test_link_costs_no_bytes(self):
        b = PartialBitstream(ReconfigKind.LINK, (0, 0), aux=1)
        assert b.nbytes == 0
        assert b.payload_words == 0

    def test_dmem_odd_payload_rejected(self):
        with pytest.raises(ReconfigError):
            PartialBitstream(ReconfigKind.DMEM, (0, 0), words=(1, 2, 3))

    def test_link_with_payload_rejected(self):
        with pytest.raises(ReconfigError):
            PartialBitstream(ReconfigKind.LINK, (0, 0), words=(1,))

    def test_link_direction_validated(self):
        with pytest.raises(Exception):
            PartialBitstream(ReconfigKind.LINK, (0, 0), aux=7)


class TestSerialization:
    def test_roundtrip_simple(self):
        b = PartialBitstream(ReconfigKind.IMEM, (3, 4), words=(7, -9))
        assert PartialBitstream.from_bytes(b.to_bytes()) == b

    def test_link_roundtrip(self):
        b = PartialBitstream(ReconfigKind.LINK, (1, 2), aux=2, label="")
        assert PartialBitstream.from_bytes(b.to_bytes()) == b

    def test_bad_magic_rejected(self):
        blob = bytearray(PartialBitstream(ReconfigKind.LINK, (0, 0)).to_bytes())
        blob[0] = ord("X")
        with pytest.raises(ReconfigError, match="magic"):
            PartialBitstream.from_bytes(bytes(blob))

    def test_truncated_header_rejected(self):
        with pytest.raises(ReconfigError, match="truncated"):
            PartialBitstream.from_bytes(b"RP")

    def test_truncated_payload_rejected(self):
        blob = PartialBitstream(ReconfigKind.IMEM, (0, 0), words=(1, 2)).to_bytes()
        with pytest.raises(ReconfigError, match="payload length"):
            PartialBitstream.from_bytes(blob[:-4])

    @given(
        st.sampled_from([ReconfigKind.IMEM]),
        st.tuples(st.integers(0, 31), st.integers(0, 31)),
        st.lists(st.integers(min_value=-(1 << 70), max_value=(1 << 70)),
                 max_size=16),
    )
    def test_roundtrip_property(self, kind, coord, words):
        b = PartialBitstream(kind, coord, words=tuple(words))
        again = PartialBitstream.from_bytes(b.to_bytes())
        assert again.words == b.words
        assert again.coord == b.coord
        assert again.kind == b.kind
