"""Batch/scalar equivalence of the vector-batched execution tier.

The contract of :mod:`repro.fabric.batch` is *bit-identity*: executing K
payloads through one batched dispatch must leave every lane's final data
memory — and therefore every decoded output — exactly equal to K
sequential scalar ``execute_artifact`` runs, including lanes whose
control flow diverges from the pilot and degrades to the scalar path.
Hypothesis drives the equivalence over random payload batches seeded
with exact fixed-point edge values; a hand-assembled branchy program
proves one lane's divergence never poisons its batch mates.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.fabric.assembler import assemble
from repro.fabric.batch import (
    BATCH_JIT_ENV,
    CODEGEN_VERSION,
    DEFAULT_MIN_VECTOR_LANES,
    resolve_jit_tier,
)
from repro.fabric.icap import IcapPort
from repro.fabric.mesh import Mesh
from repro.fabric.rtms import EpochSpec, RuntimeManager
from repro.kernels.fft.decompose import FFTPlan
from repro.kernels.fft.runner import FabricFFT

PLAN = FFTPlan(64, 8, 2)


def _numba_available() -> bool:
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


@pytest.fixture(scope="module")
def runner():
    return FabricFFT(PLAN, link_cost_ns=100.0)


def _warm_rtms(runner):
    mesh = Mesh(PLAN.rows, PLAN.cols)
    rtms = RuntimeManager(mesh, IcapPort(), link_cost_ns=100.0)
    rtms.run_setup(runner.artifact)
    rtms.execute(runner.artifact.pin_epochs())
    return rtms


def _batch_outputs(runner, payloads, **kwargs):
    rtms = _warm_rtms(runner)
    result = rtms.execute_artifact_batch(
        runner.artifact, payloads, **kwargs
    )
    return [runner.read_output_words(l.words) for l in result.lanes], result


# ---------------------------------------------------------------------------
# hypothesis: random batches, fixed-point edge values
# ---------------------------------------------------------------------------

#: Exact fixed-point edge magnitudes (NaN-free by construction): zero,
#: one quantum of the Q-format, and the headroom-safe extremes the FFT
#: input encoder accepts.
_EDGES = (0.0, 2.0**-16, -(2.0**-16), 0.05, -0.05)


@st.composite
def payload_batches(draw):
    k = draw(st.integers(min_value=2, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    xs = (
        rng.standard_normal((k, 64)) + 1j * rng.standard_normal((k, 64))
    ) * 0.01
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        lane = draw(st.integers(min_value=0, max_value=k - 1))
        pos = draw(st.integers(min_value=0, max_value=63))
        xs[lane, pos] = draw(st.sampled_from(_EDGES)) + 1j * draw(
            st.sampled_from(_EDGES)
        )
    return xs


class TestEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(payload_batches())
    def test_random_batches_bit_identical(self, runner, xs):
        outs, result = _batch_outputs(
            runner, list(xs), min_vector_lanes=2
        )
        assert not result.degraded, result.degrade_reason
        assert any(lane.batched for lane in result.lanes)
        for x, out in zip(xs, outs):
            assert np.array_equal(out, runner.run(x).output)

    def test_single_lane_batch_matches_scalar(self, runner):
        rng = np.random.default_rng(7)
        x = (rng.standard_normal(64) + 1j * rng.standard_normal(64)) * 0.01
        outs, result = _batch_outputs(runner, [x])
        # one lane is below every sensible vector floor: scalar path
        assert result.degraded
        assert not result.lanes[0].batched
        assert np.array_equal(outs[0], runner.run(x).output)

    def test_mismatched_lane_shapes_rejected_cleanly(self, runner):
        rng = np.random.default_rng(8)
        good = (rng.standard_normal(64) + 1j * rng.standard_normal(64)) * 0.01
        bad = np.zeros(32, dtype=np.complex128)
        rtms = _warm_rtms(runner)
        before = rtms.now_ns
        with pytest.raises(ReproError):
            rtms.execute_artifact_batch(
                runner.artifact, [good, bad, good], min_vector_lanes=2
            )
        # validation happens during binding, before anything executes
        assert rtms.now_ns == before
        result = rtms.execute_artifact_batch(
            runner.artifact, [good, good], min_vector_lanes=2
        )
        assert np.array_equal(
            runner.read_output_words(result.lanes[0].words),
            runner.read_output_words(result.lanes[1].words),
        )

    def test_empty_batch_rejected(self, runner):
        rtms = _warm_rtms(runner)
        with pytest.raises(ReproError):
            rtms.execute_artifact_batch(runner.artifact, [])


# ---------------------------------------------------------------------------
# per-lane divergence: a hand-assembled branchy program
# ---------------------------------------------------------------------------

def _branchy_program():
    # assembled fresh per test: the footprint profiler caches its control
    # fingerprint on the decoded program, so sharing one program object
    # across tests would couple their warm paths
    return assemble(
        """
        .var ctl
        .var out
            BNZ ctl, special
            MOV out, #111
            JMP end
        special:
            MOV out, #222
        end:
            HALT
        """
    )


class _CtlPort:
    """Input port poking the per-lane control word."""

    name = "ctl"

    def bind(self, payload, tag=""):
        return EpochSpec(name=f"{tag}in", pokes={(0, 0): {0: int(payload)}})


class _CtlPlan:
    input_port = _CtlPort()


class _CtlArtifact:
    """Duck-typed artifact: one tile, control flow decided per lane."""

    rows = 1
    cols = 1
    artifact_hash = ""
    plan = _CtlPlan()

    def __init__(self):
        self.program = _branchy_program()

    def bind(self, payload, tag=""):
        return [
            self.plan.input_port.bind(payload, tag),
            EpochSpec(
                name=f"{tag}run",
                programs={(0, 0): self.program},
                run=[(0, 0)],
            ),
        ]

    def setup_epochs(self):
        return []


class TestDivergence:
    def _run(self, payloads, warm=0):
        mesh = Mesh(1, 1)
        rtms = RuntimeManager(mesh, IcapPort())
        artifact = _CtlArtifact()
        # pin the program and profile the footprint on the warm path
        rtms.execute_artifact(artifact, warm, tag="warm_")
        return rtms.execute_artifact_batch(
            artifact, payloads, min_vector_lanes=2
        )

    def test_diverged_lane_degrades_alone(self):
        result = self._run([0, 0, 1, 0])
        assert not result.degraded, result.degrade_reason
        by_index = {lane.index: lane for lane in result.lanes}
        assert by_index[2].diverged and not by_index[2].batched
        assert by_index[1].batched and by_index[3].batched
        for index, expect in enumerate((111, 111, 222, 111)):
            assert by_index[index].words((0, 0), 1, 1) == [expect], index

    def test_all_lanes_agreeing_with_pilot_stay_batched(self):
        result = self._run([1, 1, 1], warm=1)
        assert not result.degraded
        for lane in result.lanes:
            assert lane.words((0, 0), 1, 1) == [222]
        assert sum(lane.batched for lane in result.lanes) == 2

    def test_pilot_footprint_miss_degrades_exactly(self):
        # the profiled fingerprint (ctl=0) doesn't match the pilot's
        # control word: the whole dispatch demotes to scalar lanes, and
        # every output is still exact
        result = self._run([1, 1, 1], warm=0)
        assert result.degraded
        assert "footprint" in result.degrade_reason
        for lane in result.lanes:
            assert not lane.batched
            assert lane.words((0, 0), 1, 1) == [222]


# ---------------------------------------------------------------------------
# JIT tier selection
# ---------------------------------------------------------------------------


class TestJitTier:
    def test_unknown_tier_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="valid tiers"):
            resolve_jit_tier("turbo")
        monkeypatch.setenv(BATCH_JIT_ENV, "warp9")
        with pytest.raises(ValueError, match=BATCH_JIT_ENV):
            resolve_jit_tier()

    def test_auto_degrades_without_numba(self):
        expected = "numba" if _numba_available() else "numpy"
        assert resolve_jit_tier("auto") == expected
        assert resolve_jit_tier(None) in ("numba", "numpy", "off")

    @pytest.mark.skipif(
        _numba_available(), reason="numba installed: explicit request works"
    )
    def test_explicit_numba_without_numba_errors(self):
        with pytest.raises(ValueError, match="numba"):
            resolve_jit_tier("numba")

    def test_off_tier_runs_every_lane_scalar(self, runner):
        rng = np.random.default_rng(9)
        xs = (
            rng.standard_normal((3, 64)) + 1j * rng.standard_normal((3, 64))
        ) * 0.01
        outs, result = _batch_outputs(
            runner, list(xs), jit="off", min_vector_lanes=2
        )
        assert result.degraded and result.jit_tier == "off"
        for x, out in zip(xs, outs):
            assert np.array_equal(out, runner.run(x).output)

    @pytest.mark.skipif(
        not _numba_available(), reason="numba not installed"
    )
    def test_numba_tier_bit_identical(self, runner):
        rng = np.random.default_rng(10)
        xs = (
            rng.standard_normal((4, 64)) + 1j * rng.standard_normal((4, 64))
        ) * 0.01
        outs, result = _batch_outputs(
            runner, list(xs), jit="numba", min_vector_lanes=2
        )
        assert not result.degraded and result.jit_tier == "numba"
        for x, out in zip(xs, outs):
            assert np.array_equal(out, runner.run(x).output)

    def test_default_floor_keeps_small_batches_scalar(self, runner):
        assert DEFAULT_MIN_VECTOR_LANES >= 2
        rng = np.random.default_rng(11)
        xs = (
            rng.standard_normal((2, 64)) + 1j * rng.standard_normal((2, 64))
        ) * 0.01
        _, result = _batch_outputs(runner, list(xs))  # default floor
        assert result.degraded  # 2 lanes < floor: scalar path, still exact


# ---------------------------------------------------------------------------
# generated-source persistence (the cached JIT tier)
# ---------------------------------------------------------------------------


class TestSourcePersistence:
    def test_batch_sources_roundtrip(self, tmp_path):
        from repro.compile.cache import ArtifactCache

        cache = ArtifactCache(disk_dir=tmp_path)
        sources = {"prog@abc123": "def _b0(w):\n    return 0\n"}
        cache.save_batch_sources("deadbeef", CODEGEN_VERSION, sources)
        assert (
            cache.load_batch_sources("deadbeef", CODEGEN_VERSION) == sources
        )
        # a codegen version bump invalidates the persisted source
        assert (
            cache.load_batch_sources("deadbeef", CODEGEN_VERSION + 1) is None
        )
        assert cache.load_batch_sources("cafebabe", CODEGEN_VERSION) is None

    def test_corrupt_source_file_ignored(self, tmp_path):
        from repro.compile.cache import ArtifactCache

        cache = ArtifactCache(disk_dir=tmp_path)
        cache.save_batch_sources("feedface", CODEGEN_VERSION, {"a": "b"})
        path = cache._batch_source_path("feedface")
        path.write_text("{not json")
        fresh = ArtifactCache(disk_dir=tmp_path)
        assert fresh.load_batch_sources("feedface", CODEGEN_VERSION) is None

    def test_batch_run_persists_sources(self, tmp_path, monkeypatch):
        from repro.compile import cache as cache_mod

        from repro.fabric.predecode import predecode

        fresh = cache_mod.ArtifactCache(disk_dir=tmp_path)
        monkeypatch.setattr(cache_mod, "_default_cache", fresh)
        local = FabricFFT(PLAN, link_cost_ns=100.0)
        # tile programs are lru_cache'd, so the decoded programs may carry
        # batch code memoized by earlier tests — drop it so codegen must
        # run again and flush its sources to the cache's disk tier
        for spec in local.artifact.plan.body:
            for prog in spec.programs.values():
                predecode(prog).__dict__.pop("_batch_code", None)
        rng = np.random.default_rng(12)
        xs = (
            rng.standard_normal((3, 64)) + 1j * rng.standard_normal((3, 64))
        ) * 0.01
        _, result = _batch_outputs(local, list(xs), min_vector_lanes=2)
        assert not result.degraded
        persisted = fresh.load_batch_sources(
            local.artifact.artifact_hash, CODEGEN_VERSION
        )
        assert persisted  # the dispatch wrote its generated sources
        assert all(src.strip() for src in persisted.values())
