"""Link model: directions, state tracking, change counting."""

import pytest

from repro.errors import LinkError
from repro.fabric.links import Direction, LinkState


class TestDirection:
    def test_opposites(self):
        assert Direction.NORTH.opposite is Direction.SOUTH
        assert Direction.EAST.opposite is Direction.WEST
        for d in Direction:
            assert d.opposite.opposite is d

    def test_deltas_are_unit_steps(self):
        for d in Direction:
            dr, dc = d.delta
            assert abs(dr) + abs(dc) == 1

    def test_north_decreases_row(self):
        assert Direction.NORTH.delta == (-1, 0)

    def test_code_roundtrip(self):
        for d in Direction:
            assert Direction.from_code(d.code) is d

    def test_invalid_code(self):
        with pytest.raises(LinkError):
            Direction.from_code(9)

    def test_from_name_short_and_long(self):
        assert Direction.from_name("n") is Direction.NORTH
        assert Direction.from_name("EAST") is Direction.EAST
        with pytest.raises(LinkError):
            Direction.from_name("up")


class TestLinkState:
    def test_initially_detached(self):
        assert LinkState().get((0, 0)) is None

    def test_configure_reports_change(self):
        state = LinkState()
        assert state.configure((0, 0), Direction.EAST) is True
        assert state.configure((0, 0), Direction.EAST) is False
        assert state.configure((0, 0), Direction.SOUTH) is True
        assert state.reconfig_count == 2

    def test_detach(self):
        state = LinkState()
        state.configure((0, 0), Direction.EAST)
        assert state.configure((0, 0), None) is True
        assert state.get((0, 0)) is None

    def test_changed_links_counts_diffs(self):
        state = LinkState()
        state.configure((0, 0), Direction.EAST)
        state.configure((0, 1), Direction.SOUTH)
        target = {(0, 0): Direction.EAST, (0, 1): Direction.NORTH,
                  (1, 0): Direction.WEST}
        assert state.changed_links(target) == 2

    def test_changed_links_does_not_mutate(self):
        state = LinkState()
        state.changed_links({(0, 0): Direction.EAST})
        assert state.get((0, 0)) is None

    def test_apply_returns_change_count(self):
        state = LinkState()
        # detached -> None is a no-op, detached -> EAST is one change
        changed = state.apply({(0, 0): Direction.EAST, (0, 1): None})
        assert changed == 1
        assert state.apply({(0, 0): Direction.EAST, (0, 1): None}) == 0

    def test_as_dict_snapshot(self):
        state = LinkState()
        state.configure((1, 1), Direction.WEST)
        snap = state.as_dict()
        snap[(1, 1)] = Direction.EAST
        assert state.get((1, 1)) is Direction.WEST
