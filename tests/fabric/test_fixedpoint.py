"""Fixed-point arithmetic: wrapping, encoding, MULQ semantics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fabric.fixedpoint import (
    Q14,
    Q30,
    WORD_BITS,
    WORD_MAX,
    WORD_MIN,
    FixedPointFormat,
    is_word,
    wrap_word,
)

words = st.integers(min_value=WORD_MIN, max_value=WORD_MAX)


class TestWrapWord:
    def test_identity_in_range(self):
        for v in (0, 1, -1, WORD_MAX, WORD_MIN):
            assert wrap_word(v) == v

    def test_wraps_positive_overflow(self):
        assert wrap_word(WORD_MAX + 1) == WORD_MIN

    def test_wraps_negative_overflow(self):
        assert wrap_word(WORD_MIN - 1) == WORD_MAX

    def test_full_period(self):
        assert wrap_word(1 << WORD_BITS) == 0

    @given(st.integers(min_value=-(1 << 96), max_value=1 << 96))
    def test_always_in_range(self, v):
        assert is_word(wrap_word(v))

    @given(words, st.integers(min_value=-4, max_value=4))
    def test_congruent_mod_2_48(self, v, k):
        assert wrap_word(v + k * (1 << WORD_BITS)) == v


class TestFormat:
    def test_q30_scale(self):
        assert Q30.scale == 1 << 30
        assert Q30.resolution == pytest.approx(2**-30)

    def test_invalid_frac_bits(self):
        with pytest.raises(ValueError):
            FixedPointFormat(-1)
        with pytest.raises(ValueError):
            FixedPointFormat(WORD_BITS - 1)

    def test_encode_decode_exact_powers(self):
        for v in (0.0, 1.0, -1.0, 0.5, -0.25):
            assert Q30.decode(Q30.encode(v)) == v

    def test_encode_rounds_to_nearest(self):
        lsb = Q30.resolution
        assert Q30.encode(lsb * 0.49) == 0
        assert Q30.encode(lsb * 0.51) == 1

    def test_encode_overflow_raises(self):
        with pytest.raises(OverflowError):
            Q30.encode(Q30.max_value * 2)

    @given(st.floats(min_value=-1000.0, max_value=1000.0))
    def test_roundtrip_within_half_lsb(self, v):
        assert abs(Q30.decode(Q30.encode(v)) - v) <= Q30.resolution / 2

    def test_mul_matches_float(self):
        a, b = 0.123, -4.56
        got = Q30.decode(Q30.mul(Q30.encode(a), Q30.encode(b)))
        assert got == pytest.approx(a * b, abs=1e-8)

    @given(
        st.floats(min_value=-100.0, max_value=100.0),
        st.floats(min_value=-100.0, max_value=100.0),
    )
    def test_mul_error_bounded(self, a, b):
        got = Q30.decode(Q30.mul(Q30.encode(a), Q30.encode(b)))
        assert abs(got - a * b) < 1e-6

    def test_q14_coarser_than_q30(self):
        assert Q14.resolution > Q30.resolution

    def test_array_roundtrip(self, rng):
        values = rng.standard_normal((3, 4))
        decoded = Q30.decode_array(Q30.encode_array(values))
        np.testing.assert_allclose(decoded, values, atol=2**-30)

    def test_array_preserves_shape(self, rng):
        values = rng.standard_normal((2, 5))
        assert Q30.encode_array(values).shape == (2, 5)
