"""Tracing: event collection, Gantt rendering, CSV, report adapter."""

import pytest

from repro.errors import FabricError
from repro.fabric.assembler import assemble
from repro.fabric.icap import IcapPort
from repro.fabric.mesh import Mesh
from repro.fabric.rtms import EpochSpec, RuntimeManager
from repro.fabric.trace import EventKind, TraceEvent, Tracer, trace_report


def event(kind, label, start, end, coord=None):
    return TraceEvent(kind, label, start, end, coord)


class TestEvents:
    def test_duration(self):
        assert event(EventKind.EPOCH, "e", 10.0, 30.0).duration_ns == 20.0

    def test_negative_duration_rejected(self):
        with pytest.raises(FabricError):
            event(EventKind.EPOCH, "e", 30.0, 10.0)


class TestTracer:
    @pytest.fixture
    def tracer(self):
        t = Tracer()
        t.add(event(EventKind.EPOCH, "e0", 0, 100))
        t.add(event(EventKind.COMPUTE, "c0", 0, 60, (0, 0)))
        t.add(event(EventKind.COMPUTE, "c1", 20, 100, (0, 1)))
        t.add(event(EventKind.RECONFIG, "r0", 60, 90, (0, 0)))
        return t

    def test_filtering(self, tracer):
        assert len(tracer.of_kind(EventKind.COMPUTE)) == 2
        assert len(tracer.for_tile((0, 0))) == 2

    def test_span(self, tracer):
        assert tracer.span_ns == 100.0
        assert Tracer().span_ns == 0.0

    def test_busy_by_kind(self, tracer):
        assert tracer.busy_ns((0, 0)) == 60.0
        assert tracer.busy_ns((0, 0), EventKind.RECONFIG) == 30.0

    def test_gantt_rows_and_symbols(self, tracer):
        chart = tracer.gantt(width=40)
        lines = chart.splitlines()
        assert len(lines) == 3  # axis + two tiles
        assert "#" in lines[1]
        assert "r" in lines[1]  # reconfig visible on tile (0,0)

    def test_gantt_width_validated(self, tracer):
        with pytest.raises(FabricError):
            tracer.gantt(width=4)

    def test_gantt_empty(self):
        assert "(empty trace)" in Tracer().gantt()

    def test_csv_structure(self, tracer):
        csv = tracer.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0].startswith("kind,label")
        assert len(lines) == 5
        assert any("compute,c0,0:0" in line for line in lines)


class TestReportAdapter:
    def test_trace_of_real_run(self):
        mesh = Mesh(1, 2)
        rtms = RuntimeManager(mesh, IcapPort())
        prog = assemble("\n".join(["NOP"] * 40) + "\nHALT", name="w")
        report = rtms.execute(
            [
                EpochSpec("a", programs={(0, 0): prog}, run=[(0, 0)]),
                EpochSpec("b", programs={(0, 1): prog}, run=[(0, 1)]),
            ]
        )
        tracer = trace_report(report)
        assert len(tracer.of_kind(EventKind.EPOCH)) == 2
        assert len(tracer.of_kind(EventKind.COMPUTE)) == 2
        assert len(tracer.of_kind(EventKind.RECONFIG)) == 2
        assert tracer.busy_ns((0, 0)) == pytest.approx(
            report.epochs[0].busy_ns[(0, 0)]
        )
        chart = tracer.gantt()
        assert "T0_0" in chart and "T0_1" in chart
