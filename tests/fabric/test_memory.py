"""Tile memories: bounds, wrapping, counters, program capacity."""

import pytest

from repro.errors import MemoryError_
from repro.fabric.assembler import assemble
from repro.fabric.fixedpoint import WORD_MAX
from repro.fabric.memory import DataMemory, InstructionMemory


class TestDataMemory:
    def test_default_size(self):
        assert DataMemory().size == 512

    def test_read_write(self):
        mem = DataMemory()
        mem.write(3, 42)
        assert mem.read(3) == 42

    def test_bounds_checked(self):
        mem = DataMemory()
        with pytest.raises(MemoryError_):
            mem.read(512)
        with pytest.raises(MemoryError_):
            mem.write(-1, 0)

    def test_non_integer_address_rejected(self):
        with pytest.raises(MemoryError_):
            DataMemory().read("3")  # type: ignore[arg-type]

    def test_writes_wrap_to_48_bits(self):
        mem = DataMemory()
        mem.write(0, WORD_MAX + 1)
        assert mem.read(0) == -(WORD_MAX + 1)

    def test_counters(self):
        mem = DataMemory()
        mem.write(0, 1)
        mem.read(0)
        mem.read(0)
        assert (mem.reads, mem.writes) == (2, 1)

    def test_peek_poke_skip_counters(self):
        mem = DataMemory()
        mem.poke(0, 5)
        assert mem.peek(0) == 5
        assert (mem.reads, mem.writes) == (0, 0)

    def test_load_image_counts_reconfig(self):
        mem = DataMemory()
        n = mem.load_image({1: 10, 2: 20}, reconfig=True)
        assert n == 2
        assert mem.reconfig_writes == 2
        assert mem.peek(2) == 20

    def test_block_helpers(self):
        mem = DataMemory()
        mem.load_block(10, [1, 2, 3])
        assert mem.dump_block(10, 3) == [1, 2, 3]

    def test_dump_block_overflow(self):
        with pytest.raises(MemoryError_):
            DataMemory().dump_block(510, 4)

    def test_clear(self):
        mem = DataMemory()
        mem.write(0, 9)
        mem.clear()
        assert mem.peek(0) == 0
        assert mem.writes == 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            DataMemory(0)


class TestInstructionMemory:
    def test_load_and_fetch(self):
        program = assemble("NOP\nHALT")
        imem = InstructionMemory()
        assert imem.load(program.instructions) == 2
        assert imem.fetch(0) is program.instructions[0]

    def test_capacity_enforced(self):
        imem = InstructionMemory(size=4)
        program = assemble("NOP\nNOP\nNOP\nNOP\nHALT")
        with pytest.raises(MemoryError_, match="exceeds instruction memory"):
            imem.load(program.instructions)

    def test_fetch_unloaded_slot(self):
        imem = InstructionMemory()
        with pytest.raises(MemoryError_, match="unloaded"):
            imem.fetch(0)

    def test_fetch_out_of_range(self):
        imem = InstructionMemory()
        with pytest.raises(MemoryError_):
            imem.fetch(512)

    def test_loaded_words(self):
        imem = InstructionMemory()
        imem.load(assemble("NOP\nNOP\nHALT").instructions)
        assert imem.loaded_words() == 3

    def test_reconfig_counter(self):
        imem = InstructionMemory()
        imem.load(assemble("HALT").instructions, reconfig=True)
        assert imem.reconfig_writes == 1

    def test_clear(self):
        imem = InstructionMemory()
        imem.load(assemble("HALT").instructions)
        imem.clear()
        assert imem.loaded_words() == 0


class TestDataMemoryScrubPrimitives:
    """snapshot / load_words / diff — what readback scrubbing builds on."""

    def test_diff_against_snapshot(self):
        mem = DataMemory(size=8)
        golden = mem.snapshot()
        mem.poke(2, 5)
        mem.poke(6, -1)
        assert mem.diff(golden) == [2, 6]

    def test_diff_against_memory(self):
        a, b = DataMemory(size=8), DataMemory(size=8)
        a.poke(3, 7)
        assert a.diff(b) == [3]
        assert b.diff(a) == [3]

    def test_diff_clean_is_empty(self):
        mem = DataMemory(size=8)
        assert mem.diff(mem.snapshot()) == []

    def test_diff_size_mismatch_rejected(self):
        with pytest.raises(MemoryError_):
            DataMemory(size=8).diff([0] * 7)

    def test_diff_does_not_touch_port_counters(self):
        mem = DataMemory(size=8)
        mem.diff(mem.snapshot())
        assert (mem.reads, mem.writes) == (0, 0)

    def test_load_words_restores_snapshot(self):
        mem = DataMemory(size=8)
        mem.poke(1, 42)
        golden = mem.snapshot()
        mem.poke(1, 0)
        mem.load_words(golden)
        assert mem.peek(1) == 42
        with pytest.raises(MemoryError_):
            mem.load_words([0] * 7)


class TestInstructionMemoryCorruption:
    """SEU sentinel, repair, identity diff."""

    def _loaded(self):
        imem = InstructionMemory(size=8)
        imem.load(assemble("NOP\nNOP\nHALT").instructions, base=2)
        return imem

    def test_corrupt_then_fetch_raises_faulterror(self):
        from repro.errors import FaultError

        imem = self._loaded()
        imem.corrupt_slot(3)
        assert imem.has_corruption
        assert imem.corrupted_slots() == [3]
        with pytest.raises(FaultError, match="SEU-corrupted"):
            imem.fetch(3)

    def test_repair_restores_original_word(self):
        imem = self._loaded()
        original = imem.peek_slot(3)
        imem.corrupt_slot(3)
        imem.repair_slot(3)
        assert imem.peek_slot(3) is original
        assert not imem.has_corruption

    def test_corrupting_corrupt_slot_is_stuck_at_noop(self):
        imem = self._loaded()
        original = imem.peek_slot(3)
        imem.corrupt_slot(3)
        imem.corrupt_slot(3)  # keeps the original pre-fault image
        imem.repair_slot(3)
        assert imem.peek_slot(3) is original

    def test_diff_is_identity_based(self):
        imem = self._loaded()
        golden = imem.snapshot()
        imem.corrupt_slot(2)
        assert imem.diff(golden) == [2]
        imem.load_slots(golden)  # golden rewrite clears corruption
        assert imem.diff(golden) == []
        assert not imem.has_corruption
        with pytest.raises(MemoryError_):
            imem.diff(golden[:-1])

    def test_loaded_addrs_and_peek(self):
        imem = self._loaded()
        assert imem.loaded_addrs() == [2, 3, 4]
        assert imem.peek_slot(0) is None
        with pytest.raises(MemoryError_):
            imem.peek_slot(8)
