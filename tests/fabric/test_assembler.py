"""Assembler: directives, operand syntax, labels, errors."""

import pytest

from repro.errors import AssemblerError
from repro.fabric.assembler import assemble
from repro.fabric.isa import AddrMode, Opcode
from repro.fabric.tile import Tile


class TestDirectives:
    def test_var_allocates_sequentially(self):
        p = assemble(".var a\n.var b\n.var c, 3\n.var d\nHALT")
        assert p.symbols == {"a": 0, "b": 1, "c": 2, "d": 5}

    def test_org_moves_pointer(self):
        p = assemble(".org 100\n.var a\nHALT")
        assert p.symbols["a"] == 100

    def test_equ_constant(self):
        p = assemble(".equ N, 16\n.var a\nMOV a, #N\nHALT")
        assert p.instructions[0].src1.value == 16

    def test_word_initial_data(self):
        p = assemble(".var buf, 4\n.word buf, 10, 20, 30\nHALT")
        assert p.data_image == {0: 10, 1: 20, 2: 30}

    def test_word_with_offset_expression(self):
        p = assemble(".var buf, 4\n.word buf+2, 7\nHALT")
        assert p.data_image == {2: 7}

    def test_duplicate_var_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".var a\n.var a\nHALT")

    def test_var_overflow_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".org 510\n.var big, 10\nHALT")

    def test_unknown_directive_rejected(self):
        with pytest.raises(AssemblerError, match="unknown directive"):
            assemble(".bogus 3\nHALT")


class TestOperands:
    def test_modes(self):
        p = assemble(".var a\n.var b\nADD a, #5, @b\nHALT")
        instr = p.instructions[0]
        assert instr.dst.mode is AddrMode.DIR
        assert instr.src1.mode is AddrMode.IMM
        assert instr.src2.mode is AddrMode.IND

    def test_numeric_addresses(self):
        p = assemble("MOV 100, #0\nHALT")
        assert p.instructions[0].dst.value == 100

    def test_negative_immediate(self):
        p = assemble(".var a\nMOV a, #-42\nHALT")
        assert p.instructions[0].src1.value == -42

    def test_hex_numbers(self):
        p = assemble("MOV 0x10, #0xFF\nHALT")
        assert p.instructions[0].dst.value == 16
        assert p.instructions[0].src1.value == 255

    def test_out_of_range_address(self):
        with pytest.raises(AssemblerError):
            assemble("MOV 512, #0\nHALT")

    def test_unknown_symbol_reports_line(self):
        with pytest.raises(AssemblerError, match="line 2"):
            assemble("NOP\nMOV nope, #0\nHALT")


class TestLabelsAndBranches:
    def test_forward_and_backward_labels(self):
        p = assemble(
            """
            .var c
                MOV c, #2
            top:
                SUB c, c, #1
                BNZ c, top
                JMP end
                NOP
            end:
                HALT
            """
        )
        assert p.labels["top"] == 1
        assert p.instructions[2].aux == 1  # BNZ -> top
        assert p.instructions[3].aux == 5  # JMP -> end

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate label"):
            assemble("x: NOP\nx: HALT")

    def test_label_with_inline_instruction(self):
        p = assemble("start: NOP\nJMP start")
        assert p.labels["start"] == 0


class TestMnemonics:
    def test_ldi_alias(self):
        p = assemble(".var a\nLDI a, #9\nHALT")
        assert p.instructions[0].opcode is Opcode.MOV

    def test_snb_directions(self):
        for d, code in (("N", 0), ("E", 1), ("S", 2), ("W", 3)):
            p = assemble(f".var v\nSNB.{d} 0, v\nHALT")
            assert p.instructions[0].aux == code

    def test_snb_without_direction_rejected(self):
        with pytest.raises(AssemblerError, match="direction"):
            assemble(".var v\nSNB 0, v\nHALT")

    def test_mulq_four_operands(self):
        p = assemble(".var a\nMULQ a, a, a, 30\nHALT")
        assert p.instructions[0].aux == 30

    def test_wrong_arity_rejected(self):
        with pytest.raises(AssemblerError, match="expects"):
            assemble(".var a\nADD a, a\nHALT")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("FROB 1, 2\nHALT")

    def test_case_insensitive_mnemonics(self):
        p = assemble(".var a\nmov a, #1\nhalt")
        assert p.instructions[0].opcode is Opcode.MOV


class TestProgram:
    def test_imem_accounting(self):
        p = assemble("NOP\nNOP\nHALT", name="three")
        assert p.imem_words == 3
        assert p.imem_bytes == 27
        assert len(p) == 3

    def test_too_many_instructions_rejected(self):
        source = "\n".join(["NOP"] * 513)
        with pytest.raises(AssemblerError, match="instruction memory"):
            assemble(source)

    def test_addr_lookup(self):
        p = assemble(".var x\nHALT")
        assert p.addr("x") == 0
        with pytest.raises(AssemblerError):
            p.addr("y")

    def test_encoded_length_matches(self):
        p = assemble("NOP\nNOP\nHALT")
        assert len(p.encoded()) == 3

    def test_comments_ignored(self):
        p = assemble("; leading comment\nNOP ; trailing\nHALT")
        assert p.imem_words == 2


class TestEndToEnd:
    def test_factorial_program(self):
        p = assemble(
            """
            .var result
            .var n
            .word n, 5
                MOV result, #1
            loop:
                MUL result, result, n
                SUB n, n, #1
                BNZ n, loop
                HALT
            """
        )
        tile = Tile()
        tile.load_program(p)
        tile.run()
        assert tile.dmem.peek(p.addr("result")) == 120

    def test_indirect_table_walk(self):
        p = assemble(
            """
            .var best
            .var ptr
            .var cnt
            .var tbl, 5
            .word tbl, 3, 9, 2, 8, 5
            .word cnt, 5
                MOV best, #0
                MOV ptr, #tbl
            loop:
                MAX best, best, @ptr
                ADD ptr, ptr, #1
                SUB cnt, cnt, #1
                BNZ cnt, loop
                HALT
            """
        )
        tile = Tile()
        tile.load_program(p)
        tile.run()
        assert tile.dmem.peek(p.addr("best")) == 9
