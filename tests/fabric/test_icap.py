"""ICAP model: bandwidth, serialization, published word costs."""

import pytest

from repro.errors import ReconfigError
from repro.fabric.icap import IcapPort
from repro.units import DMEM_WORD_RELOAD_NS, IMEM_WORD_RELOAD_NS


class TestRates:
    def test_published_word_costs(self):
        # 48-bit data word = 6 bytes at 180 MB/s = 33.33 ns (Sec. 3.1)
        assert DMEM_WORD_RELOAD_NS == pytest.approx(33.33, abs=0.01)
        # 72-bit instruction word = 9 bytes = 50 ns
        assert IMEM_WORD_RELOAD_NS == pytest.approx(50.0)

    def test_transfer_duration(self):
        icap = IcapPort()
        assert icap.transfer_ns(6) == pytest.approx(DMEM_WORD_RELOAD_NS)
        assert icap.transfer_ns(180e6) == pytest.approx(1e9)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ReconfigError):
            IcapPort().transfer_ns(-1)

    def test_invalid_bandwidth(self):
        with pytest.raises(ReconfigError):
            IcapPort(bandwidth_bytes_per_s=0)


class TestSerialization:
    def test_back_to_back_transfers_queue(self):
        icap = IcapPort()
        s1, e1 = icap.schedule(6, earliest_ns=0)
        s2, e2 = icap.schedule(6, earliest_ns=0)
        assert s1 == 0 and s2 == e1
        assert e2 == pytest.approx(2 * DMEM_WORD_RELOAD_NS)

    def test_earliest_constraint_respected(self):
        icap = IcapPort()
        start, _ = icap.schedule(6, earliest_ns=1000)
        assert start == 1000

    def test_port_gap_not_reused(self):
        icap = IcapPort()
        icap.schedule(6, earliest_ns=1000)
        # A later request cannot start before the port frees, even if its
        # own earliest time already passed.
        start, _ = icap.schedule(6, earliest_ns=0)
        assert start == pytest.approx(1000 + DMEM_WORD_RELOAD_NS)

    def test_fixed_duration_operations(self):
        icap = IcapPort()
        start, end = icap.schedule_fixed(500, earliest_ns=10)
        assert (start, end) == (10, 510)
        with pytest.raises(ReconfigError):
            icap.schedule_fixed(-1)

    def test_total_busy_and_reset(self):
        icap = IcapPort()
        icap.schedule(6)
        icap.schedule_fixed(100)
        assert icap.total_busy_ns == pytest.approx(DMEM_WORD_RELOAD_NS + 100)
        icap.reset()
        assert icap.busy_until_ns == 0
        assert icap.transfers == []

    def test_transfer_labels_recorded(self):
        icap = IcapPort()
        icap.schedule(6, label="dmem:test")
        assert icap.transfers[0].label == "dmem:test"
        assert icap.transfers[0].duration_ns == pytest.approx(DMEM_WORD_RELOAD_NS)


class TestScrubInterleaving:
    """Scrub readback/repair and epoch reconfiguration share one port."""

    def test_interleaved_transfers_serialize_in_order(self):
        icap = IcapPort()
        icap.schedule(6, earliest_ns=0, label="reconfig:imem")
        icap.schedule(64 * 6, earliest_ns=0, label="scrub:rb:d(0, 0)")
        icap.schedule(6, earliest_ns=0, label="reconfig:dmem")
        icap.schedule(6, earliest_ns=0, label="scrub:rw:d(0, 0)")
        labels = [t.label for t in icap.transfers]
        assert labels == [
            "reconfig:imem", "scrub:rb:d(0, 0)",
            "reconfig:dmem", "scrub:rw:d(0, 0)",
        ]
        # No overlap anywhere: each transfer starts when the last ended.
        for prev, cur in zip(icap.transfers, icap.transfers[1:]):
            assert cur.start_ns == pytest.approx(prev.end_ns)

    def test_scrub_delays_reconfiguration(self):
        # A pending scrub readback pushes the next epoch's stream out —
        # the Eq. 1 interaction the shared port forces.
        icap = IcapPort()
        _, scrub_end = icap.schedule(512 * 6, earliest_ns=0, label="scrub:rb")
        start, _ = icap.schedule(6, earliest_ns=0, label="reconfig:imem")
        assert start == pytest.approx(scrub_end)

    def test_busy_until_monotone_under_interleaving(self):
        icap = IcapPort()
        seen = [icap.busy_until_ns]
        for i, (nbytes, label) in enumerate(
            [(6, "reconfig:a"), (384, "scrub:rb:x"), (0, "scrub:rb:empty"),
             (9, "reconfig:b"), (54, "scrub:rw:x")]
        ):
            icap.schedule(nbytes, earliest_ns=10.0 * i, label=label)
            seen.append(icap.busy_until_ns)
        assert seen == sorted(seen)

    def test_busy_ns_by_prefix_splits_the_timeline(self):
        icap = IcapPort()
        icap.schedule(600, label="reconfig:imem")
        icap.schedule(1200, label="scrub:rb:d(0, 0)")
        icap.schedule_fixed(100, label="scrub:rw:l(0, 0)")
        scrub = icap.busy_ns_by_prefix("scrub:")
        other = icap.total_busy_ns - scrub
        assert scrub == pytest.approx(icap.transfer_ns(1200) + 100)
        assert other == pytest.approx(icap.transfer_ns(600))

    def test_zero_size_transfer_is_instant_but_recorded(self):
        icap = IcapPort()
        icap.schedule(6, label="reconfig:a")
        start, end = icap.schedule(0, label="scrub:rb:empty")
        assert start == end == icap.transfers[0].end_ns
        assert len(icap.transfers) == 2

    def test_negative_sizes_rejected_mid_stream(self):
        icap = IcapPort()
        icap.schedule(6, label="reconfig:a")
        before = icap.busy_until_ns
        with pytest.raises(ReconfigError):
            icap.schedule(-6, label="scrub:rb:bad")
        with pytest.raises(ReconfigError):
            icap.schedule_fixed(-1, label="scrub:rw:bad")
        # A rejected request must not corrupt the timeline.
        assert icap.busy_until_ns == before
        assert len(icap.transfers) == 1
