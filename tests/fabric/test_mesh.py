"""Mesh topology, link legality and statistics."""

import pytest

from repro.errors import LinkError
from repro.fabric.links import Direction
from repro.fabric.mesh import Mesh


class TestTopology:
    def test_size_and_iteration(self):
        mesh = Mesh(3, 4)
        assert len(mesh) == 12
        assert len(list(mesh)) == 12

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Mesh(0, 3)

    def test_tile_lookup(self, mesh2x2):
        assert mesh2x2.tile((1, 1)).coord == (1, 1)
        with pytest.raises(LinkError):
            mesh2x2.tile((2, 0))

    def test_contains(self, mesh2x2):
        assert (0, 1) in mesh2x2
        assert (5, 5) not in mesh2x2

    def test_neighbour_coord(self, mesh2x2):
        assert mesh2x2.neighbour_coord((0, 0), Direction.EAST) == (0, 1)
        assert mesh2x2.neighbour_coord((1, 0), Direction.NORTH) == (0, 0)

    def test_neighbour_off_mesh(self, mesh2x2):
        with pytest.raises(LinkError, match="no neighbour"):
            mesh2x2.neighbour_coord((0, 0), Direction.NORTH)

    def test_neighbours_map(self):
        mesh = Mesh(3, 3)
        centre = mesh.neighbours((1, 1))
        assert len(centre) == 4
        corner = mesh.neighbours((0, 0))
        assert set(corner) == {Direction.EAST, Direction.SOUTH}


class TestLinks:
    def test_configure_valid(self, mesh2x2):
        assert mesh2x2.configure_link((0, 0), Direction.SOUTH) is True
        assert mesh2x2.active_link((0, 0)) is Direction.SOUTH

    def test_configure_off_mesh_rejected(self, mesh2x2):
        with pytest.raises(LinkError):
            mesh2x2.configure_link((0, 0), Direction.WEST)

    def test_reconfigure_counts(self, mesh2x2):
        mesh2x2.configure_link((0, 0), Direction.EAST)
        mesh2x2.configure_link((0, 0), Direction.SOUTH)
        mesh2x2.configure_link((0, 0), Direction.SOUTH)  # no-op
        assert mesh2x2.links.reconfig_count == 2

    def test_detach(self, mesh2x2):
        mesh2x2.configure_link((0, 0), Direction.EAST)
        mesh2x2.configure_link((0, 0), None)
        assert mesh2x2.active_link((0, 0)) is None

    def test_describe_shows_arrows(self, mesh2x2):
        mesh2x2.configure_link((0, 0), Direction.EAST)
        picture = mesh2x2.describe()
        assert picture.splitlines()[0].startswith(">")


class TestStats:
    def test_total_cycles_and_reset(self, mesh1x2):
        from repro.fabric.assembler import assemble

        tile = mesh1x2.tile((0, 0))
        tile.load_program(assemble("NOP\nNOP\nHALT"))
        tile.run()
        assert mesh1x2.total_cycles() == 3
        mesh1x2.reset_stats()
        assert mesh1x2.total_cycles() == 0
