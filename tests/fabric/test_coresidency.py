"""Program co-residency: packing, relocation, eviction, selection."""

import pytest

from repro.errors import ExecutionError
from repro.fabric.assembler import assemble
from repro.fabric.tile import Tile

LOOP = assemble(
    """
    .var a
    .var c
        MOV a, #0
        MOV c, #3
    top:
        ADD a, a, #2
        SUB c, c, #1
        BNZ c, top
        HALT
    """,
    name="loop",
)
INC = assemble(".var b\n.org 1\nADD 5, 5, #1\nHALT", name="inc")
BIG = assemble("\n".join(["NOP"] * 509) + "\nHALT", name="big")


class TestInstall:
    def test_programs_pack_sequentially(self):
        tile = Tile()
        base_a = tile.install_program(LOOP)
        base_b = tile.install_program(INC)
        assert base_a == 0
        assert base_b == LOOP.imem_words
        assert tile.imem_free_words == 512 - LOOP.imem_words - INC.imem_words

    def test_reinstall_is_idempotent(self):
        tile = Tile()
        first = tile.install_program(LOOP)
        again = tile.install_program(LOOP)
        assert first == again
        assert len(tile._resident) == 1

    def test_oversized_program_rejected(self):
        from repro.fabric.memory import InstructionMemory

        tile = Tile(imem=InstructionMemory(size=4))
        with pytest.raises(ExecutionError, match="exceeds"):
            tile.install_program(LOOP)  # 6 words into a 4-word store

    def test_overflow_evicts_wholesale(self):
        tile = Tile()
        tile.install_program(LOOP)
        tile.install_program(BIG)  # 510 words: cannot fit next to LOOP
        assert tile.resident_base(LOOP) is None
        assert tile.resident_base(BIG) == 0


class TestRelocatedExecution:
    def test_branches_work_at_nonzero_base(self):
        tile = Tile()
        tile.install_program(INC)       # occupies [0, 2)
        base = tile.install_program(LOOP)
        assert base > 0
        tile.start(LOOP)
        tile.run()
        assert tile.dmem.peek(LOOP.addr("a")) == 6  # 3 iterations x +2

    def test_switching_between_residents(self):
        tile = Tile()
        tile.install_program(LOOP)
        tile.install_program(INC)
        tile.start(LOOP)
        tile.run()
        tile.start(INC)
        tile.run()
        tile.start(INC)  # re-run without any reload
        tile.run()
        assert tile.dmem.peek(5) == 2
        assert tile.dmem.peek(LOOP.addr("a")) == 6

    def test_start_non_resident_rejected(self):
        tile = Tile()
        with pytest.raises(ExecutionError, match="not resident"):
            tile.start(LOOP)

    def test_restart_uses_current_entry(self):
        tile = Tile()
        tile.install_program(INC)
        tile.install_program(LOOP)
        tile.start(LOOP)
        tile.run()
        tile.restart()
        tile.run()
        assert tile.dmem.peek(LOOP.addr("a")) == 6  # rerun from its base


class TestRTMSIntegration:
    def test_second_program_load_smaller_than_first(self):
        """Installing program B next to A transfers only B's words."""
        from repro.fabric.icap import IcapPort
        from repro.fabric.mesh import Mesh
        from repro.fabric.rtms import EpochSpec, RuntimeManager

        mesh = Mesh(1, 1)
        rtms = RuntimeManager(mesh, IcapPort())
        rtms.execute([EpochSpec("a", programs={(0, 0): LOOP}, run=[(0, 0)])])
        report = rtms.execute(
            [EpochSpec("b", programs={(0, 0): INC}, run=[(0, 0)])]
        )
        assert report.epochs[0].reconfig_bytes == INC.imem_bytes
        # and going back to LOOP is free — it stayed resident
        report = rtms.execute(
            [EpochSpec("a2", programs={(0, 0): LOOP}, run=[(0, 0)])]
        )
        assert report.epochs[0].reconfig_bytes == 0
