"""Lock-step concurrent execution: timing, interleaving, exchange safety."""

import pytest

from repro.errors import ExecutionError
from repro.fabric.assembler import assemble
from repro.fabric.links import Direction
from repro.fabric.mesh import Mesh
from repro.fabric.simulator import run_concurrent
from repro.units import CYCLE_NS


def loaded(mesh, coord, source):
    tile = mesh.tile(coord)
    tile.load_program(assemble(source, name=f"p{coord}"))
    return tile


class TestTiming:
    def test_makespan_is_slowest_tile(self, mesh1x2):
        fast = loaded(mesh1x2, (0, 0), "NOP\nHALT")
        slow = loaded(mesh1x2, (0, 1), "NOP\nNOP\nNOP\nNOP\nHALT")
        result = run_concurrent([fast, slow])
        assert result.makespan_ns == pytest.approx(5 * CYCLE_NS)
        assert result.busy_ns[(0, 0)] == pytest.approx(2 * CYCLE_NS)

    def test_start_offset_excluded_from_makespan(self, mesh1x2):
        tile = loaded(mesh1x2, (0, 0), "NOP\nHALT")
        result = run_concurrent([tile], start_ns=1000.0)
        assert result.makespan_ns == pytest.approx(2 * CYCLE_NS)

    def test_instruction_counts(self, mesh1x2):
        a = loaded(mesh1x2, (0, 0), "NOP\nNOP\nHALT")
        result = run_concurrent([a])
        assert result.instructions[(0, 0)] == 3

    def test_utilization(self, mesh1x2):
        a = loaded(mesh1x2, (0, 0), "NOP\nHALT")
        b = loaded(mesh1x2, (0, 1), "NOP\nNOP\nNOP\nHALT")
        result = run_concurrent([a, b])
        assert result.utilization == pytest.approx((2 + 4) / (2 * 4))

    def test_empty_run(self):
        assert run_concurrent([]).makespan_ns == 0.0


class TestValidation:
    def test_halted_tile_rejected(self, mesh1x2):
        tile = loaded(mesh1x2, (0, 0), "HALT")
        tile.run()
        with pytest.raises(ExecutionError, match="halted"):
            run_concurrent([tile])

    def test_duplicate_coordinates_rejected(self):
        mesh_a, mesh_b = Mesh(1, 1), Mesh(1, 1)
        a = loaded(mesh_a, (0, 0), "HALT")
        b = loaded(mesh_b, (0, 0), "HALT")
        with pytest.raises(ExecutionError, match="duplicate"):
            run_concurrent([a, b])

    def test_runaway_budget(self, mesh1x2):
        tile = loaded(mesh1x2, (0, 0), "x: JMP x")
        with pytest.raises(ExecutionError, match="exceeded"):
            run_concurrent([tile], max_cycles_per_tile=50)


class TestInterleaving:
    def test_paired_exchange_is_correct(self):
        """Two tiles swap buffers simultaneously through SNB stores.

        Each writes its own data into the partner's staging area; the
        time-ordered interleaving must deliver both payloads intact.
        """
        mesh = Mesh(2, 1)
        mesh.configure_link((0, 0), Direction.SOUTH)
        mesh.configure_link((1, 0), Direction.NORTH)
        source = """
        .org 100
        .var cnt
        .var psrc
        .var pdst
            MOV cnt, #8
            MOV psrc, #0
            MOV pdst, #50
        loop:
            SNB.{d} @pdst, @psrc
            ADD psrc, psrc, #1
            ADD pdst, pdst, #1
            SUB cnt, cnt, #1
            BNZ cnt, loop
            HALT
        """
        top = mesh.tile((0, 0))
        bottom = mesh.tile((1, 0))
        for i in range(8):
            top.dmem.poke(i, 100 + i)
            bottom.dmem.poke(i, 200 + i)
        top.load_program(assemble(source.format(d="S"), name="down"))
        bottom.load_program(assemble(source.format(d="N"), name="up"))
        run_concurrent([top, bottom])
        assert [bottom.dmem.peek(50 + i) for i in range(8)] == [100 + i for i in range(8)]
        assert [top.dmem.peek(50 + i) for i in range(8)] == [200 + i for i in range(8)]

    def test_deterministic_tie_breaking(self, mesh1x2):
        a = loaded(mesh1x2, (0, 0), "NOP\nNOP\nHALT")
        b = loaded(mesh1x2, (0, 1), "NOP\nNOP\nHALT")
        r1 = run_concurrent([a, b])
        for t in (a, b):
            t.restart()
        r2 = run_concurrent([b, a])  # order of the list must not matter
        assert r1.busy_ns == r2.busy_ns
