"""Differential tests: fast engine vs the reference interpreter.

Every shipped tile program (the FFT butterflies, copies, and twiddle
generators; the JPEG block stages and Huffman helpers) runs through both
execution tiers on identical data.  The fast path — predecoded closures,
fused superblocks, and the run memo — must be *architecturally invisible*:
final data-memory images, :class:`TileStats`, memory-port counters, and
:class:`ConcurrentRun` makespans all have to match the reference
interpreter bit for bit.

Each single-tile case runs **twice** on fresh tiles so the second pass
exercises the run-memo replay path, not just the compiled blocks.
"""

from __future__ import annotations

import pytest

from repro.fabric.links import Direction
from repro.fabric.mesh import Mesh
from repro.fabric.simulator import run_concurrent
from repro.fabric.tile import Tile
from repro.kernels.fft.programs import (
    FFTLayout,
    QFORMAT,
    bf_exchange_program,
    bf_internal_program,
    copy_pair_program,
    copy_program,
    local_copy_pair_program,
    local_copy_program,
    twiddle_gather_program,
    twiddle_square_program,
)
from repro.kernels.jpeg.programs import (
    PIXEL_QBITS,
    alpha_quantize_program,
    dc_category_program,
    dct_coefficient_words,
    matmul8_program,
    rle_program,
    shift_program,
    zigzag_program,
)

_M = 8
_LAY = FFTLayout(_M)


def _fft_image() -> dict[int, int]:
    """Deterministic FFT data: points, twiddles, and one staging payload."""
    image: dict[int, int] = {}
    for j in range(_M):
        image[_LAY.re + j] = QFORMAT.encode(0.03 * j - 0.11)
        image[_LAY.im + j] = QFORMAT.encode(0.05 - 0.02 * j)
    for j in range(_LAY.half):
        image[_LAY.wre + j] = QFORMAT.encode(0.9 - 0.1 * j)
        image[_LAY.wim + j] = QFORMAT.encode(-0.05 * j)
    # Staging buffer A holds an arrived partner payload (half re + half im
    # per point-group; the buffer is m words: re then im).
    for j in range(_LAY.half):
        image[_LAY.sa + j] = QFORMAT.encode(0.01 * j + 0.2)
        image[_LAY.sa + _LAY.half + j] = QFORMAT.encode(0.3 - 0.01 * j)
    return image


def _jpeg_image() -> dict[int, int]:
    """Deterministic JPEG data: coefficient matrix, pixels, reciprocals."""
    image = {i: w for i, w in enumerate(dct_coefficient_words())}
    for j in range(64):
        image[64 + j] = ((j * 37 + 11) % 256) - 128  # shifted-sample range
        image[192 + j] = 1 << 10  # plausible Q14 reciprocals
    # Sparse zig-zag vector for the RLE scan (EOB + ZRL paths).
    for j in range(64):
        image[320 + j] = (j % 19 == 0) * (j + 1)
    return image


# (name, program, data image) for every shipped silent tile program.
_CASES = [
    ("fft_bf_internal_span1", bf_internal_program(_M, 1), _fft_image()),
    ("fft_bf_internal_span4", bf_internal_program(_M, 4), _fft_image()),
    ("fft_bf_exchange_lower", bf_exchange_program(_M, True, "A", "B"), _fft_image()),
    ("fft_bf_exchange_upper", bf_exchange_program(_M, False, "A", "B"), _fft_image()),
    ("fft_local_copy", local_copy_program(_M, _LAY.sa, _LAY.sc), _fft_image()),
    (
        "fft_local_copy_pair",
        local_copy_pair_program(
            _LAY.half, _LAY.sa, _LAY.re, _LAY.sa + _LAY.half, _LAY.im
        ),
        _fft_image(),
    ),
    (
        "fft_twiddle_gather",
        twiddle_gather_program(_M, ((0, False), (0, True), (1, False), (3, True))),
        _fft_image(),
    ),
    ("fft_twiddle_square", twiddle_square_program(_M), _fft_image()),
    ("jpeg_shift", shift_program(64, 64, PIXEL_QBITS), _jpeg_image()),
    ("jpeg_matmul8", matmul8_program(), _jpeg_image()),
    ("jpeg_matmul8_bt", matmul8_program(transpose_b=True), _jpeg_image()),
    ("jpeg_alpha_quantize", alpha_quantize_program(), _jpeg_image()),
    ("jpeg_zigzag", zigzag_program(a_base=128, out_base=320), _jpeg_image()),
    ("jpeg_dc_category", dc_category_program(), _jpeg_image()),
    ("jpeg_rle", rle_program(), _jpeg_image()),
]


def _run_single(program, image, engine):
    tile = Tile(name=f"eq-{engine}")
    tile.dmem.load_image(image)
    tile.dmem.reset_counters()
    tile.load_program(program)
    cycles = tile.run(engine=engine)
    return tile, cycles


def _assert_tiles_match(fast: Tile, ref: Tile) -> None:
    assert fast.dmem.dump_block(0, 512) == ref.dmem.dump_block(0, 512)
    assert fast.stats == ref.stats
    assert fast.dmem.reads == ref.dmem.reads
    assert fast.dmem.writes == ref.dmem.writes
    assert (fast.pc, fast.halted) == (ref.pc, ref.halted)


@pytest.mark.parametrize(
    "name,program,image", _CASES, ids=[c[0] for c in _CASES]
)
def test_single_tile_program_equivalence(name, program, image):
    # First pass: compiled fast path vs interpreter.
    fast, fast_cycles = _run_single(program, image, "fast")
    ref, ref_cycles = _run_single(program, image, "reference")
    assert fast_cycles == ref_cycles
    _assert_tiles_match(fast, ref)
    # Second pass on fresh tiles: the run memo replays the recorded run;
    # the replay must be just as invisible as the compiled execution.
    fast2, fast2_cycles = _run_single(program, image, "fast")
    assert fast2_cycles == ref_cycles
    _assert_tiles_match(fast2, ref)


def _mesh_pair(engine):
    """Two-tile mesh: west tile streams its points east, east commits."""
    mesh = Mesh(1, 2)
    west, east = mesh.tile((0, 0)), mesh.tile((0, 1))
    for tile in (west, east):
        tile.dmem.load_image(_fft_image())
        tile.dmem.reset_counters()
    mesh.configure_link((0, 0), Direction.EAST)
    west.load_program(copy_program(2 * _M, 0, _LAY.sa, "E"))
    east.load_program(local_copy_program(_M, _LAY.sa, _LAY.sc))
    run = run_concurrent([west, east], engine=engine)
    return mesh, run


def test_concurrent_makespan_equivalence():
    mesh_f, run_f = _mesh_pair("fast")
    mesh_r, run_r = _mesh_pair("reference")
    assert run_f.makespan_ns == run_r.makespan_ns
    assert run_f.busy_ns == run_r.busy_ns
    assert run_f.instructions == run_r.instructions
    for coord in ((0, 0), (0, 1)):
        tf, tr = mesh_f.tile(coord), mesh_r.tile(coord)
        assert tf.dmem.dump_block(0, 512) == tr.dmem.dump_block(0, 512)
        assert tf.stats == tr.stats


def test_concurrent_pair_copy_equivalence():
    """The paired-exchange sweep program through both tiers."""

    def build(engine):
        mesh = Mesh(2, 1)
        north, south = mesh.tile((0, 0)), mesh.tile((1, 0))
        for tile in (north, south):
            tile.dmem.load_image(_fft_image())
            tile.dmem.reset_counters()
        mesh.configure_link((0, 0), Direction.SOUTH)
        mesh.configure_link((1, 0), Direction.NORTH)
        north.load_program(
            copy_pair_program(
                _LAY.half, _LAY.re, _LAY.sa, _LAY.im, _LAY.sa + _LAY.half, "S"
            )
        )
        south.load_program(
            copy_pair_program(
                _LAY.half, _LAY.re, _LAY.sc, _LAY.im, _LAY.sc + _LAY.half, "N"
            )
        )
        run = run_concurrent([north, south], engine=engine)
        return mesh, run

    mesh_f, run_f = build("fast")
    mesh_r, run_r = build("reference")
    assert run_f.makespan_ns == run_r.makespan_ns
    assert run_f.busy_ns == run_r.busy_ns
    for coord in ((0, 0), (1, 0)):
        tf, tr = mesh_f.tile(coord), mesh_r.tile(coord)
        assert tf.dmem.dump_block(0, 512) == tr.dmem.dump_block(0, 512)
        assert tf.stats == tr.stats


def test_rtms_engine_keyword_equivalence():
    """`RuntimeManager(engine=...)` forwards the tier to every epoch."""
    from repro.fabric.rtms import EpochSpec, RuntimeManager

    def run(engine):
        mesh = Mesh(1, 1)
        tile = mesh.tile((0, 0))
        tile.dmem.load_image(_jpeg_image())
        rtms = RuntimeManager(mesh, engine=engine)
        program = shift_program(64, 64, PIXEL_QBITS)
        rtms.execute(
            [EpochSpec("shift", programs={(0, 0): program}, run=[(0, 0)])]
        )
        return rtms.now_ns, tile.dmem.dump_block(0, 512), tile.stats

    ns_f, mem_f, stats_f = run("fast")
    ns_r, mem_r, stats_r = run("reference")
    assert ns_f == ns_r
    assert mem_f == mem_r
    assert stats_f == stats_r
