"""Reference FFT: DIT/DIF against numpy, structural helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KernelError
from repro.kernels.fft.reference import (
    bit_reverse_indices,
    fft_dif,
    fft_dit,
    fft_reference,
    ilog2,
    twiddle_exponent,
    twiddle_factors,
)


class TestHelpers:
    def test_ilog2(self):
        assert ilog2(1) == 0
        assert ilog2(1024) == 10

    @pytest.mark.parametrize("bad", [0, 3, 6, -8])
    def test_ilog2_rejects_non_powers(self, bad):
        with pytest.raises(KernelError):
            ilog2(bad)

    def test_bit_reverse_is_involution(self):
        for n in (2, 8, 64):
            p = bit_reverse_indices(n)
            assert np.array_equal(p[p], np.arange(n))

    def test_bit_reverse_known_values(self):
        assert list(bit_reverse_indices(8)) == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_twiddle_factors_on_unit_circle(self):
        w = twiddle_factors(16)
        assert len(w) == 8
        np.testing.assert_allclose(np.abs(w), 1.0)
        assert w[0] == 1.0

    def test_twiddle_exponent_dif_stage0(self):
        # stage 0 of a 64-pt DIF: exponent = pair index
        for j in range(32):
            assert twiddle_exponent(64, 0, j) == j

    def test_twiddle_exponent_dif_later_stage(self):
        # stage 2: (pair mod 8) * 4
        assert twiddle_exponent(64, 2, 11) == (11 % 8) * 4

    def test_twiddle_exponent_dit_reverses_stage_order(self):
        n = 64
        for pair in range(8):
            assert twiddle_exponent(n, 0, pair, dif=False) == \
                twiddle_exponent(n, 5, pair, dif=True)

    def test_twiddle_exponent_bounds(self):
        with pytest.raises(KernelError):
            twiddle_exponent(16, 4, 0)
        with pytest.raises(KernelError):
            twiddle_exponent(16, 0, 8)


class TestTransforms:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64, 256, 1024])
    def test_dif_matches_numpy(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(fft_dif(x), np.fft.fft(x), atol=1e-9 * n)

    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64, 256, 1024])
    def test_dit_matches_numpy(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(fft_dit(x), np.fft.fft(x), atol=1e-9 * n)

    def test_dif_raw_output_is_bit_reversed(self, rng):
        x = rng.standard_normal(16) + 0j
        raw = fft_dif(x, reorder_output=False)
        np.testing.assert_allclose(
            raw[bit_reverse_indices(16)], np.fft.fft(x), atol=1e-9
        )

    def test_impulse_gives_flat_spectrum(self):
        x = np.zeros(32, dtype=complex)
        x[0] = 1.0
        np.testing.assert_allclose(fft_reference(x), np.ones(32), atol=1e-12)

    def test_constant_gives_dc_only(self):
        x = np.ones(16, dtype=complex)
        out = fft_reference(x)
        assert out[0] == pytest.approx(16)
        np.testing.assert_allclose(out[1:], 0, atol=1e-12)

    def test_single_tone(self):
        n, k = 64, 5
        x = np.exp(2j * np.pi * k * np.arange(n) / n)
        out = fft_reference(x)
        assert abs(out[k]) == pytest.approx(n)
        out[k] = 0
        np.testing.assert_allclose(out, 0, atol=1e-9)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(KernelError):
            fft_dif(np.zeros(12))

    @given(st.integers(min_value=1, max_value=6), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_linearity_property(self, bits, seed):
        n = 1 << bits
        r = np.random.default_rng(seed)
        x = r.standard_normal(n) + 1j * r.standard_normal(n)
        y = r.standard_normal(n) + 1j * r.standard_normal(n)
        a, b = 2.0, -0.5 + 1j
        lhs = fft_dif(a * x + b * y)
        rhs = a * fft_dif(x) + b * fft_dif(y)
        np.testing.assert_allclose(lhs, rhs, atol=1e-9 * n)

    @given(st.integers(min_value=1, max_value=6), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_parseval_property(self, bits, seed):
        n = 1 << bits
        r = np.random.default_rng(seed)
        x = r.standard_normal(n) + 1j * r.standard_normal(n)
        energy_time = np.sum(np.abs(x) ** 2)
        energy_freq = np.sum(np.abs(fft_dif(x)) ** 2) / n
        assert energy_freq == pytest.approx(energy_time, rel=1e-9)
