"""FFT tile programs: layout, butterflies, copies, twiddle squaring."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.fabric.links import Direction
from repro.fabric.mesh import Mesh
from repro.fabric.tile import Tile
from repro.kernels.fft.programs import (
    QFORMAT,
    FFTLayout,
    bf_exchange_program,
    bf_internal_program,
    copy_pair_program,
    copy_program,
    local_copy_pair_program,
    local_copy_program,
    twiddle_square_program,
)


class TestLayout:
    def test_regions_are_disjoint_and_ordered(self):
        lay = FFTLayout(16)
        bases = [lay.re, lay.im, lay.wre, lay.wim, lay.sa, lay.sb,
                 lay.sc, lay.sd, lay.tmp]
        assert bases == sorted(bases)
        assert lay.im - lay.re == 16
        assert lay.sb - lay.sa == 16

    def test_maximum_m(self):
        FFTLayout(64)  # 7*64+48 = 496 <= 512
        with pytest.raises(KernelError):
            FFTLayout(128)

    def test_m_must_be_power_of_two(self):
        with pytest.raises(KernelError):
            FFTLayout(24)

    def test_staging_lookup(self):
        lay = FFTLayout(8)
        assert lay.staging("A") == lay.sa
        assert lay.staging("D") == lay.sd
        with pytest.raises(KernelError):
            lay.staging("E")


def put_complex(tile, base_re, base_im, values):
    for j, v in enumerate(values):
        tile.dmem.poke(base_re + j, QFORMAT.encode(v.real))
        tile.dmem.poke(base_im + j, QFORMAT.encode(v.imag))


def get_complex(tile, base_re, base_im, count):
    return np.array([
        QFORMAT.decode(tile.dmem.peek(base_re + j))
        + 1j * QFORMAT.decode(tile.dmem.peek(base_im + j))
        for j in range(count)
    ])


class TestInternalButterfly:
    @pytest.mark.parametrize("span", [1, 2, 4])
    def test_matches_reference_stage(self, span, rng):
        m = 8
        lay = FFTLayout(m)
        x = (rng.standard_normal(m) + 1j * rng.standard_normal(m)) * 0.1
        # reference: one DIF stage with span h over m points; twiddles all 1
        tile = Tile()
        put_complex(tile, lay.re, lay.im, x)
        w = np.exp(-2j * np.pi * rng.integers(0, 4, m // 2) / 16)
        for j, v in enumerate(w):
            tile.dmem.poke(lay.wre + j, QFORMAT.encode(v.real))
            tile.dmem.poke(lay.wim + j, QFORMAT.encode(v.imag))
        tile.load_program(bf_internal_program(m, span))
        tile.run()

        expected = x.copy()
        k = 0
        for group in range(0, m, 2 * span):
            for j in range(group, group + span):
                a, b = x[j], x[j + span]
                expected[j] = a + b
                expected[j + span] = (a - b) * w[k]
                k += 1
        got = get_complex(tile, lay.re, lay.im, m)
        np.testing.assert_allclose(got, expected, atol=1e-8)

    def test_invalid_span(self):
        with pytest.raises(KernelError):
            bf_internal_program(8, 8)
        with pytest.raises(KernelError):
            bf_internal_program(8, 3)

    def test_cycle_count_scales_with_m(self):
        small = Tile(); small.load_program(bf_internal_program(8, 2))
        big = Tile(); big.load_program(bf_internal_program(32, 2))
        ratio = big.run() / small.run()
        assert 3.0 < ratio < 4.5  # ~4x the pairs


class TestExchangeButterfly:
    def test_lower_and_upper_compose(self, rng):
        """lower+upper together must equal a full butterfly column."""
        m, half = 8, 4
        lay = FFTLayout(m)
        a_block = (rng.standard_normal(m) + 1j * rng.standard_normal(m)) * 0.1
        b_block = (rng.standard_normal(m) + 1j * rng.standard_normal(m)) * 0.1
        w = np.exp(-2j * np.pi * np.arange(m) / 64)

        lower, upper = Tile(coord=(0, 0)), Tile(coord=(1, 0))
        put_complex(lower, lay.re, lay.im, a_block)
        put_complex(upper, lay.re, lay.im, b_block)
        # pre-exchange delivered: partner's first half at lower's C buffer,
        # lower's second half at upper's A buffer
        put_complex(lower, lay.sc, lay.sc + half, b_block[:half])
        put_complex(upper, lay.sa, lay.sa + half, a_block[half:])
        for j in range(half):
            for tile, off in ((lower, 0), (upper, half)):
                tile.dmem.poke(lay.wre + j, QFORMAT.encode(w[off + j].real))
                tile.dmem.poke(lay.wim + j, QFORMAT.encode(w[off + j].imag))

        lower.load_program(bf_exchange_program(m, True, "C", "A"))
        lower.run()
        upper.load_program(bf_exchange_program(m, False, "A", "C"))
        upper.run()

        sums = np.concatenate([
            get_complex(lower, lay.re, lay.im, half),        # j < half
            get_complex(upper, lay.sc, lay.sc + half, half)  # j >= half -> C
        ])
        diffs = np.concatenate([
            get_complex(lower, lay.sa, lay.sa + half, half),  # out_buf A
            get_complex(upper, lay.re + half, lay.im + half, half),
        ])
        np.testing.assert_allclose(sums, a_block + b_block, atol=1e-8)
        np.testing.assert_allclose(
            diffs, (a_block - b_block) * w, atol=1e-8
        )

    def test_same_buffers_rejected(self):
        with pytest.raises(KernelError):
            bf_exchange_program(8, True, "A", "A")


class TestCopies:
    def test_looped_copy_moves_words(self):
        mesh = Mesh(1, 2)
        mesh.configure_link((0, 0), Direction.EAST)
        src = mesh.tile((0, 0))
        for i in range(8):
            src.dmem.poke(10 + i, i * 3)
        src.load_program(copy_program(8, 10, 40, "E"))
        src.run()
        assert mesh.tile((0, 1)).dmem.dump_block(40, 8) == [i * 3 for i in range(8)]

    def test_unrolled_variant_is_faster(self):
        mesh = Mesh(1, 2)
        mesh.configure_link((0, 0), Direction.EAST)
        tile = mesh.tile((0, 0))
        tile.load_program(copy_program(16, 0, 0, "E"))
        looped = tile.run()
        tile.load_program(copy_program(16, 0, 0, "E", unrolled=True))
        unrolled = tile.run()
        assert unrolled < looped / 3

    def test_pair_copy_two_segments(self):
        mesh = Mesh(2, 1)
        mesh.configure_link((0, 0), Direction.SOUTH)
        src = mesh.tile((0, 0))
        for i in range(4):
            src.dmem.poke(i, 100 + i)
            src.dmem.poke(20 + i, 200 + i)
        src.load_program(copy_pair_program(4, 0, 60, 20, 64, "S"))
        src.run()
        dst = mesh.tile((1, 0))
        assert dst.dmem.dump_block(60, 4) == [100, 101, 102, 103]
        assert dst.dmem.dump_block(64, 4) == [200, 201, 202, 203]

    def test_local_copy(self):
        tile = Tile()
        tile.dmem.load_block(5, [9, 8, 7])
        tile.load_program(local_copy_program(3, 5, 50))
        tile.run()
        assert tile.dmem.dump_block(50, 3) == [9, 8, 7]

    def test_local_pair_copy(self):
        tile = Tile()
        tile.dmem.load_block(0, [1, 2])
        tile.dmem.load_block(10, [3, 4])
        tile.load_program(local_copy_pair_program(2, 0, 100, 10, 200))
        tile.run()
        assert tile.dmem.dump_block(100, 2) == [1, 2]
        assert tile.dmem.dump_block(200, 2) == [3, 4]

    def test_invalid_direction(self):
        with pytest.raises(KernelError):
            copy_program(4, 0, 0, "X")

    def test_invalid_count(self):
        with pytest.raises(KernelError):
            copy_program(0, 0, 0, "E")


class TestTwiddleSquaring:
    def test_squares_match_reference(self):
        """GREEN generation: w' = w^2 per resident twiddle."""
        m = 16
        lay = FFTLayout(m)
        tile = Tile()
        w = np.exp(-2j * np.pi * np.arange(m // 2) / 64)
        for j, v in enumerate(w):
            tile.dmem.poke(lay.wre + j, QFORMAT.encode(v.real))
            tile.dmem.poke(lay.wim + j, QFORMAT.encode(v.imag))
        tile.load_program(twiddle_square_program(m))
        tile.run()
        got = get_complex(tile, lay.wre, lay.wim, m // 2)
        np.testing.assert_allclose(got, w**2, atol=1e-8)

    def test_generation_cheaper_than_reload(self):
        """2.5 ns/instruction on-tile beats 33.33 ns/word over the ICAP."""
        from repro.units import DMEM_WORD_RELOAD_NS

        m = 64
        tile = Tile()
        tile.load_program(twiddle_square_program(m))
        cycles = tile.run()
        generate_ns = cycles * 2.5
        reload_ns = m * DMEM_WORD_RELOAD_NS  # m/2 complex = m words
        assert generate_ns < reload_ns * 1.5  # same order, no ICAP needed
