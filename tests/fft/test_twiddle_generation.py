"""On-tile twiddle derivation (GREEN squaring / BLUE regathering).

Proves the Sec. 3.1 claim end to end: every GREEN and BLUE table of a
plan can be produced by the tile itself from its resident table, with the
generated values matching the reference roots of unity — no ICAP traffic.
"""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.fabric.tile import Tile
from repro.kernels.fft.decompose import FFTPlan
from repro.kernels.fft.programs import (
    QFORMAT,
    FFTLayout,
    twiddle_gather_program,
)
from repro.kernels.fft.twiddle import (
    TwiddleClass,
    classify_twiddles,
    derivation_operations,
)


def load_table(tile, layout, exponents, n):
    for j, e in enumerate(exponents):
        w = np.exp(-2j * np.pi * e / n)
        tile.dmem.poke(layout.wre + j, QFORMAT.encode(w.real))
        tile.dmem.poke(layout.wim + j, QFORMAT.encode(w.imag))


def read_table(tile, layout, count):
    return np.array([
        QFORMAT.decode(tile.dmem.peek(layout.wre + j))
        + 1j * QFORMAT.decode(tile.dmem.peek(layout.wim + j))
        for j in range(count)
    ])


def held_table(plan, schedule, row, stage):
    """The table resident when `stage` begins (last non-BLUE load)."""
    col = plan.column_of_stage(stage)
    held = None
    for s in plan.stages_of_column(col):
        if s >= stage:
            break
        if schedule.class_of(row, s) is not TwiddleClass.BLUE:
            held = plan.tile_twiddle_exponents(row, s)
    return held


class TestDerivationPlan:
    def test_red_and_yellow_rejected(self):
        plan = FFTPlan(64, 8, 1)
        with pytest.raises(KernelError, match="red"):
            derivation_operations(plan, 0, 0)
        schedule = classify_twiddles(plan)
        yellow = next(
            (r, s)
            for r in range(plan.rows)
            for s in range(plan.stages)
            if schedule.class_of(r, s) is TwiddleClass.YELLOW
        )
        with pytest.raises(KernelError, match="yellow"):
            derivation_operations(plan, *yellow)

    def test_blue_entries_are_copies(self):
        plan = FFTPlan(64, 8, 1)
        ops = derivation_operations(plan, 0, 4)  # internal BLUE stage
        assert all(not square for _, square in ops)

    def test_green_uses_at_least_one_square(self):
        plan = FFTPlan(64, 8, 1)
        schedule = classify_twiddles(plan)
        green = next(
            (r, s)
            for r in range(plan.rows)
            for s in range(1, plan.stages)
            if schedule.class_of(r, s) is TwiddleClass.GREEN
        )
        ops = derivation_operations(plan, *green)
        assert any(square for _, square in ops)


class TestOnTileGeneration:
    @pytest.mark.parametrize("n,m", [(64, 8), (32, 8), (128, 16)])
    def test_every_derivable_table_generates_correctly(self, n, m):
        plan = FFTPlan(n, m, 1)
        schedule = classify_twiddles(plan)
        layout = FFTLayout(m)
        checked = 0
        for row in range(plan.rows):
            for stage in range(plan.stages):
                cls = schedule.class_of(row, stage)
                if cls not in (TwiddleClass.GREEN, TwiddleClass.BLUE):
                    continue
                held = held_table(plan, schedule, row, stage)
                assert held is not None
                ops = derivation_operations(plan, row, stage)
                tile = Tile()
                load_table(tile, layout, held, n)
                tile.load_program(twiddle_gather_program(m, ops))
                tile.run()
                got = read_table(tile, layout, m // 2)
                want = np.exp(
                    -2j * np.pi
                    * np.array(plan.tile_twiddle_exponents(row, stage)) / n
                )
                np.testing.assert_allclose(got, want, atol=1e-7)
                checked += 1
        assert checked > 0

    def test_generation_avoids_icap_entirely(self):
        """The derivation program costs cycles but zero ICAP words."""
        plan = FFTPlan(64, 8, 1)
        ops = derivation_operations(plan, 0, 1)  # a GREEN slot
        program = twiddle_gather_program(8, ops)
        assert not program.data_image  # nothing travels over the port
        tile = Tile()
        load_table(tile, FFTLayout(8), plan.tile_twiddle_exponents(0, 0), 64)
        tile.load_program(program)
        cycles = tile.run()
        assert cycles < 200  # a handful of instructions per twiddle

    def test_bad_operation_counts_rejected(self):
        with pytest.raises(KernelError):
            twiddle_gather_program(8, ((0, False),))
        with pytest.raises(KernelError):
            twiddle_gather_program(8, tuple((9, False) for _ in range(4)))
