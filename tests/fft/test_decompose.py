"""FFT partitioning: plan shape, exchange schedule, twiddle sets."""

import pytest

from repro.errors import KernelError
from repro.kernels.fft.decompose import FFTPlan, partition_size
from repro.kernels.fft.reference import twiddle_exponent


class TestPartitionSize:
    def test_remorph_value(self):
        # DM=512, reuse: M = 128 (Sec. 3.1's derivation)
        assert partition_size(512) == 128

    def test_no_reuse_halves(self):
        assert partition_size(512, reuse_io=False) == 64

    def test_small_memory(self):
        assert partition_size(60) == 4

    def test_tiny_memory_rejected(self):
        with pytest.raises(KernelError):
            partition_size(44)


class TestPlanShape:
    def test_paper_plan(self):
        plan = FFTPlan(1024, 128, 10)
        assert plan.rows == 8
        assert plan.stages == 10
        assert plan.stages_per_col == 1
        assert plan.n_tiles == 80
        assert plan.exchange_stage_count == 3

    def test_tile_bounds_quoted_in_paper(self):
        # "a 1024-point Radix2 FFT needs at least 8 and at most 80 tiles"
        assert FFTPlan(1024, 128, 1).n_tiles == 8
        assert FFTPlan(1024, 128, 10).n_tiles == 80

    def test_cols_must_divide_stages(self):
        with pytest.raises(KernelError):
            FFTPlan(1024, 128, 3)

    def test_m_larger_than_n_rejected(self):
        with pytest.raises(KernelError):
            FFTPlan(16, 32, 1)

    def test_non_power_of_two(self):
        with pytest.raises(KernelError):
            FFTPlan(100, 10, 1)

    def test_describe(self):
        assert "8 rows x 2 cols" in FFTPlan(1024, 128, 2).describe()


class TestSchedule:
    def test_column_of_stage(self):
        plan = FFTPlan(1024, 128, 5)
        assert plan.column_of_stage(0) == 0
        assert plan.column_of_stage(3) == 1
        assert plan.column_of_stage(9) == 4

    def test_stages_of_column(self):
        plan = FFTPlan(1024, 128, 2)
        assert list(plan.stages_of_column(0)) == [0, 1, 2, 3, 4]
        assert list(plan.stages_of_column(1)) == [5, 6, 7, 8, 9]
        with pytest.raises(KernelError):
            plan.stages_of_column(2)

    def test_exchange_stages_are_first_x(self):
        plan = FFTPlan(1024, 128, 1)
        for s in range(plan.stages):
            assert plan.is_exchange_stage(s) == (s < 3)

    def test_exchanges_in_column(self):
        plan = FFTPlan(1024, 128, 5)
        assert [plan.exchanges_in_column(c) for c in range(5)] == [2, 1, 0, 0, 0]

    def test_exchanges_per_beat_cases(self):
        # the R_k factors behind the paper's case expressions (Sec. 3.2)
        assert FFTPlan(1024, 128, 1).exchanges_per_beat() == [1, 1, 1] + [0] * 7
        assert FFTPlan(1024, 128, 5).exchanges_per_beat() == [2, 1]
        assert FFTPlan(1024, 128, 10).exchanges_per_beat() == [3]

    def test_no_exchange_when_single_row(self):
        plan = FFTPlan(16, 16, 1)
        assert plan.exchange_stage_count == 0
        assert plan.rows == 1


class TestPartners:
    def test_stage0_partner_is_half_array_away(self):
        plan = FFTPlan(64, 8, 1)  # 8 rows
        assert plan.partner_row(0, 0) == 4
        assert plan.partner_row(5, 0) == 1

    def test_partner_is_symmetric(self):
        plan = FFTPlan(64, 8, 1)
        for stage in range(plan.exchange_stage_count):
            for row in range(plan.rows):
                partner = plan.partner_row(row, stage)
                assert plan.partner_row(partner, stage) == row
                assert partner != row

    def test_lower_partner(self):
        plan = FFTPlan(64, 8, 1)
        assert plan.is_lower_partner(0, 0)
        assert not plan.is_lower_partner(4, 0)

    def test_internal_stage_has_no_partner(self):
        plan = FFTPlan(64, 8, 1)
        with pytest.raises(KernelError):
            plan.partner_row(0, 5)

    def test_row_bounds(self):
        plan = FFTPlan(64, 8, 1)
        with pytest.raises(KernelError):
            plan.partner_row(8, 0)


class TestTwiddleSets:
    def test_exchange_stage_count_per_tile(self):
        plan = FFTPlan(64, 8, 1)
        for row in range(plan.rows):
            assert len(plan.tile_twiddle_exponents(row, 0)) == 4  # m/2

    def test_internal_stage_count_per_tile(self):
        plan = FFTPlan(64, 8, 1)
        for stage in range(3, 6):
            assert len(plan.tile_twiddle_exponents(0, stage)) == 4

    def test_exponents_match_reference_formula(self):
        plan = FFTPlan(64, 8, 1)
        # tile 0 at stage 0 computes global pairs 0..3
        assert plan.tile_twiddle_exponents(0, 0) == [
            twiddle_exponent(64, 0, j) for j in range(4)
        ]
        # its upper partner (tile 4) covers pairs 4..7
        assert plan.tile_twiddle_exponents(4, 0) == [
            twiddle_exponent(64, 0, j) for j in range(4, 8)
        ]

    def test_internal_exponents_identical_across_rows(self):
        plan = FFTPlan(64, 8, 1)
        for stage in range(3, 6):
            sets = {
                tuple(plan.tile_twiddle_exponents(r, stage))
                for r in range(plan.rows)
            }
            assert len(sets) == 1  # why BLUE reuse works row-wide

    def test_naive_load_bound(self):
        plan = FFTPlan(64, 8, 1)
        assert plan.total_twiddle_loads_naive() == 64 * 6
