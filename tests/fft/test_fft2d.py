"""2-D FFT: reference and fabric row-column composition."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels.fft.decompose import FFTPlan
from repro.kernels.fft.fft2d import FabricFFT2D, fft2d_reference


class TestReference:
    @pytest.mark.parametrize("n", [4, 8, 16, 32])
    def test_matches_numpy(self, n, rng):
        a = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
        np.testing.assert_allclose(
            fft2d_reference(a), np.fft.fft2(a), atol=1e-9 * n * n
        )

    def test_rectangular(self, rng):
        a = rng.standard_normal((8, 16)) + 0j
        np.testing.assert_allclose(
            fft2d_reference(a), np.fft.fft2(a), atol=1e-8
        )

    def test_separable_impulse(self):
        a = np.zeros((8, 8), dtype=complex)
        a[0, 0] = 1.0
        np.testing.assert_allclose(fft2d_reference(a), np.ones((8, 8)),
                                   atol=1e-12)

    def test_non_2d_rejected(self):
        with pytest.raises(KernelError):
            fft2d_reference(np.zeros(8))

    def test_non_power_rejected(self):
        with pytest.raises(KernelError):
            fft2d_reference(np.zeros((6, 8)))


class TestFabric:
    def test_16x16_matches_numpy(self, rng):
        a = (rng.standard_normal((16, 16))
             + 1j * rng.standard_normal((16, 16))) * 0.005
        result = FabricFFT2D(FFTPlan(16, 4, 2)).run(a)
        np.testing.assert_allclose(result.output, np.fft.fft2(a), atol=5e-6)

    def test_timing_decomposition(self, rng):
        a = rng.standard_normal((16, 16)) * 0.005 + 0j
        result = FabricFFT2D(FFTPlan(16, 4, 1)).run(a)
        assert result.row_pass_ns > 0 and result.col_pass_ns > 0
        assert result.total_ns == pytest.approx(
            result.row_pass_ns + result.col_pass_ns
        )

    def test_wrong_shape_rejected(self):
        with pytest.raises(KernelError):
            FabricFFT2D(FFTPlan(16, 4, 1)).run(np.zeros((8, 16), dtype=complex))

    def test_warm_column_pass_not_slower(self, rng):
        """The second pass reuses the resident programs."""
        a = rng.standard_normal((16, 16)) * 0.005 + 0j
        result = FabricFFT2D(FFTPlan(16, 4, 2)).run(a)
        assert result.col_pass_ns <= result.row_pass_ns * 1.05