"""End-to-end fabric FFT: numerical correctness and cost accounting."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels.fft.decompose import FFTPlan
from repro.kernels.fft.runner import FabricFFT


def random_input(n, rng, scale=0.01):
    return (rng.standard_normal(n) + 1j * rng.standard_normal(n)) * scale


class TestCorrectness:
    @pytest.mark.parametrize(
        "n,m,cols",
        [
            (4, 4, 1),      # single tile, internal stages only
            (8, 4, 1),      # one exchange stage, adjacent partners
            (16, 4, 2),     # two exchange stages, two columns
            (16, 4, 4),     # fully pipelined columns
            (32, 8, 5),
            (64, 8, 2),     # distance-4 relays
            (64, 16, 3),
            (128, 16, 7),
            (256, 32, 4),
        ],
    )
    def test_matches_numpy(self, n, m, cols, rng):
        x = random_input(n, rng)
        result = FabricFFT(FFTPlan(n, m, cols)).run(x)
        np.testing.assert_allclose(
            result.output, np.fft.fft(x), atol=2e-7 * n
        )

    def test_impulse(self):
        plan = FFTPlan(16, 4, 1)
        x = np.zeros(16, dtype=complex)
        x[3] = 0.5
        result = FabricFFT(plan).run(x)
        np.testing.assert_allclose(result.output, np.fft.fft(x), atol=1e-7)

    def test_real_input(self, rng):
        x = rng.standard_normal(32) * 0.01 + 0j
        result = FabricFFT(FFTPlan(32, 8, 1)).run(x)
        out = result.output
        # conjugate symmetry of a real signal's spectrum
        np.testing.assert_allclose(
            out[1:], np.conj(out[1:][::-1]), atol=1e-6
        )

    def test_wrong_length_rejected(self, rng):
        with pytest.raises(KernelError, match="shape"):
            FabricFFT(FFTPlan(16, 4, 1)).run(np.zeros(8, dtype=complex))

    def test_overflow_guard(self):
        plan = FFTPlan(16, 4, 1)
        with pytest.raises(KernelError, match="overflow"):
            FabricFFT(plan).run(np.full(16, 1e6 + 0j))

    def test_m_over_64_rejected(self):
        with pytest.raises(KernelError, match="m <= 64"):
            FabricFFT(FFTPlan(1024, 128, 1))


class TestAccounting:
    def test_report_time_positive_and_decomposed(self, rng):
        result = FabricFFT(FFTPlan(32, 8, 1)).run(random_input(32, rng))
        report = result.report
        assert report.total_ns > 0
        assert report.compute_ns > 0
        assert len(report.epochs) > 5

    def test_link_cost_raises_total_time(self, rng):
        x = random_input(32, rng)
        free = FabricFFT(FFTPlan(32, 8, 1), link_cost_ns=0.0).run(x)
        pricey = FabricFFT(FFTPlan(32, 8, 1), link_cost_ns=2000.0).run(x)
        assert pricey.report.total_ns > free.report.total_ns
        np.testing.assert_allclose(pricey.output, free.output, atol=1e-9)

    def test_link_changes_counted(self, rng):
        result = FabricFFT(FFTPlan(16, 4, 1), link_cost_ns=10.0).run(
            random_input(16, rng)
        )
        assert result.report.link_changes > 0

    def test_yellow_reloads_show_as_reconfig_bytes(self, rng):
        result = FabricFFT(FFTPlan(64, 8, 1)).run(random_input(64, rng))
        twiddle_epochs = [
            e for e in result.report.epochs if e.name.startswith("twiddles")
        ]
        assert any(e.reconfig_bytes > 0 for e in twiddle_epochs)

    def test_pipelined_plan_has_free_twiddles(self, rng):
        # every stage in its own column: all RED, preloaded -> no ICAP
        result = FabricFFT(FFTPlan(16, 4, 4)).run(random_input(16, rng))
        twiddle_epochs = [
            e for e in result.report.epochs if e.name.startswith("twiddles")
        ]
        assert all(e.reconfig_bytes == 0 for e in twiddle_epochs)

    def test_program_pinning_across_blocks(self, rng):
        """Re-running with the same runner reuses resident programs."""
        runner = FabricFFT(FFTPlan(16, 4, 1))
        first = runner.run(random_input(16, rng))
        second = runner.run(random_input(16, rng))
        np.testing.assert_allclose(
            np.sort_complex(second.output), np.sort_complex(second.output)
        )
        assert first.report.total_ns > 0 and second.report.total_ns > 0


class TestMeasuredProfile:
    def test_profile_shape(self):
        profile = FabricFFT(FFTPlan(64, 8, 1)).measured_profile()
        assert profile.stages == 6
        assert profile.vcp_ns > 0 and profile.hcp_ns > 0

    def test_profile_in_published_ballpark(self):
        """m=64 measured runtimes, scaled to m=128, should sit within a
        small factor of Table 1's 2672-4364 ns butterflies."""
        profile = FabricFFT(FFTPlan(1024, 64, 1)).measured_profile()
        scaled = [t * 2 for t in profile.bf_ns]  # m=64 -> m=128 pairs
        for t in scaled:
            assert 1000 < t < 20000

    def test_profile_feeds_perf_model(self):
        from repro.kernels.fft.perf_model import FFTPerformanceModel

        plan = FFTPlan(64, 8, 2)
        profile = FabricFFT(plan).measured_profile()
        model = FFTPerformanceModel(plan=plan, profile=profile)
        assert model.throughput(100.0) > 0
