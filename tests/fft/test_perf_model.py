"""The tau performance model: published case values and curve shapes."""

import pytest

from repro.errors import KernelError
from repro.kernels.fft.decompose import FFTPlan
from repro.kernels.fft.perf_model import (
    FFTPerformanceModel,
    StageProfile,
    TauBreakdown,
    copy_cost_table,
)


def model_for(cols, **options):
    return FFTPerformanceModel(
        plan=FFTPlan(1024, 128, cols),
        profile=StageProfile.table1(),
        **options,
    )


class TestStageProfile:
    def test_table1_values(self):
        p = StageProfile.table1()
        assert p.stages == 10
        assert p.bf_ns[0] == 2672.0
        assert p.bf_ns[9] == 4364.0
        assert (p.vcp_ns, p.hcp_ns) == (789.0, 1557.0)

    def test_uniform(self):
        p = StageProfile.uniform(6, bf_ns=1000.0)
        assert p.stages == 6 and p.bf_ns == (1000.0,) * 6

    def test_invalid_profiles(self):
        with pytest.raises(KernelError):
            StageProfile(bf_ns=(), vcp_ns=1, hcp_ns=1)
        with pytest.raises(KernelError):
            StageProfile(bf_ns=(-1.0,), vcp_ns=1, hcp_ns=1)

    def test_profile_plan_mismatch_rejected(self):
        with pytest.raises(KernelError, match="stage runtimes"):
            FFTPerformanceModel(
                plan=FFTPlan(64, 8, 1), profile=StageProfile.table1()
            )


class TestPublishedFactors:
    """The structural counts behind Eqs. 7-12's case tables."""

    @pytest.mark.parametrize("cols,expect", [(1, 3), (2, 3), (5, 2), (10, 0)])
    def test_yellow_events(self, cols, expect):
        assert model_for(cols).yellow_events() == expect

    @pytest.mark.parametrize("cols,expect", [(1, 2), (2, 2), (5, 1), (10, 0)])
    def test_vcp_reload_events(self, cols, expect):
        assert model_for(cols).vcp_reload_events() == expect

    @pytest.mark.parametrize("cols,expect", [(1, 3), (2, 3), (5, 2), (10, 1)])
    def test_vcp_executions(self, cols, expect):
        assert model_for(cols).vcp_executions() == expect

    def test_t_link_is_rows_times_cost(self):
        assert model_for(1).t_link_ns(100.0) == pytest.approx(800.0)

    def test_t_d_matches_table2_atom(self):
        # 2 variables x 8 tiles x 33.33 ns = 533.3 ns (Eq. 5)
        assert model_for(1).t_d_ns() == pytest.approx(533.3, abs=0.1)

    def test_negative_link_cost_rejected(self):
        with pytest.raises(KernelError):
            model_for(1).t_link_ns(-1)


class TestTable2:
    def test_exact_published_values(self):
        rows = copy_cost_table()
        published = [
            (1, 1066.6, 15.0),
            (2, 1066.6, 15.0),
            (5, 533.3, 10.0),
            (10, 0.0, 0.0),
        ]
        for row, (cols, prev, new) in zip(rows, published):
            assert row.cols == cols
            assert row.prev_cost_ns == pytest.approx(prev, abs=0.1)
            assert row.new_cost_ns == pytest.approx(new, abs=0.01)

    def test_improvement_column(self):
        for row in copy_cost_table():
            assert row.improvement_ns == pytest.approx(
                row.prev_cost_ns - row.new_cost_ns
            )


class TestTauBreakdown:
    def test_eight_terms_required(self):
        with pytest.raises(KernelError):
            TauBreakdown((1.0, 2.0))

    def test_total_and_throughput(self):
        b = TauBreakdown((100.0,) * 8)
        assert b.total_ns == 800.0
        assert b.throughput_per_s == pytest.approx(1.25e6)

    def test_tau6_always_zero(self):
        assert model_for(5).evaluate(300.0).tau[6] == 0.0

    def test_tau0_tau7_are_hcp(self):
        b = model_for(1).evaluate(0.0)
        assert b.tau[0] == b.tau[7] == 1557.0

    def test_str(self):
        assert "total" in str(model_for(1).evaluate(0.0))


class TestCurveShapes:
    """The Figs. 10-12 shape criteria from Sec. 3.3."""

    def test_more_columns_win_at_zero_cost(self):
        t = {c: model_for(c).throughput(0.0) for c in (1, 2, 5, 10)}
        assert t[10] > t[5] > t[2] > t[1]

    def test_throughput_monotone_in_link_cost(self):
        for cols in (1, 2, 5, 10):
            m = model_for(cols)
            ts = [m.throughput(L) for L in range(0, 5001, 250)]
            assert all(b <= a for a, b in zip(ts, ts[1:]))

    def test_sensitivity_grows_with_columns(self):
        # relative drop from L=0 to L=1000 is largest for 10 columns
        drops = {}
        for cols in (1, 10):
            m = model_for(cols)
            drops[cols] = 1 - m.throughput(1000.0) / m.throughput(0.0)
        assert drops[10] > drops[1]

    def test_no_noticeable_benefit_beyond_700ns(self):
        # paper: "when the link reconfiguration cost exceeds 700ns,
        # increasing the number of columns does not give noticeable
        # performance"
        t = {c: model_for(c).throughput(700.0) for c in (1, 10)}
        assert t[10] < 1.5 * t[1]

    def test_inversion_beyond_1100ns(self):
        # paper: "link reconfiguration cost more than 1100ns has opposite
        # effect on throughput"
        t = {c: model_for(c).throughput(1300.0) for c in (1, 2, 5, 10)}
        assert t[10] < t[1]

    def test_sweep_shape(self):
        series = model_for(2).sweep([0.0, 100.0, 200.0])
        assert [x for x, _ in series] == [0.0, 100.0, 200.0]


class TestAblationSwitches:
    def test_twiddle_optimization_helps_shared_columns(self):
        opt = model_for(1).throughput(0.0)
        naive = model_for(1, optimize_twiddles=False).throughput(0.0)
        assert opt > naive

    def test_twiddle_optimization_neutral_at_ten_columns(self):
        opt = model_for(10).throughput(0.0)
        naive = model_for(10, optimize_twiddles=False).throughput(0.0)
        assert opt == pytest.approx(naive)

    def test_vcp_update_optimization(self):
        fast = model_for(1).evaluate(0.0).tau[3]
        slow = model_for(1, optimize_vcp_update=False).evaluate(0.0).tau[3]
        assert slow > fast

    def test_overlap_never_hurts(self):
        for cols in (1, 5, 10):
            for L in (0.0, 500.0, 1500.0):
                over = model_for(cols).throughput(L)
                serial = model_for(
                    cols, overlap_vertical_links=False
                ).throughput(L)
                assert over >= serial

    def test_with_options_copies(self):
        base = model_for(1)
        variant = base.with_options(optimize_twiddles=False)
        assert base.optimize_twiddles and not variant.optimize_twiddles
