"""Streamed (pipelined) fabric FFT: correctness and timing discipline."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels.fft.decompose import FFTPlan
from repro.kernels.fft.runner import FabricFFT


def batch(n, count, rng, scale=0.01):
    return [
        (rng.standard_normal(n) + 1j * rng.standard_normal(n)) * scale
        for _ in range(count)
    ]


class TestCorrectness:
    @pytest.mark.parametrize("cols", [1, 2, 4])
    def test_every_output_matches_numpy(self, cols, rng):
        plan = FFTPlan(16, 4, cols)
        xs = batch(16, 4, rng)
        stream = FabricFFT(plan, link_cost_ns=50.0).run_stream(xs)
        for out, x in zip(stream.outputs, xs):
            np.testing.assert_allclose(out, np.fft.fft(x), atol=1e-6)

    def test_single_transform_stream(self, rng):
        plan = FFTPlan(16, 4, 2)
        xs = batch(16, 1, rng)
        stream = FabricFFT(plan).run_stream(xs)
        assert stream.steady_interval_ns == stream.completion_ns[0]
        np.testing.assert_allclose(
            stream.outputs[0], np.fft.fft(xs[0]), atol=1e-6
        )

    def test_empty_batch_rejected(self):
        with pytest.raises(KernelError):
            FabricFFT(FFTPlan(16, 4, 1)).run_stream([])


class TestTiming:
    def test_completions_increase(self, rng):
        plan = FFTPlan(16, 4, 2)
        stream = FabricFFT(plan).run_stream(batch(16, 5, rng))
        assert list(stream.completion_ns) == sorted(stream.completion_ns)
        assert stream.total_ns == stream.completion_ns[-1]

    def test_warm_transforms_cheaper_than_cold(self, rng):
        """After transform 0 the programs are resident: later transforms
        pay no instruction reconfiguration — partial reconfiguration
        amortized over the stream."""
        plan = FFTPlan(16, 4, 1)
        stream = FabricFFT(plan).run_stream(batch(16, 4, rng))
        warm = stream.steady_interval_ns
        assert warm < stream.latency_ns / 3

    def test_single_column_serializes_transforms(self, rng):
        """With one column there is no spatial pipelining: inter-completion
        gaps must be stable (each transform fully occupies the column)."""
        plan = FFTPlan(16, 4, 1)
        stream = FabricFFT(plan).run_stream(batch(16, 5, rng))
        gaps = [
            b - a
            for a, b in zip(stream.completion_ns[1:], stream.completion_ns[2:])
        ]
        assert max(gaps) / min(gaps) < 1.1

    def test_more_columns_shrink_steady_interval(self, rng):
        """Multi-column plans overlap successive transforms (Sec. 3.3's
        rationale for spending tiles on columns)."""
        one = FabricFFT(FFTPlan(16, 4, 1)).run_stream(batch(16, 6, rng))
        four = FabricFFT(FFTPlan(16, 4, 4)).run_stream(batch(16, 6, rng))
        assert four.steady_interval_ns < one.steady_interval_ns

    def test_link_cost_slows_stream(self, rng):
        cheap = FabricFFT(FFTPlan(16, 4, 2), link_cost_ns=0.0).run_stream(
            batch(16, 4, rng)
        )
        pricey = FabricFFT(FFTPlan(16, 4, 2), link_cost_ns=3000.0).run_stream(
            batch(16, 4, rng)
        )
        assert pricey.total_ns > cheap.total_ns


class TestCoResidency:
    def test_programs_stay_resident_across_transforms(self, rng):
        plan = FFTPlan(16, 4, 1)
        runner = FabricFFT(plan)
        mesh_holder = {}

        # run a 2-transform stream and inspect the mesh state afterwards
        from repro.fabric.icap import IcapPort
        from repro.fabric.mesh import Mesh
        from repro.fabric.rtms import RuntimeManager

        mesh = Mesh(plan.rows, plan.cols)
        rtms = RuntimeManager(mesh, IcapPort(), dataflow=True)
        xs = batch(16, 2, rng)
        rtms.execute(runner._transform_epochs(xs[0], tag="a_"))
        bytes_cold = sum(t.nbytes for t in rtms.icap.transfers)
        rtms.icap.transfers.clear()
        rtms.execute(runner._transform_epochs(xs[1], tag="b_"))
        bytes_warm = sum(t.nbytes for t in rtms.icap.transfers)
        assert bytes_warm < bytes_cold / 3
        # several programs co-resident per tile
        tile = mesh.tile((0, 0))
        assert len(tile._resident) > 2
        del mesh_holder
