"""Twiddle classification: red/green/yellow/blue and reload accounting."""

import pytest

from repro.errors import KernelError
from repro.kernels.fft.decompose import FFTPlan
from repro.kernels.fft.twiddle import (
    TwiddleClass,
    classify_twiddles,
    twiddle_matrix,
)


@pytest.fixture
def fig8_schedule():
    """The Fig. 8 case: 64-point FFT, M = 8, one column."""
    return classify_twiddles(FFTPlan(64, 8, 1))


class TestMatrix:
    def test_shape(self):
        matrix = twiddle_matrix(64, 8)
        assert len(matrix) == 32
        assert all(len(row) == 6 for row in matrix)

    def test_first_column_is_identity(self):
        matrix = twiddle_matrix(64, 8)
        assert [row[0] for row in matrix] == list(range(32))

    def test_second_column_doubles_mod_group(self):
        matrix = twiddle_matrix(64, 8)
        # stage 1: (pair mod 16) * 2 -> 0,2,...,30 repeating
        assert [row[1] for row in matrix[:16]] == list(range(0, 32, 2))
        assert [row[1] for row in matrix[16:]] == list(range(0, 32, 2))

    def test_last_column_all_zero(self):
        matrix = twiddle_matrix(64, 8)
        assert all(row[5] == 0 for row in matrix)


class TestClassification:
    def test_first_stage_is_red(self, fig8_schedule):
        for row in range(8):
            assert fig8_schedule.class_of(row, 0) is TwiddleClass.RED

    def test_green_and_yellow_in_middle_stages(self, fig8_schedule):
        # Sec. 3.1: "Twiddle factors for next three column are of two
        # types; Green and Yellow"
        for stage in (1, 2, 3):
            classes = {fig8_schedule.class_of(r, stage) for r in range(8)}
            assert classes == {TwiddleClass.GREEN, TwiddleClass.YELLOW}

    def test_last_stages_are_blue(self, fig8_schedule):
        # "Twiddle factors for last two column (Blue ones) are already in
        # data memory, only index ... is changed"
        for stage in (4, 5):
            for row in range(8):
                assert fig8_schedule.class_of(row, stage) is TwiddleClass.BLUE

    def test_row0_always_greenable(self, fig8_schedule):
        # tile 0 keeps the lowest exponents; squaring always regenerates
        for stage in (1, 2, 3):
            assert fig8_schedule.class_of(0, stage) is TwiddleClass.GREEN

    def test_counts_sum_to_slots(self, fig8_schedule):
        total = sum(fig8_schedule.count(c) for c in TwiddleClass)
        assert total == 8 * 6

    def test_unknown_slot_raises(self, fig8_schedule):
        with pytest.raises(KernelError):
            fig8_schedule.class_of(9, 0)


class TestReloadAccounting:
    def test_only_yellow_charged(self, fig8_schedule):
        yellow = fig8_schedule.count(TwiddleClass.YELLOW)
        assert fig8_schedule.total_reload_words == yellow * 4  # m/2 each

    def test_optimized_beats_naive(self, fig8_schedule):
        assert fig8_schedule.total_reload_words < fig8_schedule.naive_reload_words

    def test_pipelined_columns_reset_to_red(self):
        # With 10 columns every stage starts a fresh tile: all RED.
        schedule = classify_twiddles(FFTPlan(1024, 128, 10))
        assert schedule.count(TwiddleClass.RED) == 8 * 10
        assert schedule.total_reload_words == 0

    def test_stage_summary_structure(self, fig8_schedule):
        summary = fig8_schedule.stage_summary()
        assert len(summary) == 6
        assert summary[0] == {"red": 8, "green": 0, "blue": 0, "yellow": 0}
        for counts in summary:
            assert sum(counts.values()) == 8

    def test_reload_ns_positive(self, fig8_schedule):
        assert fig8_schedule.total_reload_ns > 0

    def test_1024_point_single_column(self):
        schedule = classify_twiddles(FFTPlan(1024, 128, 1))
        # exchange stages 0..2 move data between tiles -> yellow appears
        # only in stages 1..3; the internal tail must be free.
        for stage in range(4, 10):
            for row in range(8):
                assert schedule.class_of(row, stage) in (
                    TwiddleClass.BLUE, TwiddleClass.GREEN
                )
