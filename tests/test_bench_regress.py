"""Tier-1 smoke test of the benchmark-regression harness.

Runs ``benchmarks/bench_regress.py`` with a single repeat, checks the
machine-readable ``BENCH_fabric.json`` is produced with the expected
schema, and enforces the regression contract: the fast path must not be
slower than the reference interpreter, and both must simulate identical
fabric time.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_HARNESS = Path(__file__).resolve().parent.parent / "benchmarks" / "bench_regress.py"


@pytest.fixture(scope="module")
def bench_regress():
    spec = importlib.util.spec_from_file_location("bench_regress", _HARNESS)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def entries(bench_regress, tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_fabric.json"
    produced = bench_regress.run_benches(repeats=1, output=out)
    written = json.loads(out.read_text())
    assert written == produced
    return produced


def test_json_schema(entries):
    names = [e["bench"] for e in entries]
    assert names == [
        "fabric_fft_64pt",
        "fabric_fft_batch64",
        "fabric_jpeg_blocks",
        "dse_link_cost_sweep",
    ]
    for e in entries:
        assert set(e) == {
            "bench", "wall_s_fast", "wall_s_reference", "simulated_ns", "speedup"
        }
        assert e["wall_s_fast"] > 0
        assert e["wall_s_reference"] > 0
        assert e["simulated_ns"] > 0


def test_fast_path_not_slower(entries):
    for e in entries:
        assert e["speedup"] >= 1.0, (
            f"{e['bench']}: fast path regressed below the reference "
            f"interpreter (speedup {e['speedup']:.2f}x)"
        )


def test_repo_level_json_records_target_speedups(bench_regress):
    """The committed BENCH_fabric.json meets every per-bench floor
    (>=5x scalar tentpole, >=50x vector-batched FFT)."""
    path = _HARNESS.parent.parent / "BENCH_fabric.json"
    entries = json.loads(path.read_text())
    by_name = {e["bench"]: e for e in entries}
    for bench, floor in bench_regress.SPEEDUP_FLOORS.items():
        assert by_name[bench]["speedup"] >= floor, (
            f"{bench}: committed speedup {by_name[bench]['speedup']:.2f}x "
            f"below floor {floor:.1f}x"
        )
    bench_regress.check_floors(entries)
