"""Physical constants and unit conversions (the paper's published rates)."""

import pytest

from repro import units


class TestPublishedConstants:
    def test_clock(self):
        assert units.TILE_CLOCK_HZ == 400e6
        assert units.CYCLE_NS == pytest.approx(2.5)

    def test_icap_rate(self):
        assert units.ICAP_BYTES_PER_S == 180e6

    def test_memory_geometry(self):
        assert units.DATA_MEM_WORDS == 512
        assert units.INSTR_MEM_WORDS == 512
        assert units.DATA_WORD_BITS == 48
        assert units.INSTR_WORD_BITS == 72
        assert units.LINK_WIRES == 48  # "a link ... of size 48 lines"

    def test_derived_reload_costs(self):
        # Sec 3.1: "reloading one location in data memory takes 33.33 ns,
        # executing an instruction takes 2.5 ns"
        assert units.DMEM_WORD_RELOAD_NS == pytest.approx(33.33, abs=0.01)
        assert units.IMEM_WORD_RELOAD_NS == pytest.approx(50.0)

    def test_tile_area(self):
        assert units.TILE_AREA_SLICE_LUTS == 200


class TestConversions:
    def test_cycles_ns_roundtrip(self):
        assert units.cycles_to_ns(units.ns_to_cycles(123.0)) == pytest.approx(123.0)

    def test_custom_clock(self):
        assert units.cycles_to_ns(300, clock_hz=300e6) == pytest.approx(1000.0)

    def test_bytes_to_reload(self):
        assert units.bytes_to_reload_ns(180e6) == pytest.approx(1e9)
        with pytest.raises(ValueError):
            units.bytes_to_reload_ns(-1)

    def test_throughput(self):
        assert units.throughput_per_s(1000.0) == pytest.approx(1e6)
        with pytest.raises(ValueError):
            units.throughput_per_s(0)
