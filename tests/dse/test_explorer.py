"""Pre-wired kernel explorations."""

import pytest

from repro.dse.explorer import explore_fft, explore_jpeg, fft_point, fft_pareto
from repro.dse.pareto import pareto_front
from repro.errors import DSEError


class TestFFT:
    def test_point_scoring(self):
        p = fft_point(1024, 128, 10, 0.0)
        assert p.n_tiles == 80
        assert p.throughput_per_s > 0
        assert 0 <= p.utilization <= 1
        assert p.param("cols") == 10

    def test_explore_covers_grid(self):
        points = explore_fft(link_costs_ns=(0.0, 500.0), cols_list=(1, 2))
        assert len(points) == 4

    def test_uniform_profile_for_other_sizes(self):
        p = fft_point(64, 8, 2, 100.0)
        assert p.throughput_per_s > 0

    def test_empty_axes_rejected(self):
        with pytest.raises(DSEError):
            explore_fft(cols_list=())

    def test_pareto_front_structure(self):
        front = fft_pareto(link_cost_ns=0.0)
        # at L=0 more tiles always help: the whole cols axis is on the front
        assert len(front) == 4
        tiles = [p.n_tiles for p in front]
        assert tiles == sorted(tiles, reverse=True)

    def test_pareto_collapses_at_high_cost(self):
        front = fft_pareto(link_cost_ns=4000.0)
        # expensive links: fewer columns dominate, front shrinks
        assert len(front) < 4
        assert front[0].param("cols") in (1, 2)


class TestJPEG:
    def test_explore_shape(self):
        points = explore_jpeg(max_tiles=5, algorithms=("one",))
        assert len(points) == 5
        assert all(p.param("algorithm") == "one" for p in points)

    def test_front_of_jpeg_space(self):
        points = explore_jpeg(max_tiles=10, algorithms=("one", "opt"))
        front = pareto_front(points)
        assert front
        assert all(p.throughput_per_s > 0 for p in front)
