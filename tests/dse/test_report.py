"""Text formatters."""

import pytest

from repro.dse.report import format_series, format_table
from repro.errors import DSEError


class TestTable:
    def test_basic_rows(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}])
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert len(lines) == 4  # header, rule, 2 rows

    def test_bool_rendering(self):
        text = format_table([{"flag": True}, {"flag": False}])
        assert "yes" in text and "no" in text

    def test_column_selection_and_order(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_missing_cells_blank(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert text  # renders without KeyError

    def test_empty_rejected(self):
        with pytest.raises(DSEError):
            format_table([])


class TestSeries:
    def test_shared_x_grid(self):
        series = {
            "one": [(0, 1.0), (100, 2.0)],
            "two": [(0, 3.0), (100, 4.0)],
        }
        text = format_series(series, x_label="L", y_label="tput")
        lines = text.splitlines()
        assert "one" in lines[1] and "two" in lines[1]
        assert lines[3].strip().startswith("0")

    def test_empty_rejected(self):
        with pytest.raises(DSEError):
            format_series({})
