"""Pareto-front extraction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dse.objectives import DesignPoint
from repro.dse.pareto import dominates, pareto_front
from repro.errors import DSEError


def point(throughput, tiles):
    return DesignPoint.make({"t": tiles, "thr": throughput}, throughput, tiles)


class TestDominance:
    def test_strictly_better_dominates(self):
        assert dominates(point(10, 1), point(5, 2))

    def test_equal_does_not_dominate(self):
        a, b = point(10, 1), point(10, 1)
        assert not dominates(a, b) and not dominates(b, a)

    def test_tradeoff_does_not_dominate(self):
        fast_big, slow_small = point(10, 8), point(5, 1)
        assert not dominates(fast_big, slow_small)
        assert not dominates(slow_small, fast_big)


class TestFront:
    def test_extracts_non_dominated(self):
        pts = [point(10, 1), point(20, 2), point(5, 2), point(15, 4)]
        front = pareto_front(pts)
        assert {(p.throughput_per_s, p.n_tiles) for p in front} == \
            {(10.0, 1), (20.0, 2)}

    def test_sorted_by_descending_throughput(self):
        pts = [point(10, 1), point(20, 2), point(30, 5)]
        front = pareto_front(pts)
        throughputs = [p.throughput_per_s for p in front]
        assert throughputs == sorted(throughputs, reverse=True)

    def test_duplicates_collapsed(self):
        pts = [point(10, 1), point(10, 1)]
        assert len(pareto_front(pts)) == 1

    def test_empty_rejected(self):
        with pytest.raises(DSEError):
            pareto_front([])

    @given(st.lists(
        st.tuples(st.floats(min_value=1, max_value=1e6),
                  st.integers(min_value=1, max_value=100)),
        min_size=1, max_size=40,
    ))
    @settings(max_examples=60, deadline=None)
    def test_front_invariants(self, raw):
        pts = [point(t, n) for t, n in raw]
        front = pareto_front(pts)
        assert front  # never empty for non-empty input
        # no member dominates another
        for a in front:
            for b in front:
                if a is not b:
                    assert not dominates(a, b)
        # every non-member is dominated by or ties some member
        for p in pts:
            if all(
                (p.throughput_per_s, p.n_tiles)
                != (f.throughput_per_s, f.n_tiles)
                for f in front
            ):
                assert any(dominates(f, p) for f in front)
