"""Sweep engine: cartesian axes, ordering, parallel backend."""

import pytest

from repro.dse.sweep import SweepResult, axis_points, sweep
from repro.errors import DSEError


def score(a, b):
    return a * 10 + b


class TestAxes:
    def test_cartesian_order(self):
        points = axis_points({"a": [1, 2], "b": [3, 4]})
        assert points == [
            {"a": 1, "b": 3}, {"a": 1, "b": 4},
            {"a": 2, "b": 3}, {"a": 2, "b": 4},
        ]

    def test_empty_axes_rejected(self):
        with pytest.raises(DSEError):
            axis_points({})
        with pytest.raises(DSEError):
            axis_points({"a": []})


class TestSweep:
    def test_values_in_order(self):
        result = sweep(score, {"a": [1, 2], "b": [0, 5]})
        assert result.values == [10, 15, 20, 25]
        assert len(result) == 4

    def test_series_filter(self):
        result = sweep(score, {"a": [1, 2], "b": [0, 5]})
        series = result.series("b", where={"a": 2})
        assert series == [(0, 20), (5, 25)]

    def test_best(self):
        result = sweep(score, {"a": [1, 2], "b": [0, 5]})
        point, value = result.best(key=lambda v: v)
        assert value == 25 and point == {"a": 2, "b": 5}
        point, value = result.best(key=lambda v: v, maximize=False)
        assert value == 10

    def test_best_on_empty(self):
        with pytest.raises(DSEError):
            SweepResult(axes={}).best(key=lambda v: v)

    def test_invalid_processes(self):
        with pytest.raises(DSEError):
            sweep(score, {"a": [1]}, processes=0)
        with pytest.raises(DSEError):
            sweep(score, {"a": [1]}, processes="many")

    def test_parallel_matches_serial(self):
        axes = {"a": [1, 2, 3], "b": [4, 5]}
        serial = sweep(score, axes, processes=1)
        parallel = sweep(score, axes, processes=2)
        assert serial.values == parallel.values

    def test_auto_processes(self):
        axes = {"a": [1, 2], "b": [3, 4]}
        auto = sweep(score, axes, processes="auto")
        assert auto.values == sweep(score, axes).values

    def test_single_point_stays_serial(self):
        # a one-point sweep must not pay for a process pool
        result = sweep(score, {"a": [2], "b": [3]}, processes=4)
        assert result.values == [23]

    def test_iteration(self):
        result = sweep(score, {"a": [1], "b": [2]})
        pairs = list(result)
        assert pairs == [({"a": 1, "b": 2}, 12)]
