"""Design points and scalar objectives."""

import pytest

from repro.dse.objectives import DesignPoint, Objective
from repro.errors import DSEError


def point(throughput, tiles, util=0.5, **params):
    return DesignPoint.make(params or {"x": 1}, throughput, tiles, util)


class TestDesignPoint:
    def test_area_from_tiles(self):
        assert point(100.0, 8).area_luts == 1600

    def test_throughput_per_area(self):
        p = point(3200.0, 8)
        assert p.throughput_per_area == pytest.approx(2.0)

    def test_zero_tiles_safe(self):
        assert point(10.0, 0).throughput_per_area == 0.0

    def test_param_lookup(self):
        p = point(1.0, 1, cols=5)
        assert p.param("cols") == 5
        with pytest.raises(DSEError):
            p.param("nope")

    def test_invalid_values(self):
        with pytest.raises(DSEError):
            point(-1.0, 1)
        with pytest.raises(DSEError):
            point(1.0, -1)

    def test_hashable_for_sets(self):
        assert len({point(1.0, 1), point(1.0, 1)}) == 1


class TestObjective:
    def test_throughput_picks_fastest(self):
        pts = [point(10.0, 1), point(30.0, 9), point(20.0, 2)]
        assert Objective.THROUGHPUT.best(pts).throughput_per_s == 30.0

    def test_area_picks_smallest(self):
        pts = [point(10.0, 4), point(9.0, 1)]
        assert Objective.AREA.best(pts).n_tiles == 1

    def test_ratio_objective(self):
        pts = [point(100.0, 10), point(60.0, 2)]
        assert Objective.THROUGHPUT_PER_AREA.best(pts).n_tiles == 2

    def test_utilization_objective(self):
        pts = [point(1.0, 1, util=0.3), point(1.0, 1, util=0.9)]
        assert Objective.UTILIZATION.best(pts).utilization == 0.9

    def test_empty_rejected(self):
        with pytest.raises(DSEError):
            Objective.THROUGHPUT.best([])


class TestEnergyObjective:
    def test_throughput_per_mw(self):
        p = DesignPoint.make({"x": 1}, 1000.0, 4, power_mw=2.0)
        assert p.throughput_per_mw == pytest.approx(500.0)

    def test_unevaluated_power_scores_zero(self):
        assert point(1000.0, 4).throughput_per_mw == 0.0

    def test_objective_prefers_efficient_design(self):
        slow_efficient = DesignPoint.make({"d": 1}, 500.0, 1, power_mw=0.5)
        fast_hungry = DesignPoint.make({"d": 2}, 2000.0, 16, power_mw=8.0)
        best = Objective.THROUGHPUT_PER_WATT.best([slow_efficient, fast_hungry])
        assert best is slow_efficient

    def test_negative_power_rejected(self):
        with pytest.raises(DSEError):
            DesignPoint.make({"x": 1}, 1.0, 1, power_mw=-1.0)

    def test_fft_points_carry_power(self):
        from repro.dse.explorer import fft_point

        p = fft_point(1024, 128, 10, 300.0)
        assert p.power_mw > 0
        assert p.throughput_per_mw > 0

    def test_efficiency_vs_tiles_tradeoff(self):
        """More columns raise throughput but also power; efficiency
        moves less than raw throughput — the paper's perf/watt story."""
        from repro.dse.explorer import fft_point

        one = fft_point(1024, 128, 1, 0.0)
        ten = fft_point(1024, 128, 10, 0.0)
        throughput_gain = ten.throughput_per_s / one.throughput_per_s
        efficiency_gain = ten.throughput_per_mw / one.throughput_per_mw
        assert efficiency_gain < throughput_gain
