"""Tier-1 smoke test of the per-kernel benchmark harness.

Runs ``benchmarks/bench_kernels.py`` in quick mode, checks the
machine-readable ``BENCH_kernels.json`` schema covers every registered
kernel, and enforces the regression contract: batched dispatch must not
lose to scalar dispatch, and the committed repo-level JSON must meet
every per-kernel speedup floor.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_HARNESS = Path(__file__).resolve().parent.parent / "benchmarks" / "bench_kernels.py"

_SCHEMA_KEYS = {
    "kernel", "params", "k", "exact",
    "wall_s_scalar", "wall_s_batched", "wall_s_reference",
    "batch_speedup", "jobs_per_s_batched",
}


@pytest.fixture(scope="module")
def bench_kernels():
    spec = importlib.util.spec_from_file_location("bench_kernels", _HARNESS)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def entries(bench_kernels, tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_kernels.json"
    produced = bench_kernels.run_bench(quick=True, output=out)
    written = json.loads(out.read_text())
    assert written == produced
    return produced


def test_json_schema_covers_every_registered_kernel(entries):
    from repro.compile.frontends import frontend_names

    assert [e["kernel"] for e in entries] == list(frontend_names())
    for e in entries:
        assert set(e) == _SCHEMA_KEYS
        assert e["k"] > 0
        assert e["wall_s_scalar"] > 0
        assert e["wall_s_batched"] > 0
        assert e["wall_s_reference"] > 0
        assert isinstance(e["exact"], bool)
        assert isinstance(e["params"], dict)


def test_batched_not_slower_than_scalar(entries):
    for e in entries:
        assert e["batch_speedup"] >= 1.0, (
            f"{e['kernel']}: batched tier regressed below scalar "
            f"dispatch ({e['batch_speedup']:.2f}x)"
        )


def test_floor_table_covers_every_registered_kernel(bench_kernels):
    from repro.compile.frontends import frontend_names

    assert set(bench_kernels.SPEEDUP_FLOORS) == set(frontend_names())


def test_repo_level_json_meets_the_floors(bench_kernels):
    path = _HARNESS.parent.parent / "BENCH_kernels.json"
    entries = json.loads(path.read_text())
    by_name = {e["kernel"]: e for e in entries}
    for kernel, floor in bench_kernels.SPEEDUP_FLOORS.items():
        assert by_name[kernel]["batch_speedup"] >= floor, (
            f"{kernel}: committed speedup "
            f"{by_name[kernel]['batch_speedup']:.2f}x below floor {floor:.1f}x"
        )
    bench_kernels.check_floors(entries)
