"""Experiment modules: structure checks and paper-match assertions."""

import pytest

from repro.experiments import (
    ablations,
    fig8,
    fig10,
    fig11,
    fig12,
    fig16,
    fig17,
    table2,
    table3,
    table4,
    table5,
)


class TestTable2:
    def test_matches_published_exactly(self):
        rows = table2.run()
        for got, want in zip(rows, table2.PAPER_ROWS):
            assert got["cols"] == want["cols"]
            assert got["prev_cost_ns"] == pytest.approx(
                want["prev_cost_ns"], abs=0.15
            )
            assert got["new_cost_ns"] == pytest.approx(
                want["new_cost_ns"], abs=0.01
            )

    def test_render(self):
        assert "Table 2" in table2.render()


class TestFig8:
    def test_matrix_and_classes(self):
        result = fig8.run()
        assert len(result["matrix"]) == 32
        assert result["reload_words"] < result["naive_reload_words"]

    def test_stage_summary_covers_rows(self):
        result = fig8.run()
        assert all(sum(c.values()) == 8 for c in result["stage_summary"])

    def test_render(self):
        text = fig8.render()
        assert "w0" in text and "tile 0" in text


class TestFigures10to12:
    def test_fig10_series_shape(self):
        series = fig10.run(link_costs=(0.0, 1000.0))
        assert set(series) == {1, 2, 5, 10}
        for curve in series.values():
            assert len(curve) == 2

    def test_fig10_ordering_at_zero(self):
        series = fig10.run(link_costs=(0.0,))
        at_zero = {c: curve[0][1] for c, curve in series.items()}
        assert at_zero[10] > at_zero[5] > at_zero[2] > at_zero[1]

    def test_fig11_crossover_band_overlaps_paper(self):
        lo, hi = fig11.crossover_band()
        # paper reads ~700 ns (no benefit) and ~1100 ns (harmful)
        assert 400 <= lo <= 1100
        assert 800 <= hi <= 1600
        assert lo <= hi

    def test_fig12_transpose_consistent_with_fig10(self):
        f10 = fig10.run(link_costs=(0.0, 700.0))
        f12 = fig12.run(link_costs=(0.0, 700.0))
        assert f12[0.0][3][1] == pytest.approx(f10[10][0][1])
        assert f12[700.0][0][1] == pytest.approx(f10[1][1][1])

    def test_renders(self):
        assert "Fig. 10" in fig10.render(link_costs=(0.0,))
        assert "Fig. 12" in fig12.render(link_costs=(0.0,))


class TestTable3:
    def test_rows_and_measurements(self):
        rows = table3.run()
        by_name = {r["process"]: r for r in rows}
        assert by_name["DCT"]["paper_cycles"] == 133324
        assert by_name["DCT"]["measured_cycles"] > 0
        # our generated quarter DCT is also ~1/4 of our full DCT
        assert by_name["dct"]["measured_cycles"] < \
            by_name["DCT"]["measured_cycles"] / 2.5

    def test_zigzag_is_cheapest_measured(self):
        measured = table3.measured_cycles()
        assert measured["Zigzag"] == min(
            measured["Zigzag"], measured["shift"], measured["DCT"]
        )

    def test_render(self):
        assert "Table 3" in table3.render()


class TestTable4:
    def test_all_rows_close_to_paper(self):
        for row in table4.run():
            assert row["time_us"] == pytest.approx(
                row["paper_time_us"], rel=0.01
            )
            assert row["images_per_s"] == pytest.approx(
                row["paper_images_per_s"], rel=0.02
            )

    def test_render(self):
        assert "Table 4" in table4.render()


class TestTable5:
    def test_binding_matches_paper(self):
        assert table5.matches_paper()

    def test_rows_structure(self):
        rows = table5.run()
        assert len(rows) == 7
        dct_row = next(r for r in rows if r["processes"] == "DCT")
        assert dct_row["instances"] == 17

    def test_render_flags_match(self):
        assert "matches the published binding" in table5.render()


class TestFigs16and17:
    def test_fig16_monotone_per_algorithm(self):
        series = fig16.run(max_tiles=12)
        for curve in series.values():
            values = [v for _, v in curve]
            assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_fig16_divergence_in_paper_band(self):
        points = fig16.divergence_points()
        assert points
        assert all(10 <= p <= 25 for p in points)

    def test_fig17_utilization_bounds(self):
        series = fig17.run(max_tiles=10)
        for curve in series.values():
            assert all(0 < v <= 1.0 + 1e-9 for _, v in curve)
            assert curve[0][1] == pytest.approx(1.0)

    def test_renders(self):
        assert "Fig. 16" in fig16.render(max_tiles=6)
        assert "Fig. 17" in fig17.render(max_tiles=6)


class TestAblations:
    def test_twiddle_optimization_always_helps_or_neutral(self):
        for row in ablations.twiddle_ablation():
            assert row["speedup"] >= 1.0

    def test_overlap_always_helps_or_neutral(self):
        for row in ablations.vlink_overlap_ablation():
            assert row["speedup"] >= 1.0

    def test_pinning_never_hurts(self):
        for row in ablations.pinning_ablation():
            assert row["slowdown"] >= 1.0
        # implementation 1 (everything on one tile) must benefit
        impl1 = ablations.pinning_ablation()[0]
        assert impl1["slowdown"] > 1.0

    def test_copy_variants_tradeoff(self):
        for row in ablations.copy_variant_ablation():
            assert row["speedup"] > 1.0          # time variant faster
            assert row["imem_cost_words"] > 0    # but larger

    def test_render(self):
        text = ablations.render()
        assert "A1" in text and "A5" in text
