"""The worked rebalancing example of Figs. 13-14."""

from repro.experiments import fig13_14


def test_trace_matches_annotated_values():
    result = fig13_14.run()
    intervals = {s["tiles"]: s["interval_ns"] for s in result["greedy_trace"]}
    assert intervals == {
        1: 5100.0, 2: 3200.0, 3: 1900.0,
        4: 1800.0, 5: 1400.0, 6: 1100.0,
    }


def test_duplication_kicks_in_at_five_tiles():
    result = fig13_14.run()
    five = next(s for s in result["greedy_trace"] if s["tiles"] == 5)
    assert "[q3]x2" in five["mapping"]


def test_algorithms_coincide_on_atomic_example():
    result = fig13_14.run()
    for row in result["comparison"]:
        assert row["one_ns"] == row["two_ns"] == row["opt_ns"]


def test_render_mentions_both_figures():
    text = fig13_14.render()
    assert "Fig. 13" in text and "Fig. 14" in text
