"""The blocked GEMM kernel: oracle equivalence, blocking, layout limits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels.gemm import (
    OPERAND_LIMIT,
    FabricGEMM,
    gemm_reference,
)
from repro.kernels.gemm.programs import GEMMLayout


def _operands(n: int, seed: int = 0, lo: int = -512, hi: int = 512):
    rng = np.random.default_rng(seed)
    return rng.integers(lo, hi, (2, n, n)).astype(np.int64)


class TestOracleEquivalence:
    @pytest.mark.parametrize("n,block", [(4, 2), (8, 4), (8, 2), (12, 4)])
    def test_product_is_bit_exact(self, n, block):
        runner = FabricGEMM(n=n, block=block)
        pair = _operands(n, seed=n + block)
        want = gemm_reference(pair[0], pair[1])
        assert np.array_equal(runner.run(pair), want)

    def test_blockings_agree_with_each_other(self):
        pair = _operands(8, seed=5)
        a = FabricGEMM(n=8, block=4).run(pair)
        b = FabricGEMM(n=8, block=2).run(pair)
        assert np.array_equal(a, b)

    def test_batch_matches_scalar_bit_for_bit(self):
        runner = FabricGEMM(n=8, block=4)
        pairs = np.stack([_operands(8, seed=s) for s in range(4)])
        batched = runner.run_batch(pairs)
        scalar = FabricGEMM(n=8, block=4)
        for i, pair in enumerate(pairs):
            assert np.array_equal(batched[i], scalar.run(pair))

    def test_negative_products_are_exact(self):
        pair = _operands(4, seed=2, lo=-500, hi=0)
        runner = FabricGEMM(n=4, block=2)
        out = runner.run(pair)
        assert out.min() >= 0  # negative times negative
        assert np.array_equal(out, pair[0] @ pair[1])

    def test_repeated_runs_reset_the_accumulator(self):
        # the input port re-zeroes C every bind; a stale accumulator
        # would double the second product
        runner = FabricGEMM(n=4, block=2)
        pair = _operands(4, seed=9)
        first = runner.run(pair)
        second = runner.run(pair)
        assert np.array_equal(first, second)


class TestReference:
    def test_wraps_at_48_bits(self):
        a = np.full((2, 2), 1 << 30, dtype=np.int64)
        out = gemm_reference(a, a)
        assert abs(int(out[0, 0])) < (1 << 47)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(KernelError):
            gemm_reference(
                np.zeros((2, 2), dtype=np.int64),
                np.zeros((3, 3), dtype=np.int64),
            )


class TestLimits:
    def test_side_must_divide_by_block(self):
        with pytest.raises(KernelError, match="divide"):
            GEMMLayout(8, 3)

    def test_side_too_large_for_data_memory(self):
        with pytest.raises(KernelError, match="words"):
            GEMMLayout(16, 4)

    def test_operand_magnitude_gate(self):
        runner = FabricGEMM(n=4, block=2)
        pair = np.zeros((2, 4, 4), dtype=np.int64)
        pair[0, 0, 0] = OPERAND_LIMIT
        with pytest.raises(KernelError):
            runner.artifact.bind(pair)

    def test_bad_payload_shape_rejected_at_bind(self):
        runner = FabricGEMM(n=4, block=2)
        with pytest.raises(KernelError):
            runner.artifact.bind(np.zeros((4, 4), dtype=np.int64))
