"""The 3x3 stencil kernel: oracle equivalence, presets, layout limits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels.conv2d import (
    PRESET_TAPS,
    FabricConv2D,
    conv2d_reference,
)
from repro.kernels.conv2d.programs import Conv2DLayout, conv2d_program


def _frames(k: int, size: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, (k, size, size)).astype(np.int64)


class TestOracleEquivalence:
    @pytest.mark.parametrize("kernel", sorted(PRESET_TAPS))
    def test_every_preset_is_bit_exact(self, kernel):
        runner = FabricConv2D(size=8, kernel=kernel)
        frame = _frames(1, 8, seed=3)[0]
        taps, shift = PRESET_TAPS[kernel]
        want = conv2d_reference(frame, np.array(taps).reshape(3, 3), shift)
        assert np.array_equal(runner.run(frame), want)

    def test_batch_matches_scalar_bit_for_bit(self):
        runner = FabricConv2D(size=16)
        frames = _frames(5, 16, seed=7)
        batched = runner.run_batch(frames)
        scalar = FabricConv2D(size=16)
        for i, frame in enumerate(frames):
            assert np.array_equal(batched[i], scalar.run(frame))

    def test_negative_responses_survive_readback(self):
        # the edge preset produces negative words on flat regions next
        # to bright pixels; dump_block must hand them back signed
        runner = FabricConv2D(size=8, kernel="edge")
        frame = np.zeros((8, 8), dtype=np.int64)
        frame[4, 4] = 255
        out = runner.run(frame)
        taps, shift = PRESET_TAPS["edge"]
        want = conv2d_reference(frame, np.array(taps).reshape(3, 3), shift)
        assert out.min() < 0
        assert np.array_equal(out, want)

    def test_identity_preset_is_a_crop(self):
        runner = FabricConv2D(size=8, kernel="identity")
        frame = _frames(1, 8, seed=11)[0]
        assert np.array_equal(runner.run(frame), frame[1:-1, 1:-1])


class TestReference:
    def test_blur_shift_rounds_to_nearest(self):
        taps, shift = PRESET_TAPS["blur"]
        frame = np.full((3, 3), 1, dtype=np.int64)
        # sum of taps = 16, acc = 16, (16 + 8) >> 4 = 1
        assert conv2d_reference(frame, np.array(taps).reshape(3, 3), shift)[0, 0] == 1

    def test_wraps_like_the_datapath(self):
        taps, shift = PRESET_TAPS["sharpen"]
        frame = np.full((3, 3), (1 << 45), dtype=np.int64)
        out = conv2d_reference(frame, np.array(taps).reshape(3, 3), shift)
        assert out.dtype == np.int64
        assert abs(int(out[0, 0])) < (1 << 47)


class TestLimits:
    def test_frame_too_small(self):
        with pytest.raises(KernelError, match="must be >= 3"):
            Conv2DLayout(2)

    def test_frame_too_large_for_data_memory(self):
        with pytest.raises(KernelError, match="words"):
            Conv2DLayout(17)

    def test_bad_shift(self):
        with pytest.raises(KernelError, match="shift"):
            conv2d_program(8, -1)

    def test_bad_payload_shape_rejected_at_bind(self):
        runner = FabricConv2D(size=8)
        with pytest.raises(KernelError):
            runner.artifact.bind(np.zeros((4, 4), dtype=np.int64))

    def test_unknown_preset(self):
        from repro.errors import CompileError

        with pytest.raises((KernelError, CompileError)):
            FabricConv2D(size=8, kernel="emboss")
