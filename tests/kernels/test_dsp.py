"""The streaming DSP chain: word-exact oracle, stage semantics, limits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels.dsp import (
    DSPLayout,
    FabricDSP,
    dsp_reference,
    triangle_taps,
)
from repro.kernels.fft.programs import QFORMAT


def _frame(n: int, decim: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    limit = QFORMAT.max_value / (2 * n)
    return (limit / 8) * rng.standard_normal(n * decim)


class TestOracleEquivalence:
    @pytest.mark.parametrize(
        "n,taps,decim", [(16, 8, 2), (8, 4, 3), (16, 5, 1), (32, 8, 2)]
    )
    def test_chain_is_word_exact(self, n, taps, decim):
        runner = FabricDSP(n=n, taps=taps, decim=decim)
        x = _frame(n, decim, seed=n + taps + decim)
        want = dsp_reference(x, n, taps, decim)
        assert np.array_equal(runner.run(x), want)

    def test_batch_matches_scalar_bit_for_bit(self):
        runner = FabricDSP(n=16, taps=8, decim=2)
        frames = np.stack([_frame(16, 2, seed=s) for s in range(4)])
        batched = runner.run_batch(frames)
        scalar = FabricDSP(n=16, taps=8, decim=2)
        for i, x in enumerate(frames):
            assert np.array_equal(batched[i], scalar.run(x))

    def test_dc_input_lands_in_bin_zero(self):
        # triangle taps have unit DC gain; a constant input decimates
        # to a constant, whose spectrum is one spike at bin 0
        n, taps, decim = 16, 8, 1
        runner = FabricDSP(n=n, taps=taps, decim=decim)
        level = QFORMAT.max_value / (4 * n)
        out = runner.run(np.full(n * decim, level))
        assert np.argmax(np.abs(out)) == 0

    def test_history_starts_zeroed_every_frame(self):
        # frame 2 must not see frame 1's tail: running the same frame
        # twice gives identical spectra
        runner = FabricDSP(n=16, taps=8, decim=2)
        x = _frame(16, 2, seed=21)
        assert np.array_equal(runner.run(x), runner.run(x))


class TestTaps:
    def test_triangle_taps_sum_to_one(self):
        for taps in (1, 4, 5, 8):
            h = triangle_taps(taps)
            assert len(h) == taps
            assert abs(sum(h) - 1.0) < 1e-12

    def test_reference_mirrors_qformat_rounding(self):
        # a payload at the amplitude gate exercises MULQ rounding in
        # every MAC; word-exactness would fail on any float shortcut
        x = _frame(16, 2, seed=33) * 1.9
        want = dsp_reference(x, 16, 8, 2)
        got = FabricDSP(16, 8, 2).run(x)
        assert np.array_equal(got, want)


class TestLimits:
    def test_bad_fir_length(self):
        with pytest.raises(KernelError, match=">= 1"):
            DSPLayout(16, 0, 2)

    def test_chain_too_large_for_data_memory(self):
        with pytest.raises(KernelError, match="words"):
            DSPLayout(64, 8, 3)

    def test_amplitude_gate_rejects_hot_payloads(self):
        runner = FabricDSP(n=16, taps=8, decim=2)
        hot = np.full(32, QFORMAT.max_value)
        with pytest.raises(KernelError):
            runner.artifact.bind(hot)

    def test_bad_payload_shape_rejected_at_bind(self):
        runner = FabricDSP(n=16, taps=8, decim=2)
        with pytest.raises(KernelError):
            runner.artifact.bind(np.zeros(16))
