"""Tier-1 guard for the cluster scale-out benchmark.

Mirrors ``tests/test_bench_serve.py``: load ``benchmarks/
bench_cluster.py`` as a module, run a reduced trace, and pin the
report schema, the determinism of the simulation, and the router-vs-
single speedup floor (>= 1.8x at 4 shards) that the committed
``BENCH_cluster.json`` must also honour.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent.parent
_HARNESS = _ROOT / "benchmarks" / "bench_cluster.py"
_COMMITTED = _ROOT / "BENCH_cluster.json"

#: Small enough for tier-1, large enough for stable percentiles.
_SMOKE_JOBS = 20_000

ENTRY_KEYS = {
    "shards",
    "jobs",
    "makespan_s",
    "throughput_jobs_per_s",
    "mean_ms",
    "p50_ms",
    "p99_ms",
    "p999_ms",
    "warm_fraction",
    "steals",
    "single_node_makespan_s",
    "speedup_vs_single",
    "wall_s",
}

DRAIN_KEYS = {
    "n_jobs",
    "n_shards",
    "drained_shard",
    "drain_start_s",
    "drain_settle_s",
    "migrated",
    "steady_p99_ms",
    "drain_p99_ms",
    "post_p99_ms",
    "p99_ratio",
    "makespan_s",
    "wall_s",
}

REJOIN_MODEL_KEYS = {
    "n_jobs",
    "n_shards",
    "killed_shard",
    "kill_s",
    "handoff_s",
    "rejoin_s",
    "mttr_s",
    "migrated",
    "stranded",
    "steady_p99_ms",
    "window_p99_ms",
    "post_p99_ms",
    "p99_ratio",
    "makespan_s",
    "wall_s",
}

REJOIN_MEASURED_KEYS = {
    "jobs",
    "shards",
    "victim",
    "mttr_s",
    "recovered_requeued",
    "deduped_on_rejoin",
    "rejoined",
    "violations",
    "ok",
    "wall_s",
}


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench_cluster", _HARNESS)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def report(bench, tmp_path_factory):
    output = tmp_path_factory.mktemp("bench_cluster") / "BENCH_cluster.json"
    produced = bench.run_bench(n_jobs=_SMOKE_JOBS, output=output)
    written = json.loads(output.read_text())
    assert written == produced
    return produced


def _strip_wall(report: dict) -> dict:
    """Drop the non-deterministic fields: host wall-clocks everywhere,
    and the entire measured rejoin half (real subprocesses — its MTTR
    is wall time by definition)."""
    clone = json.loads(json.dumps(report))
    for entry in clone["shards"]:
        entry.pop("wall_s")
    clone["drain"].pop("wall_s")
    clone["rejoin"]["model"].pop("wall_s")
    clone["rejoin"].pop("measured")
    return clone


def test_json_schema(report):
    assert set(report) == {
        "calibration",
        "load",
        "shards",
        "speedup_4_shards",
        "drain",
        "rejoin",
    }
    assert set(report["calibration"]) == {
        "warm_service_us",
        "cold_service_us",
        "per_kind",
    }
    assert set(report["load"]) == {
        "jobs",
        "seed",
        "n_plans",
        "zipf_s",
        "utilization",
        "shard_counts",
    }
    assert report["load"]["jobs"] == _SMOKE_JOBS
    assert [e["shards"] for e in report["shards"]] == report["load"][
        "shard_counts"
    ]
    for entry in report["shards"]:
        assert set(entry) == ENTRY_KEYS
        assert entry["jobs"] == _SMOKE_JOBS
        assert 0.0 < entry["p50_ms"] <= entry["p99_ms"] <= entry["p999_ms"]
        assert entry["makespan_s"] > 0
        assert entry["speedup_vs_single"] > 0
    assert set(report["drain"]) == DRAIN_KEYS
    assert set(report["rejoin"]) == {"model", "measured"}
    assert set(report["rejoin"]["model"]) == REJOIN_MODEL_KEYS
    assert set(report["rejoin"]["measured"]) == REJOIN_MEASURED_KEYS


def test_calibration_comes_from_real_sessions(bench):
    calibration = bench.calibrate()
    assert 0 < calibration["warm_service_us"] <= calibration["cold_service_us"]
    for kind in ("fft", "jpeg"):
        measured = calibration["per_kind"][kind]
        assert 0 < measured["warm_us"] <= measured["cold_us"]


def test_four_shard_speedup_floor(report):
    """The regression guard: sharding must pay for itself."""
    assert report["speedup_4_shards"] >= 1.8
    by_shards = {e["shards"]: e for e in report["shards"]}
    # Single node vs itself is exactly 1.0 by construction.
    assert by_shards[1]["speedup_vs_single"] == pytest.approx(1.0)
    # More shards never slow the same offered load down.
    assert by_shards[8]["makespan_s"] <= by_shards[4]["makespan_s"]


def test_stealing_engages_under_skew(report):
    """Zipf skew concentrates load; idle shards must actually steal."""
    multi = [e for e in report["shards"] if e["shards"] > 1]
    assert all(e["steals"] > 0 for e in multi)


def test_drain_leg_holds_the_latency_bar(report):
    """The ISSUE's acceptance: live drain under load must not blow the
    tail — p99 during the drain window <= 3x steady-state p99."""
    drain = report["drain"]
    assert drain["n_shards"] == 4
    assert drain["steady_p99_ms"] > 0
    assert drain["drain_p99_ms"] > 0
    assert 0 < drain["drain_start_s"] <= drain["drain_settle_s"]
    assert drain["p99_ratio"] == pytest.approx(
        drain["drain_p99_ms"] / drain["steady_p99_ms"]
    )
    assert drain["p99_ratio"] <= 3.0


def test_rejoin_model_holds_the_latency_bar(report):
    """Crash → handoff → cold rejoin must stay a bounded disruption:
    the window p99 may spike (stranded arrivals wait out the detection
    delay) but settles, and post-rejoin latency returns to steady."""
    model = report["rejoin"]["model"]
    assert model["n_shards"] == 4
    assert 0 < model["kill_s"] < model["handoff_s"] < model["rejoin_s"]
    assert model["mttr_s"] == pytest.approx(
        model["rejoin_s"] - model["kill_s"]
    )
    assert model["migrated"] > 0 and model["stranded"] > 0
    assert model["steady_p99_ms"] > 0
    assert model["p99_ratio"] == pytest.approx(
        model["window_p99_ms"] / model["steady_p99_ms"]
    )
    # The crash window is allowed a far bigger spike than a polite
    # drain: stranded arrivals wait out the full detection delay (tens
    # of milliseconds of wall time) while steady p99 sits at the
    # calibrated sub-millisecond service scale, so the honest ratio is
    # two orders of magnitude.  Bounded is the bar — and the post-rejoin
    # tail must fully recover.
    assert 1.0 < model["p99_ratio"] <= 150.0
    assert model["post_p99_ms"] <= 2.0 * model["steady_p99_ms"]


def test_rejoin_measured_leg_is_sound(report):
    """The real-subprocess half: the SIGKILL'd shard must rejoin with
    every invariant intact and a sane wall-clock MTTR."""
    measured = report["rejoin"]["measured"]
    assert measured["ok"] is True
    assert measured["rejoined"] is True
    assert measured["violations"] == []
    assert 0 < measured["mttr_s"] <= 30.0
    assert measured["recovered_requeued"] >= 0


def test_run_is_deterministic(bench, tmp_path):
    a = bench.run_bench(n_jobs=2_000, output=tmp_path / "a.json")
    b = bench.run_bench(n_jobs=2_000, output=tmp_path / "b.json")
    assert _strip_wall(a) == _strip_wall(b)


def test_repo_level_json_holds_the_floor():
    """The committed million-job report satisfies the acceptance bar."""
    committed = json.loads(_COMMITTED.read_text())
    assert committed["load"]["jobs"] == 1_000_000
    assert committed["load"]["shard_counts"] == [1, 2, 4, 8]
    assert committed["speedup_4_shards"] >= 1.8
    for entry in committed["shards"]:
        assert entry["p999_ms"] > 0
    assert committed["drain"]["n_jobs"] == 1_000_000
    assert 0 < committed["drain"]["p99_ratio"] <= 3.0
    model = committed["rejoin"]["model"]
    assert model["n_jobs"] == 1_000_000
    assert 1.0 < model["p99_ratio"] <= 150.0
    measured = committed["rejoin"]["measured"]
    assert measured["ok"] is True
    assert 0 < measured["mttr_s"] <= 30.0
