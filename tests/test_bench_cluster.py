"""Tier-1 guard for the cluster scale-out benchmark.

Mirrors ``tests/test_bench_serve.py``: load ``benchmarks/
bench_cluster.py`` as a module, run a reduced trace, and pin the
report schema, the determinism of the simulation, and the router-vs-
single speedup floor (>= 1.8x at 4 shards) that the committed
``BENCH_cluster.json`` must also honour.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent.parent
_HARNESS = _ROOT / "benchmarks" / "bench_cluster.py"
_COMMITTED = _ROOT / "BENCH_cluster.json"

#: Small enough for tier-1, large enough for stable percentiles.
_SMOKE_JOBS = 20_000

ENTRY_KEYS = {
    "shards",
    "jobs",
    "makespan_s",
    "throughput_jobs_per_s",
    "mean_ms",
    "p50_ms",
    "p99_ms",
    "p999_ms",
    "warm_fraction",
    "steals",
    "single_node_makespan_s",
    "speedup_vs_single",
    "wall_s",
}

DRAIN_KEYS = {
    "n_jobs",
    "n_shards",
    "drained_shard",
    "drain_start_s",
    "drain_settle_s",
    "migrated",
    "steady_p99_ms",
    "drain_p99_ms",
    "post_p99_ms",
    "p99_ratio",
    "makespan_s",
    "wall_s",
}


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench_cluster", _HARNESS)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def report(bench, tmp_path_factory):
    output = tmp_path_factory.mktemp("bench_cluster") / "BENCH_cluster.json"
    produced = bench.run_bench(n_jobs=_SMOKE_JOBS, output=output)
    written = json.loads(output.read_text())
    assert written == produced
    return produced


def _strip_wall(report: dict) -> dict:
    """Drop the only non-deterministic field (host wall-clock)."""
    clone = json.loads(json.dumps(report))
    for entry in clone["shards"]:
        entry.pop("wall_s")
    clone["drain"].pop("wall_s")
    return clone


def test_json_schema(report):
    assert set(report) == {
        "calibration",
        "load",
        "shards",
        "speedup_4_shards",
        "drain",
    }
    assert set(report["calibration"]) == {
        "warm_service_us",
        "cold_service_us",
        "per_kind",
    }
    assert set(report["load"]) == {
        "jobs",
        "seed",
        "n_plans",
        "zipf_s",
        "utilization",
        "shard_counts",
    }
    assert report["load"]["jobs"] == _SMOKE_JOBS
    assert [e["shards"] for e in report["shards"]] == report["load"][
        "shard_counts"
    ]
    for entry in report["shards"]:
        assert set(entry) == ENTRY_KEYS
        assert entry["jobs"] == _SMOKE_JOBS
        assert 0.0 < entry["p50_ms"] <= entry["p99_ms"] <= entry["p999_ms"]
        assert entry["makespan_s"] > 0
        assert entry["speedup_vs_single"] > 0
    assert set(report["drain"]) == DRAIN_KEYS


def test_calibration_comes_from_real_sessions(bench):
    calibration = bench.calibrate()
    assert 0 < calibration["warm_service_us"] <= calibration["cold_service_us"]
    for kind in ("fft", "jpeg"):
        measured = calibration["per_kind"][kind]
        assert 0 < measured["warm_us"] <= measured["cold_us"]


def test_four_shard_speedup_floor(report):
    """The regression guard: sharding must pay for itself."""
    assert report["speedup_4_shards"] >= 1.8
    by_shards = {e["shards"]: e for e in report["shards"]}
    # Single node vs itself is exactly 1.0 by construction.
    assert by_shards[1]["speedup_vs_single"] == pytest.approx(1.0)
    # More shards never slow the same offered load down.
    assert by_shards[8]["makespan_s"] <= by_shards[4]["makespan_s"]


def test_stealing_engages_under_skew(report):
    """Zipf skew concentrates load; idle shards must actually steal."""
    multi = [e for e in report["shards"] if e["shards"] > 1]
    assert all(e["steals"] > 0 for e in multi)


def test_drain_leg_holds_the_latency_bar(report):
    """The ISSUE's acceptance: live drain under load must not blow the
    tail — p99 during the drain window <= 3x steady-state p99."""
    drain = report["drain"]
    assert drain["n_shards"] == 4
    assert drain["steady_p99_ms"] > 0
    assert drain["drain_p99_ms"] > 0
    assert 0 < drain["drain_start_s"] <= drain["drain_settle_s"]
    assert drain["p99_ratio"] == pytest.approx(
        drain["drain_p99_ms"] / drain["steady_p99_ms"]
    )
    assert drain["p99_ratio"] <= 3.0


def test_run_is_deterministic(bench, tmp_path):
    a = bench.run_bench(n_jobs=2_000, output=tmp_path / "a.json")
    b = bench.run_bench(n_jobs=2_000, output=tmp_path / "b.json")
    assert _strip_wall(a) == _strip_wall(b)


def test_repo_level_json_holds_the_floor():
    """The committed million-job report satisfies the acceptance bar."""
    committed = json.loads(_COMMITTED.read_text())
    assert committed["load"]["jobs"] == 1_000_000
    assert committed["load"]["shard_counts"] == [1, 2, 4, 8]
    assert committed["speedup_4_shards"] >= 1.8
    for entry in committed["shards"]:
        assert entry["p999_ms"] > 0
    assert committed["drain"]["n_jobs"] == 1_000_000
    assert 0 < committed["drain"]["p99_ratio"] <= 3.0
