"""ShardRouter mechanics: placement, dedup, stealing rules, handoff.

Crash-interleaved behaviour lives in ``test_cluster_chaos.py``; these
tests pin the fault-free protocol rules one at a time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.ring import KEY_BITS
from repro.cluster.router import ShardRouter, spec_routing_key
from repro.errors import ClusterError
from repro.serve.jobs import JobStatus, JobRequest, fft_spec, jpeg_spec

HOT = fft_spec(16, 4, 2)
COLD = jpeg_spec(75, False)
THIRD = jpeg_spec(50, False)


def _request(spec, job_id):
    rng = np.random.default_rng(abs(hash(job_id)) % (2**32))
    if spec.kind.value == "fft":
        payload = rng.standard_normal(16) + 1j * rng.standard_normal(16)
    else:
        payload = rng.integers(0, 256, size=(8, 8), dtype=np.int64)
    return JobRequest(spec=spec, payload=payload, job_id=job_id)


@pytest.fixture
def pair(tmp_path):
    router = ShardRouter(tmp_path, ["a", "b"], steal_margin=2)
    yield router
    router.close()


class TestRoutingKeys:
    def test_key_is_deterministic_and_in_the_ring_space(self):
        assert spec_routing_key(HOT) == spec_routing_key(HOT)
        assert 0 <= spec_routing_key(HOT) < (1 << KEY_BITS)

    def test_distinct_configurations_get_distinct_keys(self):
        keys = {spec_routing_key(s) for s in (HOT, COLD, THIRD)}
        assert len(keys) == 3

    def test_same_spec_lands_on_one_shard(self, pair):
        assert len({pair.shard_for(HOT) for _ in range(5)}) == 1
        for i in range(4):
            pair.submit(_request(HOT, f"loc-{i}"))
        assert len(set(pair.owner.values())) == 1


class TestSubmitDedup:
    def test_resubmit_of_a_queued_job_is_absorbed(self, pair):
        request = _request(HOT, "dup-0")
        assert pair.submit(request) is None
        before = pair.pending
        assert pair.submit(_request(HOT, "dup-0")) is None
        assert pair.pending == before

    def test_resubmit_of_a_finished_job_returns_its_result(self, pair):
        pair.submit(_request(HOT, "dup-1"))
        pair.run()
        result = pair.submit(_request(HOT, "dup-1"))
        assert result is not None and result.status is JobStatus.DONE


class TestStealing:
    def test_imbalance_moves_cold_hash_jobs_until_the_margin(self, pair):
        home = pair.shard_for(HOT)
        thief = "b" if home == "a" else "a"
        for i in range(6):
            pair.submit(_request(HOT, f"st-{i}"))
        assert pair.shards[home].queue_depth == 6
        moved = pair.rebalance()
        # 6/0 -> 5/1 -> 4/2: the next gap equals the margin, so stop.
        assert moved == 2 and pair.steals == 2
        assert pair.shards[thief].queue_depth == 2
        assert pair.shards[home].jobs_stolen_away == 2
        assert pair.shards[thief].jobs_stolen_in == 2
        stolen = [j for j, o in pair.owner.items() if o == thief]
        assert len(stolen) == 2
        pair.run()
        assert all(
            r.status is JobStatus.DONE for r in pair.results.values()
        )
        assert len(pair.results) == 6

    def test_warm_affinity_is_never_broken(self, pair):
        home = pair.shard_for(HOT)
        pair.submit(_request(HOT, "warmup"))
        pair.run()  # HOT's configuration is now resident on its home
        assert HOT.config_key in pair.shards[home].resident_keys()
        for i in range(6):
            pair.submit(_request(HOT, f"aff-{i}"))
        assert pair.shards[home].steal_candidates() == []
        assert pair.rebalance() == 0 and pair.steals == 0

    def test_checkpoint_resumes_are_not_candidates(self, pair):
        home = pair.shard_for(HOT)
        for i in range(3):
            pair.submit(_request(HOT, f"rs-{i}"))
        shard = pair.shards[home]
        assert shard.engine is not None
        shard.engine.queue[0].resume_slice = 2
        candidates = {r.job_id for r in shard.steal_candidates()}
        assert candidates == {"rs-1", "rs-2"}


class TestKillAndHandoff:
    def _loaded(self, tmp_path, n=9):
        router = ShardRouter(tmp_path, ["a", "b", "c"], steal_margin=2)
        palette = (HOT, COLD, THIRD)
        for i in range(n):
            router.submit(_request(palette[i % 3], f"ha-{i:02d}"))
        return router

    def test_handoff_rehomes_and_recovers(self, tmp_path):
        router = self._loaded(tmp_path)
        router.step_round()  # some jobs finish on their home shards
        victim = max(
            (s for s in router.live_shards()), key=lambda s: s.queue_depth
        ).name
        unfinished = router.shards[victim].queue_depth
        finished_there = len(router.shards[victim].engine.results)
        router.kill_shard(victim)
        rehomed = router.handoff(victim)
        assert rehomed == unfinished
        # Results the round already delivered re-arrive from the dead
        # journal as recovered duplicates; first-wins suppresses them.
        assert router.duplicate_results >= finished_there
        # Idempotent: a second pass finds everything already owned.
        assert router.handoff(victim) == 0
        router.run()
        assert len(router.results) == 9
        assert all(
            r.status is JobStatus.DONE for r in router.results.values()
        )
        assert victim not in router.ring
        router.close()

    def test_kill_refuses_the_last_shard(self, tmp_path):
        router = self._loaded(tmp_path, n=3)
        router.kill_shard("a")
        router.kill_shard("b")
        with pytest.raises(ClusterError, match="last shard"):
            router.kill_shard("c")
        with pytest.raises(ClusterError, match="no shard"):
            router.kill_shard("zz")
        router.close()

    def test_handoff_refuses_a_live_shard(self, pair):
        with pytest.raises(ClusterError, match="alive"):
            pair.handoff("a")


class TestConstruction:
    def test_bad_arguments(self, tmp_path):
        with pytest.raises(ClusterError, match="at least one"):
            ShardRouter(tmp_path, [])
        with pytest.raises(ClusterError, match="duplicate"):
            ShardRouter(tmp_path, ["a", "a"])
        with pytest.raises(ClusterError, match="steal_margin"):
            ShardRouter(tmp_path, ["a", "b"], steal_margin=0)

    def test_metrics_are_published(self, tmp_path):
        router = ShardRouter(tmp_path, ["a", "b"])
        router.submit(_request(HOT, "m-0"))
        router.run()
        router.publish_metrics()
        snapshot = router.metrics.snapshot()
        assert "cluster_jobs_routed_total" in snapshot
        assert "cluster_shard_queue_depth" in snapshot
        router.close()
