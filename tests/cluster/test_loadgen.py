"""The open-loop load simulator: determinism, skew, stealing, speedup."""

from __future__ import annotations

import pytest

from repro.cluster.loadgen import (
    LoadSpec,
    generate_trace,
    plan_routing_keys,
    run_load,
    simulate,
)
from repro.cluster.ring import KEY_BITS
from repro.errors import ClusterError

#: Small enough for tier-1, skewed enough that stealing has work to do.
SPEC = LoadSpec(n_jobs=20_000, n_shards=4, seed=3, zipf_s=1.2)


@pytest.fixture(scope="module")
def report():
    return run_load(SPEC)


class TestTrace:
    def test_trace_is_deterministic(self):
        a_arr, a_plan, a_ten = generate_trace(SPEC)
        b_arr, b_plan, b_ten = generate_trace(SPEC)
        assert (a_arr == b_arr).all()
        assert (a_plan == b_plan).all()
        assert (a_ten == b_ten).all()

    def test_plan_keys_live_in_the_ring_key_space(self):
        keys = plan_routing_keys(32)
        assert keys == plan_routing_keys(32)
        assert len(set(keys)) == 32
        assert all(0 <= k < (1 << KEY_BITS) for k in keys)

    def test_zipf_skew_shows_in_the_report(self, report):
        # Uniform would give ~1/64 per plan; Zipf makes one plan hot.
        assert report.hottest_plan_share > 3.0 / SPEC.n_plans
        assert report.hottest_tenant_share > 1.5 / 16


class TestSimulation:
    def test_report_is_deterministic(self, report):
        assert run_load(SPEC).as_dict() == report.as_dict()

    def test_every_job_completes_exactly_once(self, report):
        assert report.n_jobs == SPEC.n_jobs
        assert sum(report.per_shard_completed.values()) == SPEC.n_jobs

    def test_percentiles_are_ordered(self, report):
        assert 0.0 < report.p50_ms <= report.p99_ms <= report.p999_ms
        assert report.warm_fraction > 0.0
        assert report.makespan_s > 0.0
        assert report.throughput_jobs_per_s > 0.0

    def test_stealing_cuts_the_tail_under_skew(self, report):
        frozen = run_load(
            LoadSpec(**{**SPEC.__dict__, "steal": False})
        )
        assert report.steals > 0
        assert frozen.steals == 0
        assert report.p99_ms < frozen.p99_ms

    def test_single_node_cannot_steal(self):
        solo = simulate(SPEC, generate_trace(SPEC), n_shards=1)
        assert solo.steals == 0
        assert solo.n_shards == 1

    def test_sharding_beats_a_single_node_on_the_same_trace(self):
        trace = generate_trace(SPEC)
        sharded = simulate(SPEC, trace)
        solo = simulate(SPEC, trace, n_shards=1)
        assert solo.makespan_s / sharded.makespan_s >= 1.8


class TestValidation:
    @pytest.mark.parametrize(
        "field, value, match",
        [
            ("n_jobs", 0, "n_jobs"),
            ("n_shards", 0, "n_shards"),
            ("n_plans", 0, "n_plans"),
            ("zipf_s", 0.0, "zipf_s"),
            ("utilization", 0.0, "utilization"),
            ("utilization", 2.5, "utilization"),
            ("warm_service_us", 0.0, "warm_service_us"),
            ("cold_service_us", 1.0, "warm_service_us"),
        ],
    )
    def test_bad_spec_fields_raise(self, field, value, match):
        with pytest.raises(ClusterError, match=match):
            LoadSpec(**{**LoadSpec().__dict__, field: value})

    def test_simulate_rejects_bad_shard_override(self):
        with pytest.raises(ClusterError, match="n_shards"):
            simulate(SPEC, generate_trace(SPEC), n_shards=0)
