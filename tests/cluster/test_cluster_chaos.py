"""The cluster kill-and-restart chaos matrix.

The single-node matrix (``tests/chaos/test_harness.py``) sweeps every
registered crash point over one engine; this module sweeps the same
points over a three-shard cluster **with a shard kill layered on**, so
every crash interleaves with stealing and handoff.  The Hypothesis
section then drives randomized Zipf-skewed traces through steal +
shard-kill + replay and holds the two cluster invariants the ISSUE
names: no acknowledged job is ever lost, and no job is ever delivered
twice with conflicting results.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.compile.cache  # noqa: F401  (register cache.* points)
import repro.cluster.router  # noqa: F401  (register cluster.* points)
from repro.chaos.crashpoints import FaultSpec, registered_crashpoints
from repro.cluster.harness import ClusterScenario, run_cluster_scenario


def _scenario(*faults, **kwargs):
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("n_jobs", 10)
    kwargs.setdefault("n_shards", 3)
    kwargs.setdefault("kill_shard", 1)
    kwargs.setdefault("kill_after", 2)
    return ClusterScenario(faults=tuple(faults), **kwargs)


class TestMatrix:
    def test_clean_run_completes_everything(self, tmp_path):
        report = run_cluster_scenario(
            _scenario(kill_shard=None), tmp_path
        )
        assert report.ok, report.violations
        assert report.restarts == 0
        assert report.jobs_acked == report.jobs_completed == 10

    def test_shard_kill_without_crashes(self, tmp_path):
        report = run_cluster_scenario(_scenario(), tmp_path)
        assert report.ok, report.violations
        assert report.shard_killed == "shard-1"
        assert report.handoffs >= 1
        assert report.jobs_completed == 10

    @pytest.mark.parametrize("point", registered_crashpoints())
    def test_crash_at_every_registered_point_with_a_shard_kill(
        self, point, tmp_path
    ):
        """Crash at the first visit of ``point`` while shard-1 dies
        mid-run.  Points this scenario never visits degenerate to the
        plain shard-kill run — equally a pass, which keeps the sweep
        exhaustive as new points are registered."""
        report = run_cluster_scenario(
            _scenario(FaultSpec(point, action="crash", hit=1)), tmp_path
        )
        assert report.ok, (point, report.violations)
        assert report.jobs_completed == report.jobs_acked == 10

    @pytest.mark.parametrize("hit", [1, 2, 3])
    def test_crash_inside_the_steal_window(self, hit, tmp_path):
        """Between the thief's SUBMITTED and the victim's MOVED the job
        exists in two journals; both may execute it.  That must surface
        as (at most) a deduplicated duplicate execution — never a lost
        or conflicting acknowledgment."""
        report = run_cluster_scenario(
            _scenario(FaultSpec("cluster.steal", hit=hit)), tmp_path
        )
        assert report.ok, (hit, report.violations)
        if f"cluster.steal:crash@{hit}" in report.faults_fired:
            assert report.restarts >= 1

    @pytest.mark.parametrize("hit", [1, 2, 3])
    def test_crash_mid_handoff_is_idempotent(self, hit, tmp_path):
        report = run_cluster_scenario(
            _scenario(FaultSpec("cluster.handoff", hit=hit)), tmp_path
        )
        assert report.ok, (hit, report.violations)
        assert report.jobs_completed == 10

    def test_same_scenario_same_report(self, tmp_path):
        scenario = _scenario(FaultSpec("cluster.steal", hit=2))
        a = run_cluster_scenario(scenario, tmp_path / "a").as_dict()
        b = run_cluster_scenario(scenario, tmp_path / "b").as_dict()
        assert a == b


class TestZipfTraces:
    """Hypothesis: random skewed traces through steal + kill + replay."""

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_jobs=st.integers(min_value=6, max_value=14),
        hot_fraction=st.floats(min_value=0.34, max_value=0.9),
        kill_shard=st.integers(min_value=0, max_value=2),
        point=st.sampled_from(
            ["cluster.steal", "cluster.handoff", "journal.append.after"]
        ),
        hit=st.integers(min_value=1, max_value=4),
    )
    def test_no_acked_job_lost_or_conflicting(
        self, seed, n_jobs, hot_fraction, kill_shard, point, hit
    ):
        scenario = ClusterScenario(
            faults=(FaultSpec(point, action="crash", hit=hit),),
            seed=seed,
            n_jobs=n_jobs,
            n_shards=3,
            hot_fraction=hot_fraction,
            kill_shard=kill_shard,
            kill_after=2,
        )
        with tempfile.TemporaryDirectory() as workdir:
            report = run_cluster_scenario(scenario, Path(workdir))
        # report.ok covers: no acked job lost, no conflicting delivery,
        # per-journal single DONE, no MOVED-into-the-void, idempotent
        # replay, and bit-identical outputs vs the fault-free baseline.
        assert report.ok, report.violations
        assert report.jobs_acked == n_jobs
        assert report.jobs_completed == n_jobs
