"""The cluster kill-and-restart chaos matrix.

The single-node matrix (``tests/chaos/test_harness.py``) sweeps every
registered crash point over one engine; this module sweeps the same
points over a three-shard cluster **with a shard kill layered on**, so
every crash interleaves with stealing and handoff.  The Hypothesis
section then drives randomized Zipf-skewed traces through steal +
shard-kill + replay and holds the two cluster invariants the ISSUE
names: no acknowledged job is ever lost, and no job is ever delivered
twice with conflicting results.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.compile.cache  # noqa: F401  (register cache.* points)
import repro.cluster.router  # noqa: F401  (register cluster.* points)
import repro.cluster.lifecycle.drain  # noqa: F401  (cluster.drain.* points)
from repro.chaos.crashpoints import FaultSpec, registered_crashpoints
from repro.cluster.harness import ClusterScenario, run_cluster_scenario


def _scenario(*faults, **kwargs):
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("n_jobs", 10)
    kwargs.setdefault("n_shards", 3)
    kwargs.setdefault("kill_shard", 1)
    kwargs.setdefault("kill_after", 2)
    return ClusterScenario(faults=tuple(faults), **kwargs)


class TestMatrix:
    def test_clean_run_completes_everything(self, tmp_path):
        report = run_cluster_scenario(
            _scenario(kill_shard=None), tmp_path
        )
        assert report.ok, report.violations
        assert report.restarts == 0
        assert report.jobs_acked == report.jobs_completed == 10

    def test_shard_kill_without_crashes(self, tmp_path):
        report = run_cluster_scenario(_scenario(), tmp_path)
        assert report.ok, report.violations
        assert report.shard_killed == "shard-1"
        assert report.handoffs >= 1
        assert report.jobs_completed == 10

    @pytest.mark.parametrize("point", registered_crashpoints())
    def test_crash_at_every_registered_point_with_a_shard_kill(
        self, point, tmp_path
    ):
        """Crash at the first visit of ``point`` while shard-1 dies
        mid-run.  Points this scenario never visits degenerate to the
        plain shard-kill run — equally a pass, which keeps the sweep
        exhaustive as new points are registered."""
        report = run_cluster_scenario(
            _scenario(FaultSpec(point, action="crash", hit=1)), tmp_path
        )
        assert report.ok, (point, report.violations)
        assert report.jobs_completed == report.jobs_acked == 10

    @pytest.mark.parametrize("hit", [1, 2, 3])
    def test_crash_inside_the_steal_window(self, hit, tmp_path):
        """Between the thief's SUBMITTED and the victim's MOVED the job
        exists in two journals; both may execute it.  That must surface
        as (at most) a deduplicated duplicate execution — never a lost
        or conflicting acknowledgment."""
        report = run_cluster_scenario(
            _scenario(FaultSpec("cluster.steal", hit=hit)), tmp_path
        )
        assert report.ok, (hit, report.violations)
        if f"cluster.steal:crash@{hit}" in report.faults_fired:
            assert report.restarts >= 1

    @pytest.mark.parametrize("hit", [1, 2, 3])
    def test_crash_mid_handoff_is_idempotent(self, hit, tmp_path):
        report = run_cluster_scenario(
            _scenario(FaultSpec("cluster.handoff", hit=hit)), tmp_path
        )
        assert report.ok, (hit, report.violations)
        assert report.jobs_completed == 10

    def test_same_scenario_same_report(self, tmp_path):
        scenario = _scenario(FaultSpec("cluster.steal", hit=2))
        a = run_cluster_scenario(scenario, tmp_path / "a").as_dict()
        b = run_cluster_scenario(scenario, tmp_path / "b").as_dict()
        assert a == b


class TestDrainMatrix:
    """Live drain under chaos: the ``cluster.drain.*`` crash windows."""

    def _scenario(self, *faults, **kwargs):
        kwargs.setdefault("seed", 3)
        kwargs.setdefault("n_jobs", 12)
        kwargs.setdefault("n_shards", 3)
        kwargs.setdefault("drain_shard", 1)
        kwargs.setdefault("drain_after", 2)
        return ClusterScenario(faults=tuple(faults), **kwargs)

    def test_clean_drain_loses_nothing(self, tmp_path):
        report = run_cluster_scenario(self._scenario(), tmp_path)
        assert report.ok, report.violations
        assert report.shard_drained == "shard-1"
        assert report.drain_attempts == 1
        assert report.jobs_completed == report.jobs_acked == 12

    @pytest.mark.parametrize("point", ["cluster.drain.move", "cluster.drain.finish"])
    @pytest.mark.parametrize("hit", [1, 2, 3])
    def test_crash_inside_the_drain_windows(self, point, hit, tmp_path):
        """A crash between the successor's SUBMITTED and the drained
        shard's MOVED (or at the leave-the-ring edge) must surface as at
        most a deduplicated duplicate execution — never a lost ack, a
        conflicting delivery, or a dangling MOVED."""
        report = run_cluster_scenario(
            self._scenario(FaultSpec(point, action="crash", hit=hit)),
            tmp_path,
        )
        assert report.ok, (point, hit, report.violations)
        assert report.jobs_completed == report.jobs_acked == 12
        if f"{point}:crash@{hit}" in report.faults_fired:
            assert report.restarts >= 1
            assert report.drain_attempts >= 2  # interrupted, then redone

    def test_drain_and_kill_together(self, tmp_path):
        report = run_cluster_scenario(
            self._scenario(kill_shard=0, kill_after=3, drain_after=2),
            tmp_path,
        )
        assert report.ok, report.violations
        assert report.shard_killed == "shard-0"
        assert report.shard_drained == "shard-1"
        assert report.jobs_completed == 12

    def test_drain_crash_is_deterministic(self, tmp_path):
        scenario = self._scenario(
            FaultSpec("cluster.drain.move", action="crash", hit=2)
        )
        a = run_cluster_scenario(scenario, tmp_path / "a").as_dict()
        b = run_cluster_scenario(scenario, tmp_path / "b").as_dict()
        assert a == b


class TestZipfTraces:
    """Hypothesis: random skewed traces through steal + kill + replay."""

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_jobs=st.integers(min_value=6, max_value=14),
        hot_fraction=st.floats(min_value=0.34, max_value=0.9),
        kill_shard=st.integers(min_value=0, max_value=2),
        point=st.sampled_from(
            ["cluster.steal", "cluster.handoff", "journal.append.after"]
        ),
        hit=st.integers(min_value=1, max_value=4),
    )
    def test_no_acked_job_lost_or_conflicting(
        self, seed, n_jobs, hot_fraction, kill_shard, point, hit
    ):
        scenario = ClusterScenario(
            faults=(FaultSpec(point, action="crash", hit=hit),),
            seed=seed,
            n_jobs=n_jobs,
            n_shards=3,
            hot_fraction=hot_fraction,
            kill_shard=kill_shard,
            kill_after=2,
        )
        with tempfile.TemporaryDirectory() as workdir:
            report = run_cluster_scenario(scenario, Path(workdir))
        # report.ok covers: no acked job lost, no conflicting delivery,
        # per-journal single DONE, no MOVED-into-the-void, idempotent
        # replay, and bit-identical outputs vs the fault-free baseline.
        assert report.ok, report.violations
        assert report.jobs_acked == n_jobs
        assert report.jobs_completed == n_jobs

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_jobs=st.integers(min_value=8, max_value=14),
        hot_fraction=st.floats(min_value=0.34, max_value=0.9),
        drain_shard=st.integers(min_value=0, max_value=2),
        kill_offset=st.integers(min_value=0, max_value=2),
        point=st.sampled_from(
            [
                "cluster.drain.move",
                "cluster.drain.finish",
                "cluster.steal",
                "journal.append.after",
            ]
        ),
        hit=st.integers(min_value=1, max_value=4),
    )
    def test_drain_interleaves_with_steal_and_kill(
        self, seed, n_jobs, hot_fraction, drain_shard, kill_offset, point, hit
    ):
        """Live drain + work stealing + (maybe) a shard kill + a crash:
        no double execution surfaces to a client, no MOVED record
        strands, no acked job is lost."""
        kill_shard = (
            None
            if kill_offset == 0
            else (drain_shard + kill_offset) % 3
        )
        scenario = ClusterScenario(
            faults=(FaultSpec(point, action="crash", hit=hit),),
            seed=seed,
            n_jobs=n_jobs,
            n_shards=3,
            hot_fraction=hot_fraction,
            kill_shard=kill_shard,
            kill_after=2,
            drain_shard=drain_shard,
            drain_after=3,
        )
        with tempfile.TemporaryDirectory() as workdir:
            report = run_cluster_scenario(scenario, Path(workdir))
        assert report.ok, report.violations
        assert report.jobs_acked == n_jobs
        assert report.jobs_completed == n_jobs
