"""The wire codec's absolute contract, unit-tested and fuzzed.

``decode`` either yields the exact message that was encoded, or raises
:class:`~repro.errors.WireError` — a corrupt, truncated or hostile byte
string can never surface as a *wrong* payload and never makes the
decoder wait on bytes that cannot arrive.  The Hypothesis suites drive
that contract with arbitrary mutations, truncations and chunk splits.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.lifecycle.health import ShardHeartbeat
from repro.cluster.proc.wire import (
    HEADER_BYTES,
    MAGIC,
    MAX_FRAME_BYTES,
    VERSION,
    FrameDecoder,
    decode_frame,
    decode_heartbeat,
    decode_job,
    decode_message,
    decode_result,
    encode_frame,
    encode_heartbeat,
    encode_job,
    encode_message,
    encode_result,
    try_decode_frame,
)
from repro.errors import WireError
from repro.serve.jobs import JobRequest, JobResult, JobStatus, fft_spec


# ----------------------------------------------------------------------
# frame layer: units
# ----------------------------------------------------------------------


class TestFrame:
    def test_round_trip(self):
        for payload in (b"", b"x", b"\x00" * 100, bytes(range(256))):
            decoded, consumed = decode_frame(encode_frame(payload))
            assert decoded == payload
            assert consumed == HEADER_BYTES + len(payload)

    def test_oversized_payload_refused_at_encode(self):
        with pytest.raises(WireError, match="frame ceiling"):
            encode_frame(b"\x00" * (MAX_FRAME_BYTES + 1))

    def test_oversized_declared_length_fails_at_header(self):
        """A mutated length field must fail with 11 bytes in hand — not
        wait for 64 MiB that will never come."""
        import struct

        header = struct.pack(
            ">2sBII", MAGIC, VERSION, MAX_FRAME_BYTES + 1, 0
        )
        with pytest.raises(WireError, match="frame ceiling"):
            try_decode_frame(header)

    def test_bad_magic_detected_from_byte_one(self):
        with pytest.raises(WireError, match="magic"):
            try_decode_frame(b"X")

    def test_valid_prefix_returns_none(self):
        frame = encode_frame(b"hello")
        for cut in range(len(frame)):
            out = try_decode_frame(frame[:cut])
            assert out is None  # never a payload, never a wrong one

    def test_decode_frame_rejects_truncation(self):
        frame = encode_frame(b"hello")
        for cut in range(len(frame)):
            with pytest.raises(WireError):
                decode_frame(frame[:cut])

    def test_trailing_bytes_ignored_with_honest_consumed(self):
        frame = encode_frame(b"abc")
        payload, consumed = decode_frame(frame + b"garbage after")
        assert payload == b"abc"
        assert consumed == len(frame)


# ----------------------------------------------------------------------
# frame layer: fuzz
# ----------------------------------------------------------------------


class TestFrameFuzz:
    @settings(max_examples=200, deadline=None)
    @given(
        payload=st.binary(max_size=512),
        pos=st.integers(min_value=0),
        delta=st.integers(min_value=1, max_value=255),
    )
    def test_single_byte_mutation_never_yields_wrong_payload(
        self, payload, pos, delta
    ):
        """Flip any one byte anywhere in the frame: the decoder raises
        WireError or (never observed, but the only other legal outcome)
        still returns the original payload.  It must never return
        different bytes."""
        frame = bytearray(encode_frame(payload))
        pos %= len(frame)
        frame[pos] = (frame[pos] + delta) % 256
        try:
            decoded, _ = decode_frame(bytes(frame))
        except WireError:
            return
        assert decoded == payload

    @settings(max_examples=200, deadline=None)
    @given(payload=st.binary(max_size=512), keep=st.floats(0.0, 1.0))
    def test_truncation_never_hangs_or_lies(self, payload, keep):
        """Any prefix of a valid frame either raises (decode_frame) or
        reports incompleteness (try_decode_frame) — with the declared
        length validated before the payload is awaited."""
        frame = encode_frame(payload)
        cut = int(len(frame) * keep)
        if cut >= len(frame):
            return
        prefix = frame[:cut]
        with pytest.raises(WireError):
            decode_frame(prefix)
        out = try_decode_frame(prefix)
        assert out is None

    @settings(max_examples=200, deadline=None)
    @given(junk=st.binary(min_size=1, max_size=256))
    def test_arbitrary_bytes_never_decode_to_a_message(self, junk):
        """Random bytes either fail typed or happen to *be* a valid
        frame (possible only if Hypothesis forges magic + CRC, in which
        case the decode is honest)."""
        try:
            payload, consumed = decode_frame(junk)
        except WireError:
            return
        assert junk[:consumed] == encode_frame(payload)


# ----------------------------------------------------------------------
# message layer + incremental decoder
# ----------------------------------------------------------------------


class TestMessages:
    def test_round_trip(self):
        message = {"id": 7, "op": "submit", "params": {"a": [1, 2]}}
        payload, _ = decode_frame(encode_message(message))
        assert decode_message(payload) == message

    def test_unencodable_message_is_typed(self):
        with pytest.raises(WireError, match="unencodable"):
            encode_message({"id": 1, "blob": object()})

    def test_non_object_payload_refused(self):
        with pytest.raises(WireError, match="expected object"):
            decode_message(b"[1,2,3]")

    def test_missing_correlation_id_refused(self):
        with pytest.raises(WireError, match="correlation id"):
            decode_message(b'{"op":"submit"}')

    def test_non_json_payload_refused(self):
        with pytest.raises(WireError, match="not valid JSON"):
            decode_message(b"\xff\xfe")

    @settings(max_examples=100, deadline=None)
    @given(
        ids=st.lists(st.integers(0, 2**31), min_size=1, max_size=8),
        data=st.data(),
    )
    def test_decoder_reassembles_any_chunk_split(self, ids, data):
        """A pipe delivers bytes at arbitrary boundaries; the decoder
        must recover the exact message sequence regardless."""
        stream = b"".join(
            encode_message({"id": i, "op": "noop", "params": {}})
            for i in ids
        )
        cuts = sorted(
            data.draw(
                st.lists(
                    st.integers(0, len(stream)), max_size=6, unique=True
                )
            )
        )
        decoder = FrameDecoder()
        got = []
        last = 0
        for cut in [*cuts, len(stream)]:
            got.extend(decoder.feed(stream[last:cut]))
            last = cut
        assert [m["id"] for m in got] == ids
        assert decoder.pending_bytes == 0

    def test_decoder_poisons_after_framing_error(self):
        decoder = FrameDecoder()
        with pytest.raises(WireError):
            decoder.feed(b"not a frame at all")
        with pytest.raises(WireError, match="poisoned"):
            decoder.feed(encode_message({"id": 1}))


# ----------------------------------------------------------------------
# typed payload codecs
# ----------------------------------------------------------------------


def _request(job_id: str = "wt-001") -> JobRequest:
    rng = np.random.default_rng(3)
    return JobRequest(
        spec=fft_spec(16, 4, 2),
        payload=rng.standard_normal(16) + 1j * rng.standard_normal(16),
        job_id=job_id,
    )


class TestTypedCodecs:
    def test_job_round_trip_is_bit_exact(self):
        request = _request()
        clone = decode_job(json.loads(json.dumps(encode_job(request))))
        assert clone.job_id == request.job_id
        assert clone.spec == request.spec
        np.testing.assert_array_equal(clone.payload, request.payload)
        assert clone.payload.dtype == request.payload.dtype

    @pytest.mark.parametrize(
        "output",
        [
            None,
            np.arange(12, dtype=np.int64).reshape(3, 4),
            np.linspace(0, 1, 7, dtype=np.float32),
            (np.arange(4) + 1j * np.arange(4)).astype(np.complex128),
            b"\x00\x01\xffraw",
            "text",
            3.5,
            -7,
            True,
            {"nested": [1, "two"]},
        ],
    )
    def test_result_output_round_trips_bit_exactly(self, output):
        result = JobResult(
            job_id="wt-001", status=JobStatus.DONE, output=output
        )
        clone = decode_result(
            json.loads(json.dumps(encode_result(result)))
        )
        if isinstance(output, np.ndarray):
            assert clone.output.dtype == output.dtype
            assert clone.output.shape == output.shape
            assert clone.output.tobytes() == output.tobytes()
        else:
            assert clone.output == output
            assert type(clone.output) is type(output)

    def test_unencodable_output_is_typed(self):
        result = JobResult(
            job_id="wt-001", status=JobStatus.DONE, output=object()
        )
        with pytest.raises(WireError, match="not wire-encodable"):
            encode_result(result)

    @pytest.mark.parametrize(
        "bad",
        [
            {"k": "nd", "dtype": "<f8", "shape": [2], "b64": "!!!"},
            {"k": "nd", "dtype": "bogus", "shape": [2], "b64": "AA=="},
            {"k": "bytes", "b64": "not base64 ***"},
            {"k": "int", "v": "NaNsense"},
            {"k": "mystery"},
            "not even a dict",
        ],
    )
    def test_corrupt_output_encodings_are_typed(self, bad):
        data = encode_result(
            JobResult(job_id="wt-001", status=JobStatus.DONE, output=None)
        )
        data["output"] = bad
        with pytest.raises(WireError):
            decode_result(data)

    def test_corrupt_job_encoding_is_typed(self):
        with pytest.raises(WireError):
            decode_job({"job_id": "x", "data": {"nonsense": True}})

    def test_heartbeat_round_trip(self):
        beat = ShardHeartbeat(
            shard="shard-2",
            round_index=9,
            alive=True,
            draining=True,
            queue_depth=4,
            breaker_open_fabrics=1,
            quarantined_fabrics=2,
            total_fabrics=3,
            journal_records=17,
        )
        clone = decode_heartbeat(
            json.loads(json.dumps(encode_heartbeat(beat)))
        )
        assert clone == beat

    def test_corrupt_heartbeat_is_typed(self):
        with pytest.raises(WireError):
            decode_heartbeat({"shard": "s", "round_index": "NaN"})
