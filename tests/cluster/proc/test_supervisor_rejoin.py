"""The rejoin protocol, deterministically (in-process workers).

:class:`ProcessSupervisor` works over any router whose
``worker_factory`` rebuilds a shard from its journal directory; running
it over the *in-process* :class:`ShardWorker` makes every step of
detect → handoff → respawn → scrub-gate → rejoin assertable without
subprocess timing in the way.  (The subprocess tier gets the same
treatment under chaos in ``test_proc_chaos.py``.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.lifecycle import (
    HealthMonitor,
    ShardHeartbeat,
    ShardState,
)
from repro.cluster.proc.supervisor import ProcessSupervisor
from repro.cluster.router import ShardRouter
from repro.errors import ClusterError
from repro.serve.durability.journal import FsyncPolicy
from repro.serve.jobs import JobRequest, fft_spec, jpeg_spec

_SPECS = (fft_spec(16, 4, 2), jpeg_spec(75, False), jpeg_spec(50, False))


def _request(index: int) -> JobRequest:
    spec = _SPECS[index % len(_SPECS)]
    if spec.kind.value == "fft":
        payload = np.linspace(0.0, 1.0, 16) + 0j
    else:
        payload = np.full((8, 8), 50 + index, dtype=np.int64)
    return JobRequest(spec=spec, payload=payload, job_id=f"rj-{index:03d}")


def _cluster(tmp_path, **kwargs):
    router = ShardRouter(
        tmp_path / "cluster",
        [f"shard-{i}" for i in range(3)],
        pool_size=1,
        fsync=FsyncPolicy.NEVER,
    )
    supervisor = ProcessSupervisor(router, scrub_every=0, **kwargs)
    return router, supervisor


def _kill_and_supervise(router, supervisor, victim="shard-1", rounds=20):
    """Crash ``victim`` and tick until the supervisor acts on DEAD."""
    router.shards[victim].kill()
    for _ in range(rounds):
        supervisor.tick()
        if supervisor.monitor.state(victim) is not ShardState.DEAD:
            if any(r.shard == victim for r in supervisor.rejoins):
                break
    return supervisor.monitor.state(victim)


class TestRejoinEndToEnd:
    def test_dead_shard_comes_back_clean(self, tmp_path):
        router, supervisor = _cluster(tmp_path)
        for index in range(9):
            router.submit(_request(index))
        router.step_round()

        state = _kill_and_supervise(router, supervisor)
        assert state is ShardState.HEALTHY
        attempts = [r for r in supervisor.rejoins if r.shard == "shard-1"]
        assert len(attempts) == 1 and attempts[0].ok
        report = attempts[0]
        assert report.gate_corrupt_lines == 0
        assert report.rejoin_round >= report.detect_round
        assert report.mttr_s > 0
        # Fresh member: alive, on the ring, journal dir unchanged.
        shard = router.shards["shard-1"]
        assert shard.alive
        assert "shard-1" in router.ring.nodes()
        # Every journaled-but-unfinished job the respawn recovered is
        # either still owned by the respawned shard or was deduped
        # because the handoff re-homed it first — never both, never lost.
        assert report.deduped_on_rejoin <= max(report.recovered_requeued, 0)
        router.close()

    def test_drain_to_completion_after_rejoin(self, tmp_path):
        """The cluster must still finish every job after a crash+rejoin."""
        router, supervisor = _cluster(tmp_path)
        for index in range(9):
            router.submit(_request(index))
        _kill_and_supervise(router, supervisor)
        for _ in range(40):
            router.rebalance()
            if not router.step_round():
                break
        assert len(router.results) == 9
        assert sorted(router.results) == [f"rj-{i:03d}" for i in range(9)]
        router.close()


class TestGuards:
    def test_mark_recovered_refuses_the_living(self):
        monitor = HealthMonitor()
        monitor.observe(ShardHeartbeat(shard="shard-0", round_index=1))
        with pytest.raises(ClusterError, match="only DEAD"):
            monitor.mark_recovered("shard-0")

    def test_rejoin_refuses_a_live_shard(self, tmp_path):
        router, supervisor = _cluster(tmp_path)
        report = supervisor.rejoin("shard-0", detect_round=1)
        assert not report.ok
        assert "alive" in report.error
        router.close()

    def test_respawn_budget_contains_crash_loops(self, tmp_path):
        router, supervisor = _cluster(tmp_path, max_respawns_per_shard=0)
        state = _kill_and_supervise(router, supervisor, rounds=8)
        assert state is ShardState.DEAD
        assert supervisor.rejoins == []
        assert not router.shards["shard-1"].alive
        router.close()

    def test_respawn_false_behaves_like_base_supervisor(self, tmp_path):
        router, supervisor = _cluster(tmp_path, respawn=False)
        state = _kill_and_supervise(router, supervisor, rounds=8)
        assert state is ShardState.DEAD
        assert supervisor.rejoins == []
        router.close()


class TestScrubGate:
    def test_gate_refuses_readmission_on_corruption(
        self, tmp_path, monkeypatch
    ):
        router, supervisor = _cluster(tmp_path)
        for index in range(6):
            router.submit(_request(index))

        calls = {"n": 0}
        real = ProcessSupervisor._scrub_once

        def dirty_gate(self, name, journal_dir):
            calls["n"] += 1
            # First scrub (pre-respawn) is honest; the gate scrub after
            # compaction "finds" surviving corruption.
            if calls["n"] % 2 == 0:
                return 3
            return real(self, name, journal_dir)

        monkeypatch.setattr(ProcessSupervisor, "_scrub_once", dirty_gate)
        state = _kill_and_supervise(router, supervisor, rounds=8)
        assert state is ShardState.DEAD  # readmission refused
        attempts = [r for r in supervisor.rejoins if r.shard == "shard-1"]
        assert attempts and not attempts[0].ok
        assert "scrub gate refused" in attempts[0].error
        assert attempts[0].gate_corrupt_lines == 3
        router.close()

    def test_gate_can_be_waived_explicitly(self, tmp_path, monkeypatch):
        router, supervisor = _cluster(
            tmp_path, require_clean_scrub=False
        )
        monkeypatch.setattr(
            ProcessSupervisor, "_scrub_once", lambda self, n, d: 1
        )
        state = _kill_and_supervise(router, supervisor)
        assert state is ShardState.HEALTHY
        attempts = [r for r in supervisor.rejoins if r.shard == "shard-1"]
        assert attempts and attempts[0].ok
        assert attempts[0].gate_corrupt_lines == 1
        router.close()
