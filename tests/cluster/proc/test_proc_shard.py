"""The subprocess-backed shard: real processes, real pipes, real locks.

These tests spawn actual worker subprocesses (small job counts — the
point is the process boundary, not throughput) and check the lifecycle
the supervisor builds on: bit-exact round trips, typed death, recovery
over the same journal directory, and the journal flock telling a
usurper exactly who holds it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.proc.shard import ProcShardWorker
from repro.errors import ClusterError
from repro.locks import HAS_FLOCK
from repro.serve.jobs import JobRequest, JobStatus, fft_spec


def _request(job_id: str) -> JobRequest:
    rng = np.random.default_rng(sum(job_id.encode()))
    return JobRequest(
        spec=fft_spec(16, 4, 2),
        payload=rng.standard_normal(16) + 1j * rng.standard_normal(16),
        job_id=job_id,
    )


@pytest.fixture
def worker(tmp_path):
    shard = ProcShardWorker(
        "shard-0", tmp_path / "shard-0", spawn_timeout_s=60.0
    )
    yield shard
    shard.close()


class TestRoundTrip:
    def test_submit_step_finish_bit_exact(self, worker):
        request = _request("ps-001")
        expected = np.fft.fft(request.payload)
        assert worker.submit(request) is None
        assert worker.queue_depth == 1
        result = worker.step_one()
        assert result is not None and result.status is JobStatus.DONE
        # The output crossed the pipe twice (submit ack + finished read)
        # and must still be the worker's exact bytes.
        fetched = worker.finished("ps-001")
        assert fetched is not None
        assert fetched.output.tobytes() == result.output.tobytes()
        np.testing.assert_allclose(result.output, expected)

    def test_hello_reports_pid_and_recovery(self, worker):
        assert worker.hello["pid"] == worker.pid
        assert worker.hello["recovered_requeued"] == 0

    def test_heartbeat_comes_from_the_process(self, worker):
        beat = worker.heartbeat(3)
        assert beat.alive and beat.shard == "shard-0"
        assert beat.round_index == 3
        assert beat.journal_records == 0
        worker.submit(_request("ps-002"))
        assert worker.heartbeat(4).journal_records > 0

    def test_resubmit_dedups_on_the_journaled_id(self, worker):
        request = _request("ps-003")
        worker.submit(request)
        worker.step_one()
        pre = worker.submit(_request("ps-003"))
        assert pre is not None and pre.status is JobStatus.DONE


class TestDeath:
    def test_kill_then_call_is_typed(self, worker):
        worker.kill()
        assert not worker.alive
        with pytest.raises(ClusterError, match="dead"):
            worker.submit(_request("ps-010"))

    def test_reads_degrade_to_empty_on_a_corpse(self, worker):
        worker.kill()
        assert worker.queue_depth == 0
        assert worker.finished_ids() == []
        assert worker.steal_candidates() == []

    def test_heartbeat_never_raises(self, worker):
        worker.kill()
        beat = worker.heartbeat(1)
        assert not beat.alive  # the miss feeds phi accrual, typed


class TestRecovery:
    def test_respawn_over_the_same_journal_replays(self, tmp_path):
        home = tmp_path / "shard-r"
        first = ProcShardWorker("shard-r", home)
        done = _request("ps-020")
        pending = _request("ps-021")
        first.submit(done)
        first.step_one()
        first.submit(pending)  # journaled, never stepped
        first.kill()

        second = ProcShardWorker("shard-r", home)
        try:
            assert second.hello["recovered_finished"] >= 1
            assert [r.job_id for r in second.backlog()] == ["ps-021"]
            # The finished job is recorded, marked recovered, and served
            # on resubmit instead of re-executed (no duplicate delivery).
            recorded = second.finished("ps-020")
            assert recorded is not None and recorded.recovered
            assert recorded.status is JobStatus.DONE
            pre = second.submit(_request("ps-020"))
            assert pre is not None and pre.recovered
            result = second.step_one()
            assert result is not None and result.job_id == "ps-021"
        finally:
            second.close()


@pytest.mark.skipif(not HAS_FLOCK, reason="advisory flock unavailable")
class TestJournalLock:
    def test_usurper_fails_typed_naming_the_holder(self, tmp_path):
        home = tmp_path / "shard-l"
        holder = ProcShardWorker("shard-l", home)
        try:
            with pytest.raises(ClusterError) as exc_info:
                ProcShardWorker(
                    "shard-l", home, lock_timeout_s=0.3, spawn_timeout_s=60.0
                )
            message = str(exc_info.value)
            assert "LockTimeout" in message
            assert f"held by pid {holder.pid}" in message
        finally:
            holder.close()

    def test_lock_evaporates_with_the_holder(self, tmp_path):
        home = tmp_path / "shard-e"
        holder = ProcShardWorker("shard-e", home)
        holder.kill()
        successor = ProcShardWorker("shard-e", home, lock_timeout_s=2.0)
        try:
            assert successor.alive
        finally:
            successor.close()
