"""The RPC calling convention over raw pipe pairs.

Each test builds the channel from two ``os.pipe`` pairs — the client
writes requests into one, reads responses from the other — so every
transport failure mode (silence, stale replies, EOF, remote refusal) is
staged deterministically without a subprocess.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.cluster.proc.rpc import RemoteOpError, RetryPolicy, RpcClient
from repro.cluster.proc.wire import FrameDecoder, encode_message
from repro.errors import RpcError, RpcTimeout, ServeError


class _Channel:
    """Client-side pipe pair plus the test's server-side ends."""

    def __init__(self):
        req_r, req_w = os.pipe()
        resp_r, resp_w = os.pipe()
        self.client_in = os.fdopen(req_w, "wb", buffering=0)
        self.client_out = os.fdopen(resp_r, "rb", buffering=0)
        self.server_in = os.fdopen(req_r, "rb", buffering=0)
        self.server_out = os.fdopen(resp_w, "wb", buffering=0)

    def respond(self, message: dict) -> None:
        self.server_out.write(encode_message(message))
        self.server_out.flush()

    def close(self):
        for f in (
            self.client_in,
            self.client_out,
            self.server_in,
            self.server_out,
        ):
            try:
                f.close()
            except OSError:
                pass


@pytest.fixture
def channel():
    chan = _Channel()
    yield chan
    chan.close()


def _client(chan, **kwargs) -> RpcClient:
    kwargs.setdefault(
        "retry", RetryPolicy(attempts=1, base_delay_s=0.0, max_delay_s=0.0)
    )
    return RpcClient(
        chan.client_in, chan.client_out, shard="shard-t", **kwargs
    )


class TestTransportFailures:
    def test_silence_becomes_typed_timeout(self, channel):
        client = _client(channel)
        with pytest.raises(RpcTimeout) as exc_info:
            client.call("ping", timeout_s=0.05)
        assert exc_info.value.shard == "shard-t"
        assert exc_info.value.op == "ping"

    def test_eof_becomes_typed_rpc_error(self, channel):
        client = _client(channel)
        channel.server_out.close()
        with pytest.raises(RpcError, match="EOF"):
            client.call("ping", timeout_s=1.0)

    def test_epipe_on_send_is_typed(self, channel):
        client = _client(channel)
        channel.server_in.close()
        with pytest.raises(RpcError, match="pipe|EPIPE"):
            client.call("ping", timeout_s=1.0)

    def test_timeouts_are_retried_up_to_the_budget(self, channel):
        naps = []
        client = _client(
            channel,
            retry=RetryPolicy(
                attempts=3,
                base_delay_s=0.01,
                multiplier=2.0,
                max_delay_s=0.1,
                jitter=0.0,
            ),
            sleep=naps.append,
        )
        with pytest.raises(RpcTimeout):
            client.call("ping", timeout_s=0.02)
        assert client.retries == 2
        assert naps == [0.01, 0.02]  # exponential, jitter-free


class TestCorrelation:
    def test_stale_response_dropped_never_misdelivered(self, channel):
        client = _client(channel)
        channel.respond({"id": 999, "ok": True, "value": "WRONG ANSWER"})
        channel.respond({"id": 1, "ok": True, "value": "right"})
        assert client.call("ping", timeout_s=2.0) == "right"
        assert client.stale_responses == 1

    def test_retry_after_timeout_gets_a_fresh_id(self, channel):
        """The wedged child's late answer to call 1 must not satisfy
        the retry (call 2)."""
        client = _client(
            channel,
            retry=RetryPolicy(attempts=2, base_delay_s=0.0, max_delay_s=0.0),
            sleep=lambda _s: None,
        )

        def responder():
            decoder = FrameDecoder()
            seen = []
            while len(seen) < 2:
                chunk = channel.server_in.read(65536)
                if not chunk:
                    return
                seen.extend(decoder.feed(chunk))
            # Answer the *second* attempt only (id 2); the first timed out.
            channel.respond({"id": 2, "ok": True, "value": "second try"})

        thread = threading.Thread(target=responder, daemon=True)
        thread.start()
        assert client.call("ping", timeout_s=0.5) == "second try"
        thread.join(timeout=5)
        assert client.retries == 1


class TestApplicationErrors:
    def test_remote_error_raises_by_name_and_is_never_retried(
        self, channel
    ):
        client = _client(
            channel,
            retry=RetryPolicy(attempts=3, base_delay_s=0.0, max_delay_s=0.0),
            sleep=lambda _s: None,
        )
        channel.respond(
            {
                "id": 1,
                "ok": False,
                "error": {"type": "JobRejected", "message": "shed"},
            }
        )
        with pytest.raises(RemoteOpError) as exc_info:
            client.call("submit", timeout_s=2.0)
        assert exc_info.value.remote_type == "JobRejected"
        assert "shed" in str(exc_info.value)
        assert client.retries == 0  # an answer, not a failure


class TestRetryPolicy:
    def test_delay_bounds(self):
        policy = RetryPolicy(
            attempts=5,
            base_delay_s=0.05,
            multiplier=2.0,
            max_delay_s=0.4,
            jitter=0.5,
            seed=42,
        )
        for attempt in range(8):
            base = min(0.4, 0.05 * 2.0**attempt)
            delay = policy.delay_s(attempt)
            assert base <= delay < base * 1.5

    def test_deterministic_per_seed_desynchronised_across_seeds(self):
        a = [RetryPolicy(seed=1).delay_s(k) for k in range(4)]
        b = [RetryPolicy(seed=1).delay_s(k) for k in range(4)]
        c = [RetryPolicy(seed=2).delay_s(k) for k in range(4)]
        assert a == b
        assert a != c

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attempts": 0},
            {"base_delay_s": -0.1},
            {"base_delay_s": 2.0, "max_delay_s": 1.0},
            {"multiplier": 0.5},
            {"jitter": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ServeError):
            RetryPolicy(**kwargs)
