"""The real-process chaos matrix: SIGKILL, SIGSTOP, torn frames, EPIPE.

Each case runs :func:`run_proc_scenario` — actual worker subprocesses
behind the framed transport — fires one real process fault mid-trace,
and asserts the full invariant set: the fault fired, no acked job was
lost, nothing executed twice, outputs stayed bit-identical to a
fault-free baseline across the wire, and the victim rejoined the ring
as a healthy fresh member.

These are the slowest tests in the suite (every case spawns 3-4 OS
processes and one respawn); the job counts are the smallest that still
drive every protocol edge.
"""

from __future__ import annotations

import pytest

from repro.chaos import ProcFault
from repro.cluster.proc.harness import ProcScenario, run_proc_scenario

pytestmark = pytest.mark.slow


def _run(tmp_path, scenario: ProcScenario):
    report = run_proc_scenario(scenario, tmp_path / "proc")
    assert report.violations == []
    assert report.ok
    return report


class TestNoFault:
    def test_clean_run_completes_everything(self, tmp_path):
        report = _run(tmp_path, ProcScenario(fault=None, n_jobs=9))
        assert report.jobs_completed == 9
        assert report.fault_fired is False
        assert report.duplicate_executions == 0


class TestFaultMatrix:
    def test_sigkill_mid_trace(self, tmp_path):
        report = _run(
            tmp_path,
            ProcScenario(
                fault=ProcFault(kind="sigkill", after_completions=4),
                n_jobs=12,
            ),
        )
        assert report.fault_fired and report.victim
        assert report.rejoined
        assert report.rejoin["ok"]
        assert report.jobs_completed == 12

    def test_sigstop_hang_is_detected_and_killed(self, tmp_path):
        report = _run(
            tmp_path,
            ProcScenario(
                fault=ProcFault(kind="sigstop", after_completions=4),
                n_jobs=12,
                heartbeat_timeout_s=0.5,
                call_timeout_s=2.0,
            ),
        )
        assert report.fault_fired and report.rejoined
        assert report.jobs_completed == 12

    def test_torn_frame_poisons_then_rejoins(self, tmp_path):
        report = _run(
            tmp_path,
            ProcScenario(
                fault=ProcFault(kind="torn", torn_response=10),
                victim=0,
                n_jobs=12,
            ),
        )
        assert report.fault_fired and report.rejoined
        assert report.jobs_completed == 12

    def test_epipe_submit_is_typed_and_retried(self, tmp_path):
        report = _run(
            tmp_path,
            ProcScenario(
                fault=ProcFault(kind="epipe", after_completions=4),
                n_jobs=12,
            ),
        )
        assert report.fault_fired
        assert report.epipe_typed  # the dead-pipe submit raised typed
        assert report.rejoined
        assert report.jobs_completed == 12  # including the held-back job
