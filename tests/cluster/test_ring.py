"""The consistent-hash ring: determinism, balance, minimal disruption."""

from __future__ import annotations

import pytest

from repro.cluster.ring import KEY_BITS, HashRing, ring_position
from repro.errors import ClusterError

NODES = ["shard-0", "shard-1", "shard-2", "shard-3"]
KEYS = [ring_position(f"key-{i}") for i in range(1000)]


class TestPositions:
    def test_ring_position_is_deterministic_and_64_bit(self):
        assert ring_position("a") == ring_position("a")
        assert ring_position("a") != ring_position("b")
        for label in ("", "shard-0#0", "x" * 100):
            assert 0 <= ring_position(label) < (1 << KEY_BITS)

    def test_python_hash_salting_is_irrelevant(self):
        # sha256("shard-0#0")[:8] — pinned so a process with a different
        # PYTHONHASHSEED (or a refactor to builtin hash) cannot drift.
        assert ring_position("shard-0#0") == 0xADC99C73A290F5A8


class TestRouting:
    def test_two_rings_agree(self):
        a, b = HashRing(NODES), HashRing(list(reversed(NODES)))
        assert [a.route(k) for k in KEYS] == [b.route(k) for k in KEYS]

    def test_keys_wrap_around_the_ring(self):
        ring = HashRing(NODES)
        assert ring.route(0) in NODES
        assert ring.route((1 << KEY_BITS) - 1) in NODES
        # Keys beyond the space reduce into it.
        assert ring.route(1 << KEY_BITS) == ring.route(0)

    def test_spread_is_roughly_balanced(self):
        counts = HashRing(NODES, vnodes=64).spread(KEYS)
        assert sum(counts.values()) == len(KEYS)
        for node, count in counts.items():
            assert 100 <= count <= 500, (node, count)

    def test_exclude_previews_removal(self):
        ring = HashRing(NODES)
        owners = {k: ring.route(k) for k in KEYS}
        previewed = {k: ring.route(k, exclude={"shard-1"}) for k in KEYS}
        ring.remove_node("shard-1")
        assert previewed == {k: ring.route(k) for k in KEYS}
        # And only shard-1's keys moved.
        for key, owner in owners.items():
            if owner != "shard-1":
                assert previewed[key] == owner


class TestMinimalDisruption:
    def test_remove_rehomes_only_the_dead_nodes_keys(self):
        ring = HashRing(NODES)
        before = {k: ring.route(k) for k in KEYS}
        ring.remove_node("shard-2")
        after = {k: ring.route(k) for k in KEYS}
        for key in KEYS:
            if before[key] != "shard-2":
                assert after[key] == before[key]
            else:
                assert after[key] != "shard-2"

    def test_add_moves_keys_only_to_the_new_node(self):
        ring = HashRing(NODES)
        before = {k: ring.route(k) for k in KEYS}
        ring.add_node("shard-4")
        after = {k: ring.route(k) for k in KEYS}
        moved = {k for k in KEYS if after[k] != before[k]}
        assert moved  # a new node must take some load...
        assert all(after[k] == "shard-4" for k in moved)  # ...only to itself


class TestMembership:
    def test_len_contains_nodes(self):
        ring = HashRing(NODES)
        assert len(ring) == 4
        assert "shard-0" in ring and "shard-9" not in ring
        assert ring.nodes() == sorted(NODES)

    def test_errors(self):
        with pytest.raises(ClusterError, match="vnodes"):
            HashRing(NODES, vnodes=0)
        with pytest.raises(ClusterError, match="non-empty"):
            HashRing([""])
        ring = HashRing(NODES)
        with pytest.raises(ClusterError, match="already"):
            ring.add_node("shard-0")
        with pytest.raises(ClusterError, match="not on the ring"):
            ring.remove_node("shard-9")
        with pytest.raises(ClusterError, match="empty ring"):
            HashRing().route(0)
        with pytest.raises(ClusterError, match="empty ring"):
            ring.route(0, exclude=set(NODES))
