"""Cluster routability of every registered kernel kind.

The routing key is a prefix of the compiled artifact's content hash, so
two invariants matter across the dataflow-frontend refactor: the FFT
and JPEG keys are **unchanged** (pinned below against the pre-refactor
hashes — consistent-hash placements survive a rolling upgrade), and the
three new kinds route, execute and verify end to end through a
multi-shard :class:`ShardRouter`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.ring import KEY_BITS
from repro.cluster.router import ShardRouter, spec_routing_key
from repro.compile.frontends import get_frontend
from repro.errors import ClusterError
from repro.serve.jobs import JobRequest, JobStatus, KernelSpec, spec_for

ALL_KINDS = ("conv2d", "dsp", "fft", "gemm", "jpeg")

#: 64-bit prefixes of the pre-refactor artifact hashes (see
#: tests/compile/test_registry.py) — the keys deployed rings route by.
PINNED_KEYS = {
    "fft": 0x4E62172F921D3CD1,
    "jpeg": 0x4DF4E16CF3633BD1,
}


def _request(kind: str, job_id: str, seed: int = 0) -> JobRequest:
    frontend = get_frontend(kind)
    payload = frontend.example_payload(
        frontend.canonicalize(None), np.random.default_rng(seed)
    )
    return JobRequest(spec=spec_for(kind), payload=payload, job_id=job_id)


class TestRoutingKeys:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_every_registered_kind_routes(self, kind):
        key = spec_routing_key(spec_for(kind))
        assert 0 <= key < (1 << KEY_BITS)
        assert key == spec_routing_key(spec_for(kind))

    def test_distinct_kinds_get_distinct_keys(self):
        keys = {spec_routing_key(spec_for(kind)) for kind in ALL_KINDS}
        assert len(keys) == len(ALL_KINDS)

    @pytest.mark.parametrize("kind,want", sorted(PINNED_KEYS.items()))
    def test_legacy_keys_survive_the_registry_dispatch(self, kind, want):
        # default fft params are (64, 8, 2) at link cost 100.0 and jpeg
        # (75, chroma=False) — exactly the specs deployed rings route
        assert spec_routing_key(spec_for(kind)) == want

    def test_uncompilable_spec_is_a_cluster_error(self):
        bogus = KernelSpec(spec_for("gemm").kind, (7, 3))  # 7 % 3 != 0
        with pytest.raises(ClusterError, match="cannot compile"):
            spec_routing_key(bogus)


class TestClusterRoundTrip:
    def test_all_kinds_execute_and_verify_across_shards(self, tmp_path):
        router = ShardRouter(tmp_path, ["a", "b", "c"])
        requests = {}
        try:
            for seed, kind in enumerate(ALL_KINDS):
                for copy in range(2):
                    job_id = f"{kind}-{copy}"
                    request = _request(kind, job_id, seed=seed + copy)
                    requests[job_id] = request
                    router.submit(request)
            router.run()
            for job_id, request in requests.items():
                result = router.results[job_id]
                assert result.status is JobStatus.DONE, job_id
                kind = request.spec.kind.value
                frontend = get_frontend(kind)
                frontend.check_output(
                    frontend.params_from_spec(request.spec.params),
                    request.payload,
                    result.output,
                )
        finally:
            router.close()

    def test_same_kind_coalesces_on_one_shard(self, tmp_path):
        router = ShardRouter(tmp_path, ["a", "b", "c"])
        try:
            for i in range(4):
                router.submit(_request("gemm", f"g-{i}", seed=i))
            owners = set(router.owner.values())
            assert len(owners) == 1
        finally:
            router.close()
