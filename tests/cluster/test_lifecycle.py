"""Cluster lifecycle supervision: health verdicts, live drain, scrub.

Three layers under test, bottom-up:

* :class:`HealthMonitor` — the deterministic phi-accrual state machine
  (healthy → suspect → dead, with draining as an administrative edge);
* :func:`drain_shard` — live backlog migration off a *running* shard
  (no acked job lost, MOVED never dangles, finished results survive);
* :class:`AntiEntropyScrubber` / :class:`ClusterSupervisor` — the
  control loop that folds heartbeats into verdicts, verdicts into
  membership actions, and background CRC scrubbing into health.
"""

from __future__ import annotations

import types

import numpy as np
import pytest

from repro.cluster.lifecycle import (
    AntiEntropyScrubber,
    ClusterSupervisor,
    HealthMonitor,
    ShardHeartbeat,
    ShardState,
    drain_shard,
)
from repro.cluster.router import ShardRouter
from repro.errors import ClusterError
from repro.serve.durability.journal import (
    FsyncPolicy,
    JobJournal,
    verify_segment,
)
from repro.serve.durability.records import RecordType
from repro.serve.jobs import JobRequest, JobStatus, fft_spec, jpeg_spec

#: Distinct config keys so the ring spreads work over several shards
#: (a single spec hashes every job onto one shard).
_SPECS = (
    fft_spec(16, 4, 2),
    jpeg_spec(75, False),
    jpeg_spec(50, False),
    jpeg_spec(25, False),
)


def _request(job_id: str, index: int = 0, **kwargs) -> JobRequest:
    spec = _SPECS[index % len(_SPECS)]
    if spec.kind.value == "fft":
        payload = [0.5] * 16
    else:
        payload = np.full((8, 8), 100 + index, dtype=np.int64)
    return JobRequest(spec=spec, payload=payload, job_id=job_id, **kwargs)


def _router(tmp_path, n=3, **kwargs) -> ShardRouter:
    return ShardRouter(
        tmp_path / "cluster",
        [f"shard-{i}" for i in range(n)],
        pool_size=1,
        fsync=FsyncPolicy.NEVER,
        **kwargs,
    )


def _hb(shard="shard-0", round_index=1, **kwargs) -> ShardHeartbeat:
    return ShardHeartbeat(shard=shard, round_index=round_index, **kwargs)


class TestHeartbeat:
    def test_sidelined_and_serving_capacity(self):
        hb = _hb(total_fabrics=4, breaker_open_fabrics=1, quarantined_fabrics=2)
        assert hb.sidelined_fabrics == 3
        assert hb.serving_capacity == 1

    def test_fully_sidelined_clamps_to_zero(self):
        hb = _hb(total_fabrics=1, breaker_open_fabrics=1, quarantined_fabrics=1)
        assert hb.serving_capacity == 0


class TestHealthMonitor:
    def test_fresh_shard_is_healthy(self):
        monitor = HealthMonitor()
        assert monitor.state("shard-0") is ShardState.HEALTHY
        assert monitor.phi("shard-0") == 0.0

    def test_missing_heartbeats_promote_suspect_then_dead(self):
        monitor = HealthMonitor()
        monitor.observe(_hb(alive=False, round_index=1))
        assert monitor.state("shard-0") is ShardState.SUSPECT
        monitor.observe(_hb(alive=False, round_index=2))
        assert monitor.state("shard-0") is ShardState.DEAD
        assert [t.after for t in monitor.transitions] == [
            ShardState.SUSPECT,
            ShardState.DEAD,
        ]

    def test_fully_sidelined_pool_accrues_to_suspect(self):
        monitor = HealthMonitor()
        for round_index in (1, 2):
            monitor.observe(
                _hb(
                    round_index=round_index,
                    total_fabrics=2,
                    breaker_open_fabrics=2,
                )
            )
        assert monitor.state("shard-0") is ShardState.SUSPECT
        assert monitor.phi("shard-0") == pytest.approx(4.0)

    def test_clean_rounds_decay_phi_back_to_healthy(self):
        monitor = HealthMonitor()
        monitor.observe(_hb(round_index=1, total_fabrics=1, quarantined_fabrics=1))
        monitor.observe(_hb(round_index=2, total_fabrics=1, quarantined_fabrics=1))
        assert monitor.state("shard-0") is ShardState.SUSPECT
        for round_index in (3, 4):
            monitor.observe(_hb(round_index=round_index))
        assert monitor.state("shard-0") is ShardState.HEALTHY
        assert monitor.phi("shard-0") < 3.0

    def test_queue_growth_past_the_ewma_envelope_is_evidence(self):
        monitor = HealthMonitor()
        monitor.observe(_hb(round_index=1, queue_depth=2))  # seeds EWMA
        monitor.observe(_hb(round_index=2, queue_depth=50))
        assert monitor.phi("shard-0") == pytest.approx(1.0)

    def test_dead_is_sticky(self):
        monitor = HealthMonitor()
        monitor.mark_dead("shard-0", round_index=1, reason="killed")
        for round_index in range(2, 6):
            monitor.observe(_hb(round_index=round_index))
        assert monitor.state("shard-0") is ShardState.DEAD
        assert len(monitor.transitions) == 1

    def test_draining_is_an_administrative_state(self):
        monitor = HealthMonitor()
        monitor.mark_draining("shard-0", round_index=3)
        assert monitor.state("shard-0") is ShardState.DRAINING
        monitor.mark_dead("shard-0", round_index=4, reason="drained")
        assert monitor.state("shard-0") is ShardState.DEAD
        assert [t.reason for t in monitor.transitions] == [
            "drain requested",
            "drained",
        ]

    def test_corruption_accrues_phi(self):
        monitor = HealthMonitor()
        monitor.note_corruption("shard-0", 3, round_index=1)
        assert monitor.phi("shard-0") > 0.0

    def test_state_codes_are_stable(self):
        # The gauge encoding is operator-facing; renumbering breaks
        # every dashboard built on it.
        assert [s.code for s in (
            ShardState.HEALTHY,
            ShardState.SUSPECT,
            ShardState.DRAINING,
            ShardState.DEAD,
        )] == [0, 1, 2, 3]


class TestVerifySegment:
    def test_clean_segment_verifies_every_record(self, tmp_path):
        journal = JobJournal(tmp_path, fsync=FsyncPolicy.NEVER)
        for index in range(5):
            journal.submitted(f"v-{index}", {})
        journal.close()
        (segment,) = [
            p for p in tmp_path.iterdir() if p.name.startswith("wal-")
        ]
        assert verify_segment(segment) == (5, 0)

    def test_flipped_byte_poisons_the_rest_of_the_segment(self, tmp_path):
        journal = JobJournal(tmp_path, fsync=FsyncPolicy.NEVER)
        for index in range(5):
            journal.submitted(f"v-{index}", {})
        journal.close()
        (segment,) = [
            p for p in tmp_path.iterdir() if p.name.startswith("wal-")
        ]
        data = bytearray(segment.read_bytes())
        lines = segment.read_bytes().splitlines(keepends=True)
        offset = len(lines[0]) + len(lines[1]) + 12  # inside line 3
        data[offset] ^= 0xFF
        segment.write_bytes(bytes(data))
        # Two clean records, then the flipped line and everything after
        # it (scan semantics: nothing past a tear is trusted).
        assert verify_segment(segment) == (2, 3)


class TestDrain:
    def _loaded_router(self, tmp_path, n_jobs=9):
        router = _router(tmp_path)
        for index in range(n_jobs):
            router.submit(_request(f"dr-{index:02d}", index))
        return router

    def test_drain_migrates_the_backlog_and_leaves_the_ring(self, tmp_path):
        router = self._loaded_router(tmp_path)
        victim = max(
            router.shards.values(), key=lambda s: s.queue_depth
        ).name
        backlog = router.shards[victim].queue_depth
        report = drain_shard(router, victim)
        assert report.backlog == backlog
        assert report.moved == backlog
        assert victim not in router.ring
        assert not router.shards[victim].alive
        assert router.draining == set()
        # Nothing routes there any more; everything still completes.
        router.run()
        assert len(router.results) == 9
        assert all(
            r.status is JobStatus.DONE for r in router.results.values()
        )

    def test_drained_moved_records_never_dangle(self, tmp_path):
        router = self._loaded_router(tmp_path)
        victim = max(
            router.shards.values(), key=lambda s: s.queue_depth
        ).name
        root = router.shards[victim].journal_dir.parent
        drain_shard(router, victim)
        router.run()
        router.close()
        submitted: dict[str, set[str]] = {}
        moved: set[str] = set()
        for directory in root.iterdir():
            journal = JobJournal(
                directory, fsync=FsyncPolicy.NEVER, lock=False
            )
            records, _ = journal.scan()
            journal.close()
            submitted[directory.name] = {
                r.job_id
                for r in records
                if r.type is RecordType.SUBMITTED
            }
            if directory.name == victim:
                moved = {
                    r.job_id
                    for r in records
                    if r.type is RecordType.MOVED
                }
        assert moved  # the drain did move something
        for job_id in moved:
            assert any(
                job_id in ids
                for name, ids in submitted.items()
                if name != victim
            )

    def test_finished_results_survive_the_drain(self, tmp_path):
        router = self._loaded_router(tmp_path, n_jobs=8)
        victim = max(
            router.shards.values(), key=lambda s: s.queue_depth
        ).name
        done = router.shards[victim].step_one()
        assert done is not None
        drain_shard(router, victim)
        # The finished job's result is still servable cluster-wide.
        assert router.submit(_request(done.job_id)).job_id == done.job_id

    def test_expired_jobs_fail_locally_instead_of_migrating(self, tmp_path):
        clock = types.SimpleNamespace(now=100.0)
        router = _router(tmp_path, clock=lambda: clock.now)
        router.submit(_request("dr-live"))
        router.submit(_request("dr-dead", deadline_s=50.0))
        victim = router.owner["dr-dead"]
        report = drain_shard(router, victim)
        assert report.expired == 1
        result = router.results["dr-dead"]
        assert result.status is JobStatus.TIMEOUT
        assert "during drain" in result.error
        router.run()
        assert router.results["dr-live"].status is JobStatus.DONE

    def test_last_serving_shard_refuses_to_drain(self, tmp_path):
        router = _router(tmp_path, n=1)
        with pytest.raises(ClusterError, match="last serving"):
            drain_shard(router, "shard-0")

    def test_dead_shard_refuses_to_drain(self, tmp_path):
        router = _router(tmp_path)
        router.kill_shard("shard-1")
        with pytest.raises(ClusterError, match="dead"):
            drain_shard(router, "shard-1")

    def test_unknown_shard_refuses_to_drain(self, tmp_path):
        router = _router(tmp_path)
        with pytest.raises(ClusterError, match="no shard"):
            drain_shard(router, "shard-9")


class _FakeCache:
    """Duck-typed stand-in for ArtifactCache's scrub surface."""

    def __init__(self, disk_dir, bad=()):
        self.disk_dir = disk_dir
        self.bad = set(bad)
        self.stats = types.SimpleNamespace(corrupt_quarantined=0)
        self.loads: list[str] = []

    def _disk_load_quarantining(self, key):
        self.loads.append(key)
        if key in self.bad:
            self.stats.corrupt_quarantined += 1


class TestScrubber:
    def _journal_dir(self, tmp_path, name="shard-0", records=6):
        directory = tmp_path / name
        journal = JobJournal(
            directory, fsync=FsyncPolicy.NEVER, segment_records=2
        )
        for index in range(records):
            journal.submitted(f"sc-{index}", {})
        journal.close()
        return directory

    def test_clean_journals_scrub_clean(self, tmp_path):
        directory = self._journal_dir(tmp_path)
        scrubber = AntiEntropyScrubber({"shard-0": directory})
        report = scrubber.scrub_all()
        assert report.segments_verified == 3
        assert report.records_verified == 6
        assert report.corruption_found == 0

    def test_corrupt_segment_is_found_and_attributed(self, tmp_path):
        directory = self._journal_dir(tmp_path)
        segment = sorted(directory.glob("wal-*.log"))[1]
        data = bytearray(segment.read_bytes())
        data[4] ^= 0xFF
        segment.write_bytes(bytes(data))
        scrubber = AntiEntropyScrubber({"shard-0": directory})
        report = scrubber.scrub_all()
        assert report.corrupt_lines_found == 2
        assert str(segment) in report.corrupt_segments
        assert scrubber.last_round_corruption == {"shard-0": 2}

    def test_rounds_are_bounded_and_cover_everything(self, tmp_path):
        directory = self._journal_dir(tmp_path)  # 3 segments
        scrubber = AntiEntropyScrubber(
            {"shard-0": directory}, segments_per_round=1
        )
        for _ in range(3):
            scrubber.scrub_round()
        assert scrubber.report.segments_verified == 3
        assert scrubber.report.records_verified == 6

    def test_cache_entries_scrub_through_the_quarantining_loader(
        self, tmp_path
    ):
        disk = tmp_path / "cache"
        disk.mkdir()
        for name in ("aaaa", "bbbb", "cccc"):
            (disk / f"{name}.artifact").write_bytes(b"x")
        cache = _FakeCache(disk, bad={"bbbb"})
        scrubber = AntiEntropyScrubber({}, cache)
        report = scrubber.scrub_all()
        assert report.cache_entries_verified == 3
        assert report.cache_entries_quarantined == 1
        assert report.corruption_found == 1
        assert cache.loads == ["aaaa", "bbbb", "cccc"]

    def test_work_bounds_validate(self):
        with pytest.raises(ClusterError):
            AntiEntropyScrubber({}, segments_per_round=0)


class TestSupervisor:
    def test_silent_shard_death_triggers_automatic_failover(self, tmp_path):
        router = _router(tmp_path)
        for index in range(9):
            router.submit(_request(f"sv-{index:02d}", index))
        # The "process" dies without telling the router: the ring still
        # routes to it; only missing heartbeats reveal the death.
        router.shards["shard-1"].kill()
        supervisor = ClusterSupervisor(router, scrub_every=0)
        report = supervisor.run()
        assert report.auto_handoffs == 1
        assert supervisor.monitor.state("shard-1") is ShardState.DEAD
        assert len(router.results) == 9
        assert all(
            r.status is JobStatus.DONE for r in router.results.values()
        )

    def test_suspect_verdict_drains_live_when_enabled(self, tmp_path):
        router = _router(tmp_path)
        for index in range(9):
            router.submit(_request(f"sv-{index:02d}", index))
        # shard-1 is up but its only fabric sits behind an open breaker:
        # SUSPECT-grade evidence, not DEAD-grade.
        router.shards["shard-1"].heartbeat = lambda r: _hb(
            shard="shard-1",
            round_index=r,
            total_fabrics=1,
            breaker_open_fabrics=1,
        )
        supervisor = ClusterSupervisor(
            router, scrub_every=0, drain_on_suspect=True
        )
        report = supervisor.run()
        assert report.auto_drains == 1
        assert "shard-1" not in router.ring
        assert supervisor.monitor.state("shard-1") is ShardState.DEAD
        assert len(router.results) == 9

    def test_gauges_and_scrub_counters_are_published(self, tmp_path):
        router = _router(tmp_path)
        for index in range(6):
            router.submit(_request(f"sv-{index:02d}", index))
        supervisor = ClusterSupervisor(router, scrub_every=1)
        supervisor.run()
        for name in router.shards:
            assert supervisor._m_state.value(shard=name) == float(
                supervisor.monitor.state(name).code
            )
        assert supervisor._m_scrub_segments.total > 0
        assert supervisor._m_scrub_corruption.total == 0
        assert supervisor.report.scrub_rounds > 0

    def test_scrub_corruption_feeds_health(self, tmp_path):
        router = _router(tmp_path)
        router.submit(_request("sv-00"))
        router.run()
        # Rot the owning shard's journal on disk behind the running
        # cluster.
        victim = router.owner["sv-00"]
        directory = router.shards[victim].journal_dir
        segment = sorted(directory.glob("wal-*.log"))[0]
        data = bytearray(segment.read_bytes())
        data[4] ^= 0xFF
        segment.write_bytes(bytes(data))
        supervisor = ClusterSupervisor(router, scrub_every=1)
        supervisor.scrubber.segments_per_round = 16
        supervisor.tick()
        assert supervisor.scrubber.report.corrupt_lines_found > 0
        assert supervisor.monitor.phi(victim) > 0.0
        assert supervisor._m_scrub_corruption.total > 0

    def test_supervised_run_matches_unsupervised_results(self, tmp_path):
        plain = _router(tmp_path / "plain")
        supervised = _router(tmp_path / "supervised")
        for index in range(8):
            plain.submit(_request(f"sv-{index:02d}", index))
            supervised.submit(_request(f"sv-{index:02d}", index))
        plain.run()
        ClusterSupervisor(supervised, scrub_every=2).run()
        assert set(plain.results) == set(supervised.results)
        for job_id, result in plain.results.items():
            other = supervised.results[job_id]
            assert result.status is other.status
            assert np.array_equal(
                np.asarray(result.output), np.asarray(other.output)
            )
