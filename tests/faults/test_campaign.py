"""End-to-end fault campaigns: recovery, exactness, hard remap."""

import numpy as np
import pytest

from repro.errors import ScrubError
from repro.fabric.icap import IcapPort
from repro.fabric.mesh import Mesh
from repro.fabric.rtms import EpochSpec, RuntimeManager
from repro.faults import (
    CampaignConfig,
    FaultClass,
    FaultEvent,
    FaultInjector,
    FaultTarget,
    ReadbackScrubber,
    run_campaign,
    used_coords,
)
from repro.kernels.fft.decompose import FFTPlan
from repro.kernels.fft.runner import FabricFFT


def _fft_workload(seed=3):
    plan = FFTPlan(16, 16, 1)
    fft = FabricFFT(plan)
    rng = np.random.default_rng(seed)
    x = (rng.standard_normal(plan.n) + 1j * rng.standard_normal(plan.n)) * 0.05
    golden = fft.run(x).output
    return plan, fft, x, golden


def _campaign_setup(plan, rows=None, cols=None):
    mesh = Mesh(rows if rows is not None else plan.rows,
                cols if cols is not None else plan.cols)
    rtms = RuntimeManager(mesh, IcapPort())
    return mesh, rtms


class TestConfig:
    def test_validation(self):
        with pytest.raises(ScrubError):
            CampaignConfig(scrub_period=-1)
        with pytest.raises(ScrubError):
            CampaignConfig(repair_policy="magic")
        with pytest.raises(ScrubError):
            CampaignConfig(max_repair_attempts=0)

    def test_attempts_must_exceed_hard_streak(self):
        plan, fft, x, _ = _fft_workload()
        mesh, rtms = _campaign_setup(plan)
        with pytest.raises(ScrubError):
            run_campaign(
                rtms, fft.transform_epochs(x), FaultInjector(mesh),
                ReadbackScrubber(hard_streak=5),
                CampaignConfig(max_repair_attempts=5),
            )


class TestUsedCoords:
    def test_collects_every_epoch_field(self):
        spec = EpochSpec(
            "e", programs={(0, 0): object()}, pokes={(1, 0): {0: 1}},
            run=[(1, 1)],
        )
        assert used_coords([spec]) == {(0, 0), (1, 0), (1, 1)}


class TestTransientRecovery:
    def test_fault_free_campaign_matches_golden(self):
        plan, fft, x, golden = _fft_workload()
        mesh, rtms = _campaign_setup(plan)
        result = run_campaign(
            rtms, fft.transform_epochs(x), FaultInjector(mesh)
        )
        assert result.injected == 0 and result.rollbacks == 0
        assert np.array_equal(fft.read_output(mesh), golden)

    def test_scrubbed_output_is_bit_identical(self):
        plan, fft, x, golden = _fft_workload()
        mesh, rtms = _campaign_setup(plan)
        injector = FaultInjector(mesh, seed=5)
        injector.schedule_poisson(
            1.0 / 5_000.0, 60_000.0, targets=(FaultTarget.DMEM,)
        )
        result = run_campaign(
            rtms, fft.transform_epochs(x), injector,
            ReadbackScrubber(), CampaignConfig(scrub_period=1),
        )
        assert result.injected > 0
        assert result.detected + result.masked == result.injected
        assert result.corrected == result.detected
        assert np.array_equal(fft.read_output(mesh), golden)

    def test_campaign_is_deterministic(self):
        def once():
            plan, fft, x, _ = _fft_workload()
            mesh, rtms = _campaign_setup(plan)
            injector = FaultInjector(mesh, seed=5)
            injector.schedule_poisson(
                1.0 / 5_000.0, 60_000.0, targets=(FaultTarget.DMEM,)
            )
            result = run_campaign(
                rtms, fft.transform_epochs(x), injector,
                ReadbackScrubber(), CampaignConfig(scrub_period=1),
            )
            return (
                result.injected, result.detected, result.corrected,
                result.rollbacks, result.total_ns, result.scrub_ns,
                result.detection_latencies_ns,
            )

        assert once() == once()

    def test_unprotected_campaign_never_scrubs(self):
        plan, fft, x, _ = _fft_workload()
        mesh, rtms = _campaign_setup(plan)
        injector = FaultInjector(mesh, seed=5)
        injector.schedule_poisson(
            1.0 / 5_000.0, 60_000.0, targets=(FaultTarget.DMEM,)
        )
        result = run_campaign(
            rtms, fft.transform_epochs(x), injector,
            config=CampaignConfig(scrub_period=0),
        )
        assert result.scrub_reports == []
        assert result.scrub_ns == 0.0
        assert result.detected == 0

    def test_partial_repair_at_least_2x_cheaper_than_full(self):
        def repairs(policy):
            plan, fft, x, _ = _fft_workload()
            mesh, rtms = _campaign_setup(plan)
            injector = FaultInjector(mesh, seed=5)
            injector.schedule_poisson(
                1.0 / 5_000.0, 60_000.0, targets=(FaultTarget.DMEM,)
            )
            result = run_campaign(
                rtms, fft.transform_epochs(x), injector,
                ReadbackScrubber(),
                CampaignConfig(scrub_period=1, repair_policy=policy),
            )
            assert result.rollbacks > 0
            return sum(r.repair_ns for r in result.repairs) / result.rollbacks

        assert repairs("full") >= 2.0 * repairs("partial")

    def test_scrub_and_reconfig_share_one_port(self):
        plan, fft, x, _ = _fft_workload()
        mesh, rtms = _campaign_setup(plan)
        injector = FaultInjector(mesh, seed=5)
        injector.schedule_poisson(
            1.0 / 5_000.0, 60_000.0, targets=(FaultTarget.DMEM,)
        )
        result = run_campaign(
            rtms, fft.transform_epochs(x), injector, ReadbackScrubber(),
        )
        assert result.scrub_ns > 0 and result.reconfig_ns > 0
        assert result.scrub_ns + result.reconfig_ns == pytest.approx(
            rtms.icap.total_busy_ns
        )
        assert 0.0 < result.scrub_bandwidth_fraction < 1.0


class TestHardFaultRemap:
    def _stuck_at(self):
        return FaultEvent(
            time_ns=0.0, coord=(0, 0), target=FaultTarget.DMEM,
            addr=3, bit=17, fault_class=FaultClass.HARD,
        )

    def test_remap_onto_spare_preserves_output(self):
        plan, fft, x, golden = _fft_workload()
        mesh, rtms = _campaign_setup(plan, rows=1, cols=2)  # (0,1) spare
        injector = FaultInjector(mesh, seed=0)
        injector.script([self._stuck_at()])
        result = run_campaign(
            rtms, fft.transform_epochs(x), injector,
            ReadbackScrubber(hard_streak=2),
            CampaignConfig(scrub_period=1, max_repair_attempts=4),
        )
        assert result.hard_failures == [(0, 0)]
        assert result.remaps == [((0, 0), (0, 1))]
        assert result.abandoned >= 1
        assert injector.retired_coords == {(0, 0)}
        # The workload finished on the spare with the right answer.
        out_mesh = Mesh(plan.rows, plan.cols)
        out_mesh.tile((0, 0)).dmem.load_words(
            mesh.tile((0, 1)).dmem.snapshot()
        )
        assert np.array_equal(fft.read_output(out_mesh), golden)
        # Remap traffic went over the shared ICAP, scrub-labeled.
        assert rtms.icap.busy_ns_by_prefix("scrub:remap:") > 0

    def test_hard_fault_without_spare_remap_raises(self):
        plan, fft, x, _ = _fft_workload()
        mesh, rtms = _campaign_setup(plan, rows=1, cols=2)
        injector = FaultInjector(mesh, seed=0)
        injector.script([self._stuck_at()])
        with pytest.raises(ScrubError):
            run_campaign(
                rtms, fft.transform_epochs(x), injector,
                ReadbackScrubber(hard_streak=2),
                CampaignConfig(
                    scrub_period=1, max_repair_attempts=4, spare_remap=False
                ),
            )

    def test_hard_fault_with_no_spare_exhausts_attempts(self):
        plan, fft, x, _ = _fft_workload()
        mesh, rtms = _campaign_setup(plan)  # 1x1: nowhere to go
        injector = FaultInjector(mesh, seed=0)
        injector.script([self._stuck_at()])
        with pytest.raises(Exception):  # MappingError or ScrubError
            run_campaign(
                rtms, fft.transform_epochs(x), injector,
                ReadbackScrubber(hard_streak=2),
                CampaignConfig(scrub_period=1, max_repair_attempts=4),
            )


class TestArtifactCampaigns:
    """run_campaign accepts a CompiledArtifact + payload directly."""

    def test_artifact_and_epoch_list_are_equivalent(self):
        plan, fft, x, golden = _fft_workload()
        mesh, rtms = _campaign_setup(plan)
        result = run_campaign(
            rtms, fft.artifact, FaultInjector(mesh, seed=0),
            ReadbackScrubber(), CampaignConfig(),
            payload=x,
        )
        assert result.injected == 0
        assert np.array_equal(fft.read_output(mesh), golden)

    def test_payload_with_plain_epoch_list_rejected(self):
        plan, fft, x, _ = _fft_workload()
        mesh, rtms = _campaign_setup(plan)
        with pytest.raises(ScrubError, match="payload"):
            run_campaign(
                rtms, fft.transform_epochs(x), FaultInjector(mesh),
                ReadbackScrubber(), CampaignConfig(),
                payload=x,
            )

    def test_artifact_campaign_may_run_on_a_larger_mesh(self):
        # The spare-remap scenario: a 1x1-compiled workload on a 1x2
        # mesh.  Artifact expansion must not enforce the mesh shape.
        plan, fft, x, golden = _fft_workload()
        mesh, rtms = _campaign_setup(plan, rows=1, cols=2)
        run_campaign(
            rtms, fft.artifact, FaultInjector(mesh, seed=0),
            ReadbackScrubber(), CampaignConfig(),
            payload=x,
        )
        assert np.array_equal(fft.read_output(mesh), golden)
