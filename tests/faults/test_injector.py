"""Seeded SEU injection: determinism, targeting, stuck-at persistence."""

import pytest

from repro.errors import FaultError
from repro.fabric.mesh import Mesh
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultClass, FaultEvent, FaultTarget, flip_word


def _event(**kwargs):
    base = dict(
        time_ns=0.0, coord=(0, 0), target=FaultTarget.DMEM, addr=3, bit=5
    )
    base.update(kwargs)
    return FaultEvent(**base)


class TestSchedule:
    def test_poisson_is_seed_deterministic(self):
        a = FaultInjector(Mesh(2, 2), seed=42).schedule_poisson(
            1e-3, 100_000.0
        )
        b = FaultInjector(Mesh(2, 2), seed=42).schedule_poisson(
            1e-3, 100_000.0
        )
        assert a == b
        c = FaultInjector(Mesh(2, 2), seed=43).schedule_poisson(
            1e-3, 100_000.0
        )
        assert a != c

    def test_poisson_times_ordered_and_bounded(self):
        events = FaultInjector(Mesh(1, 1), seed=0).schedule_poisson(
            1e-3, 50_000.0
        )
        times = [e.time_ns for e in events]
        assert times == sorted(times)
        assert all(0.0 <= t < 50_000.0 for t in times)

    def test_poisson_validation(self):
        injector = FaultInjector(Mesh(1, 1))
        with pytest.raises(FaultError):
            injector.schedule_poisson(0.0, 1000.0)
        with pytest.raises(FaultError):
            injector.schedule_poisson(1e-3, 1000.0, hard_fraction=1.5)
        with pytest.raises(FaultError):
            injector.schedule_poisson(1e-3, 1000.0, targets=())

    def test_hard_fraction_one_makes_everything_hard(self):
        events = FaultInjector(Mesh(1, 1), seed=1).schedule_poisson(
            1e-3, 50_000.0, hard_fraction=1.0
        )
        assert events
        assert all(e.fault_class is FaultClass.HARD for e in events)

    def test_due_pops_in_time_order(self):
        injector = FaultInjector(Mesh(1, 1))
        injector.script([_event(time_ns=30.0), _event(time_ns=10.0)])
        assert [e.time_ns for e in injector.due(20.0)] == [10.0]
        assert injector.pending_count == 1
        assert [e.time_ns for e in injector.due(100.0)] == [30.0]


class TestInjection:
    def test_dmem_flip(self):
        mesh = Mesh(1, 1)
        mesh.tile((0, 0)).dmem.poke(3, 1000)
        injector = FaultInjector(mesh)
        record = injector.inject(_event(addr=3, bit=5))
        assert record.original == 1000
        assert record.corrupted == flip_word(1000, 5)
        assert mesh.tile((0, 0)).dmem.peek(3) == record.corrupted

    def test_imem_retargets_onto_loaded_slot(self):
        mesh = Mesh(1, 1)
        tile = mesh.tile((0, 0))
        tile.imem.load(["i0", "i1", "i2"], base=10)
        injector = FaultInjector(mesh)
        record = injector.inject(
            _event(target=FaultTarget.IMEM, addr=500, bit=0)
        )
        # 500 % 3 loaded slots -> third loaded address (12).
        assert record.addr == 12
        assert tile.imem.corrupted_slots() == [12]
        assert not record.masked

    def test_imem_without_program_is_masked(self):
        mesh = Mesh(1, 1)
        injector = FaultInjector(mesh)
        record = injector.inject(_event(target=FaultTarget.IMEM))
        assert record.masked
        assert not mesh.tile((0, 0)).imem.has_corruption

    def test_link_derangement_changes_attachment(self):
        mesh = Mesh(1, 2)
        injector = FaultInjector(mesh)
        before = mesh.active_link((0, 0))
        record = injector.inject(
            _event(target=FaultTarget.LINK, addr=0, bit=0)
        )
        assert record.corrupted != before
        assert mesh.active_link((0, 0)) == record.corrupted

    def test_retired_coord_strikes_are_masked(self):
        mesh = Mesh(1, 2)
        injector = FaultInjector(mesh)
        injector.retire((0, 0))
        record = injector.inject(_event())
        assert record.masked
        assert injector.counts()["masked"] == 1


class TestHardFaults:
    def test_reassert_after_repair(self):
        mesh = Mesh(1, 1)
        mesh.tile((0, 0)).dmem.poke(3, 7)
        injector = FaultInjector(mesh)
        record = injector.inject(
            _event(addr=3, bit=1, fault_class=FaultClass.HARD)
        )
        # Rewrite (repair) the word, then the stuck cell re-asserts.
        mesh.tile((0, 0)).dmem.poke(3, 7)
        assert injector.reassert() == 1
        assert mesh.tile((0, 0)).dmem.peek(3) == record.corrupted

    def test_transient_does_not_reassert(self):
        mesh = Mesh(1, 1)
        injector = FaultInjector(mesh)
        injector.inject(_event(addr=3, bit=1))
        mesh.tile((0, 0)).dmem.poke(3, 0)
        assert injector.reassert() == 0
        assert mesh.tile((0, 0)).dmem.peek(3) == 0

    def test_retire_stops_reassertion(self):
        mesh = Mesh(1, 2)
        injector = FaultInjector(mesh)
        injector.inject(_event(fault_class=FaultClass.HARD))
        assert injector.retire((0, 0)) == 1
        assert injector.reassert() == 0
        assert injector.counts()["abandoned"] == 1
        assert injector.retired_coords == {(0, 0)}
