"""Readback scrubbing: detection, masking, repair policies, streaks."""

import pytest

from repro.errors import ScrubError
from repro.fabric.icap import IcapPort
from repro.fabric.mesh import Mesh
from repro.fabric.rtms import RuntimeManager
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultClass, FaultEvent, FaultTarget
from repro.faults.scrubber import ReadbackScrubber
from repro.units import DMEM_WORD_RELOAD_NS


def _setup(rows=1, cols=1):
    mesh = Mesh(rows, cols)
    rtms = RuntimeManager(mesh, IcapPort())
    injector = FaultInjector(mesh)
    return mesh, rtms, injector


def _dmem_event(coord=(0, 0), addr=3, bit=5, fault_class=FaultClass.TRANSIENT):
    return FaultEvent(
        time_ns=0.0, coord=coord, target=FaultTarget.DMEM,
        addr=addr, bit=bit, fault_class=fault_class,
    )


class TestScan:
    def test_validation(self):
        with pytest.raises(ScrubError):
            ReadbackScrubber(frame_words=0)
        with pytest.raises(ScrubError):
            ReadbackScrubber(hard_streak=0)

    def test_clean_fabric_scans_clean(self):
        mesh, rtms, injector = _setup()
        report = ReadbackScrubber().scan(rtms, injector)
        assert report.clean
        assert report.coords_scanned == 1
        assert report.words_read == mesh.tile((0, 0)).dmem.size

    def test_scan_charges_labeled_icap_traffic(self):
        _, rtms, injector = _setup()
        report = ReadbackScrubber(frame_words=64).scan(rtms, injector)
        scrub_ns = rtms.icap.busy_ns_by_prefix("scrub:")
        assert scrub_ns == pytest.approx(512 * DMEM_WORD_RELOAD_NS)
        assert report.readback_ns == pytest.approx(scrub_ns)
        # 512 data words in 64-word frames -> 8 transfers.
        assert len(rtms.icap.transfers) == 8
        # The boundary blocks on scrub completion.
        assert rtms.now_ns == pytest.approx(report.end_ns)

    def test_persistent_corruption_is_detected(self):
        mesh, rtms, injector = _setup()
        record = injector.inject(_dmem_event())
        report = ReadbackScrubber().scan(rtms, injector)
        assert not report.clean
        assert report.detected == [record]
        assert record.detected_at_ns == report.end_ns
        assert record.detection_latency_ns is not None

    def test_overwritten_word_is_masked(self):
        mesh, rtms, injector = _setup()
        record = injector.inject(_dmem_event(addr=3))
        # Legitimate traffic rewrites the word before the next scrub.
        mesh.tile((0, 0)).dmem.poke(3, 0)
        report = ReadbackScrubber().scan(rtms, injector)
        assert report.clean
        assert report.newly_masked == 1
        assert record.masked

    def test_redetection_counts_after_detection(self):
        _, rtms, injector = _setup()
        record = injector.inject(_dmem_event())
        scrubber = ReadbackScrubber()
        scrubber.scan(rtms, injector)
        scrubber.scan(rtms, injector)
        assert record.redetections == 1

    def test_hard_streak_produces_suspects(self):
        _, rtms, injector = _setup()
        injector.inject(_dmem_event(fault_class=FaultClass.HARD))
        scrubber = ReadbackScrubber(hard_streak=2)
        first = scrubber.scan(rtms, injector)
        assert first.hard_suspects == []
        second = scrubber.scan(rtms, injector)
        assert second.hard_suspects == [(0, 0)]
        # A clean scan (or an explicit reset) clears the streak.
        scrubber.reset_streak((0, 0))
        assert scrubber.scan(rtms, injector).hard_suspects == []


class TestRepair:
    def test_unknown_policy_rejected(self):
        _, rtms, injector = _setup()
        with pytest.raises(ScrubError):
            ReadbackScrubber().repair(rtms, rtms.checkpoint(), policy="magic")

    def test_partial_repair_rewrites_only_diff_words(self):
        mesh, rtms, injector = _setup()
        checkpoint = rtms.checkpoint()
        injector.inject(_dmem_event(addr=3))
        injector.inject(_dmem_event(addr=9, bit=1))
        scrubber = ReadbackScrubber()
        scrubber.scan(rtms, injector)
        report = scrubber.repair(rtms, checkpoint, policy="partial")
        assert report.dmem_words == 2
        assert report.repair_ns == pytest.approx(2 * DMEM_WORD_RELOAD_NS)
        # Fabric is back at the checkpoint.
        assert mesh.tile((0, 0)).dmem.peek(3) == 0
        assert mesh.tile((0, 0)).dmem.peek(9) == 0

    def test_full_repair_reloads_whole_tile(self):
        mesh, rtms, injector = _setup()
        checkpoint = rtms.checkpoint()
        injector.inject(_dmem_event(addr=3))
        report = ReadbackScrubber().repair(rtms, checkpoint, policy="full")
        assert report.dmem_words == mesh.tile((0, 0)).dmem.size

    def test_partial_beats_full(self):
        _, rtms, injector = _setup()
        checkpoint = rtms.checkpoint()
        injector.inject(_dmem_event(addr=3))
        scrubber = ReadbackScrubber()
        partial = scrubber.repair(rtms, checkpoint, policy="partial")
        injector.inject(_dmem_event(addr=3))
        full = scrubber.repair(rtms, checkpoint, policy="full")
        assert full.repair_ns >= 2 * partial.repair_ns

    def test_repair_traffic_is_scrub_labeled(self):
        _, rtms, injector = _setup()
        checkpoint = rtms.checkpoint()
        injector.inject(_dmem_event())
        before = rtms.icap.busy_ns_by_prefix("scrub:rw:")
        ReadbackScrubber().repair(rtms, checkpoint)
        assert rtms.icap.busy_ns_by_prefix("scrub:rw:") > before
