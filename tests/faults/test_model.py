"""Fault vocabulary: bit flips, event validation, record lifecycle."""

import pytest

from repro.errors import FaultError
from repro.fabric.fixedpoint import WORD_MAX, WORD_MIN
from repro.faults.model import (
    FaultClass,
    FaultEvent,
    FaultTarget,
    InjectionRecord,
    flip_word,
)


class TestFlipWord:
    def test_flip_is_involutive(self):
        for word in (0, 1, -1, 12345, WORD_MAX, WORD_MIN):
            for bit in (0, 17, 47):
                flipped = flip_word(word, bit)
                assert flipped != word
                assert flip_word(flipped, bit) == word

    def test_flip_stays_in_word_range(self):
        for bit in range(48):
            assert WORD_MIN <= flip_word(WORD_MAX, bit) <= WORD_MAX

    def test_sign_bit_flip(self):
        assert flip_word(0, 47) == WORD_MIN

    def test_bit_out_of_range(self):
        with pytest.raises(FaultError):
            flip_word(0, 48)
        with pytest.raises(FaultError):
            flip_word(0, -1)


class TestFaultEvent:
    def test_valid_event(self):
        event = FaultEvent(
            time_ns=10.0, coord=(0, 0), target=FaultTarget.DMEM, addr=3, bit=5
        )
        assert event.fault_class is FaultClass.TRANSIENT

    def test_negative_time_rejected(self):
        with pytest.raises(FaultError):
            FaultEvent(time_ns=-1.0, coord=(0, 0), target=FaultTarget.DMEM)

    def test_negative_addr_rejected(self):
        with pytest.raises(FaultError):
            FaultEvent(
                time_ns=0.0, coord=(0, 0), target=FaultTarget.DMEM, addr=-1
            )

    def test_bit_limit_per_target(self):
        # 48-bit data words, 72-bit instruction words.
        with pytest.raises(FaultError):
            FaultEvent(time_ns=0.0, coord=(0, 0), target=FaultTarget.DMEM, bit=48)
        FaultEvent(time_ns=0.0, coord=(0, 0), target=FaultTarget.IMEM, bit=71)
        with pytest.raises(FaultError):
            FaultEvent(time_ns=0.0, coord=(0, 0), target=FaultTarget.IMEM, bit=72)

    def test_frozen(self):
        event = FaultEvent(time_ns=0.0, coord=(0, 0), target=FaultTarget.DMEM)
        with pytest.raises(AttributeError):
            event.time_ns = 5.0  # type: ignore[misc]


class TestInjectionRecord:
    def _record(self, **kwargs):
        event = FaultEvent(
            time_ns=100.0, coord=(1, 0), target=FaultTarget.DMEM, addr=7, bit=2
        )
        return InjectionRecord(
            event=event, addr=7, original=0, corrupted=4,
            injected_at_ns=100.0, **kwargs,
        )

    def test_lifecycle_status(self):
        record = self._record()
        assert record.status == "latent"
        record.detected_at_ns = 250.0
        assert record.status == "detected"
        record.repaired_at_ns = 300.0
        assert record.status == "repaired"
        record.abandoned = True
        assert record.status == "abandoned"

    def test_masked_status(self):
        record = self._record(masked=True)
        assert record.status == "masked"

    def test_latency_and_mttr(self):
        record = self._record()
        assert record.detection_latency_ns is None
        assert record.time_to_repair_ns is None
        record.detected_at_ns = 250.0
        assert record.detection_latency_ns == 150.0
        record.repaired_at_ns = 400.0
        assert record.time_to_repair_ns == 150.0

    def test_event_passthrough(self):
        record = self._record()
        assert record.coord == (1, 0)
        assert record.target is FaultTarget.DMEM
        assert record.fault_class is FaultClass.TRANSIENT
