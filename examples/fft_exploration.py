#!/usr/bin/env python3
"""FFT design-space exploration (the Sec. 3.1-3.3 workflow).

Walks the full methodology for a 1024-point radix-2 FFT:

1. derive the partition size from the tile memory;
2. inspect the twiddle classification and the reload savings;
3. sweep columns x link-cost with the tau performance model;
4. extract the throughput/area Pareto front;
5. compare against this host's software FFT baselines.
"""

from repro.baselines import host_fft_throughput
from repro.dse import explore_fft, pareto_front
from repro.kernels.fft import (
    FFTPerformanceModel,
    FFTPlan,
    StageProfile,
    classify_twiddles,
    partition_size,
)
from repro.kernels.fft.twiddle import TwiddleClass


def main() -> None:
    n = 1024
    m = partition_size(512)
    print(f"partition size for a 512-word data memory: M = {m}")
    print(f"a {n}-point FFT therefore uses {n // m} rows of tiles and "
          f"between {n // m} and {(n // m) * 10} tiles\n")

    plan = FFTPlan(n=n, m=m, cols=1)
    schedule = classify_twiddles(plan)
    counts = {cls.value: schedule.count(cls) for cls in TwiddleClass}
    print(f"twiddle classes over (tile, stage): {counts}")
    print(f"ICAP twiddle reload per FFT: {schedule.total_reload_words} words "
          f"(naive scheme: {schedule.naive_reload_words})\n")

    profile = StageProfile.table1()
    print("throughput (FFTs/s) by columns and link reconfiguration cost:")
    costs = (0, 300, 700, 1100, 1500, 3000)
    print(f"{'L(ns)':>7} " + " ".join(f"{c:>9}col" for c in (1, 2, 5, 10)))
    for cost in costs:
        cells = []
        for cols in (1, 2, 5, 10):
            model = FFTPerformanceModel(plan=FFTPlan(n, m, cols), profile=profile)
            cells.append(f"{model.throughput(cost):12.0f}")
        print(f"{cost:>7} " + " ".join(cells))

    print("\nthroughput/area Pareto front at L = 300 ns:")
    points = explore_fft(n=n, m=m, link_costs_ns=(300.0,))
    for point in pareto_front(points):
        print(
            f"  cols={point.param('cols'):>2}  tiles={point.n_tiles:>3}  "
            f"{point.throughput_per_s:9.0f} FFTs/s  "
            f"{point.area_luts:>6} LUTs  "
            f"{point.throughput_per_area * 1000:.2f} FFTs/s per kLUT"
        )

    print("\nthis host, for scale (the paper's PC did ~1000 FFTs/s in 2013):")
    for result in host_fft_throughput(n=n, min_seconds=0.1):
        print(f"  {result.name:<24} {result.items_per_s:12.0f} FFTs/s")


if __name__ == "__main__":
    main()
