#!/usr/bin/env python3
"""Temporal reuse, traced and priced: Eq. 1, Gantt charts and energy.

The paper's core motivation is that a reconfigurable fabric lets you trade
area for time: fold a pipeline onto fewer tiles and pay reconfiguration
instead of silicon.  This example quantifies that trade three ways:

1. Eq. 1 decompositions of the JPEG pipeline folded onto 1..10 tiles;
2. a real epoch schedule executed on the fabric, rendered as an ASCII
   Gantt chart showing reconfiguration overlapping computation;
3. the energy model ranking the same designs by performance/watt.
"""

from repro.fabric import EnergyModel, IcapPort, Mesh, RuntimeManager, assemble
from repro.fabric.rtms import EpochSpec
from repro.fabric.trace import trace_report
from repro.mapping.epochs import folding_tradeoff
from repro.pn.profiles import jpeg_process_network


def folding() -> None:
    print("=== 1. Eq. 1: folding the JPEG pipeline " + "=" * 30)
    network = jpeg_process_network()
    print(f"{'tiles':>6} {'phases':>6} {'A(us)':>8} {'B(us)':>8} "
          f"{'total':>8} {'B share':>8}")
    for point in folding_tradeoff(network, [1, 2, 3, 5, 10],
                                  link_cost_ns=300.0):
        b = point.breakdown
        print(f"{point.n_tiles:>6} {point.phases:>6} "
              f"{b.compute_ns / 1000:>8.1f} {b.reconfig_ns / 1000:>8.1f} "
              f"{b.total_ns / 1000:>8.1f} {point.reconfig_share:>8.2f}")
    print("ten tiles preload everything; one tile trades 10x area for")
    print("~1.3x runtime -- the paper's high performance/area argument")


def traced_schedule() -> None:
    print("\n=== 2. an epoch schedule on the fabric, traced " + "=" * 23)
    worker = assemble("\n".join(["NOP"] * 400) + "\nHALT", name="worker")
    other = assemble("\n".join(["NOP"] * 300) + "\nHALT", name="other")
    mesh = Mesh(1, 3)
    rtms = RuntimeManager(mesh, IcapPort(), link_cost_ns=200.0)
    report = rtms.execute(
        [
            EpochSpec("warmup", programs={(0, 0): worker}, run=[(0, 0)]),
            # while (0,0) recomputes, the ICAP loads (0,1) and (0,2):
            EpochSpec(
                "overlap",
                programs={(0, 1): worker, (0, 2): other},
                run=[(0, 0)],
            ),
            EpochSpec("fanout", run=[(0, 1), (0, 2)]),
        ]
    )
    tracer = trace_report(report)
    print(tracer.gantt(width=64))
    print(f"reconfiguration: {report.reconfig_ns / 1000:.1f} us total, "
          f"{report.overlapped_ns / 1000:.1f} us hidden under compute")

    print("\n=== 3. energy of the same run " + "=" * 40)
    instructions = sum(t.stats.instructions for t in mesh)
    energy = EnergyModel().run_energy_nj(report, len(mesh), instructions)
    print(f"  {energy}")
    throughput = 3 / (report.total_ns * 1e-9)  # three program firings
    power = EnergyModel().steady_state_mw(
        n_tiles=len(mesh),
        instructions_per_s=instructions / (report.total_ns * 1e-9),
    )
    print(f"  steady power {power:.2f} mW -> "
          f"{throughput / power:.0f} firings/s per mW")


if __name__ == "__main__":
    folding()
    traced_schedule()
