#!/usr/bin/env python3
"""JPEG on the CGRA: manual mappings, rebalancing, and a real encode.

Follows Sec. 3.4-3.5:

1. encode a synthetic 200x200 frame with the reference encoder and
   verify it round-trips through the decoder;
2. run one block's shift/DCT/quantize/zigzag on an actual fabric tile
   and check it agrees with the reference bit for bit;
3. print the five manual mappings of Table 4;
4. rebalance automatically for 1..25 tiles and report the Fig. 16/17
   numbers, including the Table 5 binding at 24 tiles.
"""

import numpy as np

from repro.fabric.tile import Tile
from repro.io.images import natural_like
from repro.kernels.jpeg import decode_image, encode_image
from repro.kernels.jpeg.dct import dct2d
from repro.kernels.jpeg.manual_maps import manual_mapping_table
from repro.kernels.jpeg.pipeline_model import jpeg_pipeline_order, rebalance_series
from repro.kernels.jpeg.programs import (
    PIXEL_QBITS,
    alpha_quantize_program,
    dct_coefficient_words,
    matmul8_program,
    shift_program,
    zigzag_program,
)
from repro.kernels.jpeg.quant import (
    LUMINANCE_QTABLE,
    alpha_scale_table,
    quantize,
    scale_qtable,
)
from repro.kernels.jpeg.zigzag import zigzag
from repro.mapping import TileCostModel, rebalance_one
from repro.mapping.pipeline import JPEG_BLOCKS_PER_IMAGE


def encode_and_verify() -> None:
    print("=== 1. reference encoder round-trip " + "=" * 34)
    image = natural_like(200, 200, seed=11)
    stream = encode_image(image, quality=80)
    decoded = decode_image(stream)
    err = np.max(np.abs(decoded.astype(int) - image.astype(int)))
    ratio = image.size / len(stream)
    print(f"200x200 frame -> {len(stream)} bytes "
          f"({ratio:.1f}:1), max reconstruction error {err}")


def fabric_block() -> None:
    print("\n=== 2. one block on a fabric tile " + "=" * 36)
    image = natural_like(200, 200, seed=11)
    block = image[:8, :8].astype(np.int64)
    qtable = scale_qtable(LUMINANCE_QTABLE, 75)
    recip = alpha_scale_table(qtable, 14)

    tile = Tile()
    for i, w in enumerate(dct_coefficient_words()):
        tile.dmem.poke(i, w)
    for i, v in enumerate(block.reshape(-1)):
        tile.dmem.poke(64 + i, int(v))
    for i, r in enumerate(recip.reshape(-1)):
        tile.dmem.poke(192 + i, int(r))

    cycles = 0
    for program in (
        shift_program(64, 64, PIXEL_QBITS),
        matmul8_program(a_base=0, b_base=64, out_base=128, qbits=30),
        matmul8_program(a_base=128, b_base=0, out_base=64, qbits=30,
                        transpose_b=True),
        alpha_quantize_program(64, qbits=28, a_base=64, recip_base=192,
                               out_base=128),
        zigzag_program(a_base=128, out_base=320),
    ):
        tile.load_program(program)
        cycles += tile.run()

    got = np.array([tile.dmem.peek(320 + i) for i in range(64)])
    want = zigzag(quantize(dct2d(block.astype(float) - 128), qtable))
    print(f"tile pipeline: {cycles} cycles ({cycles * 2.5 / 1000:.1f} us); "
          f"coefficients match reference: {bool(np.array_equal(got, want))}")


def manual_mappings() -> None:
    print("\n=== 3. Table 4: manual mappings " + "=" * 38)
    print(f"{'impl':>4} {'tiles':>5} {'us/blk':>8} {'paper':>6} "
          f"{'util':>5} {'img/s':>7}")
    for row in manual_mapping_table():
        print(f"{row['impl']:>4} {row['tiles']:>5} {row['time_us']:>8.1f} "
              f"{row['paper_time_us']:>6.0f} {row['utilization']:>5.2f} "
              f"{row['images_per_s']:>7.2f}")


def automated_mapping() -> None:
    print("\n=== 4. automated rebalancing (Figs. 16-17) " + "=" * 27)
    series = rebalance_series(max_tiles=25)
    print(f"{'tiles':>5} " + " ".join(f"{a:>12}" for a in series))
    for i in range(25):
        row = [f"{series[a][i].images_per_s:12.2f}" for a in series]
        print(f"{series['one'][i].n_tiles:>5} " + " ".join(row))

    mapping = rebalance_one(jpeg_pipeline_order(), 24, TileCostModel())
    print("\nreBalanceOne at 24 tiles (Table 5):")
    print(" ", mapping.describe())
    metrics_interval = mapping.interval_ns(TileCostModel())
    print(f"  -> {1e9 / (metrics_interval * JPEG_BLOCKS_PER_IMAGE):.1f} "
          f"images/s on 200x200 frames")


if __name__ == "__main__":
    encode_and_verify()
    fabric_block()
    manual_mappings()
    automated_mapping()
