#!/usr/bin/env python3
"""Quickstart: run real code on the fabric, then explore a design space.

Three minutes with the library:

1. assemble a small program and execute it on one tile;
2. run a complete 64-point FFT across an 8x2 mesh of tiles and check it
   against numpy;
3. evaluate the paper's performance model for a few design points.
"""

import numpy as np

from repro import (
    Direction,
    FFTPerformanceModel,
    FFTPlan,
    FabricFFT,
    Mesh,
    StageProfile,
    assemble,
)


def run_one_tile() -> None:
    print("=== 1. one tile, one program " + "=" * 40)
    program = assemble(
        """
        ; sum the 8 words of `buf` into `acc`, send the result east
        .var acc
        .var ptr
        .var cnt
        .var buf, 8
        .word buf, 3, 1, 4, 1, 5, 9, 2, 6
        .word cnt, 8
            MOV   acc, #0
            MOV   ptr, #buf
        loop:
            ADD   acc, acc, @ptr
            ADD   ptr, ptr, #1
            SUB   cnt, cnt, #1
            BNZ   cnt, loop
            SNB.E 0, acc
            HALT
        """,
        name="sum8",
    )
    mesh = Mesh(1, 2)
    mesh.configure_link((0, 0), Direction.EAST)
    tile = mesh.tile((0, 0))
    tile.load_program(program)
    cycles = tile.run()
    print(f"program ran in {cycles} cycles ({cycles * 2.5:.1f} ns at 400 MHz)")
    print(f"neighbour received: {mesh.tile((0, 1)).dmem.peek(0)} (expected 31)")


def run_fabric_fft() -> None:
    print("\n=== 2. a 64-point FFT on an 8x2 tile mesh " + "=" * 27)
    plan = FFTPlan(n=64, m=8, cols=2)
    print(plan.describe())
    rng = np.random.default_rng(7)
    x = (rng.standard_normal(64) + 1j * rng.standard_normal(64)) * 0.01
    result = FabricFFT(plan, link_cost_ns=100.0).run(x)
    err = np.max(np.abs(result.output - np.fft.fft(x)))
    report = result.report
    print(f"max error vs numpy.fft: {err:.2e} (Q30 fixed point)")
    print(
        f"simulated time: {report.total_ns / 1000:.1f} us over "
        f"{len(report.epochs)} epochs "
        f"({report.reconfig_ns / 1000:.1f} us reconfiguration, "
        f"{report.overlapped_ns / 1000:.1f} us of it hidden)"
    )


def explore_design_points() -> None:
    print("\n=== 3. the paper's performance model " + "=" * 32)
    profile = StageProfile.table1()
    print(f"{'cols':>5} {'L=0':>12} {'L=500ns':>12} {'L=1500ns':>12}")
    for cols in (1, 2, 5, 10):
        model = FFTPerformanceModel(
            plan=FFTPlan(n=1024, m=128, cols=cols), profile=profile
        )
        row = [f"{model.throughput(L):12.0f}" for L in (0, 500, 1500)]
        print(f"{cols:>5} " + " ".join(row) + "  FFTs/s")
    print("more columns win at low link cost; the ordering inverts by ~1100 ns")


if __name__ == "__main__":
    run_one_tile()
    run_fabric_fft()
    explore_design_points()
