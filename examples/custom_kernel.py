#!/usr/bin/env python3
"""Mapping your own kernel: a 1-D stencil pipeline from scratch.

The paper's methodology is not specific to FFT/JPEG — any streaming
kernel expressible as an annotated process network can be mapped and
rebalanced.  This example builds a 5-stage image-filter pipeline
(unsharp masking on scanlines), annotates it with costs measured by
actually running its tile programs on the simulator, rebalances it over
1..12 tiles, and evaluates Eq. 1 for an epoch schedule that
time-multiplexes two filters on the same tiles.
"""

from repro import (
    Channel,
    Configuration,
    Direction,
    Epoch,
    Process,
    ProcessNetwork,
    TileCostModel,
    assemble,
    eq1_runtime,
    evaluate_mapping,
    rebalance,
)
from repro.fabric.tile import Tile
from repro.units import CYCLE_NS


def measure_blur_program(taps: int) -> tuple[int, object]:
    """A horizontal box filter over a 64-sample scanline; returns
    (cycles per line, program)."""
    program = assemble(
        f"""
        .org 200
        .var cnt
        .var psrc
        .var pdst
        .var acc
        .var k
        .var pk
            MOV cnt, #{64 - taps + 1}
            MOV psrc, #0
            MOV pdst, #100
        line:
            MOV acc, #0
            MOV k, #{taps}
            MOV pk, psrc
        tap:
            ADD acc, acc, @pk
            ADD pk, pk, #1
            SUB k, k, #1
            BNZ k, tap
            SRA acc, acc, #{taps.bit_length() - 1}
            MOV @pdst, acc
            ADD psrc, psrc, #1
            ADD pdst, pdst, #1
            SUB cnt, cnt, #1
            BNZ cnt, line
            HALT
        """,
        name=f"blur{taps}",
    )
    tile = Tile()
    tile.load_program(program)
    return tile.run(), program


def build_network() -> ProcessNetwork:
    """Annotate the pipeline with runtimes measured on the simulator."""
    blur_cycles, _ = measure_blur_program(4)
    sharp_cycles, _ = measure_blur_program(2)
    stages = [
        Process("load", runtime_cycles=64, insts=8, data2=64, output_words=64),
        Process("blur", runtime_cycles=blur_cycles, insts=20, data2=130,
                data3=2, output_words=64),
        Process("diff", runtime_cycles=3 * 64, insts=10, data2=64,
                output_words=64),
        Process("gain", runtime_cycles=sharp_cycles, insts=16, data2=64,
                data3=1, output_words=64),
        Process("clip", runtime_cycles=2 * 64, insts=12, data2=64,
                output_words=64),
    ]
    network = ProcessNetwork(stages)
    for src, dst in zip(stages, stages[1:]):
        network.add_channel(Channel(src.name, dst.name, 64))
    return network


def main() -> None:
    network = build_network()
    print("annotated pipeline:")
    for process in network:
        print(f"  {process}")

    model = TileCostModel()
    print("\nrebalancing over tile budgets:")
    trace = rebalance(network.pipeline_order(), 12, model, algorithm="two")
    for mapping in trace.mappings:
        metrics = evaluate_mapping(mapping, model)
        print(
            f"  {mapping.n_tiles:>2} tiles: "
            f"{metrics.items_per_s(1) / 1e3:8.1f} klines/s  "
            f"util={metrics.utilization:.2f}  {mapping.describe()}"
        )

    # Epoch schedule: the same 3 tiles run the filter in two phases with
    # different link patterns; Eq. 1 decomposes the runtime.
    print("\nEq. 1 for a two-epoch schedule on 3 tiles:")
    c1 = Configuration(
        "C1",
        binding={"load": (0, 0), "blur": (0, 1), "diff": (0, 2)},
        links={(0, 0): Direction.EAST, (0, 1): Direction.EAST},
    )
    c2 = Configuration(
        "C2",
        binding={"gain": (0, 0), "clip": (0, 1)},
        links={(0, 0): Direction.EAST, (0, 1): None},
    )
    blur_ns = network.process("blur").runtime_ns
    epochs = [
        Epoch(c1, duration_ns=blur_ns),
        Epoch(c2, duration_ns=network.process("gain").runtime_ns),
    ]
    breakdown = eq1_runtime(
        epochs, network, link_cost_ns=300.0,
        copy_ns_per_word=6 * CYCLE_NS,
    )
    print(f"  {breakdown}")


if __name__ == "__main__":
    main()
