"""Compile-cache benchmark: repeated DSE sweep, cold vs warm.

The workload mirrors what a design-space exploration does to the
configuration compiler: visit a grid of FFT decompositions x link costs
plus a set of JPEG quantizer setups, building the full
:class:`~repro.compile.ir.CompiledArtifact` for each point.  Pass 1 runs
against an empty cache (every point lowers, validates, predecodes and
hashes); pass 2 revisits the identical grid and must be served entirely
from the content-addressed cache.

Writes ``BENCH_compile.json``::

    {"bench": "compile_cache_repeated_sweep",
     "points": 15,
     "cold_s": 0.41, "warm_s": 0.002, "speedup": 195.3,
     "cache": {"hits": 15, "misses": 15, ...},
     "hashes": {"fft:n=64,m=8,cols=2,link=0.0": "4e62…", ...},
     "hashes_stable": true,
     "pass_timings_ms": {"validate-links": 0.1, ...},
     "acceptance": {"min_speedup": 5.0, "pass": true}}

``speedup`` is the acceptance figure (>= 5x required); ``hashes_stable``
asserts that a fresh cold compile in a *new* cache reproduces every
content hash byte for byte.  Run directly
(``PYTHONPATH=src python benchmarks/bench_compile.py``) or through
:func:`run_bench` from the smoke tests.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_compile.json"

MIN_SPEEDUP = 5.0

#: The sweep grid: (n, m, cols) x link costs, plus (quality, chroma).
FFT_POINTS = [
    (64, 8, 1),
    (64, 8, 2),
    (64, 16, 1),
    (64, 16, 2),
    (256, 16, 1),
    (256, 16, 2),
]
LINK_COSTS = [0.0, 100.0]
JPEG_POINTS = [(50, False), (75, False), (90, True)]


def _sweep_keys() -> list[str]:
    keys = [
        f"fft:n={n},m={m},cols={c},link={cost}"
        for (n, m, c) in FFT_POINTS
        for cost in LINK_COSTS
    ]
    keys.extend(f"jpeg:q={q},chroma={ch}" for q, ch in JPEG_POINTS)
    return keys


def _build_all(cache) -> tuple[float, dict[str, str]]:
    """Compile every sweep point through ``cache``.

    Returns (config-build seconds, {point key: artifact hash}).  Only the
    compile calls are timed — this is the config-build cost Eq. 1's
    C_i constructions charge, not fabric execution.
    """
    from repro.compile import compile_fft, compile_jpeg
    from repro.kernels.fft.decompose import FFTPlan

    hashes: dict[str, str] = {}
    total = 0.0
    for (n, m, c) in FFT_POINTS:
        plan = FFTPlan(n, m, c)
        for cost in LINK_COSTS:
            t0 = time.perf_counter()
            artifact = compile_fft(plan, cost, cache=cache)
            total += time.perf_counter() - t0
            hashes[f"fft:n={n},m={m},cols={c},link={cost}"] = (
                artifact.artifact_hash
            )
    for quality, chroma in JPEG_POINTS:
        t0 = time.perf_counter()
        artifact = compile_jpeg(quality, chroma, cache=cache)
        total += time.perf_counter() - t0
        hashes[f"jpeg:q={quality},chroma={chroma}"] = artifact.artifact_hash
    return total, hashes


def run_bench(output: Path | str = DEFAULT_OUTPUT) -> dict:
    """Run the repeated sweep and write ``BENCH_compile.json``."""
    from repro.compile import ArtifactCache, compile_fft
    from repro.kernels.fft.decompose import FFTPlan

    # Warm imports / numpy / program factories so pass 1 times compilation,
    # not module loading (the lru_cached programs are shared either way —
    # identical treatment for both passes).
    warm_cache = ArtifactCache()
    compile_fft(FFTPlan(16, 16, 1), cache=warm_cache)

    cache = ArtifactCache(capacity=64)
    cold_s, cold_hashes = _build_all(cache)
    warm_s, warm_hashes = _build_all(cache)
    if cold_hashes != warm_hashes:
        raise AssertionError("artifact hashes changed between passes")

    # Byte-stability across runs: a fresh cache must reproduce every hash.
    _, fresh_hashes = _build_all(ArtifactCache(capacity=64))
    hashes_stable = fresh_hashes == cold_hashes

    points = len(_sweep_keys())
    stats = cache.stats.snapshot()  # freeze before the sample compile below
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")

    # Per-pass wall-time breakdown of one representative compile.
    sample = compile_fft(FFTPlan(64, 8, 2), 100.0, cache=cache)
    pass_timings_ms = {
        t.name: t.wall_ns / 1e6 for t in sample.pass_timings
    }

    entry = {
        "bench": "compile_cache_repeated_sweep",
        "points": points,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": speedup,
        "cache": stats.as_dict(),
        "hashes": cold_hashes,
        "hashes_stable": hashes_stable,
        "pass_timings_ms": pass_timings_ms,
        "acceptance": {
            "min_speedup": MIN_SPEEDUP,
            "pass": bool(speedup >= MIN_SPEEDUP and hashes_stable
                         and stats.hits == points),
        },
    }
    output = Path(output)
    output.write_text(json.dumps(entry, indent=2) + "\n")
    return entry


def main() -> int:
    entry = run_bench()
    print(f"wrote {DEFAULT_OUTPUT}")
    print(
        f"points {entry['points']}  cold {entry['cold_s'] * 1e3:8.2f} ms  "
        f"warm {entry['warm_s'] * 1e3:8.2f} ms  "
        f"speedup {entry['speedup']:7.1f}x  "
        f"hashes stable: {entry['hashes_stable']}"
    )
    ok = entry["acceptance"]["pass"]
    print("acceptance:", "OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
