"""A2: overlapping vertical link reconfiguration with butterflies (Fig. 9)."""

from conftest import save_artifact

from repro.dse.report import format_table
from repro.experiments import ablations


def test_ablation_vlink_overlap(benchmark):
    rows = benchmark(ablations.vlink_overlap_ablation)
    assert all(r["speedup"] >= 1.0 for r in rows)
    # at L = 0 there is nothing to hide; at mid costs the overlap pays
    zero = [r for r in rows if r["link_cost_ns"] == 0]
    mid = [r for r in rows if r["link_cost_ns"] == 700]
    assert all(r["speedup"] == 1.0 for r in zero)
    assert any(r["speedup"] > 1.05 for r in mid)
    save_artifact(
        "ablation_vlink",
        "A2: vertical-link overlap\n" + format_table(rows),
    )
