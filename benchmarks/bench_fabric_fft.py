"""End-to-end fabric FFT: simulator cost of a full 64-point transform.

Not a paper artifact per se, but the substrate every FFT number rests on:
times the cycle-accurate execution of all butterfly/copy programs across
an 8x2 mesh and cross-checks the numerics against numpy.
"""

import numpy as np
from conftest import save_artifact

from repro.kernels.fft.decompose import FFTPlan
from repro.kernels.fft.runner import FabricFFT


def test_fabric_fft_64pt(benchmark):
    plan = FFTPlan(64, 8, 2)
    rng = np.random.default_rng(0)
    x = (rng.standard_normal(64) + 1j * rng.standard_normal(64)) * 0.01
    runner = FabricFFT(plan, link_cost_ns=100.0)

    result = benchmark(runner.run, x)
    assert np.allclose(result.output, np.fft.fft(x), atol=1e-6)
    report = result.report
    save_artifact(
        "fabric_fft",
        "Fabric 64-pt FFT on 8x2 tiles (L=100ns)\n"
        f"simulated time : {report.total_ns / 1000:.2f} us\n"
        f"reconfiguration: {report.reconfig_ns / 1000:.2f} us "
        f"({report.overlapped_ns / 1000:.2f} us hidden by overlap)\n"
        f"link changes   : {report.link_changes}\n"
        f"epochs         : {len(report.epochs)}",
    )
