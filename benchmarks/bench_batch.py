"""Vector-batch scaling benchmark: throughput-per-core vs batch width.

Two questions the tentpole batch tier must answer with numbers:

* **How does throughput scale with K?**  The sweep runs K warm FFT
  transforms through one :meth:`FabricFFT.run_batch` dispatch for
  K in {1, 4, 16, 64} and reports jobs per core-second.  Orchestration
  (pilot scalar run, fingerprint checks, output reads) amortises over
  the lanes, so throughput-per-core must rise monotonically with K —
  the acceptance gate the smoke test checks.
* **Does coalescing pay on a mixed serve trace?**  A 200-job
  FFT/JPEG trace replays against a two-fabric pool under plain
  :class:`AffinityPolicy` and under :class:`BatchCoalescingPolicy`
  (same affinity pick, plus same-configuration grouping into
  :meth:`FabricWorker.execute_batch`).  The *wall-clock* replay-time
  ratio is the coalescing win — simulated fabric time is
  sequential-equivalent by construction, so the win is real compute,
  not accounting.

Writes ``BENCH_batch.json``::

    {"jit_tier": "numpy",
     "sweep": [{"k": 1, "wall_s": ..., "jobs_per_core_s": ...}, ...],
     "serve": {"jobs": 200, "pool": 2, "wall_s_affinity": ...,
               "wall_s_batch": ..., "coalescing_win": ...}}

Run directly (``PYTHONPATH=src python benchmarks/bench_batch.py``);
``--quick`` shrinks the sweep and the trace for the CI smoke job.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_batch.json"

FULL_KS = (1, 4, 16, 64)
QUICK_KS = (1, 4, 16)
FULL_TRACE_JOBS = 200
QUICK_TRACE_JOBS = 40


# ---------------------------------------------------------------------------
# K sweep: one batched dispatch per width, warm fabric
# ---------------------------------------------------------------------------


def _fft_payloads(k: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal((k, 64)) + 1j * rng.standard_normal((k, 64))
    ) * 0.01


def sweep_batch_widths(ks=FULL_KS, repeats: int = 3) -> list[dict]:
    from repro.kernels.fft.decompose import FFTPlan
    from repro.kernels.fft.runner import FabricFFT

    runner = FabricFFT(FFTPlan(64, 8, 2), link_cost_ns=100.0)
    runner.run_batch(_fft_payloads(2))  # warm compile + batch codegen
    entries = []
    for k in ks:
        xs = _fft_payloads(k)
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            runner.run_batch(xs)
            best = min(best, time.perf_counter() - t0)
        entries.append(
            {
                "k": k,
                "wall_s": best,
                "jobs_per_core_s": k / best if best > 0 else float("inf"),
            }
        )
    return entries


# ---------------------------------------------------------------------------
# mixed serve trace: affinity vs batch-coalescing replay
# ---------------------------------------------------------------------------


def _mixed_trace(jobs: int) -> list:
    """Deterministic FFT/JPEG mix (3:1) — every payload seeded by index."""
    from repro.io.images import natural_like
    from repro.serve.jobs import JobRequest, fft_spec, jpeg_spec

    rng = np.random.default_rng(42)
    requests = []
    for i in range(jobs):
        if i % 4 == 3:
            requests.append(
                JobRequest(
                    spec=jpeg_spec(75, False),
                    payload=natural_like(16, 16, seed=i),
                )
            )
        else:
            requests.append(
                JobRequest(
                    spec=fft_spec(64, 8, 2),
                    payload=(
                        rng.standard_normal(64)
                        + 1j * rng.standard_normal(64)
                    )
                    * 0.01,
                )
            )
    return requests


def serve_trace_comparison(jobs: int = FULL_TRACE_JOBS, pool_size: int = 2) -> dict:
    from repro.serve.pool import FabricPool
    from repro.serve.scheduler import (
        AffinityPolicy,
        BatchCoalescingPolicy,
        simulate_trace,
    )

    t0 = time.perf_counter()
    affinity = simulate_trace(
        _mixed_trace(jobs), FabricPool(pool_size), AffinityPolicy()
    )
    wall_affinity = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = simulate_trace(
        _mixed_trace(jobs), FabricPool(pool_size), BatchCoalescingPolicy()
    )
    wall_batch = time.perf_counter() - t0

    assert len(affinity.jobs) == len(batched.jobs) == jobs
    return {
        "jobs": jobs,
        "pool": pool_size,
        "wall_s_affinity": wall_affinity,
        "wall_s_batch": wall_batch,
        "coalescing_win": (
            wall_affinity / wall_batch if wall_batch > 0 else float("inf")
        ),
        "makespan_ns_affinity": affinity.makespan_ns,
        "makespan_ns_batch": batched.makespan_ns,
        "warm_jobs_affinity": affinity.warm_jobs,
        "warm_jobs_batch": batched.warm_jobs,
    }


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------


def run_bench(quick: bool = False, output: Path | str = DEFAULT_OUTPUT) -> dict:
    from repro.fabric.batch import resolve_jit_tier

    ks = QUICK_KS if quick else FULL_KS
    jobs = QUICK_TRACE_JOBS if quick else FULL_TRACE_JOBS
    report = {
        "jit_tier": resolve_jit_tier(),
        "quick": quick,
        "sweep": sweep_batch_widths(ks, repeats=1 if quick else 3),
        "serve": serve_trace_comparison(jobs),
    }
    output = Path(output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke mode")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args()
    report = run_bench(quick=args.quick, output=args.output)
    print(f"wrote {args.output}  (jit tier: {report['jit_tier']})")
    for entry in report["sweep"]:
        print(
            f"K={entry['k']:<3d} wall {entry['wall_s'] * 1e3:8.2f} ms  "
            f"throughput {entry['jobs_per_core_s']:8.1f} jobs/core-s"
        )
    serve = report["serve"]
    print(
        f"serve trace ({serve['jobs']} jobs, pool {serve['pool']}): "
        f"affinity {serve['wall_s_affinity']:.2f}s vs "
        f"coalescing {serve['wall_s_batch']:.2f}s — "
        f"win {serve['coalescing_win']:.2f}x"
    )


if __name__ == "__main__":
    main()
