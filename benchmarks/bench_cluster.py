"""Cluster benchmark: sharded scale-out vs a single serving node.

Drives the :mod:`repro.cluster.loadgen` open-loop simulator with
service times **calibrated from real fabric sessions** (one cold and
one warm job per kernel kind, measured on a
:class:`~repro.serve.pool.FabricWorker` in simulated fabric time) and a
million-job Zipf-skewed trace, then writes a machine-readable
``BENCH_cluster.json``::

    {"calibration": {"warm_service_us": ..., "cold_service_us": ...},
     "load": {"jobs": 1000000, "seed": 0, ...},
     "shards": [{"shards": 1, "p50_ms": ..., "p99_ms": ..., "p999_ms": ...,
                 "speedup_vs_single": ...}, ...],
     "speedup_4_shards": 2.9,
     "drain": {"steady_p99_ms": ..., "drain_p99_ms": ..., "p99_ratio": ...},
     "rejoin": {"model": {"mttr_s": ..., "p99_ratio": ...},
                "measured": {"mttr_s": ..., "ok": true, ...}}}

For every shard count the *same* arrival trace replays on the sharded
cluster and on a single node, so ``speedup_vs_single`` (ratio of
makespans) is the honest scale-out factor under identical offered load.
``speedup_4_shards`` is the headline number the tier-1 regression guard
holds to >= 1.8x (mirroring ``BENCH_serve.json``'s 1.5x affinity
floor).

The ``drain`` leg replays the four-shard trace and live-drains the
hottest shard halfway through (the simulator twin of
:func:`repro.cluster.lifecycle.drain.drain_shard`): the tier-1 guard
holds its ``p99_ratio`` — p99 latency during the drain window over
steady-state p99 — to <= 3x.

The ``rejoin`` leg has two halves.  ``model`` replays the four-shard
trace through :func:`repro.cluster.loadgen.simulate_rejoin` — SIGKILL
the hottest shard, strand arrivals for the detection delay, hand the
backlog off, fold the shard back in cold — and reports the disruption
window's p99 blow-up.  ``measured`` runs a *real* three-subprocess
cluster (:func:`repro.cluster.proc.harness.run_proc_scenario`) through
an actual SIGKILL and reports the supervisor's wall-clock MTTR from
DEAD verdict to ring re-entry; being wall-clock it is the one leg that
is not bit-deterministic, and the tier-1 guard pins invariants (``ok``,
bounded ``mttr_s``) rather than exact values.

Run directly (``PYTHONPATH=src python benchmarks/bench_cluster.py``) or
through :func:`run_bench` from the tier-1 smoke test with a reduced
trace.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"

#: Committed-benchmark shape: the ISSUE's million-job load sweep.
DEFAULT_JOBS = 1_000_000
DEFAULT_SHARD_COUNTS = (1, 2, 4, 8)
DEFAULT_SEED = 0
DEFAULT_PLANS = 64
DEFAULT_ZIPF_S = 1.1
DEFAULT_UTILIZATION = 0.85

#: The measured rejoin leg runs real OS subprocesses, so it stays small
#: and fixed-size regardless of ``n_jobs`` — it measures MTTR, not load.
REJOIN_MEASURED_JOBS = 60
REJOIN_MEASURED_SHARDS = 3


def measure_rejoin() -> dict:
    """SIGKILL a real subprocess shard and time the supervisor's rejoin.

    Spawns :data:`REJOIN_MEASURED_SHARDS` worker subprocesses, drives a
    small trace, SIGKILLs the hottest shard mid-trace, and lets the
    :class:`~repro.cluster.proc.supervisor.ProcessSupervisor` respawn it
    against its journal, scrub-gate it and fold it back onto the ring.
    Returns the invariant-checked summary for the ``measured`` half of
    the ``rejoin`` leg.
    """
    import tempfile

    from repro.chaos import ProcFault
    from repro.cluster.proc.harness import ProcScenario, run_proc_scenario

    scenario = ProcScenario(
        fault=ProcFault(kind="sigkill", after_completions=20),
        n_jobs=REJOIN_MEASURED_JOBS,
        n_shards=REJOIN_MEASURED_SHARDS,
        max_rounds=REJOIN_MEASURED_JOBS + 50,
    )
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="bench-rejoin-") as workdir:
        report = run_proc_scenario(scenario, Path(workdir))
    rejoin = report.rejoin
    return {
        "jobs": REJOIN_MEASURED_JOBS,
        "shards": REJOIN_MEASURED_SHARDS,
        "victim": report.victim,
        "mttr_s": rejoin.get("mttr_s", 0.0),
        "recovered_requeued": rejoin.get("recovered_requeued", 0),
        "deduped_on_rejoin": rejoin.get("deduped_on_rejoin", 0),
        "rejoined": report.rejoined,
        "violations": list(report.violations),
        "ok": report.ok,
        "wall_s": time.perf_counter() - t0,
    }


def calibrate() -> dict:
    """Measure warm/cold service times on real fabric sessions.

    Runs one cold job (fresh fabric: full configuration) and one warm
    job (same spec resident) per kernel kind and returns microsecond
    figures in *simulated fabric time* — deterministic, so calibration
    never makes the benchmark machine-dependent.
    """
    import numpy as np

    from repro.serve.jobs import JobRequest, fft_spec, jpeg_spec
    from repro.serve.pool import FabricWorker
    from repro.serve.sessions import CancelToken

    rng = np.random.default_rng(0)
    kinds = {
        "fft": (
            fft_spec(16, 4, 2),
            rng.standard_normal(16) + 1j * rng.standard_normal(16),
        ),
        "jpeg": (jpeg_spec(75, False), rng.integers(0, 256, (8, 8))),
    }
    per_kind = {}
    for name, (spec, payload) in kinds.items():
        worker = FabricWorker(f"cal-{name}")
        cold = worker.execute(
            JobRequest(spec=spec, payload=payload), CancelToken()
        )
        warm = worker.execute(
            JobRequest(spec=spec, payload=payload), CancelToken()
        )
        assert not cold.warm and warm.warm
        warm_us = warm.stats.sim_ns / 1e3
        cold_us = warm_us + cold.stats.reconfig_ns / 1e3
        per_kind[name] = {"warm_us": warm_us, "cold_us": cold_us}
    warm = sum(k["warm_us"] for k in per_kind.values()) / len(per_kind)
    cold = sum(k["cold_us"] for k in per_kind.values()) / len(per_kind)
    return {
        "warm_service_us": warm,
        "cold_service_us": max(cold, warm),
        "per_kind": per_kind,
    }


def run_bench(
    n_jobs: int = DEFAULT_JOBS,
    shard_counts: tuple[int, ...] = DEFAULT_SHARD_COUNTS,
    seed: int = DEFAULT_SEED,
    output: Path | str = DEFAULT_OUTPUT,
) -> dict:
    """Sweep shard counts over one calibrated load; write the JSON."""
    from repro.cluster.loadgen import (
        LoadSpec,
        generate_trace,
        simulate,
        simulate_drain,
        simulate_rejoin,
    )

    calibration = calibrate()
    entries = []
    for shards in shard_counts:
        spec = LoadSpec(
            n_jobs=n_jobs,
            n_shards=shards,
            seed=seed,
            n_plans=DEFAULT_PLANS,
            zipf_s=DEFAULT_ZIPF_S,
            utilization=DEFAULT_UTILIZATION,
            warm_service_us=calibration["warm_service_us"],
            cold_service_us=calibration["cold_service_us"],
        )
        trace = generate_trace(spec)
        t0 = time.perf_counter()
        clustered = simulate(spec, trace)
        single = (
            clustered if shards == 1 else simulate(spec, trace, n_shards=1)
        )
        wall_s = time.perf_counter() - t0
        entries.append(
            {
                "shards": shards,
                "jobs": n_jobs,
                "makespan_s": clustered.makespan_s,
                "throughput_jobs_per_s": clustered.throughput_jobs_per_s,
                "mean_ms": clustered.mean_ms,
                "p50_ms": clustered.p50_ms,
                "p99_ms": clustered.p99_ms,
                "p999_ms": clustered.p999_ms,
                "warm_fraction": clustered.warm_fraction,
                "steals": clustered.steals,
                "single_node_makespan_s": single.makespan_s,
                "speedup_vs_single": single.makespan_s / clustered.makespan_s,
                "wall_s": wall_s,
            }
        )
    drain_spec = LoadSpec(
        n_jobs=n_jobs,
        n_shards=4,
        seed=seed,
        n_plans=DEFAULT_PLANS,
        zipf_s=DEFAULT_ZIPF_S,
        utilization=DEFAULT_UTILIZATION,
        warm_service_us=calibration["warm_service_us"],
        cold_service_us=calibration["cold_service_us"],
    )
    t0 = time.perf_counter()
    drain = simulate_drain(drain_spec).as_dict()
    drain["wall_s"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    rejoin_model = simulate_rejoin(drain_spec).as_dict()
    rejoin_model["wall_s"] = time.perf_counter() - t0
    rejoin = {"model": rejoin_model, "measured": measure_rejoin()}

    by_shards = {entry["shards"]: entry for entry in entries}
    report = {
        "calibration": calibration,
        "load": {
            "jobs": n_jobs,
            "seed": seed,
            "n_plans": DEFAULT_PLANS,
            "zipf_s": DEFAULT_ZIPF_S,
            "utilization": DEFAULT_UTILIZATION,
            "shard_counts": list(shard_counts),
        },
        "shards": entries,
        "speedup_4_shards": (
            by_shards[4]["speedup_vs_single"] if 4 in by_shards else None
        ),
        "drain": drain,
        "rejoin": rejoin,
    }
    output = Path(output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    return report


def main() -> None:
    report = run_bench()
    print(f"wrote {DEFAULT_OUTPUT}")
    cal = report["calibration"]
    print(
        f"calibrated service: warm {cal['warm_service_us']:.1f} us  "
        f"cold {cal['cold_service_us']:.1f} us"
    )
    for entry in report["shards"]:
        print(
            f"shards {entry['shards']:>2}  "
            f"p50 {entry['p50_ms']:8.3f} ms  "
            f"p99 {entry['p99_ms']:8.3f} ms  "
            f"p999 {entry['p999_ms']:8.3f} ms  "
            f"steals {entry['steals']:>7}  "
            f"speedup {entry['speedup_vs_single']:5.2f}x  "
            f"wall {entry['wall_s']:.1f} s"
        )
    print(f"speedup at 4 shards: {report['speedup_4_shards']:.2f}x")
    drain = report["drain"]
    print(
        f"drain leg ({drain['drained_shard']} @ "
        f"{drain['drain_start_s']:.1f} s): "
        f"steady p99 {drain['steady_p99_ms']:.3f} ms  "
        f"drain p99 {drain['drain_p99_ms']:.3f} ms  "
        f"ratio {drain['p99_ratio']:.2f}x"
    )
    model = report["rejoin"]["model"]
    measured = report["rejoin"]["measured"]
    print(
        f"rejoin leg (model, {model['killed_shard']}): "
        f"mttr {model['mttr_s'] * 1e3:.0f} ms  "
        f"window p99 {model['window_p99_ms']:.3f} ms  "
        f"ratio {model['p99_ratio']:.2f}x  "
        f"migrated {model['migrated']}  stranded {model['stranded']}"
    )
    print(
        f"rejoin leg (measured, {measured['shards']} procs): "
        f"mttr {measured['mttr_s'] * 1e3:.0f} ms  "
        f"requeued {measured['recovered_requeued']}  "
        f"deduped {measured['deduped_on_rejoin']}  "
        f"ok {measured['ok']}"
    )


if __name__ == "__main__":
    main()
