"""Model-vs-simulator cross-validation of the link-cost trend.

The Figs. 10-12 curves come from the analytic tau model; this bench
checks the *simulator* reproduces their qualitative structure: streamed
fabric FFT throughput falls as the per-link reconfiguration cost rises,
and multi-column (more-tile) designs are more sensitive to it — the
paper's two central observations, here measured on actual executed
epochs rather than equations.
"""

import numpy as np
from conftest import save_artifact

from repro.dse.report import format_table
from repro.kernels.fft.decompose import FFTPlan
from repro.kernels.fft.runner import FabricFFT

COLS = (1, 4)
LINK_COSTS = (0.0, 1000.0, 3000.0)


def simulated_rows():
    rng = np.random.default_rng(11)
    xs = [
        (rng.standard_normal(16) + 1j * rng.standard_normal(16)) * 0.01
        for _ in range(5)
    ]
    rows = []
    for cols in COLS:
        for cost in LINK_COSTS:
            plan = FFTPlan(16, 4, cols)
            stream = FabricFFT(plan, link_cost_ns=cost).run_stream(xs)
            for out, x in zip(stream.outputs, xs):
                assert np.allclose(out, np.fft.fft(x), atol=1e-6)
            rows.append(
                {
                    "cols": cols,
                    "link_cost_ns": cost,
                    "steady_us": round(stream.steady_interval_ns / 1000, 2),
                }
            )
    return rows


def test_simulator_reproduces_link_cost_trend(benchmark):
    rows = benchmark(simulated_rows)
    steady = {(r["cols"], r["link_cost_ns"]): r["steady_us"] for r in rows}
    # throughput falls with L for every column count
    for cols in COLS:
        series = [steady[(cols, c)] for c in LINK_COSTS]
        assert series == sorted(series)
    # more columns are more sensitive to L (relative slowdown larger)
    slow1 = steady[(1, 3000.0)] / steady[(1, 0.0)]
    slow4 = steady[(4, 3000.0)] / steady[(4, 0.0)]
    assert slow4 > slow1
    save_artifact(
        "model_vs_simulator",
        "Simulated stream throughput vs link cost (16-pt FFT, 5 transforms)\n"
        + format_table(rows)
        + f"\nrelative slowdown L=0 -> 3000ns: 1 col {slow1:.2f}x, "
        f"4 cols {slow4:.2f}x (the paper's sensitivity ordering)",
    )
