"""Table 4: the five manual JPEG mappings, paper vs model."""

import pytest
from conftest import save_artifact

from repro.experiments import table4


def test_table4_manual_mappings(benchmark):
    rows = benchmark(table4.run)
    published = {
        1: (419.0, 1.00, 2.98), 2: (334.0, 0.62, 3.74),
        3: (334.0, 0.12, 3.74), 4: (84.0, 0.37, 14.88), 5: (86.0, 0.98, 14.43),
    }
    for row in rows:
        time_us, util, ips = published[row["impl"]]
        assert row["time_us"] == pytest.approx(time_us, rel=0.01)
        assert row["utilization"] == pytest.approx(util, abs=0.02)
        assert row["images_per_s"] == pytest.approx(ips, rel=0.02)
    save_artifact("table4", table4.render())
