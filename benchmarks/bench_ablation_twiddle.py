"""A1: the red/green/yellow/blue twiddle scheme vs reload-everything."""

from conftest import save_artifact

from repro.dse.report import format_table
from repro.experiments import ablations


def test_ablation_twiddle_scheme(benchmark):
    rows = benchmark(ablations.twiddle_ablation)
    by_cols = {r["cols"]: r for r in rows}
    # shared columns benefit heavily; ten pipelined columns are neutral
    assert by_cols[1]["speedup"] > 1.5
    assert by_cols[10]["speedup"] == 1.0
    save_artifact(
        "ablation_twiddle",
        "A1: twiddle optimization\n" + format_table(rows),
    )
