"""Benchmark-regression harness: fast path vs reference interpreter.

Times the three workloads every fabric experiment funnels through — the
64-point fabric FFT, the JPEG block pipeline, and one analytic DSE sweep
over the fabric FFT — under both execution tiers, and writes a
machine-readable ``BENCH_fabric.json``::

    [{"bench": "fabric_fft_64pt",
      "wall_s_fast": 0.006, "wall_s_reference": 0.033,
      "simulated_ns": 135562.5, "speedup": 5.4}, ...]

The simulated time is asserted identical between tiers (the fast path
must be architecturally invisible — see ``repro.fabric.predecode`` and
``tests/fabric/test_engine_equivalence.py``); the speedup column is what
the regression smoke test checks (fast must never be slower).

Run directly (``PYTHONPATH=src python benchmarks/bench_regress.py``) or
through :func:`run_benches` from the tier-1 smoke test with reduced
repeats.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

import numpy as np

REFERENCE_ENV = "REPRO_REFERENCE_SIM"
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_fabric.json"


# ---------------------------------------------------------------------------
# workloads — each call builds fresh fabric state and returns simulated ns
# ---------------------------------------------------------------------------


def bench_fabric_fft() -> float:
    """Full 64-pt FFT on an 8x2 mesh (the bench_fabric_fft workload)."""
    from repro.kernels.fft.decompose import FFTPlan
    from repro.kernels.fft.runner import FabricFFT

    rng = np.random.default_rng(0)
    x = (rng.standard_normal(64) + 1j * rng.standard_normal(64)) * 0.01
    runner = FabricFFT(FFTPlan(64, 8, 2), link_cost_ns=100.0)
    result = runner.run(x)
    return result.report.total_ns


#: Lanes in the batched-FFT regression bench (64 transforms per call).
BATCH_K = 64


def bench_fabric_fft_batch() -> float:
    """64 transforms through the vector-batched tier in one dispatch.

    Under ``REPRO_REFERENCE_SIM`` the batch tier degrades to sequential
    scalar lanes on the reference interpreter, so both legs execute the
    same 64 jobs and the simulated clocks must agree exactly — the
    sequential-equivalence contract of :mod:`repro.fabric.batch`.
    """
    from repro.kernels.fft.decompose import FFTPlan
    from repro.kernels.fft.runner import FabricFFT

    rng = np.random.default_rng(0)
    xs = (
        rng.standard_normal((BATCH_K, 64))
        + 1j * rng.standard_normal((BATCH_K, 64))
    ) * 0.01
    runner = FabricFFT(FFTPlan(64, 8, 2), link_cost_ns=100.0)
    return runner.run_batch(xs).total_ns


def bench_fabric_jpeg() -> float:
    """JPEG block pipeline on one tile (the bench_fabric_jpeg workload)."""
    from repro.io.images import natural_like
    from repro.kernels.jpeg.fabric_runner import FabricBlockPipeline

    pipeline = FabricBlockPipeline(quality=75)
    result = pipeline.encode_image(natural_like(16, 16, seed=9))
    return result.total_ns


def _fft_cost_point(link_cost_ns: float) -> float:
    from repro.kernels.fft.decompose import FFTPlan
    from repro.kernels.fft.runner import FabricFFT

    rng = np.random.default_rng(1)
    x = (rng.standard_normal(64) + 1j * rng.standard_normal(64)) * 0.01
    runner = FabricFFT(FFTPlan(64, 8, 2), link_cost_ns=link_cost_ns)
    return runner.run(x).report.total_ns


def bench_dse_sweep() -> float:
    """A small link-cost DSE sweep whose points each simulate the fabric."""
    from repro.dse.sweep import sweep

    result = sweep(_fft_cost_point, {"link_cost_ns": [0.0, 100.0]}, processes=1)
    return float(sum(result.values))


BENCHES = [
    ("fabric_fft_64pt", bench_fabric_fft),
    ("fabric_fft_batch64", bench_fabric_fft_batch),
    ("fabric_jpeg_blocks", bench_fabric_jpeg),
    ("dse_link_cost_sweep", bench_dse_sweep),
]

#: Minimum fast-vs-reference speedup each bench must hold.  ``main``
#: (and therefore the CI bench job) fails when a regression drops a
#: bench below its floor; the committed ``BENCH_fabric.json`` is checked
#: against the same table by ``tests/test_bench_regress.py``.
SPEEDUP_FLOORS = {
    "fabric_fft_64pt": 5.0,
    "fabric_fft_batch64": 50.0,
    "fabric_jpeg_blocks": 5.0,
    "dse_link_cost_sweep": 1.0,
}


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------


def _timed(fn, repeats: int) -> tuple[float, float]:
    """(best wall seconds, simulated ns) over ``repeats`` calls."""
    best = float("inf")
    simulated = 0.0
    for _ in range(repeats):
        t0 = time.perf_counter()
        simulated = fn()
        best = min(best, time.perf_counter() - t0)
    return best, simulated


def _with_engine(reference: bool, fn, repeats: int) -> tuple[float, float]:
    prior = os.environ.get(REFERENCE_ENV)
    try:
        if reference:
            os.environ[REFERENCE_ENV] = "1"
        else:
            os.environ.pop(REFERENCE_ENV, None)
        return _timed(fn, repeats)
    finally:
        if prior is None:
            os.environ.pop(REFERENCE_ENV, None)
        else:
            os.environ[REFERENCE_ENV] = prior


def run_benches(repeats: int = 3, output: Path | str = DEFAULT_OUTPUT) -> list[dict]:
    """Time every bench under both tiers and write ``BENCH_fabric.json``."""
    entries = []
    for name, fn in BENCHES:
        _with_engine(False, fn, 1)  # warm imports, caches, and the run memo
        wall_fast, sim_fast = _with_engine(False, fn, repeats)
        wall_ref, sim_ref = _with_engine(True, fn, repeats)
        if name == "fabric_fft_batch64":
            # The batch tier replicates the pilot's per-job delta as one
            # k*delta product; the sequential reference accumulates the
            # same delta k times.  Identical mathematically, but float
            # addition order leaves last-ulp dust on a microsecond-scale
            # clock — outputs (the real contract) are asserted
            # bit-identical by tests/fabric/test_batch.py.
            agree = math.isclose(sim_fast, sim_ref, rel_tol=1e-12)
        else:
            agree = sim_fast == sim_ref
        if not agree:
            raise AssertionError(
                f"{name}: simulated time diverged between engines "
                f"(fast {sim_fast} ns vs reference {sim_ref} ns)"
            )
        entries.append(
            {
                "bench": name,
                "wall_s_fast": wall_fast,
                "wall_s_reference": wall_ref,
                "simulated_ns": sim_fast,
                "speedup": wall_ref / wall_fast if wall_fast > 0 else float("inf"),
            }
        )
    output = Path(output)
    output.write_text(json.dumps(entries, indent=2) + "\n")
    return entries


def check_floors(entries: list[dict]) -> None:
    """Raise if any bench regressed below its :data:`SPEEDUP_FLOORS` bar."""
    failures = [
        f"{e['bench']}: speedup {e['speedup']:.2f}x "
        f"< floor {SPEEDUP_FLOORS[e['bench']]:.1f}x"
        for e in entries
        if e["bench"] in SPEEDUP_FLOORS
        and e["speedup"] < SPEEDUP_FLOORS[e["bench"]]
    ]
    if failures:
        raise AssertionError("speedup regression: " + "; ".join(failures))


def main() -> None:
    entries = run_benches()
    width = max(len(e["bench"]) for e in entries)
    print(f"wrote {DEFAULT_OUTPUT}")
    for e in entries:
        print(
            f"{e['bench']:<{width}}  fast {e['wall_s_fast'] * 1e3:8.2f} ms  "
            f"reference {e['wall_s_reference'] * 1e3:8.2f} ms  "
            f"speedup {e['speedup']:5.2f}x  "
            f"simulated {e['simulated_ns'] / 1000:.2f} us"
        )
    check_floors(entries)


if __name__ == "__main__":
    main()
