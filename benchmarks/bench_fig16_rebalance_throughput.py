"""Fig. 16: images/s vs tile budget for the three rebalancers."""

from conftest import save_artifact

from repro.experiments import fig16


def test_fig16_rebalance_throughput(benchmark):
    series = benchmark(fig16.run)
    # monotone non-decreasing curves spanning a >10x dynamic range
    for curve in series.values():
        values = [v for _, v in curve]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
        assert values[-1] > 10 * values[0]
    # refinements never lose to the greedy algorithm
    for i in range(25):
        assert series["two"][i][1] >= series["one"][i][1] - 1e-9
        assert series["opt"][i][1] >= series["one"][i][1] - 1e-9
    save_artifact("fig16", fig16.render())
