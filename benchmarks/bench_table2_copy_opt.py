"""Table 2: optimized copy processes (and the A3 ablation).

The model must reproduce the published previous/new costs exactly.
"""

import pytest
from conftest import save_artifact

from repro.experiments import table2


def test_table2_copy_costs(benchmark):
    rows = benchmark(table2.run)
    for got, want in zip(rows, table2.PAPER_ROWS):
        assert got["prev_cost_ns"] == pytest.approx(want["prev_cost_ns"], abs=0.15)
        assert got["new_cost_ns"] == pytest.approx(want["new_cost_ns"], abs=0.01)
    save_artifact("table2", table2.render())
