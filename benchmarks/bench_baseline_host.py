"""Host software baselines (the paper's PC comparison point in Sec. 3.3)."""

from conftest import save_artifact

from repro.experiments import baseline


def test_host_baselines(benchmark):
    rows = benchmark.pedantic(
        baseline.run, kwargs={"min_seconds": 0.05}, rounds=1, iterations=1
    )
    assert any("fabric model" in r["implementation"] for r in rows)
    save_artifact("baseline", baseline.render())
