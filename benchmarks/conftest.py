"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures.  Besides
being timed by pytest-benchmark, each renders its artifact to stdout and
persists it under ``benchmarks/output/`` so the regenerated rows/series
survive the run (pytest captures stdout by default; use ``-s`` to watch
live).
"""

from __future__ import annotations

from pathlib import Path

OUTPUT_DIR = Path(__file__).parent / "output"


def save_artifact(name: str, text: str) -> None:
    """Print and persist a rendered table/figure."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
