"""JPEG substrate validation: the rate-distortion curve.

Sweeps the quality factor over a synthetic natural-spectrum frame and
reports stream size and PSNR — the sanity curve any JPEG implementation
must produce (monotone rate, monotone distortion).
"""

import numpy as np
from conftest import save_artifact

from repro.dse.report import format_table
from repro.io.images import natural_like
from repro.kernels.jpeg.decoder import decode_image
from repro.kernels.jpeg.encoder import encode_image

QUALITIES = (10, 25, 50, 75, 90, 95)


def rd_rows():
    image = natural_like(96, 96, seed=4)
    rows = []
    for quality in QUALITIES:
        stream = encode_image(image, quality=quality)
        decoded = decode_image(stream)
        mse = float(np.mean((decoded.astype(float) - image.astype(float)) ** 2))
        psnr = 10 * np.log10(255.0**2 / mse) if mse else float("inf")
        rows.append(
            {
                "quality": quality,
                "bytes": len(stream),
                "bits_per_pixel": round(len(stream) * 8 / image.size, 3),
                "psnr_db": round(psnr, 2),
            }
        )
    return rows


def test_jpeg_rate_distortion(benchmark):
    rows = benchmark(rd_rows)
    sizes = [r["bytes"] for r in rows]
    psnrs = [r["psnr_db"] for r in rows]
    assert sizes == sorted(sizes)            # rate grows with quality
    assert psnrs == sorted(psnrs)            # distortion falls with quality
    assert psnrs[-1] > 40                    # q=95 is visually transparent
    assert rows[0]["bits_per_pixel"] < 1.5   # q=10 compresses hard
    save_artifact(
        "jpeg_rate_distortion",
        "JPEG rate-distortion (96x96 natural-spectrum frame)\n"
        + format_table(rows),
    )
