"""Fig. 17: average tile utilization vs tile budget."""

import pytest
from conftest import save_artifact

from repro.experiments import fig17


def test_fig17_rebalance_utilization(benchmark):
    series = benchmark(fig17.run)
    for curve in series.values():
        assert curve[0][1] == pytest.approx(1.0)  # one tile: always busy
        assert all(0 < v <= 1.0 + 1e-9 for _, v in curve)
    save_artifact("fig17", fig17.render())
