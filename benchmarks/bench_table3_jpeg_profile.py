"""Table 3: JPEG process profile, with simulator-measured counterparts."""

from conftest import save_artifact

from repro.experiments import table3


def test_table3_jpeg_profile(benchmark):
    rows = benchmark(table3.run)
    by_name = {r["process"]: r for r in rows}
    assert by_name["DCT"]["paper_cycles"] == 133324
    # the measured quarter DCT must deliver the ~4x split the paper uses
    assert by_name["DCT"]["measured_cycles"] / \
        by_name["dct"]["measured_cycles"] > 2.5
    save_artifact("table3", table3.render())
