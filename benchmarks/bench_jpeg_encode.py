"""JPEG substrate: reference encode of the paper's 200x200 frame size."""

import numpy as np
from conftest import save_artifact

from repro.io.images import natural_like
from repro.kernels.jpeg.decoder import decode_image
from repro.kernels.jpeg.encoder import encode_image


def test_jpeg_encode_200x200(benchmark):
    image = natural_like(200, 200, seed=1)
    stream = benchmark(encode_image, image, 75)
    decoded = decode_image(stream)
    err = int(np.max(np.abs(decoded.astype(int) - image.astype(int))))
    save_artifact(
        "jpeg_encode",
        "Reference JPEG encode, 200x200 synthetic frame, q=75\n"
        f"stream size    : {len(stream)} bytes "
        f"({image.size / len(stream):.1f}:1)\n"
        f"max round-trip error: {err}",
    )
