"""Table 5: reBalanceOne's 24-tile binding of the JPEG pipeline.

The algorithm must land on the published binding exactly:
p0 | p1(17) | p2-4 | p5(2) | p6 | p7-8 | p9.
"""

from conftest import save_artifact

from repro.experiments import table5


def test_table5_binding(benchmark):
    rows = benchmark(table5.run)
    assert table5.matches_paper()
    assert len(rows) == 7
    save_artifact("table5", table5.render())
