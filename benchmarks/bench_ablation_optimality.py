"""A6: how far do the paper's rebalancers drift from the exact optimum?

An extension beyond the paper: the exact DP/parametric-search optimum
(``repro.mapping.optimal``) bounds the heuristics' loss on the paper's
own JPEG workload over all 1..25 tile budgets.
"""

from conftest import save_artifact

from repro.dse.report import format_table
from repro.kernels.jpeg.pipeline_model import jpeg_pipeline_order
from repro.mapping.cost import TileCostModel
from repro.mapping.optimal import optimal_mapping
from repro.mapping.rebalance import rebalance


def optimality_rows(max_tiles: int = 25):
    model = TileCostModel()
    processes = jpeg_pipeline_order()
    traces = {
        algo: rebalance(processes, max_tiles, model, algorithm=algo)
        for algo in ("one", "two", "opt")
    }
    rows = []
    for budget in range(1, max_tiles + 1):
        exact = optimal_mapping(processes, budget, model).interval_ns
        row = {"tiles": budget, "optimal_us": round(exact / 1000, 2)}
        for algo, trace in traces.items():
            interval = trace.at_tiles(budget).interval_ns(model)
            row[f"gap_{algo}"] = round(interval / exact, 3)
        rows.append(row)
    return rows


def test_ablation_optimality_gap(benchmark):
    rows = benchmark(optimality_rows)
    # heuristics never beat the optimum and stay within 25% on JPEG
    for row in rows:
        for algo in ("one", "two", "opt"):
            assert 1.0 - 1e-9 <= row[f"gap_{algo}"] < 1.25
    # the refined algorithms close part of the greedy gap somewhere
    assert any(row["gap_two"] < row["gap_one"] for row in rows)
    save_artifact(
        "ablation_optimality",
        "A6: rebalancer optimality gap (interval / exact optimum)\n"
        + format_table(rows),
    )
